"""Setuptools shim kept for legacy tooling; metadata lives in pyproject.toml."""

from setuptools import setup

setup()
