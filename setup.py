"""Setuptools entry point.

The package has no hard dependencies beyond NumPy (SciPy is optional at
runtime, gated behind solver availability checks).  ``numba`` is an
optional extra: ``pip install -e .[compiled]`` enables the jitted
flat-array event kernel (``kernel="compiled"``, picked up automatically by
``kernel="auto"``); without it the engines fall back to the interpreted
twin with identical digests.
"""

from setuptools import setup

setup(
    extras_require={
        "compiled": ["numba"],
    },
)
