"""Reproduce paper Fig. 12: sensitivity to region availability."""

from repro.analysis.studies import fig12_region_availability


def bench_fig12_region_availability(run_experiment, scale):
    result = run_experiment(fig12_region_availability, scale, delay_tolerance=0.5)

    assert len(result.rows) == 3
    savings = {row[0]: (row[1], row[2]) for row in result.rows}
    # WaterWise keeps saving carbon under every region subset; water savings
    # shrink when only water-similar regions remain (e.g. Zurich+Oregon), so
    # only a no-large-regression bound is asserted there.
    for subset, (carbon, water) in savings.items():
        assert carbon > 0.0, f"no carbon savings with regions {subset}"
        assert water > -5.0, f"water regression with regions {subset}"
    assert max(water for _carbon, water in savings.values()) > 2.0
    # The subset containing Mumbai (a high-carbon home region whose jobs can
    # escape to Zurich) shows clear carbon savings (paper's observation).
    mumbai_subset = [key for key in savings if "mumbai" in key]
    assert mumbai_subset and savings[mumbai_subset[0]][0] > 5.0
