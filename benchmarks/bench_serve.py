"""Admission-service benchmark: sustained throughput + decision latency.

Replays a diurnal trace sized to ``--jobs`` through the live admission
gateway — the identical ``admit()`` path a wall-clock service uses — in
fast-forward (``pace=0``), and reports sustained jobs/sec plus the
p50/p95/p99 per-decision latency the gateway's counters measured.  A second
case drives the TCP front end (``AdmissionServer``) with an in-process
client to measure the full JSON-over-socket round trip.

Each case runs in a fresh **subprocess** so one case's allocator state never
shades another's numbers.  Two hard gates back the acceptance criteria
regardless of baseline:

* the replayed digest must equal the one-shot batch engine's on the same
  trace (decision identity is re-proved inside the measured run);
* every submitted job must receive exactly one decision.

Headline numbers land in ``BENCH_serve.json`` and are compared against the
checked-in ``benchmarks/BENCH_serve_baseline.json`` with a *soft* threshold
(warn; fail only under ``--strict``), like the other benchmarks.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_serve.py --jobs 10000
    PYTHONPATH=src python benchmarks/bench_serve.py --jobs 50000 --strict
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys
import time

RATE_PER_HOUR = 1400.0
SEED = 42

#: Soft regression threshold vs the checked-in baseline.
REGRESSION_FACTOR = 1.5

_HEADLINE_HIGHER_IS_WORSE = (
    "replay_p99_latency_ms",
    "replay_wall_s_per_10k",
    "tcp_p99_latency_ms",
)


def _case_parameters(jobs: int) -> dict:
    from repro.traces.arrival import DiurnalPoissonProcess

    process = DiurnalPoissonProcess(RATE_PER_HOUR, amplitude=0.9)
    lo, hi = 0.0, 8.0 * jobs / (RATE_PER_HOUR / 3600.0)
    for _ in range(60):
        mid = (lo + hi) / 2.0
        if process.expected_count(mid) < jobs:
            lo = mid
        else:
            hi = mid
    return {
        "scenario": "diurnal",
        "seed": SEED,
        "rate_per_hour": RATE_PER_HOUR,
        "duration_days": hi / 86_400.0,
        "servers_per_region": 60,
        "chunk_size": 1024,
    }


def _build(params, collect: str):
    from repro.cluster import StreamingSimulator
    from repro.schedulers import make_scheduler
    from repro.sustainability import ElectricityMapsLikeProvider
    from repro.traces.scenarios import scenario_source

    source = scenario_source(
        params["scenario"],
        seed=params["seed"],
        rate_per_hour=params["rate_per_hour"],
        duration_days=params["duration_days"],
    )
    dataset = ElectricityMapsLikeProvider(
        horizon_hours=max(int(params["duration_days"] * 24) + 48, 72),
        seed=params["seed"],
    )
    engine = StreamingSimulator(
        source,
        make_scheduler("baseline"),
        dataset=dataset,
        servers_per_region=params["servers_per_region"],
        chunk_size=params["chunk_size"],
        collect=collect,
    )
    return source, dataset, engine


def _child_replay(args: argparse.Namespace) -> int:
    """Measured case: full-trace replay through the gateway (pace=0)."""
    from repro.cluster import BatchSimulator
    from repro.schedulers import make_scheduler
    from repro.service import run_replay

    params = _case_parameters(args.child_jobs)
    source, dataset, engine = _build(params, collect="full")
    started = time.perf_counter()
    report = run_replay(
        source, engine, pace=0.0, chunk_size=params["chunk_size"]
    )
    wall_s = time.perf_counter() - started
    stats = report.stats

    # Hard gate: the replayed live path must equal the batch engine.
    oneshot = BatchSimulator(
        source.materialize(),
        make_scheduler("baseline"),
        dataset=dataset,
        servers_per_region=params["servers_per_region"],
    ).run()
    digest_equal = report.result.digest() == oneshot.digest()

    print(json.dumps({
        "case": "replay",
        "requested_jobs": args.child_jobs,
        "jobs": report.jobs,
        "batches": stats.batches,
        "wall_s": round(wall_s, 3),
        "jobs_per_s": round(stats.throughput_jobs_per_s, 1),
        "p50_latency_ms": round(1e3 * stats.latency_p50_s, 3),
        "p95_latency_ms": round(1e3 * stats.latency_p95_s, 3),
        "p99_latency_ms": round(1e3 * stats.latency_p99_s, 3),
        "max_latency_ms": round(1e3 * stats.latency_max_s, 3),
        "decided": stats.decided,
        "outstanding": stats.outstanding,
        "digest_equal": digest_equal,
    }))
    return 0


def _child_tcp(args: argparse.Namespace) -> int:
    """Measured case: JSON-lines TCP round trips through AdmissionServer."""
    import asyncio

    from repro.service import AdmissionGateway, AdmissionServer, WallClock

    params = _case_parameters(args.child_jobs)
    _source, _dataset, engine = _build(params, collect="aggregate")

    async def scenario():
        gateway = AdmissionGateway(
            engine,
            clock=WallClock(rate=500_000.0),
            arrival_mode="clock",
            tick_interval_s=0.002,
        )
        server = await AdmissionServer(gateway, port=0).start()
        serve = asyncio.ensure_future(server.serve_until_shutdown())
        reader, writer = await asyncio.open_connection("127.0.0.1", server.port)

        async def rpc(request):
            writer.write(json.dumps(request).encode() + b"\n")
            await writer.drain()
            return json.loads(await reader.readline())

        regions = engine._keys_tuple
        batch_size = 50
        batches = max(1, args.child_jobs // batch_size)
        started = time.perf_counter()
        submitted = decided = 0
        for index in range(batches):
            jobs = [
                {
                    "job_id": index * batch_size + i,
                    "workload": "web-search",
                    "home_region": regions[i % len(regions)],
                    "execution_time": 600.0,
                    "energy_kwh": 0.4,
                }
                for i in range(batch_size)
            ]
            response = await rpc({"op": "submit", "jobs": jobs})
            submitted += batch_size
            decided += len(response["decisions"])
        wall_s = time.perf_counter() - started
        stats = (await rpc({"op": "stats"}))["stats"]
        await rpc({"op": "shutdown"})
        await serve
        writer.close()
        await server.stop()
        return submitted, decided, wall_s, stats

    submitted, decided, wall_s, stats = asyncio.run(scenario())
    print(json.dumps({
        "case": "tcp",
        "requested_jobs": args.child_jobs,
        "jobs": submitted,
        "decided": decided,
        "wall_s": round(wall_s, 3),
        "jobs_per_s": round(submitted / wall_s if wall_s > 0 else 0.0, 1),
        "p50_latency_ms": round(1e3 * stats["latency_p50_s"], 3),
        "p95_latency_ms": round(1e3 * stats["latency_p95_s"], 3),
        "p99_latency_ms": round(1e3 * stats["latency_p99_s"], 3),
        "max_latency_ms": round(1e3 * stats["latency_max_s"], 3),
        "digest_equal": None,
    }))
    return 0


def _run_child(jobs: int, case: str) -> dict:
    command = [
        sys.executable, os.path.abspath(__file__), "--child",
        "--child-jobs", str(jobs), "--child-case", case,
    ]
    env = dict(os.environ)
    src = str(pathlib.Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(command, capture_output=True, text=True, env=env)
    if result.returncode != 0:
        raise RuntimeError(
            f"{case} case at {jobs} jobs failed:\n{result.stdout}\n{result.stderr}"
        )
    return json.loads(result.stdout.splitlines()[-1])


def compare_to_baseline(head: dict, baseline_path: pathlib.Path) -> list[str]:
    """Soft-threshold comparison; returns the list of regression messages."""
    if not baseline_path.exists():
        return []
    baseline = json.loads(baseline_path.read_text()).get("headline", {})
    problems = []
    for key in _HEADLINE_HIGHER_IS_WORSE:
        base = baseline.get(key)
        now = head.get(key)
        if base is None or now is None or base <= 0:
            continue
        if now > REGRESSION_FACTOR * base:
            problems.append(
                f"{key}: {now:.3f} vs baseline {base:.3f} "
                f"(> {REGRESSION_FACTOR:.1f}x threshold)"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=10_000,
                        help="trace size for the replay case")
    parser.add_argument("--tcp-jobs", type=int, default=1_000,
                        help="jobs pushed through the TCP front end "
                             "(0 skips the TCP case)")
    parser.add_argument("--output", default="BENCH_serve.json")
    parser.add_argument(
        "--baseline",
        default=str(pathlib.Path(__file__).parent / "BENCH_serve_baseline.json"),
        help="checked-in baseline for the soft regression check",
    )
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero on a soft-threshold regression")
    # Internal: a single measured case in a fresh interpreter.
    parser.add_argument("--child", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument("--child-jobs", type=int, help=argparse.SUPPRESS)
    parser.add_argument("--child-case", choices=["replay", "tcp"],
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)
    if args.child:
        if args.child_case == "replay":
            return _child_replay(args)
        return _child_tcp(args)

    cases = []
    failures = []

    replay = _run_child(args.jobs, "replay")
    cases.append(replay)
    print(
        f"replay {replay['jobs']:>9,} jobs: {replay['wall_s']:8.2f} s, "
        f"{replay['jobs_per_s']:>10,.1f} jobs/s, "
        f"p99 {replay['p99_latency_ms']:.1f} ms"
    )
    if not replay["digest_equal"]:
        failures.append("replayed digest diverges from the one-shot batch engine")
    if replay["decided"] != replay["jobs"] or replay["outstanding"]:
        failures.append(
            f"decision accounting broken: {replay['decided']} decided of "
            f"{replay['jobs']} submitted, {replay['outstanding']} outstanding"
        )

    if args.tcp_jobs > 0:
        tcp = _run_child(args.tcp_jobs, "tcp")
        cases.append(tcp)
        print(
            f"tcp    {tcp['jobs']:>9,} jobs: {tcp['wall_s']:8.2f} s, "
            f"{tcp['jobs_per_s']:>10,.1f} jobs/s, "
            f"p99 {tcp['p99_latency_ms']:.1f} ms"
        )
        if tcp["decided"] != tcp["jobs"]:
            failures.append(
                f"TCP case lost decisions: {tcp['decided']} of {tcp['jobs']}"
            )

    head = {
        "replay_jobs_per_s": replay["jobs_per_s"],
        "replay_p99_latency_ms": replay["p99_latency_ms"],
        "replay_wall_s_per_10k": round(
            replay["wall_s"] * 10_000.0 / max(replay["jobs"], 1), 3
        ),
    }
    if args.tcp_jobs > 0:
        head["tcp_jobs_per_s"] = tcp["jobs_per_s"]
        head["tcp_p99_latency_ms"] = tcp["p99_latency_ms"]
    report = {
        "benchmark": "admission_service",
        "policy": "baseline",
        "rate_per_hour": RATE_PER_HOUR,
        "headline": {key: round(value, 3) for key, value in head.items()},
        "cases": cases,
    }
    pathlib.Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    print("headline:", json.dumps(report["headline"]))

    if failures:
        print("\nHARD FAILURES:")
        for message in failures:
            print(f"  - {message}")
        return 1
    problems = compare_to_baseline(head, pathlib.Path(args.baseline))
    if problems:
        print("\nSOFT REGRESSIONS vs baseline:")
        for message in problems:
            print(f"  - {message}")
        if args.strict:
            return 1
        print("  (soft threshold: reported but not failing; use --strict to enforce)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
