"""Reproduce paper Table 2: normalized service time and delay violations."""

from repro.analysis.studies import table2_service_time


def bench_table2_service_time(run_experiment, scale):
    result = run_experiment(table2_service_time, scale, tolerances=(0.25, 0.50, 1.00))

    table = {}
    for tolerance, policy, ratio, violations in result.rows:
        table.setdefault(policy, {})[tolerance] = (ratio, violations)

    # Baseline: jobs run at home immediately, so the service ratio is ~1 and
    # no delay tolerance is violated.
    for tolerance, (ratio, violations) in table["baseline"].items():
        assert ratio < 1.1
        assert violations < 1.0

    # WaterWise: the average service time stays well below the allowed bound
    # (paper: 1.03x-1.13x for 25%-100% tolerances) and violations are rare.
    for tolerance, (ratio, violations) in table["waterwise"].items():
        allowed = 1.0 + float(tolerance.rstrip("%")) / 100.0
        assert ratio <= allowed + 0.05
        assert violations < 5.0
