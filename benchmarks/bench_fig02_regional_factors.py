"""Reproduce paper Fig. 2: regional sustainability factors and temporal variation."""

from repro.analysis.experiments import fig2_regional_factors


def bench_fig02_regional_factors(run_experiment):
    result = run_experiment(fig2_regional_factors, horizon_hours=8760, seed=11)

    regions = result.column("region")
    carbon = dict(zip(regions, result.column("carbon_intensity")))
    ewif = dict(zip(regions, result.column("ewif")))
    wsf = dict(zip(regions, result.column("wsf")))

    # Fig. 2(a): regions sorted by carbon intensity, Zurich lowest / Mumbai highest.
    assert regions == ["zurich", "madrid", "oregon", "milan", "mumbai"]
    assert carbon["zurich"] == min(carbon.values())
    assert carbon["mumbai"] == max(carbon.values())
    # Fig. 2(b): Zurich has the highest EWIF despite the lowest carbon intensity.
    assert ewif["zurich"] == max(ewif.values())
    # Fig. 2(d): Madrid is the most water-stressed region.
    assert wsf["madrid"] == max(wsf.values())
    # Fig. 2(e): carbon and water intensity vary over time and are not
    # perfectly correlated (otherwise co-optimization would be trivial).
    assert all(value > 0.0 for value in result.column("carbon_intensity_std"))
    assert abs(result.metadata["oregon_carbon_water_correlation"]) < 0.95
