"""Reproduce paper Fig. 9: the comparison driven by the Alibaba-like trace."""

from repro.analysis.experiments import fig9_alibaba


def bench_fig09_alibaba(run_experiment, scale):
    result = run_experiment(fig9_alibaba, scale, tolerances=(0.25, 1.00))

    table = {}
    for tolerance, policy, carbon, water, _ratio, _viol in result.rows:
        table.setdefault(policy, {})[tolerance] = (carbon, water)

    for tolerance in ("25%", "100%"):
        waterwise = table["waterwise"][tolerance]
        carbon_opt = table["carbon-greedy-opt"][tolerance]
        water_opt = table["water-greedy-opt"][tolerance]
        # Same qualitative picture as the Borg-like trace (paper: WaterWise
        # within a few percent of each oracle on its own metric).
        assert waterwise[0] > 0.0 and waterwise[1] > 0.0
        assert waterwise[0] <= carbon_opt[0] + 1.0
        assert waterwise[1] <= water_opt[1] + 1.0
        assert waterwise[1] >= carbon_opt[1] - 1.0
