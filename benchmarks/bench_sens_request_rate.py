"""Reproduce the Sec. 6 sensitivity study: doubled request rate."""

from repro.analysis.studies import sensitivity_request_rate


def bench_sens_request_rate(run_experiment, scale):
    result = run_experiment(
        sensitivity_request_rate, scale, rate_multipliers=(1.0, 2.0), delay_tolerance=0.5
    )

    rows = {row[0]: (row[1], row[2], row[3]) for row in result.rows}
    assert rows["2x"][0] > rows["1x"][0]  # the doubled trace has more jobs
    # Savings remain effective at double the request rate (paper: 21.7% / 10.2%).
    assert rows["2x"][1] > 0.0
    assert rows["2x"][2] > 0.0
