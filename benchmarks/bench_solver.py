"""Solver-core microbenchmark: presolve, warm starts, wall time per round.

Two measurements feed ``BENCH_solver.json``:

* **waterwise_auto** — a full WaterWise batch run over the standard
  Alibaba-style trace, reporting the decision controller's
  :class:`~repro.milp.session.SolverSession` counters: how many rounds the
  structured path answered trivially / with the LP relaxation / with branch &
  bound, warm-start hit rates and iteration counts, and the solver wall time
  per scheduling round.
* **native_core** — the presolve + revised-simplex core alone on a fixed,
  seeded sample of placement forms (slack and saturated), reporting the
  presolve row/column reduction ratios and the cold-vs-warm iteration gap.

The JSON is compared against the checked-in baseline
(``benchmarks/BENCH_solver_baseline.json``) with a *soft* threshold: a
regression prints a loud warning (and fails the run only under ``--strict``),
so noisy CI runners cannot flake the build while the trajectory stays
visible.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_solver.py                  # 4000 jobs
    PYTHONPATH=src python benchmarks/bench_solver.py --jobs 2000      # CI smoke
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

from repro.cluster import BatchSimulator
from repro.core.config import WaterWiseConfig
from repro.core.objective import build_placement_form
from repro.milp.session import SolverSession
from repro.milp.solver import solve_standard_form
from repro.schedulers import make_scheduler
from repro.sustainability import ElectricityMapsLikeProvider
from repro.traces.alibaba import AlibabaTraceGenerator

#: Soft regression threshold: warn when a headline metric is this much worse
#: than the checked-in baseline.
REGRESSION_FACTOR = 1.5

_HEADLINE_HIGHER_IS_WORSE = (
    "wall_time_per_round_s",
    "presolve_row_ratio",
)


def run_waterwise(jobs: int, seed: int, servers: int) -> dict:
    """Full batch run; returns the session stats plus round timing."""
    trace = AlibabaTraceGenerator(
        rate_per_hour=jobs / 24.0, duration_days=1.0, seed=seed
    ).generate()
    dataset = ElectricityMapsLikeProvider(horizon_hours=72, seed=seed)
    simulator = BatchSimulator(
        trace, make_scheduler("waterwise"), dataset=dataset, servers_per_region=servers
    )
    started = time.perf_counter()
    result = simulator.run()
    wall = time.perf_counter() - started
    stats = dict(result.solver_stats or {})
    stats["engine_wall_s"] = wall
    stats["jobs"] = len(trace)
    stats["rounds"] = len(result.decision_times_s)
    stats["decision_time_total_s"] = float(np.sum(result.decision_times_s))
    return stats


def run_native_core(seed: int, rounds: int = 60) -> dict:
    """Presolve + revised simplex on seeded placement forms (no dispatch)."""
    rng = np.random.default_rng(seed)
    session = SolverSession()
    config = WaterWiseConfig()
    for i in range(rounds):
        m = int(rng.integers(4, 24))
        n = int(rng.integers(3, 6))
        cost = rng.uniform(0.0, 2.0, (m, n))
        latency = rng.uniform(0.0, 1.2, (m, n))
        tolerance = rng.uniform(0.2, 1.0, m)
        servers = rng.integers(1, 4, m).astype(float)
        tight = i % 3 == 2
        capacity = (
            np.full(n, max(1.0, 0.5 * float(servers.sum()) / n))
            if tight
            else np.full(n, float(servers.sum()) + 4.0)
        )
        form = build_placement_form(
            cost, latency, tolerance, servers, capacity, config, soft=bool(i % 2)
        )
        solve_standard_form(form, solver="native", session=session)
    return session.stats.as_dict()


def headline(waterwise: dict, native: dict) -> dict:
    rounds = max(1, int(waterwise.get("rounds", 1)))
    solves = max(1, int(waterwise.get("solves", 1)))
    return {
        "wall_time_per_round_s": waterwise.get("solve_time_s", 0.0) / rounds,
        "structured_hit_rate": (
            waterwise.get("structured_trivial", 0) + waterwise.get("structured_lp", 0)
        ) / solves,
        "iterations_saved_per_warm_start": native.get(
            "iterations_saved_per_warm_start", 0.0
        ),
        "presolve_row_ratio": native.get("presolve_row_ratio", 1.0),
        "presolve_col_ratio": native.get("presolve_col_ratio", 1.0),
    }


def compare_to_baseline(head: dict, baseline_path: pathlib.Path) -> list[str]:
    """Soft-threshold comparison; returns the list of regression messages."""
    if not baseline_path.exists():
        return []
    baseline = json.loads(baseline_path.read_text()).get("headline", {})
    problems = []
    for key in _HEADLINE_HIGHER_IS_WORSE:
        base = baseline.get(key)
        now = head.get(key)
        if base is None or now is None or base <= 0.0:
            continue
        if now > base * REGRESSION_FACTOR:
            problems.append(
                f"{key}: {now:.6f} vs baseline {base:.6f} "
                f"(> {REGRESSION_FACTOR:.1f}x threshold)"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=4000, help="approximate trace size")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--servers", type=int, default=200, help="servers per region")
    parser.add_argument(
        "--output", default="BENCH_solver.json", help="where to write the report"
    )
    parser.add_argument(
        "--baseline",
        default=str(pathlib.Path(__file__).parent / "BENCH_solver_baseline.json"),
        help="checked-in baseline for the soft regression check",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit non-zero on a soft-threshold regression (default: warn only)",
    )
    args = parser.parse_args(argv)

    waterwise = run_waterwise(args.jobs, args.seed, args.servers)
    native = run_native_core(args.seed)
    head = headline(waterwise, native)
    report = {
        "jobs": args.jobs,
        "seed": args.seed,
        "headline": head,
        "waterwise_auto": waterwise,
        "native_core": native,
    }
    output = pathlib.Path(args.output)
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}")
    for key, value in head.items():
        print(f"  {key:<34} {value:.6f}")

    problems = compare_to_baseline(head, pathlib.Path(args.baseline))
    for message in problems:
        print(f"  !! regression: {message}")
    if problems and not args.strict:
        print("  (soft threshold: reported but not failing; use --strict to enforce)")
    return 1 if (problems and args.strict) else 0


if __name__ == "__main__":
    sys.exit(main())
