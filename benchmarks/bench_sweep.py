"""Fused-sweep benchmark: one-pass multi-policy evaluation vs per-cell cells.

The paper's evaluation is sweep-shaped — every figure compares the policy
registry over the *same* workload — so the figure of merit here is
**jobs·policies per second** for a registry-wide sweep of one scenario:

* ``fused`` — the new fabric: ``run_sweep(..., fused=True)`` collapses the
  registry into one :class:`~repro.cluster.multi.MultiPolicyRunner` pass
  (trace generated/columnized once, vectorized event kernel, array decision
  pipeline).
* ``percell`` — the seed fabric, reconstructed from the retained reference
  paths: one :class:`BatchSimulator` per (workload × policy) cell with
  ``kernel="scalar"`` (the classic event-at-a-time loop) and the WaterWise
  family on ``decision_pipeline="object"`` (per-job slack scoring +
  ``Variable``/``Constraint`` MILP construction), with the cost-aware
  variant running the scalar fallback exactly as it did before it had a
  mirrored fast path.

Both modes simulate identical decisions — the differential harness enforces
digest equality between every path pair — so the ratio is pure fabric
overhead.  Each mode runs in a fresh subprocess (no warm caches leak across
modes).  Results land in ``BENCH_sweep.json`` and are compared against the
checked-in ``benchmarks/BENCH_sweep_baseline.json`` with a *soft* threshold
(warn; fail only under ``--strict``); ``--min-speedup`` optionally hard-gates
the fused/percell ratio (the PR-5 acceptance bar is 3x at 100k jobs).

Run it directly::

    PYTHONPATH=src python benchmarks/bench_sweep.py --jobs 100000
    PYTHONPATH=src python benchmarks/bench_sweep.py --jobs 20000 --min-speedup 2.5
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys
import time

#: Same diurnal sizing as bench_stream: rate fixed, duration solved for the
#: requested job count.
RATE_PER_HOUR = 1400.0
SERVERS_PER_REGION = 60
SEED = 42

#: Soft regression threshold vs the checked-in baseline.
REGRESSION_FACTOR = 1.5

_HEADLINE_LOWER_IS_WORSE = (
    "fused_jobs_policies_per_s",
    "fused_speedup_vs_percell",
)


def _case_parameters(jobs: int) -> dict:
    from repro.traces.arrival import DiurnalPoissonProcess

    process = DiurnalPoissonProcess(RATE_PER_HOUR, amplitude=0.9)
    lo, hi = 0.0, 8.0 * jobs / (RATE_PER_HOUR / 3600.0)
    for _ in range(60):
        mid = (lo + hi) / 2.0
        if process.expected_count(mid) < jobs:
            lo = mid
        else:
            hi = mid
    return {
        "scenario": "diurnal",
        "seed": SEED,
        "rate_per_hour": RATE_PER_HOUR,
        "duration_days": hi / 86_400.0,
        "servers_per_region": SERVERS_PER_REGION,
    }


def _run_child(jobs: int, mode: str) -> dict:
    command = [
        sys.executable, os.path.abspath(__file__), "--child",
        "--child-jobs", str(jobs), "--child-mode", mode,
    ]
    env = dict(os.environ)
    src = str(pathlib.Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(command, capture_output=True, text=True, env=env)
    if result.returncode != 0:
        raise RuntimeError(
            f"{mode} sweep at {jobs} jobs failed:\n{result.stdout}\n{result.stderr}"
        )
    return json.loads(result.stdout.splitlines()[-1])


def _reference_factory(name: str):
    """Scheduler factory reproducing the seed decision paths for ``percell``."""
    from repro.core.config import WaterWiseConfig
    from repro.schedulers import make_scheduler

    if name == "waterwise-cost-aware":
        # A plain subclass has no fast-path registration of its own (the
        # WaterWise registrations are exact), so it runs the scalar fallback
        # the seed ran before the `_extra_cost` hook had an array mirror.
        from repro.core.cost import CostAwareWaterWiseScheduler

        class _ReferenceCostAware(CostAwareWaterWiseScheduler):
            pass

        return _ReferenceCostAware(config=WaterWiseConfig(decision_pipeline="object"))
    if name.startswith("waterwise"):
        return make_scheduler(name, config=WaterWiseConfig(decision_pipeline="object"))
    return make_scheduler(name)


def _child_main(args: argparse.Namespace) -> int:
    from repro.schedulers import available_schedulers
    from repro.traces.scenarios import scenario_source

    params = _case_parameters(args.child_jobs)
    policies = list(available_schedulers())
    source = scenario_source(
        params["scenario"],
        seed=params["seed"],
        rate_per_hour=params["rate_per_hour"],
        duration_days=params["duration_days"],
    )

    if args.child_mode == "fused":
        from repro.analysis.parallel import SweepPoint, run_sweep

        points = [
            SweepPoint(
                scheduler=name,
                trace_kind=params["scenario"],
                rate_per_hour=params["rate_per_hour"],
                duration_days=params["duration_days"],
                servers_per_region=params["servers_per_region"],
                seed=params["seed"],
            )
            for name in policies
        ]
        started = time.perf_counter()
        outcomes = run_sweep(points, executor="serial", fused=True)
        wall_s = time.perf_counter() - started
        jobs = outcomes[0].num_jobs
        totals = {o.point.scheduler: o.total_carbon_g for o in outcomes}
    else:  # percell (seed fabric: scalar kernel + object decision pipeline)
        import math

        from repro.cluster import BatchSimulator
        from repro.sustainability import ElectricityMapsLikeProvider

        started = time.perf_counter()
        trace = source.materialize()
        # Same dataset recipe as the sweep fabric (`parallel._point_dataset`),
        # so both modes simulate identical intensities.
        dataset = ElectricityMapsLikeProvider(
            horizon_hours=max(int(math.ceil(params["duration_days"] * 24)) + 48, 72),
            seed=params["seed"],
        )
        totals = {}
        jobs = 0
        for name in policies:
            result = BatchSimulator(
                trace,
                _reference_factory(name),
                dataset=dataset,
                servers_per_region=params["servers_per_region"],
                kernel="scalar",
            ).run()
            totals[name] = result.total_carbon_g
            jobs = result.num_jobs
        wall_s = time.perf_counter() - started

    print(json.dumps({
        "mode": args.child_mode,
        "requested_jobs": args.child_jobs,
        "jobs": jobs,
        "policies": len(policies),
        "wall_s": round(wall_s, 3),
        "jobs_policies_per_s": round(jobs * len(policies) / wall_s, 1),
        "carbon_g_by_policy": totals,
    }))
    return 0


def compare_to_baseline(head: dict, baseline_path: pathlib.Path) -> list[str]:
    """Soft-threshold comparison; returns the list of regression messages."""
    if not baseline_path.exists():
        return []
    baseline = json.loads(baseline_path.read_text()).get("headline", {})
    problems = []
    for key in _HEADLINE_LOWER_IS_WORSE:
        base = baseline.get(key)
        now = head.get(key)
        if base is None or now is None or base <= 0:
            continue
        if now < base / REGRESSION_FACTOR:
            problems.append(
                f"{key}: {now:.3f} vs baseline {base:.3f} "
                f"(< 1/{REGRESSION_FACTOR:.1f}x threshold)"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=100_000,
                        help="workload size of the registry-wide sweep")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="hard-fail when fused/percell falls below this")
    parser.add_argument("--output", default="BENCH_sweep.json")
    parser.add_argument(
        "--baseline",
        default=str(pathlib.Path(__file__).parent / "BENCH_sweep_baseline.json"),
        help="checked-in baseline for the soft regression check",
    )
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero on a soft-threshold regression")
    # Internal: a single measured mode in a fresh interpreter.
    parser.add_argument("--child", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument("--child-jobs", type=int, help=argparse.SUPPRESS)
    parser.add_argument("--child-mode", choices=["fused", "percell"],
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)
    if args.child:
        return _child_main(args)

    fused = _run_child(args.jobs, "fused")
    print(
        f"fused   {fused['jobs']:>9,} jobs x {fused['policies']} policies: "
        f"{fused['wall_s']:8.1f} s  ({fused['jobs_policies_per_s']:,.0f} job·pol/s)"
    )
    percell = _run_child(args.jobs, "percell")
    print(
        f"percell {percell['jobs']:>9,} jobs x {percell['policies']} policies: "
        f"{percell['wall_s']:8.1f} s  ({percell['jobs_policies_per_s']:,.0f} job·pol/s)"
    )

    failures = []
    # The two fabrics must agree on what they simulated (identical decisions
    # per policy → identical totals up to aggregation-order rounding).
    for name, carbon in fused["carbon_g_by_policy"].items():
        reference = percell["carbon_g_by_policy"].get(name)
        if reference is None or abs(carbon - reference) > 1e-6 * max(1.0, abs(reference)):
            failures.append(
                f"carbon totals diverge for {name}: fused {carbon!r} "
                f"vs percell {reference!r}"
            )

    speedup = percell["wall_s"] / fused["wall_s"]
    head = {
        "fused_jobs_policies_per_s": fused["jobs_policies_per_s"],
        "percell_jobs_policies_per_s": percell["jobs_policies_per_s"],
        "fused_speedup_vs_percell": round(speedup, 2),
    }
    report = {
        "benchmark": "fused_sweep",
        "requested_jobs": args.jobs,
        "policies": fused["policies"],
        "headline": head,
        "cases": [fused, percell],
    }
    pathlib.Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    print("headline:", json.dumps(head))

    if args.min_speedup is not None and speedup < args.min_speedup:
        failures.append(
            f"fused speedup {speedup:.2f}x below required {args.min_speedup:.2f}x"
        )
    if failures:
        print("\nHARD FAILURES:")
        for message in failures:
            print(f"  - {message}")
        return 1
    problems = compare_to_baseline(head, pathlib.Path(args.baseline))
    if problems:
        print("\nSOFT REGRESSIONS vs baseline:")
        for message in problems:
            print(f"  - {message}")
        if args.strict:
            return 1
        print("  (soft threshold: reported but not failing; use --strict to enforce)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
