"""Distributed-sweep fabric benchmark: sharded throughput vs single-box fused.

The sweep fabric's pitch is linear-ish scaling with *zero* loss of
exactness, so this benchmark measures both at once:

* ``serial`` — the single-box reference: ``run_sweep(..., fused=True)``
  over the whole policy registry (one trace pass, K lockstep engines).
* ``fabric`` — the same sweep through
  :func:`repro.analysis.fabric.run_fabric_sweep` on the multiprocess
  transport at 1, 2 and 4 local workers (per-policy shards leased off the
  coordinator's queue).
* ``tcp`` — the 4-worker case again over the JSON-lines TCP loopback
  transport (worker subprocesses spawned via ``repro shard-worker``),
  pricing the socket + base64-pickle overhead of the real multi-node path.

Every fabric child re-checks the exactness contract **inside the measured
process**: the merged distributed digests must equal the single-box fused
digests the serial child reported, or the child (and the benchmark) hard-
fails — throughput numbers from a run that lost exactness are worthless.

The figure of merit is **jobs·policies per second**; the headline adds the
4-worker speedup over serial and its scaling efficiency (speedup / 4).
Results land in ``BENCH_fabric.json`` and are compared against the
checked-in ``benchmarks/BENCH_fabric_baseline.json`` with a *soft*
threshold (warn; fail only under ``--strict``); ``--min-speedup``
hard-gates the 4-worker speedup (the acceptance bar is 3x at 100k jobs).

Run it directly::

    PYTHONPATH=src python benchmarks/bench_fabric.py --jobs 100000 --min-speedup 3.0
    PYTHONPATH=src python benchmarks/bench_fabric.py --jobs 20000
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys
import time

#: Same diurnal sizing as bench_sweep: rate fixed, duration solved for the
#: requested job count.
RATE_PER_HOUR = 1400.0
SERVERS_PER_REGION = 60
SEED = 42

#: Soft regression threshold vs the checked-in baseline.
REGRESSION_FACTOR = 1.5

_HEADLINE_LOWER_IS_WORSE = (
    "fabric_w4_jobs_policies_per_s",
    "fabric_speedup_w4_vs_serial",
    "tcp_w4_jobs_policies_per_s",
)


def _case_parameters(jobs: int) -> dict:
    from repro.traces.arrival import DiurnalPoissonProcess

    process = DiurnalPoissonProcess(RATE_PER_HOUR, amplitude=0.9)
    lo, hi = 0.0, 8.0 * jobs / (RATE_PER_HOUR / 3600.0)
    for _ in range(60):
        mid = (lo + hi) / 2.0
        if process.expected_count(mid) < jobs:
            lo = mid
        else:
            hi = mid
    return {
        "scenario": "diurnal",
        "seed": SEED,
        "rate_per_hour": RATE_PER_HOUR,
        "duration_days": hi / 86_400.0,
        "servers_per_region": SERVERS_PER_REGION,
    }


def _sweep_points(jobs: int):
    from repro.analysis.parallel import SweepPoint
    from repro.schedulers import available_schedulers

    params = _case_parameters(jobs)
    return [
        SweepPoint(
            scheduler=name,
            trace_kind=params["scenario"],
            rate_per_hour=params["rate_per_hour"],
            duration_days=params["duration_days"],
            servers_per_region=params["servers_per_region"],
            seed=params["seed"],
        )
        for name in available_schedulers()
    ]


def _run_child(
    jobs: int, mode: str, workers: int, expect_digests: pathlib.Path | None
) -> dict:
    command = [
        sys.executable, os.path.abspath(__file__), "--child",
        "--child-jobs", str(jobs), "--child-mode", mode,
        "--child-workers", str(workers),
    ]
    if expect_digests is not None:
        command += ["--child-expect-digests", str(expect_digests)]
    env = dict(os.environ)
    src = str(pathlib.Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(command, capture_output=True, text=True, env=env)
    if result.returncode != 0:
        raise RuntimeError(
            f"{mode} sweep (workers={workers}) at {jobs} jobs failed:\n"
            f"{result.stdout}\n{result.stderr}"
        )
    return json.loads(result.stdout.splitlines()[-1])


def _child_main(args: argparse.Namespace) -> int:
    points = _sweep_points(args.child_jobs)

    if args.child_mode == "serial":
        from repro.analysis.parallel import run_sweep

        started = time.perf_counter()
        outcomes = run_sweep(points, executor="serial", fused=True)
        wall_s = time.perf_counter() - started
    else:  # fabric transports: process / tcp
        from repro.analysis.fabric import run_fabric_sweep

        started = time.perf_counter()
        outcomes = run_fabric_sweep(
            points, workers=args.child_workers, transport=args.child_mode
        )
        wall_s = time.perf_counter() - started

    digests = {o.point.scheduler: o.digest for o in outcomes}
    if args.child_expect_digests:
        # Exactness gate inside the measured child: a distributed run whose
        # merged digests drift from the single-box fused run is a hard
        # failure, whatever its throughput.
        expected = json.loads(pathlib.Path(args.child_expect_digests).read_text())
        if digests != expected:
            print(
                "DIGEST MISMATCH vs single-box fused run:\n"
                f"  expected {expected}\n  got      {digests}",
                file=sys.stderr,
            )
            return 1

    jobs = outcomes[0].num_jobs
    print(json.dumps({
        "mode": args.child_mode,
        "workers": args.child_workers,
        "requested_jobs": args.child_jobs,
        "jobs": jobs,
        "policies": len(points),
        "wall_s": round(wall_s, 3),
        "jobs_policies_per_s": round(jobs * len(points) / wall_s, 1),
        "digests": digests,
    }))
    return 0


def compare_to_baseline(head: dict, baseline_path: pathlib.Path) -> list[str]:
    """Soft-threshold comparison; returns the list of regression messages."""
    if not baseline_path.exists():
        return []
    baseline = json.loads(baseline_path.read_text()).get("headline", {})
    problems = []
    for key in _HEADLINE_LOWER_IS_WORSE:
        base = baseline.get(key)
        now = head.get(key)
        if base is None or now is None or base <= 0:
            continue
        if now < base / REGRESSION_FACTOR:
            problems.append(
                f"{key}: {now:.3f} vs baseline {base:.3f} "
                f"(< 1/{REGRESSION_FACTOR:.1f}x threshold)"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=100_000,
                        help="workload size of the registry-wide sweep")
    parser.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4],
                        help="local multiprocess worker counts to measure")
    parser.add_argument("--tcp-workers", type=int, default=4,
                        help="worker count of the TCP-loopback case (0 skips it)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="hard-fail when the max-worker fabric speedup "
                             "over serial falls below this")
    parser.add_argument("--output", default="BENCH_fabric.json")
    parser.add_argument(
        "--baseline",
        default=str(pathlib.Path(__file__).parent / "BENCH_fabric_baseline.json"),
        help="checked-in baseline for the soft regression check",
    )
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero on a soft-threshold regression")
    # Internal: a single measured mode in a fresh interpreter.
    parser.add_argument("--child", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument("--child-jobs", type=int, help=argparse.SUPPRESS)
    parser.add_argument("--child-mode", choices=["serial", "process", "tcp"],
                        help=argparse.SUPPRESS)
    parser.add_argument("--child-workers", type=int, default=1,
                        help=argparse.SUPPRESS)
    parser.add_argument("--child-expect-digests", default=None,
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)
    if args.child:
        return _child_main(args)

    serial = _run_child(args.jobs, "serial", 1, None)
    print(
        f"serial      {serial['jobs']:>9,} jobs x {serial['policies']} policies: "
        f"{serial['wall_s']:8.1f} s  ({serial['jobs_policies_per_s']:,.0f} job·pol/s)"
    )
    digest_file = pathlib.Path(args.output).with_suffix(".digests.json")
    digest_file.write_text(json.dumps(serial["digests"]))

    cases = [serial]
    try:
        fabric = {}
        for workers in args.workers:
            case = _run_child(args.jobs, "process", workers, digest_file)
            fabric[workers] = case
            cases.append(case)
            print(
                f"process w={workers}  {case['jobs']:>9,} jobs x "
                f"{case['policies']} policies: {case['wall_s']:8.1f} s  "
                f"({case['jobs_policies_per_s']:,.0f} job·pol/s, digests OK)"
            )
        tcp = None
        if args.tcp_workers:
            tcp = _run_child(args.jobs, "tcp", args.tcp_workers, digest_file)
            cases.append(tcp)
            print(
                f"tcp     w={args.tcp_workers}  {tcp['jobs']:>9,} jobs x "
                f"{tcp['policies']} policies: {tcp['wall_s']:8.1f} s  "
                f"({tcp['jobs_policies_per_s']:,.0f} job·pol/s, digests OK)"
            )
    finally:
        digest_file.unlink(missing_ok=True)

    top = max(args.workers)
    cores = os.cpu_count() or 1
    speedup = serial["wall_s"] / fabric[top]["wall_s"]
    head = {
        "serial_jobs_policies_per_s": serial["jobs_policies_per_s"],
        f"fabric_w{top}_jobs_policies_per_s": fabric[top]["jobs_policies_per_s"],
        f"fabric_speedup_w{top}_vs_serial": round(speedup, 2),
        f"fabric_scaling_efficiency_w{top}": round(speedup / top, 3),
    }
    if tcp is not None:
        head[f"tcp_w{args.tcp_workers}_jobs_policies_per_s"] = (
            tcp["jobs_policies_per_s"]
        )
    report = {
        "benchmark": "fabric_sweep",
        "requested_jobs": args.jobs,
        "policies": serial["policies"],
        "cpu_count": cores,
        "headline": head,
        "cases": cases,
    }
    pathlib.Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    print("headline:", json.dumps(head))

    failures = []
    if args.min_speedup is not None and speedup < args.min_speedup:
        if cores < top:
            # Parallel speedup needs cores: a w=4 sweep on a 1-core box
            # measures oversubscription, not the fabric.  The digest gate
            # above still ran — exactness is enforced regardless.
            print(
                f"\nNOTE: {cores} core(s) < {top} workers; the "
                f"--min-speedup {args.min_speedup:.2f}x gate needs at least "
                f"{top} cores to be meaningful and is skipped"
            )
        else:
            failures.append(
                f"fabric w={top} speedup {speedup:.2f}x below required "
                f"{args.min_speedup:.2f}x"
            )
    if failures:
        print("\nHARD FAILURES:")
        for message in failures:
            print(f"  - {message}")
        return 1
    problems = compare_to_baseline(head, pathlib.Path(args.baseline))
    if problems:
        print("\nSOFT REGRESSIONS vs baseline:")
        for message in problems:
            print(f"  - {message}")
        if args.strict:
            return 1
        print("  (soft threshold: reported but not failing; use --strict to enforce)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
