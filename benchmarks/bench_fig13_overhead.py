"""Reproduce paper Fig. 13: WaterWise decision-making overhead."""

from repro.analysis.studies import fig13_overhead


def bench_fig13_overhead(run_experiment, scale):
    result = run_experiment(fig13_overhead, scale, delay_tolerance=0.5)

    rows = {row[0]: row for row in result.rows}
    assert set(rows) == {"google-borg-like", "alibaba-like"}
    for name, row in rows.items():
        mean_overhead_pct = row[4]
        # Paper: decision making is below 0.2% of the average execution time.
        # The synthetic scale is smaller, so allow a wider but still tiny bound.
        assert mean_overhead_pct < 5.0, f"{name} decision overhead too large"
    # The Alibaba-like trace has a higher invocation rate, hence larger rounds
    # and at least as much decision time per round.
    assert rows["alibaba-like"][2] >= 0.5 * rows["google-borg-like"][2]
