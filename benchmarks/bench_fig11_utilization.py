"""Reproduce paper Fig. 11: sensitivity to average cluster utilization."""

from repro.analysis.studies import fig11_utilization


def bench_fig11_utilization(run_experiment, scale):
    result = run_experiment(
        fig11_utilization, scale, utilizations=(0.05, 0.15, 0.25), delay_tolerance=0.5
    )

    waterwise_rows = [row for row in result.rows if row[2] == "waterwise"]
    assert len(waterwise_rows) == 3
    # WaterWise remains effective at every utilization level (paper Fig. 11).
    for row in waterwise_rows:
        assert row[3] > 0.0, f"no carbon savings at utilization {row[0]}"
        assert row[4] > 0.0, f"no water savings at utilization {row[0]}"
    # Lower utilization (more spare capacity) never yields fewer servers.
    servers = [row[1] for row in result.rows if row[2] == "waterwise"]
    assert servers[0] >= servers[1] >= servers[2]
