"""Reproduce paper Fig. 10: comparison with Round-Robin and Least-Load."""

from repro.analysis.experiments import fig10_loadbalancers


def bench_fig10_loadbalancers(run_experiment, scale):
    result = run_experiment(fig10_loadbalancers, scale, delay_tolerance=0.5)

    table = {row[0]: (row[1], row[2]) for row in result.rows}
    waterwise = table["waterwise"]
    # WaterWise out-saves both sustainability-unaware load balancers on both
    # metrics (the paper reports an advantage of at least 19.5% / 17.8%).
    for other in ("round-robin", "least-load"):
        assert waterwise[0] > table[other][0]
        assert waterwise[1] > table[other][1]
