"""Microbenchmark: scalar ``Simulator`` vs. vectorized ``BatchSimulator``.

Replays an Alibaba-style trace (bursty, 8.5x the Borg rate — the repo's
largest standard workload) through both engines under identical settings,
verifies that they produce identical scheduling decisions and footprints
(within 1e-9 relative), and reports throughput and speedup per policy.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_batch_engine.py              # 10k jobs
    PYTHONPATH=src python benchmarks/bench_batch_engine.py --jobs 2000  # CI smoke

Exits non-zero if the engines disagree or (unless ``--no-target``) the
vectorized engine is less than 5x faster for fast-path policies.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.cluster import BatchSimulator, Simulator
from repro.schedulers import make_scheduler
from repro.schedulers.vectorized import has_fast_path
from repro.sustainability import ElectricityMapsLikeProvider
from repro.traces.alibaba import AlibabaTraceGenerator

EQUIVALENCE_RTOL = 1e-9
SPEEDUP_TARGET = 5.0
#: Per-policy overrides of the scalar-vs-batch speedup floor.  WaterWise's
#: floor is lower *because the scalar engine got faster, not because the
#: batch engine regressed*: the scalar path now runs the same array decision
#: pipeline (vectorized slack + standard-form MILP) as the fast path, so the
#: decision time — the bulk of a WaterWise round — is identical on both
#: sides and only the engine loop differs.  Absolute batch time improved at
#: the same commit this floor was lowered (see BENCH_sweep_baseline.json).
#: Floors are calibrated at the CI scale (4000 jobs; measured 4.0x there) —
#: much smaller runs squeeze every ratio under per-round fixed costs.
SPEEDUP_TARGETS: dict[str, float] = {"waterwise": 2.0}


def build_workload(jobs: int, seed: int):
    """Alibaba-style trace sized to ≈ ``jobs`` jobs over one day, plus dataset."""
    duration_days = 1.0
    trace = AlibabaTraceGenerator(
        rate_per_hour=jobs / (duration_days * 24.0),
        duration_days=duration_days,
        seed=seed,
    ).generate()
    dataset = ElectricityMapsLikeProvider(horizon_hours=72, seed=seed)
    return trace, dataset


def verify_equivalence(scalar_result, batch_result) -> list[str]:
    """Differences between the two engines' results (empty = equivalent)."""
    problems: list[str] = []
    outcomes = scalar_result.outcomes
    if len(outcomes) != batch_result.num_jobs:
        return [f"job count {len(outcomes)} != {batch_result.num_jobs}"]

    scalar_regions = [outcome.executed_region for outcome in outcomes]
    if scalar_regions != batch_result.executed_regions:
        problems.append("executed regions differ")
    for field, scalar_values in (
        ("start", [o.start_time for o in outcomes]),
        ("finish", [o.finish_time for o in outcomes]),
        ("deferrals", [o.deferrals for o in outcomes]),
    ):
        if not np.array_equal(np.asarray(scalar_values), getattr(batch_result, field)):
            problems.append(f"{field} times differ")
    for field, scalar_values in (
        ("carbon_g", [o.carbon_g for o in outcomes]),
        ("water_l", [o.water_l for o in outcomes]),
    ):
        if not np.allclose(
            np.asarray(scalar_values), getattr(batch_result, field),
            rtol=EQUIVALENCE_RTOL, atol=0.0,
        ):
            problems.append(f"{field} differs beyond rtol={EQUIVALENCE_RTOL}")
    return problems


def bench_policy(name: str, trace, dataset, servers: int, repeats: int):
    """Time both engines for one policy; returns the report row."""

    def timed(engine_cls):
        best = np.inf
        result = None
        for _ in range(repeats):
            simulator = engine_cls(
                trace,
                make_scheduler(name),
                dataset=dataset,
                servers_per_region=servers,
            )
            started = time.perf_counter()
            result = simulator.run()
            best = min(best, time.perf_counter() - started)
        return result, best

    scalar_result, scalar_time = timed(Simulator)
    batch_result, batch_time = timed(BatchSimulator)
    problems = verify_equivalence(scalar_result, batch_result)
    return {
        "policy": name,
        "fast_path": has_fast_path(make_scheduler(name)),
        "scalar_s": scalar_time,
        "batch_s": batch_time,
        "scalar_jobs_per_s": len(trace) / scalar_time,
        "batch_jobs_per_s": len(trace) / batch_time,
        "speedup": scalar_time / batch_time,
        "problems": problems,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=10_000, help="approximate trace size")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--servers", type=int, default=200, help="servers per region")
    parser.add_argument("--repeats", type=int, default=2, help="timing repeats (best-of)")
    parser.add_argument(
        "--policies",
        default=(
            "baseline,round-robin,least-load,"
            "ecovisor-like,carbon-greedy-opt,water-greedy-opt,waterwise"
        ),
        help="comma-separated scheduler names",
    )
    parser.add_argument(
        "--no-target",
        action="store_true",
        help="report only; do not fail when the speedup target is missed",
    )
    args = parser.parse_args(argv)

    trace, dataset = build_workload(args.jobs, args.seed)
    print(f"trace: {trace.name}  jobs={len(trace)}  horizon={trace.horizon_s / 3600.0:.1f} h")
    print(f"servers/region: {args.servers}   repeats: {args.repeats} (best-of)\n")

    header = (
        f"{'policy':<16} {'path':<6} {'scalar':>9} {'batch':>9} "
        f"{'scalar j/s':>11} {'batch j/s':>11} {'speedup':>8}  equivalent"
    )
    print(header)
    print("-" * len(header))

    failed = False
    for name in [p.strip() for p in args.policies.split(",") if p.strip()]:
        row = bench_policy(name, trace, dataset, args.servers, args.repeats)
        equivalent = "yes" if not row["problems"] else "NO: " + "; ".join(row["problems"])
        print(
            f"{row['policy']:<16} {'fast' if row['fast_path'] else 'fall':<6} "
            f"{row['scalar_s']:>8.2f}s {row['batch_s']:>8.2f}s "
            f"{row['scalar_jobs_per_s']:>11.0f} {row['batch_jobs_per_s']:>11.0f} "
            f"{row['speedup']:>7.1f}x  {equivalent}"
        )
        if row["problems"]:
            failed = True
        target = SPEEDUP_TARGETS.get(name, SPEEDUP_TARGET)
        if row["fast_path"] and not args.no_target and row["speedup"] < target:
            print(
                f"  !! {row['policy']}: speedup {row['speedup']:.1f}x is below the "
                f"{target:.0f}x target"
            )
            failed = True

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
