"""Reproduce paper Fig. 1: carbon intensity and EWIF per energy source."""

from repro.analysis.experiments import fig1_energy_sources


def bench_fig01_energy_sources(run_experiment):
    result = run_experiment(fig1_energy_sources)

    sources = dict(zip(result.column("source"), zip(
        result.column("carbon_gCO2_per_kwh"), result.column("ewif_L_per_kwh")
    )))
    # Paper anchors: coal is ~62x hydro in carbon; hydro is ~11x coal in EWIF.
    assert sources["Coal"][0] / sources["Hydro"][0] > 50.0
    assert sources["Hydro"][1] / sources["Coal"][1] > 8.0
    # The central tension: the carbon-friendliest sources are not the most
    # water-friendly ones.
    assert sources["Hydro"][0] < sources["Coal"][0]
    assert sources["Hydro"][1] > sources["Coal"][1]
