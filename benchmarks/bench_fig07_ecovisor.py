"""Reproduce paper Fig. 7: comparison with an Ecovisor-like carbon-only policy."""

from repro.analysis.experiments import fig7_ecovisor


def bench_fig07_ecovisor(run_experiment, scale):
    result = run_experiment(fig7_ecovisor, scale, delay_tolerance=0.5)

    table = {(row[0], row[1]): (row[2], row[3]) for row in result.rows}
    for source in ("electricity-maps", "wri"):
        waterwise = table[(source, "waterwise")]
        ecovisor = table[(source, "ecovisor-like")]
        # WaterWise beats the home-region, carbon-only policy on both metrics
        # (the paper reports 27.6% carbon / 17.5% water advantage).
        assert waterwise[0] > ecovisor[0]
        assert waterwise[1] > ecovisor[1]
