"""Reproduce paper Table 3: communication overhead of remote execution."""

from repro.analysis.studies import table3_communication_overhead


def bench_table3_comm_overhead(run_experiment):
    result = run_experiment(table3_communication_overhead, home_region="oregon")

    destinations = result.column("destination")
    assert set(destinations) == {"zurich", "madrid", "milan", "mumbai"}
    # The overheads are small percentages of the execution footprints
    # (the paper reports fractions of a percent on its testbed; the synthetic
    # transfer-energy model is coarser, so only an order-of-magnitude bound
    # is asserted here).
    for carbon_pct, water_pct in zip(
        result.column("carbon_overhead_pct"), result.column("water_overhead_pct")
    ):
        assert 0.0 < carbon_pct < 10.0
        assert 0.0 < water_pct < 10.0
    # Transfer time grows with distance: Mumbai is the farthest destination.
    times = dict(zip(destinations, result.column("transfer_time_s")))
    assert times["mumbai"] == max(times.values())
