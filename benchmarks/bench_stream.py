"""Streaming-engine benchmark: peak RSS + wall time vs the one-shot engine.

Each case simulates a diurnal scenario sized to ``--sizes`` jobs (default
10k / 100k / 1M) twice: through the one-shot :class:`BatchSimulator`
(materialized trace, O(n) columns) and through the bounded-memory
:class:`StreamingSimulator` in aggregate mode.  Every measurement runs in a
fresh **subprocess** so ``ru_maxrss`` reports that case's true peak RSS, not
the parent's high-water mark.  One-shot cases above ``--max-oneshot-jobs``
are skipped (that is the regime the streaming engine exists for).

The results land in ``BENCH_stream.json`` and are compared against the
checked-in ``benchmarks/BENCH_stream_baseline.json`` with a *soft* threshold
(warn; fail only under ``--strict``), like the solver benchmark.  Two hard
gates back the tentpole's acceptance criteria regardless of baseline:

* every streaming case must stay under ``--rss-limit-mb`` (default 1500);
* streaming totals must match the one-shot totals (1e-9 relative) wherever
  both ran.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_stream.py --sizes 10000 100000
    PYTHONPATH=src python benchmarks/bench_stream.py --sizes 1000000 --stream-only
    # 10M-job bounded-memory tier (stream-only; one fresh subprocess so the
    # 1.5 GB RSS gate measures exactly this case):
    PYTHONPATH=src python benchmarks/bench_stream.py --sizes 10000000 \
        --stream-only --profile

``--kernel`` pins the event-kernel tier (``scalar`` / ``vector`` /
``compiled`` / default ``auto``) for every case — totals are
kernel-invariant, so an A/B between tiers is two runs of this script.
``--profile`` adds each streaming case's kernel telemetry (clean /
conveyor / replayed event counts, segmentation passes) to the report.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import resource
import subprocess
import sys
import time

#: Borg-like submission rate the cases are sized at; duration scales with
#: the requested job count.
RATE_PER_HOUR = 1400.0

#: Soft regression threshold vs the checked-in baseline.
REGRESSION_FACTOR = 1.5

#: Fault-injection tier: the region-outage chaos family (whole-region
#: outages, evict-and-requeue) at the benchmark seed.
CHAOS_SPEC = "region-outage"

_HEADLINE_HIGHER_IS_WORSE = (
    "stream_peak_rss_mb_max",
    "stream_wall_s_per_100k",
    "chaos_stream_wall_s_per_100k",
)


def _case_parameters(jobs: int) -> dict:
    # Invert the diurnal process's expected-count curve so sub-day cases
    # (which start in the night trough) still hit the requested job count.
    from repro.traces.arrival import DiurnalPoissonProcess

    process = DiurnalPoissonProcess(RATE_PER_HOUR, amplitude=0.9)
    lo, hi = 0.0, 8.0 * jobs / (RATE_PER_HOUR / 3600.0)
    for _ in range(60):
        mid = (lo + hi) / 2.0
        if process.expected_count(mid) < jobs:
            lo = mid
        else:
            hi = mid
    duration_days = hi / 86_400.0
    return {
        "scenario": "diurnal",
        "seed": 42,
        "rate_per_hour": RATE_PER_HOUR,
        "duration_days": duration_days,
        "servers_per_region": 60,
        "chunk_size": 8192,
    }


def _run_child(
    jobs: int,
    mode: str,
    policy: str,
    chaos: bool = False,
    kernel: str = "auto",
    profile: bool = False,
) -> dict:
    """One measured case in a fresh interpreter; returns its JSON report."""
    command = [
        sys.executable, os.path.abspath(__file__), "--child",
        "--child-jobs", str(jobs), "--child-mode", mode, "--policy", policy,
        "--kernel", kernel,
    ]
    if chaos:
        command.append("--child-chaos")
    if profile:
        command.append("--profile")
    env = dict(os.environ)
    src = str(pathlib.Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(command, capture_output=True, text=True, env=env)
    if result.returncode != 0:
        raise RuntimeError(
            f"{mode} case at {jobs} jobs failed:\n{result.stdout}\n{result.stderr}"
        )
    return json.loads(result.stdout.splitlines()[-1])


def _child_main(args: argparse.Namespace) -> int:
    from repro.cluster import BatchSimulator, StreamingSimulator
    from repro.schedulers import make_scheduler
    from repro.sustainability import ElectricityMapsLikeProvider
    from repro.traces.scenarios import scenario_source

    params = _case_parameters(args.child_jobs)
    source = scenario_source(
        params["scenario"],
        seed=params["seed"],
        rate_per_hour=params["rate_per_hour"],
        duration_days=params["duration_days"],
    )
    dataset = ElectricityMapsLikeProvider(
        horizon_hours=max(int(params["duration_days"] * 24) + 48, 72),
        seed=params["seed"],
    )
    scheduler = make_scheduler(args.policy)
    chaos_kwargs = (
        {"chaos": CHAOS_SPEC, "chaos_seed": params["seed"]}
        if args.child_chaos
        else {}
    )
    started = time.perf_counter()
    if args.child_mode == "stream":
        result = StreamingSimulator(
            source,
            scheduler,
            dataset=dataset,
            servers_per_region=params["servers_per_region"],
            chunk_size=params["chunk_size"],
            collect="aggregate",
            kernel=args.kernel,
            **chaos_kwargs,
        ).run()
    else:
        trace = source.materialize()
        result = BatchSimulator(
            trace,
            scheduler,
            dataset=dataset,
            servers_per_region=params["servers_per_region"],
            kernel=args.kernel,
            **chaos_kwargs,
        ).run()
    wall_s = time.perf_counter() - started
    peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss  # kB on Linux
    report = {
        "mode": args.child_mode,
        "chaos": bool(args.child_chaos),
        "requested_jobs": args.child_jobs,
        "jobs": result.num_jobs,
        "rounds": len(result.round_times_s),
        "wall_s": round(wall_s, 3),
        "peak_rss_mb": round(peak_kb / 1024.0, 1),
        "carbon_kg": result.total_carbon_kg,
        "water_m3": result.total_water_m3,
        "mean_service_ratio": result.mean_service_ratio,
        "evictions": int(getattr(result, "total_evictions", 0)),
    }
    if args.profile:
        report["kernel_stats"] = getattr(result, "kernel_stats", None)
    print(json.dumps(report))
    return 0


def compare_to_baseline(head: dict, baseline_path: pathlib.Path) -> list[str]:
    """Soft-threshold comparison; returns the list of regression messages."""
    if not baseline_path.exists():
        return []
    baseline = json.loads(baseline_path.read_text()).get("headline", {})
    problems = []
    for key in _HEADLINE_HIGHER_IS_WORSE:
        base = baseline.get(key)
        now = head.get(key)
        if base is None or now is None or base <= 0:
            continue
        if now > REGRESSION_FACTOR * base:
            problems.append(
                f"{key}: {now:.3f} vs baseline {base:.3f} "
                f"(> {REGRESSION_FACTOR:.1f}x threshold)"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="+",
                        default=[10_000, 100_000, 1_000_000])
    parser.add_argument("--policy", default="baseline",
                        help="scheduling policy to drive both engines with")
    parser.add_argument("--kernel", default="auto",
                        choices=["auto", "scalar", "vector", "compiled"],
                        help="event-kernel tier for every case (totals are "
                             "kernel-invariant; A/B tiers with two runs)")
    parser.add_argument("--profile", action="store_true",
                        help="record each case's kernel telemetry (clean/"
                             "conveyor/replayed event counts) in the report")
    parser.add_argument("--max-oneshot-jobs", type=int, default=100_000,
                        help="skip the one-shot engine above this size")
    parser.add_argument("--stream-only", action="store_true",
                        help="measure only the streaming engine")
    parser.add_argument("--rss-limit-mb", type=float, default=1500.0,
                        help="hard bound every streaming case must stay under")
    parser.add_argument("--chaos-sizes", type=int, nargs="*", default=[],
                        help="additionally measure these sizes under the "
                             f"{CHAOS_SPEC!r} fault-injection timeline "
                             "(stream + one-shot; same RSS/totals gates)")
    parser.add_argument("--output", default="BENCH_stream.json")
    parser.add_argument(
        "--baseline",
        default=str(pathlib.Path(__file__).parent / "BENCH_stream_baseline.json"),
        help="checked-in baseline for the soft regression check",
    )
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero on a soft-threshold regression")
    # Internal: a single measured case in a fresh interpreter.
    parser.add_argument("--child", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument("--child-jobs", type=int, help=argparse.SUPPRESS)
    parser.add_argument("--child-mode", choices=["stream", "oneshot"],
                        help=argparse.SUPPRESS)
    parser.add_argument("--child-chaos", action="store_true", help=argparse.SUPPRESS)
    args = parser.parse_args(argv)
    if args.child:
        return _child_main(args)

    cases = []
    failures = []

    def _print_profile(case: dict) -> None:
        stats = case.get("kernel_stats")
        if not stats:
            return
        print(
            f"        kernel={stats.get('kernel', '?')}: "
            f"{stats.get('clean_events', 0):,} clean + "
            f"{stats.get('conveyor_events', 0):,} conveyor + "
            f"{stats.get('compiled_events', 0):,} compiled + "
            f"{stats.get('replayed_events', 0):,} replayed events, "
            f"{stats.get('prefix_segments', 0):,} prefix segments, "
            f"{stats.get('windows', 0):,} windows"
        )

    for jobs in args.sizes:
        stream = _run_child(jobs, "stream", args.policy,
                            kernel=args.kernel, profile=args.profile)
        cases.append(stream)
        print(
            f"stream  {jobs:>9,} jobs: {stream['wall_s']:8.1f} s, "
            f"peak RSS {stream['peak_rss_mb']:8.1f} MB "
            f"({stream['jobs']} simulated, {stream['rounds']} rounds)"
        )
        _print_profile(stream)
        if stream["peak_rss_mb"] > args.rss_limit_mb:
            failures.append(
                f"streaming at {jobs} jobs used {stream['peak_rss_mb']:.1f} MB "
                f"(> hard limit {args.rss_limit_mb:.0f} MB)"
            )
        if args.stream_only or jobs > args.max_oneshot_jobs:
            continue
        oneshot = _run_child(jobs, "oneshot", args.policy,
                             kernel=args.kernel, profile=args.profile)
        cases.append(oneshot)
        print(
            f"oneshot {jobs:>9,} jobs: {oneshot['wall_s']:8.1f} s, "
            f"peak RSS {oneshot['peak_rss_mb']:8.1f} MB"
        )
        for key in ("carbon_kg", "water_m3", "mean_service_ratio"):
            if abs(stream[key] - oneshot[key]) > 1e-9 * max(1.0, abs(oneshot[key])):
                failures.append(
                    f"{key} diverges at {jobs} jobs: "
                    f"stream {stream[key]!r} vs oneshot {oneshot[key]!r}"
                )

    for jobs in args.chaos_sizes:
        stream = _run_child(jobs, "stream", args.policy, chaos=True,
                            kernel=args.kernel, profile=args.profile)
        cases.append(stream)
        print(
            f"chaos   {jobs:>9,} jobs: {stream['wall_s']:8.1f} s, "
            f"peak RSS {stream['peak_rss_mb']:8.1f} MB "
            f"({stream['jobs']} simulated, {stream['evictions']} evictions)"
        )
        _print_profile(stream)
        if stream["peak_rss_mb"] > args.rss_limit_mb:
            failures.append(
                f"chaotic streaming at {jobs} jobs used {stream['peak_rss_mb']:.1f} MB "
                f"(> hard limit {args.rss_limit_mb:.0f} MB)"
            )
        if args.stream_only or jobs > args.max_oneshot_jobs:
            continue
        oneshot = _run_child(jobs, "oneshot", args.policy, chaos=True,
                             kernel=args.kernel, profile=args.profile)
        cases.append(oneshot)
        print(
            f"chaos-1s{jobs:>9,} jobs: {oneshot['wall_s']:8.1f} s, "
            f"peak RSS {oneshot['peak_rss_mb']:8.1f} MB"
        )
        # Under chaos the engines must *still* agree — evictions included.
        if stream["evictions"] != oneshot["evictions"]:
            failures.append(
                f"evictions diverge at {jobs} chaotic jobs: "
                f"stream {stream['evictions']} vs oneshot {oneshot['evictions']}"
            )
        for key in ("carbon_kg", "water_m3", "mean_service_ratio"):
            if abs(stream[key] - oneshot[key]) > 1e-9 * max(1.0, abs(oneshot[key])):
                failures.append(
                    f"{key} diverges at {jobs} chaotic jobs: "
                    f"stream {stream[key]!r} vs oneshot {oneshot[key]!r}"
                )

    stream_cases = [
        case for case in cases
        if case["mode"] == "stream" and not case.get("chaos")
    ]
    chaos_stream_cases = [
        case for case in cases
        if case["mode"] == "stream" and case.get("chaos")
    ]
    head = {
        "stream_peak_rss_mb_max": max(c["peak_rss_mb"] for c in stream_cases),
        "stream_wall_s_per_100k": max(
            c["wall_s"] * 100_000.0 / max(c["jobs"], 1) for c in stream_cases
        ),
    }
    if chaos_stream_cases:
        head["chaos_stream_wall_s_per_100k"] = max(
            c["wall_s"] * 100_000.0 / max(c["jobs"], 1) for c in chaos_stream_cases
        )
    report = {
        "benchmark": "stream_engine",
        "policy": args.policy,
        "kernel": args.kernel,
        "rate_per_hour": RATE_PER_HOUR,
        "rss_limit_mb": args.rss_limit_mb,
        "headline": {key: round(value, 3) for key, value in head.items()},
        "cases": cases,
    }
    pathlib.Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    print("headline:", json.dumps(report["headline"]))

    if failures:
        print("\nHARD FAILURES:")
        for message in failures:
            print(f"  - {message}")
        return 1
    problems = compare_to_baseline(head, pathlib.Path(args.baseline))
    if problems:
        print("\nSOFT REGRESSIONS vs baseline:")
        for message in problems:
            print(f"  - {message}")
        if args.strict:
            return 1
        print("  (soft threshold: reported but not failing; use --strict to enforce)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
