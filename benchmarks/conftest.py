"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (see
DESIGN.md §4 for the full index) and prints the reproduced table.  Because
these are trace-driven simulations rather than micro-kernels, each experiment
is executed exactly once per benchmark run (``benchmark.pedantic`` with one
round); the recorded time is the end-to-end cost of reproducing that figure.

The experiment scale is controlled with the ``REPRO_BENCH_SCALE`` environment
variable:

``small`` (default)
    A few hundred jobs over a quarter day — every figure reproduces in
    seconds and the whole harness finishes in minutes.
``medium``
    Roughly 4× more jobs over half a day.
``paper``
    The paper's full setting (10 days, ≈ 230k jobs, 960 jobs/hour).  Expect
    hours of runtime; intended for a one-off full-scale reproduction.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.sweep import ExperimentScale

_SCALES = {
    "small": ExperimentScale(rate_per_hour=50.0, duration_days=0.25, seed=42),
    "medium": ExperimentScale(rate_per_hour=100.0, duration_days=0.5, seed=42),
    "paper": ExperimentScale(rate_per_hour=960.0, duration_days=10.0, seed=42),
}


def _selected_scale() -> ExperimentScale:
    name = os.environ.get("REPRO_BENCH_SCALE", "small").strip().lower()
    if name not in _SCALES:
        raise ValueError(
            f"REPRO_BENCH_SCALE must be one of {sorted(_SCALES)}, got {name!r}"
        )
    return _SCALES[name]


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    """The experiment scale shared by every benchmark."""
    return _selected_scale()


_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture
def run_experiment(benchmark):
    """Run an experiment function once under the benchmark timer and report it.

    The reproduced table is printed (visible with ``pytest -s``) and also
    written to ``benchmarks/results/<experiment>.txt`` so the output survives
    pytest's output capturing.  Returns the experiment's result object so the
    calling benchmark can make shape assertions against the paper's
    qualitative findings.
    """

    def _run(func, *args, **kwargs):
        result = benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
        reports = result if isinstance(result, tuple) else (result,)
        os.makedirs(_RESULTS_DIR, exist_ok=True)
        for report in reports:
            print()
            print(report.report())
            path = os.path.join(_RESULTS_DIR, f"{report.experiment}.txt")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(report.report() + "\n")
        return result

    return _run
