"""Reproduce paper Fig. 6: robustness to the WRI-style water-intensity data."""

from repro.analysis.experiments import fig6_wri_data


def bench_fig06_wri_data(run_experiment, scale):
    result = run_experiment(fig6_wri_data, scale, tolerances=(0.25, 0.50, 1.00))

    waterwise_rows = [row for row in result.rows if row[1] == "waterwise"]
    assert waterwise_rows, "no WaterWise rows produced"
    # The paper reports >18% carbon and >11% water savings with WRI data; at
    # benchmark scale we only require clearly positive savings on both axes.
    for row in waterwise_rows:
        assert row[2] > 5.0, f"carbon savings too small with WRI data: {row}"
        assert row[3] > 2.0, f"water savings too small with WRI data: {row}"
