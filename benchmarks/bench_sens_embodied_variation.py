"""Reproduce the Sec. 6 sensitivity study: ±10% embodied carbon / water intensity."""

from repro.analysis.studies import sensitivity_embodied_and_water_variation


def bench_sens_embodied_variation(run_experiment, scale):
    result = run_experiment(
        sensitivity_embodied_and_water_variation, scale, variation=0.10, delay_tolerance=0.5
    )

    savings = {row[0]: (row[1], row[2]) for row in result.rows}
    assert "reference" in savings
    # WaterWise keeps providing benefits under every ±10% perturbation
    # (paper: 18-28% carbon and 18-26% water savings retained).
    for scenario, (carbon, water) in savings.items():
        assert carbon > 0.0, f"carbon savings lost under {scenario}"
        assert water > 0.0, f"water savings lost under {scenario}"
