"""Micro-benchmarks: cost of one WaterWise scheduling round and of the MILP solvers.

These are genuine timing benchmarks (multiple rounds) rather than one-shot
experiment reproductions: they quantify the decision-making overhead the
paper's Fig. 13 argues is negligible, and compare the native simplex/branch &
bound solver against the SciPy/HiGHS backend on the placement MILP.
"""

import numpy as np
import pytest

from repro.cluster import FootprintCalculator
from repro.cluster.interface import SchedulingContext
from repro.core import DecisionController, WaterWiseConfig, build_placement_problem
from repro.milp import solve
from repro.regions import TransferLatencyModel, default_regions
from repro.sustainability import ElectricityMapsLikeProvider
from repro.traces import BorgTraceGenerator


@pytest.fixture(scope="module")
def context_and_jobs():
    dataset = ElectricityMapsLikeProvider(horizon_hours=72, seed=3)
    regions = tuple(default_regions())
    trace = BorgTraceGenerator(rate_per_hour=400.0, duration_days=0.05, seed=3).generate()
    jobs = list(trace)[:40]
    context = SchedulingContext(
        now=1800.0,
        regions=regions,
        capacity={region.key: 20 for region in regions},
        dataset=dataset,
        latency=TransferLatencyModel(regions),
        footprints=FootprintCalculator(dataset),
        delay_tolerance=0.5,
        scheduling_interval_s=300.0,
        job_wait_times={job.job_id: 0.0 for job in jobs},
    )
    return context, jobs


def bench_waterwise_round_40_jobs(benchmark, context_and_jobs):
    """One full decision-controller round for a 40-job batch (paper Fig. 13 scale)."""
    context, jobs = context_and_jobs
    controller = DecisionController(WaterWiseConfig())

    result = benchmark(lambda: controller.decide(jobs, context))
    assert len(result.assignments) == len(jobs)


def bench_placement_milp_scipy_backend(benchmark, context_and_jobs):
    """Solving the placement MILP with the SciPy/HiGHS backend."""
    context, jobs = context_and_jobs
    model = build_placement_problem(jobs, context, WaterWiseConfig())

    result = benchmark(lambda: solve(model.problem, solver="scipy"))
    assert result.status.is_success


def bench_placement_milp_native_backend(benchmark, context_and_jobs):
    """Solving the same placement MILP with the from-scratch simplex + B&B."""
    context, jobs = context_and_jobs
    model = build_placement_problem(jobs[:12], context, WaterWiseConfig())

    result = benchmark(lambda: solve(model.problem, solver="native"))
    assert result.status.is_success


def bench_footprint_matrices_vectorized(benchmark, context_and_jobs):
    """Vectorized carbon/water footprint matrices for a 40-job batch."""
    context, jobs = context_and_jobs

    carbon, water = benchmark(
        lambda: context.footprints.footprint_matrices(jobs, context.region_keys, context.now)
    )
    assert carbon.shape == (len(jobs), 5)
    assert np.all(water > 0.0)
