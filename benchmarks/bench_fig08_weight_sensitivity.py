"""Reproduce paper Fig. 8: sensitivity to the carbon/water objective weights."""

from repro.analysis.experiments import fig8_weight_sensitivity


def bench_fig08_weight_sensitivity(run_experiment, scale):
    result = run_experiment(
        fig8_weight_sensitivity, scale, lambda_values=(0.3, 0.5, 0.7), delay_tolerance=0.5
    )

    carbon = dict(zip(result.column("lambda_co2"), result.column("carbon_savings_pct")))
    water = dict(zip(result.column("lambda_co2"), result.column("water_savings_pct")))

    # All configurations stay effective on both metrics (paper: 25-31% carbon,
    # 13-21% water across the weight range).
    for value in (0.3, 0.5, 0.7):
        assert carbon[value] > 0.0
        assert water[value] > 0.0
    # Increasing the carbon weight does not hurt carbon savings, and
    # decreasing it does not hurt water savings (allowing small noise).
    assert carbon[0.7] >= carbon[0.3] - 1.5
    assert water[0.3] >= water[0.7] - 1.5
