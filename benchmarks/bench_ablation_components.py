"""Ablation bench: WaterWise without its history / slack / soft-constraint pieces.

Not a paper figure; DESIGN.md lists these as the design choices worth
isolating.  The full configuration must remain competitive with every ablated
variant on the combined objective.
"""

from repro.analysis.studies import ablation_components


def bench_ablation_components(run_experiment, scale):
    result = run_experiment(ablation_components, scale, delay_tolerance=0.5)

    rows = {row[0]: row for row in result.rows}
    assert set(rows) == {
        "waterwise-full",
        "waterwise-no-history",
        "waterwise-no-slack",
        "waterwise-no-soft",
    }
    full = rows["waterwise-full"]
    # The full configuration saves on both metrics even at the stressed
    # utilization, and keeps violations moderate.
    assert full[1] > 0.0 and full[2] > 0.0
    assert full[4] < 25.0
    # No ablated variant dominates the full configuration on the equally
    # weighted combined objective by a large margin.
    full_combined = full[1] + full[2]
    for name, row in rows.items():
        assert row[1] + row[2] <= full_combined + 5.0, f"{name} unexpectedly dominates"
