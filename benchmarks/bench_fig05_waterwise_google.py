"""Reproduce paper Fig. 5: WaterWise vs. greedy oracles on the Borg-like trace."""

from repro.analysis.experiments import fig5_waterwise_google


def _by_policy(result):
    table = {}
    for tolerance, policy, carbon, water, ratio, violations in result.rows:
        table.setdefault(policy, {})[tolerance] = (carbon, water, ratio, violations)
    return table


def bench_fig05_waterwise_google(run_experiment, scale):
    result = run_experiment(fig5_waterwise_google, scale, tolerances=(0.25, 0.50, 0.75, 1.00))
    table = _by_policy(result)

    for tolerance in ("25%", "50%", "75%", "100%"):
        waterwise = table["waterwise"][tolerance]
        carbon_opt = table["carbon-greedy-opt"][tolerance]
        water_opt = table["water-greedy-opt"][tolerance]
        # WaterWise saves on both footprints relative to the baseline.
        assert waterwise[0] > 5.0, f"carbon savings too small at {tolerance}"
        assert waterwise[1] > 2.0, f"water savings too small at {tolerance}"
        # WaterWise sits between the two single-objective oracles.
        assert waterwise[0] <= carbon_opt[0] + 1.0
        assert waterwise[0] >= water_opt[0] - 1.0
        assert waterwise[1] <= water_opt[1] + 1.0
        assert waterwise[1] >= carbon_opt[1] - 1.0

    # Higher delay tolerance does not reduce WaterWise's savings.
    assert table["waterwise"]["100%"][0] >= table["waterwise"]["25%"][0] - 1.0
    assert table["waterwise"]["100%"][1] >= table["waterwise"]["25%"][1] - 1.0
