"""Reproduce paper Fig. 3: greedy-optimal opportunity study and job distribution."""

from repro.analysis.experiments import fig3_greedy_optimal


def bench_fig03_greedy_optimal(run_experiment, scale):
    savings, distribution = run_experiment(
        fig3_greedy_optimal, scale, tolerances=(0.10, 0.50, 1.00)
    )

    rows = {
        (row[0], row[1]): (row[2], row[3]) for row in savings.rows
    }  # (tolerance, policy) -> (carbon, water)

    for tolerance in ("10%", "50%", "100%"):
        carbon_opt = rows[(tolerance, "carbon-greedy-opt")]
        water_opt = rows[(tolerance, "water-greedy-opt")]
        # Each oracle wins its own objective...
        assert carbon_opt[0] > water_opt[0]
        assert water_opt[1] > carbon_opt[1]
        # ...and both save something relative to the unaware baseline.
        assert carbon_opt[0] > 0.0
        assert water_opt[1] > 0.0

    # Fig. 3(b): no single region receives all jobs for either oracle.
    shares = {}
    for policy, region, pct in distribution.rows:
        shares.setdefault(policy, []).append(pct)
    for policy, values in shares.items():
        assert max(values) < 95.0, f"{policy} concentrated all jobs in one region"
