"""Name-based scheduler construction (used by benchmarks and examples)."""

from __future__ import annotations

from collections.abc import Callable

from repro.cluster.interface import Scheduler
from repro.schedulers.baseline import BaselineScheduler
from repro.schedulers.ecovisor import EcovisorLikeScheduler
from repro.schedulers.greedy_optimal import (
    CarbonGreedyOptimalScheduler,
    WaterGreedyOptimalScheduler,
)
from repro.schedulers.least_load import LeastLoadScheduler
from repro.schedulers.round_robin import RoundRobinScheduler

__all__ = ["available_schedulers", "make_scheduler", "register_scheduler"]

_FACTORIES: dict[str, Callable[..., Scheduler]] = {
    "baseline": BaselineScheduler,
    "round-robin": RoundRobinScheduler,
    "least-load": LeastLoadScheduler,
    "carbon-greedy-opt": CarbonGreedyOptimalScheduler,
    "water-greedy-opt": WaterGreedyOptimalScheduler,
    "ecovisor-like": EcovisorLikeScheduler,
}


def register_scheduler(name: str, factory: Callable[..., Scheduler]) -> None:
    """Register an additional scheduler factory under ``name``.

    The WaterWise core registers itself here on import so that
    ``make_scheduler("waterwise")`` works without this module importing
    :mod:`repro.core` (which would create an import cycle).
    """
    key = name.strip().lower()
    if not key:
        raise ValueError("scheduler name must be non-empty")
    _FACTORIES[key] = factory


def _ensure_core_registered() -> None:
    """Import :mod:`repro.core` so the WaterWise factories are registered.

    The core package registers its schedulers on import (avoiding an import
    cycle between this module and :mod:`repro.core`); callers enumerating or
    constructing policies must see the full registry regardless of what they
    imported first.
    """
    import repro.core  # noqa: F401  (side-effect import)


def available_schedulers() -> tuple[str, ...]:
    """Names accepted by :func:`make_scheduler`."""
    _ensure_core_registered()
    return tuple(sorted(_FACTORIES))


def make_scheduler(name: str, **kwargs) -> Scheduler:
    """Instantiate a scheduler by name (kwargs forwarded to its constructor)."""
    key = name.strip().lower()
    if key not in _FACTORIES:
        _ensure_core_registered()
    try:
        factory = _FACTORIES[key]
    except KeyError:
        raise KeyError(
            f"unknown scheduler {name!r}; available: {list(available_schedulers())}"
        ) from None
    return factory(**kwargs)
