"""Registry-dispatched vectorized fast paths for scheduling policies.

The batch engine (:class:`~repro.cluster.simulator.BatchSimulator`) asks this
registry for an array-world implementation of the policy under test.  A fast
path receives a :class:`~repro.cluster.batch.BatchSchedulingContext` and
returns one region code per batch job (``DEFER`` postpones the job to the
next round) — no per-job ``Job`` objects, no assignment dictionaries.

Policies without a registered fast path automatically fall back to their
scalar :meth:`~repro.cluster.interface.Scheduler.schedule` method: the batch
engine materializes the round's ``Job`` objects, builds the classic
:class:`~repro.cluster.interface.SchedulingContext` and validates the decision
exactly like the scalar simulator, so *any* custom policy runs unchanged
(just without the fast-path speedup for its decision step).

Every registered fast path must be decision-equivalent to the scalar
``schedule`` implementation of its policy — the equivalence test suite
(``tests/cluster/test_batch_engine.py``) enforces this for the built-ins.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.cluster.batch import BatchSchedulingContext
from repro.cluster.interface import Scheduler
from repro.schedulers.baseline import BaselineScheduler
from repro.schedulers.least_load import LeastLoadScheduler
from repro.schedulers.round_robin import RoundRobinScheduler

__all__ = [
    "FastPath",
    "register_fast_path",
    "unregister_fast_path",
    "fast_path_for",
    "has_fast_path",
]

#: A vectorized policy implementation: ``(scheduler, context) -> region codes``
#: (one ``int64`` per batch job, ``DEFER`` = postpone to the next round).
FastPath = Callable[[Scheduler, BatchSchedulingContext], np.ndarray]

_FAST_PATHS: dict[type, FastPath] = {}


def register_fast_path(scheduler_type: type, fast_path: FastPath) -> None:
    """Register ``fast_path`` as the vectorized implementation of a policy class.

    Dispatch follows the method-resolution order, so registering for a base
    class covers subclasses unless they register their own implementation.
    """
    if not isinstance(scheduler_type, type) or not issubclass(scheduler_type, Scheduler):
        raise TypeError("scheduler_type must be a Scheduler subclass")
    _FAST_PATHS[scheduler_type] = fast_path


def unregister_fast_path(scheduler_type: type) -> None:
    """Remove a previously registered fast path (no-op if absent)."""
    _FAST_PATHS.pop(scheduler_type, None)


def fast_path_for(scheduler: Scheduler) -> FastPath | None:
    """The vectorized implementation for ``scheduler``, or ``None`` (→ fallback).

    An inherited registration only applies while the subclass keeps the
    ancestor's ``schedule`` method: a subclass that overrides ``schedule``
    without registering its own fast path has changed the decision logic the
    ancestor's fast path mirrors, so it must fall back to the scalar path —
    silently reusing the parent's vectorized decisions would break the
    scalar/batch equivalence guarantee.
    """
    scheduler_type = type(scheduler)
    for cls in scheduler_type.__mro__:
        fast_path = _FAST_PATHS.get(cls)
        if fast_path is None:
            continue
        if cls is scheduler_type or scheduler_type.schedule is cls.schedule:
            return fast_path
        return None
    return None


def has_fast_path(scheduler: Scheduler) -> bool:
    """Whether ``scheduler`` dispatches to a vectorized fast path."""
    return fast_path_for(scheduler) is not None


# -- built-in fast paths -------------------------------------------------------------


def _baseline_fast_path(
    scheduler: BaselineScheduler, context: BatchSchedulingContext
) -> np.ndarray:
    """Home region for every job (home codes are pre-validated by JobArrays)."""
    return context.jobs.home_idx[context.batch]


def _round_robin_fast_path(
    scheduler: RoundRobinScheduler, context: BatchSchedulingContext
) -> np.ndarray:
    """Circular assignment; advances the scheduler's persistent cursor."""
    n_regions = len(context.region_keys)
    if n_regions == 0:
        raise ValueError("round-robin needs at least one region")
    count = context.batch_size
    choice = (scheduler._cursor + np.arange(count, dtype=np.int64)) % n_regions
    scheduler._cursor += count
    return choice


def _least_load_fast_path(
    scheduler: LeastLoadScheduler, context: BatchSchedulingContext
) -> np.ndarray:
    """Each job to the emptiest region, updating the view as the batch lands.

    The argmax loop is sequential by definition (job *i+1* sees job *i*'s
    placement), but it runs over a dense float vector; ``np.argmax`` breaks
    ties on the first maximum, matching the scalar implementation's
    smallest-region-index tie-break.
    """
    if not context.region_keys:
        raise ValueError("least-load needs at least one region")
    remaining = context.capacity.astype(float).copy()
    servers = context.jobs.servers[context.batch]
    choice = np.empty(context.batch_size, dtype=np.int64)
    for i in range(context.batch_size):
        target = int(np.argmax(remaining))
        choice[i] = target
        remaining[target] -= servers[i]
    return choice


register_fast_path(BaselineScheduler, _baseline_fast_path)
register_fast_path(RoundRobinScheduler, _round_robin_fast_path)
register_fast_path(LeastLoadScheduler, _least_load_fast_path)
