"""Registry-dispatched vectorized fast paths for scheduling policies.

The batch engine (:class:`~repro.cluster.simulator.BatchSimulator`) asks this
registry for an array-world implementation of the policy under test.  A fast
path receives a :class:`~repro.cluster.batch.BatchSchedulingContext` and
returns one region code per batch job (``DEFER`` postpones the job to the
next round) — no per-job ``Job`` objects, no assignment dictionaries.  A fast
path may instead return a ``(choice, commit_order)`` tuple, where
``commit_order`` lists the batch positions of the *assigned* jobs in the
order their placements must be committed; this matters when the mirrored
scalar policy hands out assignments in an order different from the batch
order (e.g. WaterWise's slack manager ranks jobs by urgency), because commit
order decides FIFO tie-breaking in saturated queues.

Policies without a registered fast path automatically fall back to their
scalar :meth:`~repro.cluster.interface.Scheduler.schedule` method: the batch
engine materializes the round's ``Job`` objects, builds the classic
:class:`~repro.cluster.interface.SchedulingContext` and validates the decision
exactly like the scalar simulator, so *any* custom policy runs unchanged
(just without the fast-path speedup for its decision step).

Every registered fast path must be decision-equivalent to the scalar
``schedule`` implementation of its policy — the registry-wide differential
harness (``tests/integration/test_differential.py``) enforces this for every
scheduler in :func:`repro.schedulers.registry.available_schedulers` across
every scenario family.
"""

from __future__ import annotations

import weakref
from collections.abc import Callable

import numpy as np

from repro.cluster.batch import DEFER, BatchSchedulingContext
from repro.cluster.interface import Scheduler
from repro.regions.latency import TransferLatencyModel
from repro.schedulers.baseline import BaselineScheduler
from repro.schedulers.ecovisor import EcovisorLikeScheduler, trailing_carbon_average
from repro.schedulers.greedy_optimal import GreedyOptimalScheduler
from repro.schedulers.least_load import LeastLoadScheduler
from repro.schedulers.round_robin import RoundRobinScheduler

__all__ = [
    "FastPath",
    "register_fast_path",
    "unregister_fast_path",
    "fast_path_for",
    "has_fast_path",
    "batch_transfer_matrix",
]

#: A vectorized policy implementation: ``(scheduler, context) -> region codes``
#: (one ``int64`` per batch job, ``DEFER`` = postpone to the next round), or
#: ``(region codes, commit_order)`` when commit order differs from batch order.
FastPath = Callable[[Scheduler, BatchSchedulingContext], np.ndarray]

#: Registered fast paths: scheduler class -> (fast path, exact-match only).
_FAST_PATHS: dict[type, tuple[FastPath, bool]] = {}


def register_fast_path(
    scheduler_type: type, fast_path: FastPath, exact: bool = False
) -> None:
    """Register ``fast_path`` as the vectorized implementation of a policy class.

    Dispatch follows the method-resolution order, so registering for a base
    class covers subclasses unless they register their own implementation.

    ``exact=True`` restricts the registration to the class itself: subclasses
    never inherit it and always fall back to the scalar path.  Use it for
    policies whose decisions flow through overridable hooks *other than*
    ``schedule`` (e.g. WaterWise's ``_extra_cost``) — the MRO guard below only
    detects overridden ``schedule`` methods, so a template-method subclass
    would otherwise silently inherit a fast path that mirrors the wrong
    decision logic.
    """
    if not isinstance(scheduler_type, type) or not issubclass(scheduler_type, Scheduler):
        raise TypeError("scheduler_type must be a Scheduler subclass")
    _FAST_PATHS[scheduler_type] = (fast_path, bool(exact))


def unregister_fast_path(scheduler_type: type) -> None:
    """Remove a previously registered fast path (no-op if absent)."""
    _FAST_PATHS.pop(scheduler_type, None)


def fast_path_for(scheduler: Scheduler) -> FastPath | None:
    """The vectorized implementation for ``scheduler``, or ``None`` (→ fallback).

    Resolution walks the MRO and stops at the *first* class with a
    registration; an explicit ``None`` fallback — never a more distant
    ancestor's fast path — is the result whenever that registration does not
    apply:

    * the registration is ``exact`` and ``scheduler`` is a subclass, or
    * the subclass overrides ``schedule`` without registering its own fast
      path — it has changed the decision logic the ancestor's fast path
      mirrors, so silently reusing the ancestor's vectorized decisions would
      break the scalar/batch equivalence guarantee.
    """
    scheduler_type = type(scheduler)
    for cls in scheduler_type.__mro__:
        entry = _FAST_PATHS.get(cls)
        if entry is None:
            continue
        fast_path, exact = entry
        if cls is scheduler_type:
            return fast_path
        if exact:
            return None
        if scheduler_type.schedule is cls.schedule:
            return fast_path
        return None
    return None


def has_fast_path(scheduler: Scheduler) -> bool:
    """Whether ``scheduler`` dispatches to a vectorized fast path."""
    return fast_path_for(scheduler) is not None


# -- shared helpers ------------------------------------------------------------------

#: Per-latency-model cache of propagation matrices, keyed by region order.
#: The matrix is time-invariant (distances and per-km rates are fixed at
#: model construction), but fast paths run once per scheduling round — without
#: the cache every round would redo K² Python ``transfer_time`` calls.
_PROPAGATION_CACHE: "weakref.WeakKeyDictionary[TransferLatencyModel, dict]" = (
    weakref.WeakKeyDictionary()
)


def _propagation_for(latency: TransferLatencyModel, keys: tuple[str, ...]) -> np.ndarray:
    per_model = _PROPAGATION_CACHE.get(latency)
    if per_model is None:
        per_model = {}
        _PROPAGATION_CACHE[latency] = per_model
    matrix = per_model.get(keys)
    if matrix is None:
        matrix = latency.propagation_seconds(keys)
        per_model[keys] = matrix
    return matrix


def batch_transfer_matrix(
    context: BatchSchedulingContext, batch: np.ndarray | None = None
) -> np.ndarray:
    """Per-(job, region) transfer latencies for ``batch`` (default: the round's).

    Mirrors ``context.transfer_time(job, key)`` of the scalar world exactly:
    for the standard :class:`~repro.regions.latency.TransferLatencyModel` the
    matrix is assembled from the per-pair propagation term plus the per-job
    serialization term (their sum reproduces ``transfer_time`` bit-for-bit,
    with same-region transfers pinned to ``0.0``); latency subclasses and
    duck-typed models get a per-job ``transfer_time`` call instead.
    """
    jobs = context.jobs
    if batch is None:
        batch = context.batch
    keys = context.region_keys
    latency = context.latency
    home = jobs.home_idx[batch]
    package = jobs.package_gb[batch]
    m = len(batch)
    if type(latency) is TransferLatencyModel:
        propagation = _propagation_for(latency, tuple(keys))
        serialization = package * 8.0 / latency.bandwidth_gbps
        transfer = serialization[:, None] + propagation[home]
        transfer[np.arange(m), home] = 0.0
        return transfer
    transfer = np.empty((m, len(keys)))
    for i in range(m):
        source = keys[home[i]]
        package_gb = float(package[i])
        for j, destination in enumerate(keys):
            transfer[i, j] = latency.transfer_time(source, destination, package_gb)
    return transfer


# -- built-in fast paths -------------------------------------------------------------


def _baseline_fast_path(
    scheduler: BaselineScheduler, context: BatchSchedulingContext
) -> np.ndarray:
    """Home region for every job (home codes are pre-validated by JobArrays)."""
    return context.jobs.home_idx[context.batch]


def _round_robin_fast_path(
    scheduler: RoundRobinScheduler, context: BatchSchedulingContext
) -> np.ndarray:
    """Circular assignment; advances the scheduler's persistent cursor."""
    n_regions = len(context.region_keys)
    if n_regions == 0:
        raise ValueError("round-robin needs at least one region")
    count = context.batch_size
    choice = (scheduler._cursor + np.arange(count, dtype=np.int64)) % n_regions
    scheduler._cursor += count
    return choice


def _least_load_fast_path(
    scheduler: LeastLoadScheduler, context: BatchSchedulingContext
) -> np.ndarray:
    """Each job to the emptiest region, updating the view as the batch lands.

    The argmax loop is sequential by definition (job *i+1* sees job *i*'s
    placement), but it runs over a dense float vector; ``np.argmax`` breaks
    ties on the first maximum, matching the scalar implementation's
    smallest-region-index tie-break.
    """
    if not context.region_keys:
        raise ValueError("least-load needs at least one region")
    remaining = context.capacity.astype(float).copy()
    servers = context.jobs.servers[context.batch]
    choice = np.empty(context.batch_size, dtype=np.int64)
    for i in range(context.batch_size):
        target = int(np.argmax(remaining))
        choice[i] = target
        remaining[target] -= servers[i]
    return choice


def _ecovisor_fast_path(
    scheduler: EcovisorLikeScheduler, context: BatchSchedulingContext
) -> np.ndarray:
    """Home placement with temporal shifting, one signal evaluation per region.

    The scalar policy re-derives the home region's carbon signal per job;
    here the current intensity and the trailing average are computed once per
    region (via the same :func:`~repro.schedulers.ecovisor.trailing_carbon_average`
    the scalar path uses) and the defer/release decision is a single
    vectorized comparison over the batch.
    """
    keys = context.region_keys
    now = context.now
    high = np.empty(len(keys), dtype=bool)
    for idx, key in enumerate(keys):
        series = context.dataset.series_for(key)
        current_ci = series.carbon_intensity_at(now)
        trailing = trailing_carbon_average(series, now, scheduler.trailing_window_h)
        high[idx] = current_ci > scheduler.high_carbon_threshold * trailing
    batch = context.batch
    home = context.jobs.home_idx[batch]
    allowance = context.delay_tolerance * context.jobs.exec_est[batch]
    can_wait = context.wait_times + context.scheduling_interval_s <= allowance + 1e-9
    return np.where(high[home] & can_wait, DEFER, home)


def _greedy_optimal_fast_path(
    scheduler: GreedyOptimalScheduler, context: BatchSchedulingContext
) -> np.ndarray:
    """Oracle lookahead with the footprint matrices hoisted out of the job loop.

    The scalar oracle rebuilds a 1×N footprint matrix per job per candidate
    delay; here one M×N matrix per candidate delay is computed lazily for the
    whole batch (plus the batch transfer matrix), leaving only the scalar
    implementation's scan-and-tie-break logic — replicated comparison for
    comparison, including its ``1e-12`` improvement threshold and capacity
    fallback ``argsort`` — in the per-job loop.
    """
    keys = context.region_keys
    n_regions = len(keys)
    if n_regions == 0:
        raise ValueError("greedy-optimal needs at least one region")
    jobs = context.jobs
    batch = context.batch
    m = len(batch)
    energy = jobs.energy_est[batch]
    exec_est = jobs.exec_est[batch]
    home = jobs.home_idx[batch]
    servers_req = jobs.servers[batch]
    interval = context.scheduling_interval_s
    transfers = batch_transfer_matrix(context)
    # Remaining delay the tolerance still allows with a free transfer
    # (the scalar `_max_extra_delay(job, context, 0.0)`).
    slack = context.delay_tolerance * exec_est - context.wait_times

    footprints = context.footprints
    if scheduler.objective == "carbon":
        matrix_at = footprints.carbon_matrix_arrays
    else:
        matrix_at = footprints.water_matrix_arrays
    matrices: dict[int, np.ndarray] = {}

    def footprint_matrix(delay_rounds: int) -> np.ndarray:
        matrix = matrices.get(delay_rounds)
        if matrix is None:
            start_time = context.now + delay_rounds * interval
            matrix = matrix_at(energy, exec_est, keys, start_time)
            matrices[delay_rounds] = matrix
        return matrix

    remaining = [int(v) for v in context.capacity]
    max_rounds = scheduler.max_lookahead_rounds
    choice = np.empty(m, dtype=np.int64)
    for pos in range(m):
        transfer_row = transfers[pos]
        job_slack = slack[pos]
        best_value = np.inf
        best_region = -1
        best_delay = 0
        for delay_rounds in range(max_rounds + 1):
            if delay_rounds > 0 and delay_rounds * interval > job_slack + 1e-9:
                break  # any further delay violates the tolerance in every region
            row = footprint_matrix(delay_rounds)[pos]
            extra_wait = delay_rounds * interval
            for idx in range(n_regions):
                if extra_wait + transfer_row[idx] > job_slack + 1e-9:
                    continue  # starting there/then would violate the tolerance
                if row[idx] < best_value - 1e-12:
                    best_value = row[idx]
                    best_region = idx
                    best_delay = delay_rounds
            if delay_rounds == 0 and best_region < 0:
                # Even immediate execution violates the tolerance everywhere;
                # fall back to the home region now (damage control).
                best_region = int(home[pos])
                best_delay = 0
                break
        if best_region < 0:
            best_region = int(home[pos])
            best_delay = 0

        can_defer = best_delay > 0 and interval <= job_slack - float(
            np.min(transfer_row)
        ) + 1e-9
        if can_defer:
            choice[pos] = DEFER
            continue

        # Start now: take the best region among those with remaining capacity.
        servers = int(servers_req[pos])
        if remaining[best_region] < servers:
            row = footprint_matrix(0)[pos]
            order = np.argsort(row)
            chosen = -1
            for idx in order:
                idx = int(idx)
                if remaining[idx] >= servers and transfer_row[idx] <= job_slack + 1e-9:
                    chosen = idx
                    break
            if chosen < 0:
                # No capacity anywhere: defer if tolerable, otherwise send home.
                if interval <= job_slack + 1e-9:
                    choice[pos] = DEFER
                    continue
                chosen = int(home[pos])
            best_region = chosen
        choice[pos] = best_region
        remaining[best_region] -= servers
    return choice


register_fast_path(BaselineScheduler, _baseline_fast_path)
register_fast_path(RoundRobinScheduler, _round_robin_fast_path)
register_fast_path(LeastLoadScheduler, _least_load_fast_path)
register_fast_path(EcovisorLikeScheduler, _ecovisor_fast_path)
register_fast_path(GreedyOptimalScheduler, _greedy_optimal_fast_path)
