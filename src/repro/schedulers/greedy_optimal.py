"""Carbon- and Water-Greedy-Optimal oracles.

The paper's two "greedy optimal" comparison points are deliberately
infeasible in practice: they know each job's execution time and the *future*
carbon/water intensity of every region, and they optimize a single objective
(carbon footprint or water footprint) while respecting the delay-tolerance
bound.  They are not true optima either — as the paper notes, they make
decisions without knowledge of future job arrivals.

The implementation here follows the same recipe round by round:

* for every job in the batch, enumerate every candidate region and every
  feasible start round within the job's remaining delay tolerance (using the
  dataset's future intensity series — the oracle's information advantage);
* pick the (region, delay) pair minimizing the target footprint;
* if the best start is "now", commit the job to that region provided the
  region still has capacity (otherwise take the best region with capacity);
  if the best start is in the future, defer the job to a later round.

Deferring is bounded by the remaining delay tolerance, so the oracle never
waits itself into a violation it could have avoided.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro._validation import ensure_one_of
from repro.cluster.interface import Scheduler, SchedulerDecision, SchedulingContext
from repro.traces.job import Job

__all__ = [
    "GreedyOptimalScheduler",
    "CarbonGreedyOptimalScheduler",
    "WaterGreedyOptimalScheduler",
]


class GreedyOptimalScheduler(Scheduler):
    """Single-objective oracle with future intensity knowledge.

    Parameters
    ----------
    objective:
        ``"carbon"`` or ``"water"`` — which footprint the oracle minimizes.
    max_lookahead_rounds:
        Upper bound on how many future scheduling rounds are examined
        (besides the delay-tolerance bound), keeping each decision cheap.
    """

    def __init__(self, objective: str, max_lookahead_rounds: int = 24) -> None:
        self.objective = ensure_one_of(objective, ("carbon", "water"), "objective")
        if max_lookahead_rounds < 0:
            raise ValueError("max_lookahead_rounds must be >= 0")
        self.max_lookahead_rounds = int(max_lookahead_rounds)
        self.name = f"{self.objective}-greedy-opt"

    # -- internals -----------------------------------------------------------------
    def _footprint_row(
        self, job: Job, context: SchedulingContext, time_s: float
    ) -> np.ndarray:
        keys = context.region_keys
        if self.objective == "carbon":
            return context.footprints.carbon_matrix([job], keys, time_s)[0]
        return context.footprints.water_matrix([job], keys, time_s)[0]

    def _max_extra_delay(self, job: Job, context: SchedulingContext, transfer: float) -> float:
        """Additional waiting (s) the job can still absorb before violating."""
        allowance = context.delay_tolerance * job.execution_time
        waited = context.wait_time(job)
        return allowance - waited - transfer

    def schedule(self, jobs: Sequence[Job], context: SchedulingContext) -> SchedulerDecision:
        keys = context.region_keys
        remaining = {key: int(context.capacity.get(key, 0)) for key in keys}
        interval = context.scheduling_interval_s
        assignments: dict[int, str] = {}
        deferred: list[int] = []

        for job in jobs:
            transfers = np.array([context.transfer_time(job, key) for key in keys])

            # Candidate delays (in rounds) the delay tolerance still allows for
            # at least the cheapest-transfer region.
            best_value = np.inf
            best_region: str | None = None
            best_delay_rounds = 0
            max_rounds = self.max_lookahead_rounds
            slack_budget = self._max_extra_delay(job, context, 0.0)
            for delay_rounds in range(0, max_rounds + 1):
                if delay_rounds > 0 and delay_rounds * interval > slack_budget + 1e-9:
                    break  # any further delay violates the tolerance in every region
                start_time = context.now + delay_rounds * interval
                row = self._footprint_row(job, context, start_time)
                for idx, key in enumerate(keys):
                    extra_wait = delay_rounds * interval
                    if extra_wait + transfers[idx] > self._max_extra_delay(job, context, 0.0) + 1e-9:
                        continue  # starting there/then would violate the tolerance
                    if row[idx] < best_value - 1e-12:
                        best_value = row[idx]
                        best_region = key
                        best_delay_rounds = delay_rounds
                if delay_rounds == 0 and best_region is None:
                    # Even immediate execution violates the tolerance everywhere;
                    # fall back to the home region now (damage control).
                    best_region = job.home_region
                    best_delay_rounds = 0
                    break

            if best_region is None:
                best_region = job.home_region
                best_delay_rounds = 0

            can_defer = (
                best_delay_rounds > 0
                and interval <= self._max_extra_delay(
                    job, context, float(np.min(transfers))
                ) + 1e-9
            )
            if can_defer:
                deferred.append(job.job_id)
                continue

            # Start now: take the best region among those with remaining capacity.
            if remaining.get(best_region, 0) < job.servers_required:
                row = self._footprint_row(job, context, context.now)
                order = np.argsort(row)
                chosen = None
                for idx in order:
                    key = keys[int(idx)]
                    if remaining.get(key, 0) >= job.servers_required and (
                        transfers[int(idx)] <= self._max_extra_delay(job, context, 0.0) + 1e-9
                    ):
                        chosen = key
                        break
                if chosen is None:
                    # No capacity anywhere: defer if tolerable, otherwise send home.
                    if interval <= self._max_extra_delay(job, context, 0.0) + 1e-9:
                        deferred.append(job.job_id)
                        continue
                    chosen = job.home_region
                best_region = chosen
            assignments[job.job_id] = best_region
            remaining[best_region] = remaining.get(best_region, 0) - job.servers_required

        return SchedulerDecision(assignments=assignments, deferred=deferred)


class CarbonGreedyOptimalScheduler(GreedyOptimalScheduler):
    """Oracle minimizing the carbon footprint only (paper's Carbon-Greedy-Opt)."""

    def __init__(self, max_lookahead_rounds: int = 24) -> None:
        super().__init__("carbon", max_lookahead_rounds=max_lookahead_rounds)


class WaterGreedyOptimalScheduler(GreedyOptimalScheduler):
    """Oracle minimizing the water footprint only (paper's Water-Greedy-Opt)."""

    def __init__(self, max_lookahead_rounds: int = 24) -> None:
        super().__init__("water", max_lookahead_rounds=max_lookahead_rounds)
