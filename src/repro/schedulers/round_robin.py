"""Round-robin load balancing across regions (sustainability-unaware)."""

from __future__ import annotations

from collections.abc import Sequence

from repro.cluster.interface import Scheduler, SchedulerDecision, SchedulingContext
from repro.traces.job import Job

__all__ = ["RoundRobinScheduler"]


class RoundRobinScheduler(Scheduler):
    """Distribute jobs to regions in a fixed circular order.

    The cursor persists across scheduling rounds (and is cleared by
    :meth:`reset`), so the distribution stays even over the whole trace, as in
    the paper's Round-Robin comparison point (Fig. 10).
    """

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def reset(self) -> None:
        self._cursor = 0

    def schedule(self, jobs: Sequence[Job], context: SchedulingContext) -> SchedulerDecision:
        keys = context.region_keys
        if not keys:
            raise ValueError("round-robin needs at least one region")
        assignments: dict[int, str] = {}
        for job in jobs:
            assignments[job.job_id] = keys[self._cursor % len(keys)]
            self._cursor += 1
        return SchedulerDecision(assignments=assignments)
