"""Ecovisor-like carbon-aware baseline.

Ecovisor (Souza et al., ASPLOS 2023) virtualizes the energy system of a
container and scales the application's resources against the current carbon
signal; it targets *operational carbon only*, keeps the job in its home
region, and is unaware of water.  The paper compares WaterWise against a
customized Ecovisor implementation (Fig. 7).

The faithful-to-scope stand-in here keeps the two defining properties —
home-region-only execution and operational-carbon-only awareness — and models
the carbon scaler as temporal shifting: a job is deferred (within its delay
tolerance) while the home region's current carbon intensity is above its
recent trailing average, and released as soon as the signal drops below it or
the remaining tolerance would be exhausted.  It never migrates jobs and never
looks at water intensity, EWIF, WUE, WSF or embodied footprints.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro._validation import ensure_positive
from repro.cluster.interface import Scheduler, SchedulerDecision, SchedulingContext
from repro.traces.job import Job

__all__ = ["EcovisorLikeScheduler", "trailing_carbon_average"]


def trailing_carbon_average(series, now_s: float, window_h: float) -> float:
    """Trailing mean carbon intensity over the last ``window_h`` hours.

    The "target" signal of the Ecovisor-style carbon scaler.  Shared by the
    scalar policy and its vectorized fast path
    (:mod:`repro.schedulers.vectorized`), so both derive the identical
    defer/release threshold.
    """
    now_hour = int(now_s // 3600.0)
    start_hour = max(0, now_hour - int(window_h))
    window = series.carbon_intensity[start_hour : now_hour + 1]
    if len(window):
        return float(np.mean(window))
    return float(series.carbon_intensity_at(now_s))


class EcovisorLikeScheduler(Scheduler):
    """Home-region, operational-carbon-only policy with temporal shifting.

    Parameters
    ----------
    trailing_window_h:
        Length of the trailing carbon-intensity window used as the "target"
        signal of the carbon scaler.
    high_carbon_threshold:
        A job is held back while the current home-region carbon intensity
        exceeds ``threshold ×`` the trailing average.  Values below 1 make
        the policy defer more aggressively; the value must be positive.
    """

    name = "ecovisor-like"

    def __init__(self, trailing_window_h: float = 24.0, high_carbon_threshold: float = 1.05) -> None:
        self.trailing_window_h = ensure_positive(trailing_window_h, "trailing_window_h")
        self.high_carbon_threshold = ensure_positive(high_carbon_threshold, "high_carbon_threshold")

    # -- internals --------------------------------------------------------------------
    def _trailing_average(self, context: SchedulingContext, region_key: str) -> float:
        series = context.dataset.series_for(region_key)
        return trailing_carbon_average(series, context.now, self.trailing_window_h)

    def schedule(self, jobs: Sequence[Job], context: SchedulingContext) -> SchedulerDecision:
        assignments: dict[int, str] = {}
        deferred: list[int] = []
        interval = context.scheduling_interval_s
        for job in jobs:
            home = job.home_region
            if home not in context.region_keys:
                raise ValueError(
                    f"job {job.job_id} home region {home!r} is not simulated"
                )
            current_ci = context.dataset.series_for(home).carbon_intensity_at(context.now)
            trailing = self._trailing_average(context, home)
            waited = context.wait_time(job)
            allowance = context.delay_tolerance * job.execution_time
            can_wait_another_round = waited + interval <= allowance + 1e-9
            if current_ci > self.high_carbon_threshold * trailing and can_wait_another_round:
                deferred.append(job.job_id)
            else:
                assignments[job.job_id] = home
        return SchedulerDecision(assignments=assignments, deferred=deferred)
