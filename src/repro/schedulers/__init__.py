"""Scheduling policies compared against WaterWise in the paper's evaluation.

* :class:`BaselineScheduler` — every job runs in its home region immediately
  (the carbon- and water-unaware reference all savings are measured against).
* :class:`RoundRobinScheduler` / :class:`LeastLoadScheduler` — classic
  load-balancing policies that spread jobs across regions without any
  sustainability awareness (paper Fig. 10).
* :class:`CarbonGreedyOptimalScheduler` / :class:`WaterGreedyOptimalScheduler`
  — infeasible-in-practice oracles with future knowledge of carbon/water
  intensity that optimize a single objective (paper Fig. 3/5).
* :class:`EcovisorLikeScheduler` — a home-region, operational-carbon-only
  policy in the spirit of Ecovisor (paper Fig. 7).

The WaterWise scheduler itself lives in :mod:`repro.core`.
"""

from repro.schedulers.baseline import BaselineScheduler
from repro.schedulers.ecovisor import EcovisorLikeScheduler
from repro.schedulers.greedy_optimal import (
    CarbonGreedyOptimalScheduler,
    GreedyOptimalScheduler,
    WaterGreedyOptimalScheduler,
)
from repro.schedulers.least_load import LeastLoadScheduler
from repro.schedulers.registry import available_schedulers, make_scheduler
from repro.schedulers.round_robin import RoundRobinScheduler
from repro.schedulers.vectorized import (
    fast_path_for,
    has_fast_path,
    register_fast_path,
    unregister_fast_path,
)

__all__ = [
    "BaselineScheduler",
    "CarbonGreedyOptimalScheduler",
    "EcovisorLikeScheduler",
    "GreedyOptimalScheduler",
    "LeastLoadScheduler",
    "RoundRobinScheduler",
    "WaterGreedyOptimalScheduler",
    "available_schedulers",
    "fast_path_for",
    "has_fast_path",
    "make_scheduler",
    "register_fast_path",
    "unregister_fast_path",
]
