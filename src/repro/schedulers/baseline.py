"""Carbon- and water-unaware baseline: run every job in its home region.

This is the reference policy the paper measures every saving against:
"every job is executed in its home region ... without exploring the potential
of carbon and water savings via migration or opportunistic delaying".
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.cluster.interface import Scheduler, SchedulerDecision, SchedulingContext
from repro.traces.job import Job

__all__ = ["BaselineScheduler"]


class BaselineScheduler(Scheduler):
    """Assign every job to its home region, never deferring."""

    name = "baseline"

    def schedule(self, jobs: Sequence[Job], context: SchedulingContext) -> SchedulerDecision:
        known = set(context.region_keys)
        assignments: dict[int, str] = {}
        for job in jobs:
            if job.home_region not in known:
                raise ValueError(
                    f"job {job.job_id} has home region {job.home_region!r} which is not part "
                    f"of the simulated cluster ({sorted(known)})"
                )
            assignments[job.job_id] = job.home_region
        return SchedulerDecision(assignments=assignments)
