"""Least-load balancing across regions (sustainability-unaware)."""

from __future__ import annotations

from collections.abc import Sequence

from repro.cluster.interface import Scheduler, SchedulerDecision, SchedulingContext
from repro.traces.job import Job

__all__ = ["LeastLoadScheduler"]


class LeastLoadScheduler(Scheduler):
    """Send each job to the region with the most remaining capacity.

    The remaining-capacity view is updated as the batch is assigned, so a
    large batch spreads out rather than piling onto the single emptiest
    region.  Matches the paper's Least-Load comparison point (Fig. 10): aware
    of load, unaware of carbon and water.
    """

    name = "least-load"

    def schedule(self, jobs: Sequence[Job], context: SchedulingContext) -> SchedulerDecision:
        if not context.region_keys:
            raise ValueError("least-load needs at least one region")
        remaining = {key: float(context.capacity.get(key, 0)) for key in context.region_keys}
        assignments: dict[int, str] = {}
        for job in jobs:
            # Highest remaining capacity; ties broken by region order for determinism.
            target = max(context.region_keys, key=lambda key: (remaining[key], -context.region_keys.index(key)))
            assignments[job.job_id] = target
            remaining[target] -= job.servers_required
        return SchedulerDecision(assignments=assignments)
