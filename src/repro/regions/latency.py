"""Inter-region transfer-latency model.

When WaterWise moves a job away from its home region it must ship the job's
execution files and dependencies (the paper transfers a ``.tar`` over SCP
between AWS regions) and the delay-tolerance constraint accounts for that
transfer latency.  The model here combines

* a propagation component proportional to the great-circle distance between
  the two regions (long-haul RTT), and
* a serialization component ``package_size / effective_bandwidth`` for the
  job's package.

Both components are deliberately simple — the scheduler only needs transfer
latencies with realistic magnitudes and ordering (nearby European regions
cheap, trans-continental transfers expensive), which is what the paper's
Table 3 reflects.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro._validation import ensure_non_negative, ensure_positive
from repro.regions.region import Region

__all__ = ["TransferLatencyModel"]

_EARTH_RADIUS_KM = 6371.0


def _great_circle_km(a: Region, b: Region) -> float:
    """Great-circle distance between two regions in kilometres."""
    lat1, lon1, lat2, lon2 = map(
        math.radians, (a.latitude, a.longitude, b.latitude, b.longitude)
    )
    d_lat = lat2 - lat1
    d_lon = lon2 - lon1
    h = math.sin(d_lat / 2.0) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(d_lon / 2.0) ** 2
    return 2.0 * _EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(h)))


class TransferLatencyModel:
    """Transfer latency between data-center regions.

    Parameters
    ----------
    regions:
        The regions the model covers.
    bandwidth_gbps:
        Effective cross-region throughput for bulk job-package transfers.
        The paper's testbed uses 25 Gb/s NICs, but a single long-haul SCP
        stream achieves only a small fraction of that (tens of MB/s), so the
        default models that realistic effective rate.  Together with the
        short PARSEC-style jobs this is what makes the delay tolerance a
        meaningful knob: transfers are a sizable fraction of execution time.
    base_latency_s:
        Fixed connection set-up overhead applied to any remote transfer.
    per_1000km_s:
        Additional seconds of effective transfer time per 1000 km of
        great-circle distance (protocol round trips over long-haul links).
    """

    def __init__(
        self,
        regions: Sequence[Region],
        bandwidth_gbps: float = 0.25,
        base_latency_s: float = 3.0,
        per_1000km_s: float = 2.0,
        energy_kwh_per_gb: float = 0.001,
    ) -> None:
        if not regions:
            raise ValueError("TransferLatencyModel needs at least one region")
        self.regions = list(regions)
        self.bandwidth_gbps = ensure_positive(bandwidth_gbps, "bandwidth_gbps")
        self.base_latency_s = ensure_non_negative(base_latency_s, "base_latency_s")
        self.per_1000km_s = ensure_non_negative(per_1000km_s, "per_1000km_s")
        self.energy_kwh_per_gb = ensure_non_negative(energy_kwh_per_gb, "energy_kwh_per_gb")
        self._index = {region.key: i for i, region in enumerate(self.regions)}
        n = len(self.regions)
        self._distance_km = np.zeros((n, n))
        for i, a in enumerate(self.regions):
            for j, b in enumerate(self.regions):
                if i != j:
                    self._distance_km[i, j] = _great_circle_km(a, b)

    def distance_km(self, source: str, destination: str) -> float:
        """Great-circle distance between two region keys in kilometres."""
        return float(self._distance_km[self._index[source], self._index[destination]])

    def transfer_time(self, source: str, destination: str, package_gb: float = 1.0) -> float:
        """Seconds to move a job package of ``package_gb`` GB between regions.

        Transfers within the same region are free (the job never leaves its
        home data center).
        """
        package_gb = ensure_non_negative(package_gb, "package_gb")
        if source == destination:
            return 0.0
        if source not in self._index or destination not in self._index:
            missing = source if source not in self._index else destination
            raise KeyError(f"region {missing!r} is not covered by this latency model")
        distance = self.distance_km(source, destination)
        serialization = package_gb * 8.0 / self.bandwidth_gbps
        propagation = self.base_latency_s + self.per_1000km_s * distance / 1000.0
        return serialization + propagation

    def propagation_seconds(self, region_keys: Sequence[str]) -> np.ndarray:
        """(K × K) zero-package transfer times over ``region_keys``, in that order.

        This is the propagation component of :meth:`transfer_time` (the
        serialization component is zero for an empty package), keyed by the
        *caller's* region order — the batch engine and the vectorized
        scheduler fast paths add ``package_gb × 8 / bandwidth_gbps`` per job
        to reconstruct :meth:`transfer_time` exactly.
        """
        return np.array(
            [[self.transfer_time(a, b, 0.0) for b in region_keys] for a in region_keys]
        )

    def matrix(self, package_gb: float = 1.0) -> np.ndarray:
        """Full (n_regions × n_regions) transfer-time matrix in seconds."""
        n = len(self.regions)
        out = np.zeros((n, n))
        for i, a in enumerate(self.regions):
            for j, b in enumerate(self.regions):
                out[i, j] = self.transfer_time(a.key, b.key, package_gb)
        return out

    def transfer_energy_kwh(self, source: str, destination: str, package_gb: float = 1.0) -> float:
        """Network + endpoint energy (kWh) of moving a job package between regions.

        Zero for same-region placements.  Used by the communication-overhead
        accounting (paper Table 3): the energy is charged at the source and
        destination grids' carbon/water intensity by the caller.
        """
        package_gb = ensure_non_negative(package_gb, "package_gb")
        if source == destination:
            return 0.0
        if source not in self._index or destination not in self._index:
            missing = source if source not in self._index else destination
            raise KeyError(f"region {missing!r} is not covered by this latency model")
        return self.energy_kwh_per_gb * package_gb

    def average_from(self, source: str, package_gb: float = 1.0) -> float:
        """Mean transfer time from ``source`` to every *other* region.

        This is the :math:`L^{avg}_m` term in the slack-manager urgency score
        (paper Eq. 14).
        """
        others = [r.key for r in self.regions if r.key != source]
        if not others:
            return 0.0
        return float(
            np.mean([self.transfer_time(source, dest, package_gb) for dest in others])
        )
