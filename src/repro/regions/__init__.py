"""Region substrate: the evaluation regions, transfer latency and weather.

The paper evaluates WaterWise on data centers in five AWS regions —
Zurich (eu-central-2), Oregon (us-west-2), Madrid/Spain (eu-south-2),
Milan (eu-south-1) and Mumbai (ap-south-1).  This subpackage provides:

* :mod:`repro.regions.region` — the :class:`Region` description,
* :mod:`repro.regions.catalog` — the default five-region catalog and helpers
  for building subsets (used by the region-availability sensitivity study),
* :mod:`repro.regions.latency` — the inter-region transfer-latency model,
* :mod:`repro.regions.weather` — a seasonal + diurnal wet-bulb temperature
  model per region (the input to the WUE model).
"""

from repro.regions.catalog import (
    DEFAULT_REGION_KEYS,
    default_regions,
    get_region,
    region_subset,
)
from repro.regions.latency import TransferLatencyModel
from repro.regions.region import Region
from repro.regions.weather import WetBulbModel

__all__ = [
    "DEFAULT_REGION_KEYS",
    "Region",
    "TransferLatencyModel",
    "WetBulbModel",
    "default_regions",
    "get_region",
    "region_subset",
]
