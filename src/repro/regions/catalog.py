"""The default five-region catalog used throughout the evaluation.

The regions and their water-scarcity factors follow the paper's Fig. 2:
Zurich has the lowest carbon intensity but a water-hungry (hydro/biomass
heavy) grid; Madrid is carbon-friendly but highly water-stressed; Mumbai has
the highest carbon intensity but a comparatively low EWIF; Oregon and Milan
sit in between.  The numbers are synthetic re-encodings of the published
figure, not live data (see DESIGN.md §1).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.regions.region import Region

__all__ = ["DEFAULT_REGION_KEYS", "default_regions", "get_region", "region_subset"]

_CATALOG: dict[str, Region] = {
    "zurich": Region(
        key="zurich",
        name="Zurich",
        aws_code="eu-central-2",
        latitude=47.38,
        longitude=8.54,
        climate="alpine",
        water_scarcity=0.12,
        pue=1.2,
    ),
    "madrid": Region(
        key="madrid",
        name="Madrid",
        aws_code="eu-south-2",
        latitude=40.42,
        longitude=-3.70,
        climate="mediterranean",
        water_scarcity=0.80,
        pue=1.2,
    ),
    "oregon": Region(
        key="oregon",
        name="Oregon",
        aws_code="us-west-2",
        latitude=45.52,
        longitude=-122.68,
        climate="temperate",
        water_scarcity=0.60,
        pue=1.2,
    ),
    "milan": Region(
        key="milan",
        name="Milan",
        aws_code="eu-south-1",
        latitude=45.46,
        longitude=9.19,
        climate="temperate",
        water_scarcity=0.45,
        pue=1.2,
    ),
    "mumbai": Region(
        key="mumbai",
        name="Mumbai",
        aws_code="ap-south-1",
        latitude=19.08,
        longitude=72.88,
        climate="tropical",
        water_scarcity=0.65,
        pue=1.2,
    ),
}

#: Region keys in the paper's presentation order (sorted by carbon intensity).
DEFAULT_REGION_KEYS: tuple[str, ...] = ("zurich", "madrid", "oregon", "milan", "mumbai")


def default_regions() -> list[Region]:
    """The five evaluation regions in the paper's presentation order."""
    return [_CATALOG[key] for key in DEFAULT_REGION_KEYS]


def get_region(key: str) -> Region:
    """Look up a region from the default catalog by key (case-insensitive)."""
    normalized = key.strip().lower()
    try:
        return _CATALOG[normalized]
    except KeyError:
        raise KeyError(
            f"unknown region {key!r}; known regions: {sorted(_CATALOG)}"
        ) from None


def region_subset(keys: Iterable[str] | Sequence[str]) -> list[Region]:
    """Build a subset of the catalog, preserving the order of ``keys``.

    Used by the region-availability sensitivity experiment (paper Fig. 12).
    Raises ``ValueError`` on duplicates so an experiment cannot silently count
    a region twice.
    """
    keys = list(keys)
    if len(set(k.strip().lower() for k in keys)) != len(keys):
        raise ValueError(f"duplicate region keys in subset: {keys!r}")
    return [get_region(key) for key in keys]
