"""Synthetic wet-bulb temperature model per region.

The paper derives each region's Water Usage Effectiveness (WUE) from the
region's wet-bulb temperature (sourced from Meteologix).  Offline, this module
generates hourly wet-bulb temperature series with the three features the
onsite-water model needs:

* a **seasonal** cycle (hot summers / cold winters, hemisphere-aware),
* a **diurnal** cycle (afternoon peak, pre-dawn trough),
* **weather noise** (correlated day-to-day perturbations).

Each region's climate archetype sets the mean and the amplitude of those
cycles so that, for example, Mumbai is consistently warm and humid (high
wet-bulb, high WUE) while Zurich is cool (low WUE) — matching the regional
ordering in the paper's Fig. 2(c).
"""

from __future__ import annotations

import dataclasses
import zlib

import numpy as np

from repro._validation import ensure_positive
from repro.regions.region import Region

__all__ = ["ClimateProfile", "WetBulbModel", "CLIMATE_PROFILES"]

_HOURS_PER_DAY = 24
_HOURS_PER_YEAR = 8760


@dataclasses.dataclass(frozen=True)
class ClimateProfile:
    """Parameters of a climate archetype's wet-bulb temperature (°C)."""

    annual_mean: float
    seasonal_amplitude: float
    diurnal_amplitude: float
    noise_std: float


#: Climate archetypes referenced by :class:`repro.regions.region.Region.climate`.
CLIMATE_PROFILES: dict[str, ClimateProfile] = {
    "alpine": ClimateProfile(annual_mean=7.0, seasonal_amplitude=8.0, diurnal_amplitude=2.5, noise_std=1.5),
    "temperate": ClimateProfile(annual_mean=11.0, seasonal_amplitude=8.0, diurnal_amplitude=3.0, noise_std=1.5),
    "mediterranean": ClimateProfile(annual_mean=14.0, seasonal_amplitude=7.5, diurnal_amplitude=3.5, noise_std=1.2),
    "tropical": ClimateProfile(annual_mean=24.0, seasonal_amplitude=3.0, diurnal_amplitude=2.0, noise_std=1.0),
}


class WetBulbModel:
    """Hourly wet-bulb temperature generator for a region.

    Parameters
    ----------
    region:
        The region whose climate archetype drives the series.
    seed:
        Seed for the weather-noise component; the same (region, seed) pair
        always produces the same series.
    start_day_of_year:
        Calendar day (0-based) the series starts at; the paper's evaluation
        uses July data, so the default places the start in early July for
        northern-hemisphere regions.
    """

    def __init__(self, region: Region, seed: int = 0, start_day_of_year: int = 182) -> None:
        if region.climate not in CLIMATE_PROFILES:
            raise ValueError(
                f"region {region.key!r} has unknown climate {region.climate!r}; "
                f"expected one of {sorted(CLIMATE_PROFILES)}"
            )
        self.region = region
        self.profile = CLIMATE_PROFILES[region.climate]
        self.seed = int(seed)
        self.start_day_of_year = int(start_day_of_year) % 365

    def series(self, horizon_hours: int) -> np.ndarray:
        """Wet-bulb temperature (°C) for each hour of the horizon."""
        horizon_hours = int(ensure_positive(horizon_hours, "horizon_hours"))
        hours = np.arange(horizon_hours, dtype=float) + self.start_day_of_year * _HOURS_PER_DAY
        profile = self.profile

        # Seasonal cycle peaking around day 200 (mid/late July) in the northern
        # hemisphere; all five evaluation regions are in the northern hemisphere
        # but the phase flips for completeness if a southern region is added.
        phase = 0.0 if self.region.latitude >= 0 else np.pi
        seasonal = profile.seasonal_amplitude * np.cos(
            2.0 * np.pi * (hours / _HOURS_PER_YEAR) - 2.0 * np.pi * (200.0 / 365.0) + phase
        )

        # Diurnal cycle with an afternoon (15:00) peak.
        hour_of_day = hours % _HOURS_PER_DAY
        diurnal = profile.diurnal_amplitude * np.cos(2.0 * np.pi * (hour_of_day - 15.0) / _HOURS_PER_DAY)

        # Correlated day-to-day noise: one draw per day, smoothed across days,
        # so a hot spell lasts a few days rather than flickering hour to hour.
        rng = np.random.default_rng(
            (zlib.crc32(self.region.key.encode("utf-8")) & 0xFFFF) + self.seed
        )
        n_days = int(np.ceil((horizon_hours + self.start_day_of_year * _HOURS_PER_DAY) / _HOURS_PER_DAY)) + 2
        daily_noise = rng.normal(0.0, profile.noise_std, size=n_days)
        kernel = np.array([0.25, 0.5, 0.25])
        daily_noise = np.convolve(daily_noise, kernel, mode="same")
        day_index = (hours // _HOURS_PER_DAY).astype(int)
        noise = daily_noise[day_index]

        return profile.annual_mean + seasonal + diurnal + noise

    def mean(self, horizon_hours: int = _HOURS_PER_YEAR) -> float:
        """Mean wet-bulb temperature over the horizon (°C)."""
        return float(np.mean(self.series(horizon_hours)))
