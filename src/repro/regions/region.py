"""Region description used across the simulator and the schedulers."""

from __future__ import annotations

import dataclasses

__all__ = ["Region"]


@dataclasses.dataclass(frozen=True)
class Region:
    """A geographic data-center region.

    Attributes
    ----------
    key:
        Short stable identifier used throughout the package (e.g. ``"zurich"``).
    name:
        Human-readable name (e.g. ``"Zurich"``).
    aws_code:
        The AWS region code the paper maps this region to (informational).
    latitude, longitude:
        Approximate site coordinates; used by the latency model (great-circle
        distance) and the weather model (climate archetype).
    climate:
        Coarse climate archetype, one of ``"alpine"``, ``"mediterranean"``,
        ``"temperate"``, ``"tropical"``.  Drives the wet-bulb temperature
        profile.
    water_scarcity:
        Static Water Scarcity Factor (WSF) of the region, dimensionless
        (higher = more water stressed), as in the paper's Fig. 2(d).
    pue:
        Power Usage Effectiveness of the data center in this region.  The
        paper uses a single PUE of 1.2 for all regions; it is configurable
        per region here.
    """

    key: str
    name: str
    aws_code: str
    latitude: float
    longitude: float
    climate: str
    water_scarcity: float
    pue: float = 1.2

    def __post_init__(self) -> None:
        if not self.key:
            raise ValueError("region key must be non-empty")
        if not -90.0 <= self.latitude <= 90.0:
            raise ValueError(f"latitude out of range for region {self.key!r}: {self.latitude}")
        if not -180.0 <= self.longitude <= 180.0:
            raise ValueError(f"longitude out of range for region {self.key!r}: {self.longitude}")
        if self.water_scarcity < 0.0:
            raise ValueError(f"water_scarcity must be >= 0 for region {self.key!r}")
        if self.pue < 1.0:
            raise ValueError(f"PUE must be >= 1.0 for region {self.key!r}, got {self.pue}")

    def __str__(self) -> str:  # keeps log/report output compact
        return self.key
