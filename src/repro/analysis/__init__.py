"""Analysis layer: savings computation, sweeps, reports and experiments.

* :mod:`repro.analysis.savings` — percent savings of a policy relative to the
  carbon- and water-unaware baseline (the paper's figure of merit).
* :mod:`repro.analysis.report` — plain-text tables used by the benchmark
  harness and the examples.
* :mod:`repro.analysis.sweep` — helpers to run a set of policies over a trace
  and to sweep parameters (delay tolerance, utilization, weights).
* :mod:`repro.analysis.parallel` — parameter-grid expansion with
  deterministic content-based seeding, sharded across
  ``concurrent.futures`` workers.
* :mod:`repro.analysis.experiments` — one function per paper table/figure;
  the benchmark harness and EXPERIMENTS.md are generated from these.
"""

from repro.analysis.parallel import (
    SweepOutcome,
    SweepPoint,
    derive_seed,
    expand_grid,
    run_sweep,
)
from repro.analysis.report import format_table
from repro.analysis.savings import PolicySavings, savings_table
from repro.analysis.sweep import (
    ExperimentScale,
    delay_tolerance_sweep,
    run_policies,
    simulate,
)

__all__ = [
    "ExperimentScale",
    "PolicySavings",
    "SweepOutcome",
    "SweepPoint",
    "delay_tolerance_sweep",
    "derive_seed",
    "expand_grid",
    "format_table",
    "run_policies",
    "run_sweep",
    "savings_table",
    "simulate",
]
