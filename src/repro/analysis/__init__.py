"""Analysis layer: savings computation, sweeps, reports and experiments.

* :mod:`repro.analysis.savings` — percent savings of a policy relative to the
  carbon- and water-unaware baseline (the paper's figure of merit).
* :mod:`repro.analysis.report` — plain-text tables used by the benchmark
  harness and the examples.
* :mod:`repro.analysis.sweep` — helpers to run a set of policies over a trace
  and to sweep parameters (delay tolerance, utilization, weights).
* :mod:`repro.analysis.experiments` — one function per paper table/figure;
  the benchmark harness and EXPERIMENTS.md are generated from these.
"""

from repro.analysis.report import format_table
from repro.analysis.savings import PolicySavings, savings_table
from repro.analysis.sweep import (
    ExperimentScale,
    delay_tolerance_sweep,
    run_policies,
    simulate,
)

__all__ = [
    "ExperimentScale",
    "PolicySavings",
    "delay_tolerance_sweep",
    "format_table",
    "run_policies",
    "savings_table",
    "simulate",
]
