"""Per-figure experiment functions (paper Fig. 1–10).

Each function reproduces one of the paper's characterization or evaluation
figures at a configurable scale and returns an
:class:`~repro.analysis.experiment_result.ExperimentResult` whose rows mirror
the figure's bars/series.  The absolute numbers depend on the synthetic
substrate (see DESIGN.md §1); what is expected to match the paper is the
*shape*: who wins, in which direction, and roughly by how much.

The companion module :mod:`repro.analysis.studies` covers Fig. 11–13, the
tables and the sensitivity/ablation studies.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.analysis.experiment_result import ExperimentResult
from repro.analysis.savings import savings_table
from repro.analysis.sweep import (
    ExperimentScale,
    default_policy_set,
    delay_tolerance_sweep,
    run_policies,
    waterwise_factory,
)
from repro.core.config import WaterWiseConfig
from repro.core.waterwise import WaterWiseScheduler
from repro.regions.catalog import DEFAULT_REGION_KEYS
from repro.schedulers import (
    BaselineScheduler,
    CarbonGreedyOptimalScheduler,
    EcovisorLikeScheduler,
    LeastLoadScheduler,
    RoundRobinScheduler,
    WaterGreedyOptimalScheduler,
)
from repro.sustainability.datasets import ElectricityMapsLikeProvider, WRILikeProvider
from repro.sustainability.energy_sources import ENERGY_SOURCES

__all__ = [
    "fig1_energy_sources",
    "fig2_regional_factors",
    "fig3_greedy_optimal",
    "fig5_waterwise_google",
    "fig6_wri_data",
    "fig7_ecovisor",
    "fig8_weight_sensitivity",
    "fig9_alibaba",
    "fig10_loadbalancers",
]

_DEFAULT_TOLERANCES = (0.25, 0.50, 0.75, 1.00)


# ---------------------------------------------------------------------------
# Characterization (Sec. 3)
# ---------------------------------------------------------------------------

def fig1_energy_sources() -> ExperimentResult:
    """Fig. 1: carbon intensity and EWIF per energy source."""
    rows = []
    for key in ("nuclear", "wind", "hydro", "geothermal", "solar", "biomass", "gas", "oil", "coal"):
        source = ENERGY_SOURCES[key]
        rows.append(
            [
                source.name,
                "renewable" if source.renewable else "fossil",
                source.carbon_intensity,
                source.ewif,
            ]
        )
    coal = ENERGY_SOURCES["coal"]
    hydro = ENERGY_SOURCES["hydro"]
    return ExperimentResult(
        experiment="figure-1",
        description="Carbon intensity and water requirements (EWIF) per energy source",
        headers=["source", "class", "carbon_gCO2_per_kwh", "ewif_L_per_kwh"],
        rows=rows,
        metadata={
            "coal_over_hydro_carbon_ratio": round(coal.carbon_intensity / hydro.carbon_intensity, 1),
            "hydro_over_coal_ewif_ratio": round(hydro.ewif / coal.ewif, 1),
        },
    )


def fig2_regional_factors(horizon_hours: int = 8760, seed: int = 11) -> ExperimentResult:
    """Fig. 2: regional carbon intensity, EWIF, WUE, WSF averages and the
    temporal variation of carbon/water intensity (Oregon panel)."""
    provider = ElectricityMapsLikeProvider(horizon_hours=horizon_hours, seed=seed)
    rows = []
    for key in DEFAULT_REGION_KEYS:
        series = provider.series_for(key)
        water_intensity = series.water_intensity_series()
        rows.append(
            [
                key,
                series.mean_carbon_intensity(),
                series.mean_ewif(),
                series.mean_wue(),
                series.wsf,
                float(np.std(series.carbon_intensity)),
                float(np.std(water_intensity)),
            ]
        )
    oregon = provider.series_for("oregon")
    oregon_wi = oregon.water_intensity_series()
    correlation = float(np.corrcoef(oregon.carbon_intensity, oregon_wi)[0, 1])
    return ExperimentResult(
        experiment="figure-2",
        description="Regional carbon intensity, EWIF, WUE, WSF and temporal variation",
        headers=[
            "region",
            "carbon_intensity",
            "ewif",
            "wue",
            "wsf",
            "carbon_intensity_std",
            "water_intensity_std",
        ],
        rows=rows,
        metadata={
            "horizon_hours": horizon_hours,
            "oregon_carbon_water_correlation": round(correlation, 3),
        },
    )


# ---------------------------------------------------------------------------
# Motivation: greedy-optimal opportunity study (Fig. 3)
# ---------------------------------------------------------------------------

def fig3_greedy_optimal(
    scale: ExperimentScale | None = None,
    tolerances: Sequence[float] = (0.01, 0.10, 1.00, 10.0),
) -> tuple[ExperimentResult, ExperimentResult]:
    """Fig. 3: single-objective oracle savings vs. delay tolerance, and the
    job distribution across regions at 10% tolerance.

    Returns ``(savings_result, distribution_result)``.
    """
    scale = scale or ExperimentScale()
    trace = scale.borg_trace()
    dataset = scale.dataset()
    servers = scale.servers_for(trace, dataset.region_keys)
    policies = {
        "baseline": BaselineScheduler,
        "carbon-greedy-opt": CarbonGreedyOptimalScheduler,
        "water-greedy-opt": WaterGreedyOptimalScheduler,
    }
    sweep = delay_tolerance_sweep(
        trace, dataset, policies, servers, tolerances, scale.scheduling_interval_s
    )

    savings_rows = []
    for tolerance, results in sweep.items():
        for entry in savings_table(results):
            if entry.policy == "baseline":
                continue
            savings_rows.append(
                [
                    f"{tolerance * 100:g}%",
                    entry.policy,
                    entry.carbon_savings_pct,
                    entry.water_savings_pct,
                ]
            )
    savings_result = ExperimentResult(
        experiment="figure-3a",
        description="Carbon-/Water-Greedy-Opt savings vs. delay tolerance",
        headers=["delay_tolerance", "policy", "carbon_savings_pct", "water_savings_pct"],
        rows=savings_rows,
        metadata={"jobs": len(trace), "servers_per_region": servers},
    )

    distribution_tolerance = 0.10 if 0.10 in [round(t, 4) for t in tolerances] else tolerances[0]
    results_at_tol = sweep[float(distribution_tolerance)]
    distribution_rows = []
    for policy in ("carbon-greedy-opt", "water-greedy-opt"):
        distribution = results_at_tol[policy].region_distribution()
        for region, share in distribution.items():
            distribution_rows.append([policy, region, 100.0 * share])
    distribution_result = ExperimentResult(
        experiment="figure-3b",
        description="Job distribution across regions (greedy-optimal policies)",
        headers=["policy", "region", "jobs_pct"],
        rows=distribution_rows,
        metadata={"delay_tolerance": distribution_tolerance},
    )
    return savings_result, distribution_result


# ---------------------------------------------------------------------------
# Main evaluation (Fig. 5-10)
# ---------------------------------------------------------------------------

def _tolerance_sweep_result(
    experiment: str,
    description: str,
    scale: ExperimentScale,
    trace,
    dataset,
    tolerances: Sequence[float],
) -> ExperimentResult:
    servers = scale.servers_for(trace, dataset.region_keys)
    sweep = delay_tolerance_sweep(
        trace, dataset, default_policy_set(), servers, tolerances, scale.scheduling_interval_s
    )
    rows = []
    waterwise_carbon: list[float] = []
    waterwise_water: list[float] = []
    for tolerance, results in sweep.items():
        for entry in savings_table(results):
            if entry.policy == "baseline":
                continue
            rows.append(
                [
                    f"{tolerance * 100:g}%",
                    entry.policy,
                    entry.carbon_savings_pct,
                    entry.water_savings_pct,
                    entry.mean_service_ratio,
                    entry.violation_pct,
                ]
            )
            if entry.policy == "waterwise":
                waterwise_carbon.append(entry.carbon_savings_pct)
                waterwise_water.append(entry.water_savings_pct)
    return ExperimentResult(
        experiment=experiment,
        description=description,
        headers=[
            "delay_tolerance",
            "policy",
            "carbon_savings_pct",
            "water_savings_pct",
            "service_ratio",
            "violation_pct",
        ],
        rows=rows,
        metadata={
            "jobs": len(trace),
            "servers_per_region": servers,
            "waterwise_min_carbon_savings_pct": round(min(waterwise_carbon), 2),
            "waterwise_min_water_savings_pct": round(min(waterwise_water), 2),
            "waterwise_max_carbon_savings_pct": round(max(waterwise_carbon), 2),
            "waterwise_max_water_savings_pct": round(max(waterwise_water), 2),
        },
    )


def fig5_waterwise_google(
    scale: ExperimentScale | None = None,
    tolerances: Sequence[float] = _DEFAULT_TOLERANCES,
) -> ExperimentResult:
    """Fig. 5: WaterWise vs. the greedy oracles on the Borg-like trace."""
    scale = scale or ExperimentScale()
    trace = scale.borg_trace()
    dataset = scale.dataset()
    return _tolerance_sweep_result(
        "figure-5",
        "WaterWise vs. Carbon-/Water-Greedy-Opt (Borg-like trace, Electricity-Maps-like data)",
        scale,
        trace,
        dataset,
        tolerances,
    )


def fig6_wri_data(
    scale: ExperimentScale | None = None,
    tolerances: Sequence[float] = _DEFAULT_TOLERANCES,
) -> ExperimentResult:
    """Fig. 6: the same study with World-Resources-Institute-style water data."""
    scale = scale or ExperimentScale()
    trace = scale.borg_trace()
    dataset = scale.dataset(provider=WRILikeProvider)
    return _tolerance_sweep_result(
        "figure-6",
        "WaterWise vs. greedy oracles with WRI-style water-intensity data",
        scale,
        trace,
        dataset,
        tolerances,
    )


def fig7_ecovisor(
    scale: ExperimentScale | None = None,
    delay_tolerance: float = 0.5,
) -> ExperimentResult:
    """Fig. 7: WaterWise vs. an Ecovisor-like carbon-only policy on both data sources."""
    scale = scale or ExperimentScale()
    trace = scale.borg_trace()
    rows = []
    headline = {}
    for provider_name, provider in (
        ("electricity-maps", ElectricityMapsLikeProvider),
        ("wri", WRILikeProvider),
    ):
        dataset = scale.dataset(provider=provider)
        servers = scale.servers_for(trace, dataset.region_keys)
        results = run_policies(
            trace,
            dataset,
            {
                "baseline": BaselineScheduler,
                "ecovisor-like": EcovisorLikeScheduler,
                "waterwise": WaterWiseScheduler,
            },
            servers_per_region=servers,
            delay_tolerance=delay_tolerance,
            scheduling_interval_s=scale.scheduling_interval_s,
        )
        for entry in savings_table(results):
            if entry.policy == "baseline":
                continue
            rows.append(
                [provider_name, entry.policy, entry.carbon_savings_pct, entry.water_savings_pct]
            )
            headline[f"{provider_name}:{entry.policy}"] = (
                round(entry.carbon_savings_pct, 2),
                round(entry.water_savings_pct, 2),
            )
    return ExperimentResult(
        experiment="figure-7",
        description="WaterWise vs. Ecovisor-like policy (both data sources)",
        headers=["data_source", "policy", "carbon_savings_pct", "water_savings_pct"],
        rows=rows,
        metadata={"delay_tolerance": delay_tolerance, **{k: str(v) for k, v in headline.items()}},
    )


def fig8_weight_sensitivity(
    scale: ExperimentScale | None = None,
    lambda_values: Sequence[float] = (0.3, 0.5, 0.7),
    delay_tolerance: float = 0.5,
) -> ExperimentResult:
    """Fig. 8: sensitivity to the carbon/water objective weights."""
    scale = scale or ExperimentScale()
    trace = scale.borg_trace()
    dataset = scale.dataset()
    servers = scale.servers_for(trace, dataset.region_keys)
    policies = {"baseline": BaselineScheduler}
    for value in lambda_values:
        policies[f"waterwise-l{value:g}"] = waterwise_factory(WaterWiseConfig.with_weights(value))
    results = run_policies(
        trace,
        dataset,
        policies,
        servers_per_region=servers,
        delay_tolerance=delay_tolerance,
        scheduling_interval_s=scale.scheduling_interval_s,
    )
    baseline = results["baseline"]
    rows = []
    for value in lambda_values:
        result = results[f"waterwise-l{value:g}"]
        rows.append(
            [
                value,
                result.carbon_savings_vs(baseline),
                result.water_savings_vs(baseline),
            ]
        )
    return ExperimentResult(
        experiment="figure-8",
        description="WaterWise savings as the carbon weight lambda_CO2 varies",
        headers=["lambda_co2", "carbon_savings_pct", "water_savings_pct"],
        rows=rows,
        metadata={"delay_tolerance": delay_tolerance, "jobs": len(trace)},
    )


def fig9_alibaba(
    scale: ExperimentScale | None = None,
    tolerances: Sequence[float] = _DEFAULT_TOLERANCES,
) -> ExperimentResult:
    """Fig. 9: the main comparison driven by the Alibaba-like trace."""
    scale = scale or ExperimentScale()
    trace = scale.alibaba_trace()
    dataset = scale.dataset()
    return _tolerance_sweep_result(
        "figure-9",
        "WaterWise vs. greedy oracles on the Alibaba-like trace",
        scale,
        trace,
        dataset,
        tolerances,
    )


def fig10_loadbalancers(
    scale: ExperimentScale | None = None,
    delay_tolerance: float = 0.5,
) -> ExperimentResult:
    """Fig. 10: WaterWise vs. Round-Robin and Least-Load."""
    scale = scale or ExperimentScale()
    trace = scale.borg_trace()
    dataset = scale.dataset()
    servers = scale.servers_for(trace, dataset.region_keys)
    results = run_policies(
        trace,
        dataset,
        {
            "baseline": BaselineScheduler,
            "round-robin": RoundRobinScheduler,
            "least-load": LeastLoadScheduler,
            "waterwise": WaterWiseScheduler,
        },
        servers_per_region=servers,
        delay_tolerance=delay_tolerance,
        scheduling_interval_s=scale.scheduling_interval_s,
    )
    rows = []
    for entry in savings_table(results):
        if entry.policy == "baseline":
            continue
        rows.append([entry.policy, entry.carbon_savings_pct, entry.water_savings_pct])
    waterwise = results["waterwise"]
    baseline = results["baseline"]
    others_best_carbon = max(
        results[name].carbon_savings_vs(baseline) for name in ("round-robin", "least-load")
    )
    others_best_water = max(
        results[name].water_savings_vs(baseline) for name in ("round-robin", "least-load")
    )
    return ExperimentResult(
        experiment="figure-10",
        description="WaterWise vs. carbon/water-unaware load balancers",
        headers=["policy", "carbon_savings_pct", "water_savings_pct"],
        rows=rows,
        metadata={
            "delay_tolerance": delay_tolerance,
            "waterwise_carbon_advantage_pct": round(
                waterwise.carbon_savings_vs(baseline) - others_best_carbon, 2
            ),
            "waterwise_water_advantage_pct": round(
                waterwise.water_savings_vs(baseline) - others_best_water, 2
            ),
        },
    )
