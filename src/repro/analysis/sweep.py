"""Experiment plumbing: run policies over traces and sweep parameters.

Every evaluation experiment in the paper boils down to "simulate this trace
under these policies at these settings and compare against the baseline".
This module centralizes that plumbing so the per-figure experiment functions
(:mod:`repro.analysis.experiments`) and the benchmark harness stay thin.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Mapping, Sequence

from repro.cluster.capacity import servers_for_target_utilization
from repro.cluster.interface import Scheduler
from repro.cluster.metrics import SimulationResult
from repro.cluster.multi import MultiPolicyRunner
from repro.cluster.simulator import BatchSimulator, Simulator
from repro.cluster.streaming import StreamingSimulator
from repro.traces.stream import TraceSource, TraceView
from repro.core.config import WaterWiseConfig
from repro.core.waterwise import WaterWiseScheduler
from repro.regions.region import Region
from repro.schedulers import (
    BaselineScheduler,
    CarbonGreedyOptimalScheduler,
    WaterGreedyOptimalScheduler,
)
from repro.sustainability.datasets import ElectricityMapsLikeProvider, SustainabilityDataset
from repro.traces.alibaba import AlibabaTraceGenerator
from repro.traces.borg import BorgTraceGenerator
from repro.traces.scenarios import available_scenarios, get_scenario
from repro.traces.trace import Trace

__all__ = [
    "ExperimentScale",
    "simulate",
    "run_policies",
    "delay_tolerance_sweep",
    "scenario_suite",
    "default_policy_set",
]

SchedulerFactory = Callable[[], Scheduler]


@dataclasses.dataclass(frozen=True)
class ExperimentScale:
    """Size of a trace-driven experiment.

    The paper's full scale (10 days of the Borg trace, ≈ 230k jobs, 175
    servers) takes hours to simulate; the default here is a scaled-down
    setting that finishes in seconds per policy while keeping the same
    structure (five regions, ~15% utilization, diurnal arrivals).  Benchmarks
    accept a scale so users can dial the experiment up to the paper's size.

    Attributes
    ----------
    rate_per_hour:
        Borg-like submission rate (the Alibaba-like rate is 8.5× this).
    duration_days:
        Trace length.
    seed:
        Seed for trace generation and synthetic data.
    target_utilization:
        Average cluster utilization the server count is sized for.
    scheduling_interval_s:
        Scheduling-round cadence.
    """

    rate_per_hour: float = 60.0
    duration_days: float = 0.5
    seed: int = 42
    target_utilization: float = 0.15
    scheduling_interval_s: float = 300.0

    def borg_trace(self, rate_multiplier: float = 1.0) -> Trace:
        """Generate the Borg-like trace for this scale."""
        return BorgTraceGenerator(
            rate_per_hour=self.rate_per_hour * rate_multiplier,
            duration_days=self.duration_days,
            seed=self.seed,
        ).generate()

    def alibaba_trace(self) -> Trace:
        """Generate the Alibaba-like trace for this scale (8.5× the Borg rate)."""
        return AlibabaTraceGenerator(
            rate_per_hour=self.rate_per_hour * 8.5,
            duration_days=self.duration_days,
            seed=self.seed,
        ).generate()

    def scenario_trace(
        self, name: str, rate_per_hour: float | None = None
    ) -> Trace:
        """Generate a named scenario trace over this scale's horizon and seed.

        The scenario family's natural submission rate is kept unless
        ``rate_per_hour`` overrides it (families differ deliberately — e.g.
        ``ml-training`` submits few long jobs).
        """
        return get_scenario(name).trace(
            seed=self.seed,
            rate_per_hour=rate_per_hour,
            duration_days=self.duration_days,
        )

    def dataset(
        self, provider: type[SustainabilityDataset] = ElectricityMapsLikeProvider, **kwargs
    ) -> SustainabilityDataset:
        """Build the sustainability dataset covering this scale's horizon."""
        horizon_hours = int(self.duration_days * 24) + 48
        kwargs.setdefault("horizon_hours", max(horizon_hours, 72))
        kwargs.setdefault("seed", self.seed)
        return provider(**kwargs)

    def servers_for(self, trace: Trace, region_keys: Sequence[str],
                    utilization: float | None = None) -> int:
        """Servers per region for the requested utilization."""
        return servers_for_target_utilization(
            trace, region_keys, utilization if utilization is not None else self.target_utilization
        )


def simulate(
    trace: Trace,
    scheduler: Scheduler,
    dataset: SustainabilityDataset,
    servers_per_region: int | Mapping[str, int],
    delay_tolerance: float,
    scheduling_interval_s: float = 300.0,
    regions: Sequence[Region] | None = None,
    include_embodied: bool = True,
    engine: str = "scalar",
    chunk_size: int = 4096,
    chaos=None,
    chaos_seed: int = 0,
    kernel: str = "vector",
) -> SimulationResult:
    """Run one policy over one trace (thin wrapper around the simulators).

    ``engine="batch"`` runs the vectorized :class:`BatchSimulator` (identical
    decisions and footprints, ~13–16x faster on large traces) and converts
    the columnar result back to a :class:`SimulationResult` so callers are
    engine-agnostic.  ``engine="stream"`` runs the bounded-memory
    :class:`StreamingSimulator` over ``trace`` — either a chunked
    :class:`~repro.traces.stream.TraceSource` or a materialized trace
    (wrapped in a :class:`~repro.traces.stream.TraceView`) — and returns its
    aggregate-only :class:`~repro.cluster.streaming.StreamResult` (same
    figures of merit, no per-job outcome list).

    ``kernel`` selects the array engines' event-kernel tier
    (``auto``/``vector``/``scalar``/``compiled``; results are
    tier-invariant).  The scalar *engine* has no kernel and ignores it.
    """
    if engine not in ("scalar", "batch", "stream"):
        raise ValueError(
            f"engine must be 'scalar', 'batch' or 'stream', got {engine!r}"
        )
    if chaos is not None and engine == "scalar":
        raise ValueError(
            "chaos timelines need the array engines: use engine='batch' or "
            "'stream' (BatchSimulator(kernel='scalar') is the chaos reference)"
        )
    if engine == "stream":
        source = trace if isinstance(trace, TraceSource) else TraceView(trace)
        return StreamingSimulator(
            source,
            scheduler,
            dataset=dataset,
            regions=regions,
            servers_per_region=servers_per_region,
            scheduling_interval_s=scheduling_interval_s,
            delay_tolerance=delay_tolerance,
            include_embodied=include_embodied,
            chunk_size=chunk_size,
            collect="aggregate",
            chaos=chaos,
            chaos_seed=chaos_seed,
            kernel=kernel,
        ).run()
    if isinstance(trace, TraceSource):
        trace = trace.materialize()
    engine_cls = BatchSimulator if engine == "batch" else Simulator
    engine_kwargs = {"kernel": kernel} if engine == "batch" else {}
    result = engine_cls(
        trace=trace,
        scheduler=scheduler,
        dataset=dataset,
        regions=regions,
        servers_per_region=servers_per_region,
        scheduling_interval_s=scheduling_interval_s,
        delay_tolerance=delay_tolerance,
        include_embodied=include_embodied,
        chaos=chaos,
        chaos_seed=chaos_seed,
        **engine_kwargs,
    ).run()
    return result.to_simulation_result() if engine == "batch" else result


def default_policy_set(include_oracles: bool = True) -> dict[str, SchedulerFactory]:
    """The policy set used by most experiments: baseline, oracles, WaterWise."""
    policies: dict[str, SchedulerFactory] = {"baseline": BaselineScheduler}
    if include_oracles:
        policies["carbon-greedy-opt"] = CarbonGreedyOptimalScheduler
        policies["water-greedy-opt"] = WaterGreedyOptimalScheduler
    policies["waterwise"] = WaterWiseScheduler
    return policies


def run_policies(
    trace: Trace,
    dataset: SustainabilityDataset,
    policies: Mapping[str, SchedulerFactory],
    servers_per_region: int | Mapping[str, int],
    delay_tolerance: float,
    scheduling_interval_s: float = 300.0,
    regions: Sequence[Region] | None = None,
    include_embodied: bool = True,
    engine: str = "scalar",
    chunk_size: int = 4096,
    chaos=None,
    chaos_seed: int = 0,
    kernel: str = "vector",
) -> dict[str, SimulationResult]:
    """Simulate every policy in ``policies`` under identical conditions.

    With ``engine="stream"`` every policy cell replays the *same* chunked
    source (streams are restartable and chunk-size-invariant), so sweep
    memory stays O(chunk) instead of O(n_policies × n_jobs).
    ``engine="fused"`` goes one step further: a single
    :class:`~repro.cluster.multi.MultiPolicyRunner` pass drives every policy
    in lockstep over one chunk stream, so trace generation and columnization
    are paid once for the whole policy set instead of once per cell.  Fused
    results are the streaming engine's aggregate
    :class:`~repro.cluster.streaming.StreamResult`\\ s (identical decisions,
    same summary keys).
    """
    if engine == "fused":
        source = trace if isinstance(trace, TraceSource) else TraceView(trace)
        runner = MultiPolicyRunner(
            source,
            {name: factory() for name, factory in policies.items()},
            dataset=dataset,
            chunk_size=chunk_size,
            collect="aggregate",
            regions=regions,
            servers_per_region=servers_per_region,
            scheduling_interval_s=scheduling_interval_s,
            delay_tolerance=delay_tolerance,
            include_embodied=include_embodied,
            chaos=chaos,
            chaos_seed=chaos_seed,
            kernel=kernel,
        )
        return runner.run()
    if engine != "stream" and isinstance(trace, TraceSource):
        # Materialize once, not once per policy cell.
        trace = trace.materialize()
    results: dict[str, SimulationResult] = {}
    for name, factory in policies.items():
        results[name] = simulate(
            trace,
            factory(),
            dataset,
            servers_per_region=servers_per_region,
            delay_tolerance=delay_tolerance,
            scheduling_interval_s=scheduling_interval_s,
            regions=regions,
            include_embodied=include_embodied,
            engine=engine,
            chunk_size=chunk_size,
            chaos=chaos,
            chaos_seed=chaos_seed,
            kernel=kernel,
        )
    return results


def delay_tolerance_sweep(
    trace: Trace,
    dataset: SustainabilityDataset,
    policies: Mapping[str, SchedulerFactory],
    servers_per_region: int | Mapping[str, int],
    tolerances: Sequence[float],
    scheduling_interval_s: float = 300.0,
) -> dict[float, dict[str, SimulationResult]]:
    """Run ``policies`` for every delay tolerance in ``tolerances``.

    This is the shape of the paper's Fig. 3/5/6/9/11: one group of bars per
    delay tolerance, one bar per policy.
    """
    if not tolerances:
        raise ValueError("tolerances must not be empty")
    sweep: dict[float, dict[str, SimulationResult]] = {}
    for tolerance in tolerances:
        sweep[float(tolerance)] = run_policies(
            trace,
            dataset,
            policies,
            servers_per_region=servers_per_region,
            delay_tolerance=float(tolerance),
            scheduling_interval_s=scheduling_interval_s,
        )
    return sweep


def scenario_suite(
    policies: Mapping[str, SchedulerFactory],
    scenario_names: Sequence[str] | None = None,
    scale: ExperimentScale | None = None,
    delay_tolerance: float = 0.25,
    servers_per_region: int | Mapping[str, int] | None = None,
    engine: str = "batch",
) -> dict[str, dict[str, SimulationResult]]:
    """Run ``policies`` over every scenario family under identical conditions.

    The scenario-diversity counterpart of :func:`delay_tolerance_sweep`: one
    result group per scenario, one result per policy.  Server counts are
    sized per scenario for the scale's target utilization unless given.
    Chaos scenarios (``Scenario.chaos``) automatically run their engines
    under the scenario's fault-injection timeline, seeded with the scale's
    seed.
    """
    scale = scale if scale is not None else ExperimentScale()
    names = tuple(scenario_names) if scenario_names is not None else available_scenarios()
    if not names:
        raise ValueError("scenario_names must not be empty")
    dataset = scale.dataset()
    suite: dict[str, dict[str, SimulationResult]] = {}
    for name in names:
        scenario = get_scenario(name)
        trace = scale.scenario_trace(name)
        servers = (
            servers_per_region
            if servers_per_region is not None
            else scale.servers_for(trace, dataset.region_keys)
        )
        suite[name] = run_policies(
            trace,
            dataset,
            policies,
            servers_per_region=servers,
            delay_tolerance=delay_tolerance,
            scheduling_interval_s=scale.scheduling_interval_s,
            engine=engine,
            chaos=scenario.chaos,
            chaos_seed=scale.seed,
        )
    return suite


def waterwise_factory(config: WaterWiseConfig) -> SchedulerFactory:
    """A factory returning WaterWise schedulers with a fixed configuration."""

    def factory() -> WaterWiseScheduler:
        return WaterWiseScheduler(config)

    return factory
