"""Work-queue dispatcher for distributed sweeps: lease, run, merge exactly.

The fabric turns :mod:`repro.analysis.shard`'s specs into a running sweep:
a :class:`FabricCoordinator` owns the lease queue and the exact merge state,
workers — on any transport — loop *lease → run_shard → complete*, and the
coordinator reassembles outcomes bit-identical to a single-box fused run.

Three transports sit behind one tiny RPC surface
(``lease`` / ``heartbeat`` / ``complete`` / ``fail``):

* ``"inprocess"`` — worker threads calling the coordinator directly; the
  reference implementation the other transports must agree with (and the
  zero-dependency way to debug a sweep);
* ``"process"`` — local worker processes over multiprocessing queues; the
  sweep-executor seam of :func:`repro.analysis.parallel.run_sweep`, now a
  transport;
* ``"tcp"`` — a JSON-lines TCP server (the :mod:`repro.service.server`
  idiom) with workers connecting over sockets; workers may be spawned
  locally (loopback multi-node) or started on other machines with
  ``repro shard-worker --connect host:port``.

Fault model: every lease carries a deadline, workers heartbeat while a shard
runs, and a worker lost mid-shard (crash, kill, partition) simply stops
heartbeating — the lease expires, the shard returns to the queue, and the
next worker resumes from the lineage's last format-4 checkpoint instead of
restarting.  Stragglers past a multiple of the median shard duration get a
duplicate lease rather than being awaited; completions are idempotent and
first-complete-wins.  The TCP client retries with exponential backoff and
jitter and bounds every wait with a socket timeout, so a transient stall
degrades to a re-lease instead of hanging the sweep.
"""

from __future__ import annotations

import base64
import contextlib
import itertools
import json
import os
import pickle
import queue as queue_module
import random
import socket
import statistics
import subprocess
import sys
import tempfile
import threading
import time
from collections import OrderedDict
from collections.abc import Sequence
from pathlib import Path

from repro.analysis.parallel import SweepOutcome, SweepPoint, _outcome_from_result
from repro.analysis.shard import (
    DEFAULT_CHECKPOINT_EVERY,
    DEFAULT_CHUNK_SIZE,
    MergeableAggregates,
    ShardResult,
    ShardSpec,
    checkpoint_path,
    derive_shards,
    run_shard,
)

__all__ = [
    "ShardQueue",
    "FabricCoordinator",
    "FabricServer",
    "FabricClient",
    "run_fabric_sweep",
    "run_shard_worker",
    "worker_loop",
    "TRANSPORTS",
]

TRANSPORTS = ("inprocess", "process", "tcp")

_LEASE_TIMEOUT = 60.0
_STRAGGLER_FACTOR = 4.0
_MAX_FAILURES = 3


class _Entry:
    __slots__ = ("spec", "state", "leases", "failures", "first_leased_at")

    def __init__(self, spec: ShardSpec) -> None:
        self.spec = spec
        self.state = "pending"  # pending | running | done | failed
        self.leases: dict[str, float] = {}  # lease id -> deadline
        self.failures = 0
        self.first_leased_at: float | None = None


class ShardQueue:
    """Thread-safe lease state machine over a set of shards.

    Shards move ``pending → running → done``; a lease that misses its
    deadline (no heartbeat) throws the shard back to ``pending`` — that *is*
    the re-dispatch path, there is no separate recovery machinery.  Each
    full lease loss counts toward ``max_failures``; a shard exceeding it
    poisons the queue (:attr:`error`) so a systematically crashing cell
    aborts the sweep instead of cycling forever.  Running shards that have
    outlived ``straggler_factor ×`` the median completed-shard duration are
    handed out a *duplicate* lease; :meth:`complete` is idempotent and the
    first result wins.
    """

    def __init__(
        self,
        specs: Sequence[ShardSpec],
        lease_timeout: float = _LEASE_TIMEOUT,
        straggler_factor: float = _STRAGGLER_FACTOR,
        max_failures: int = _MAX_FAILURES,
        clock=time.monotonic,
    ) -> None:
        if lease_timeout <= 0:
            raise ValueError("lease_timeout must be positive")
        self.lease_timeout = float(lease_timeout)
        self.straggler_factor = float(straggler_factor)
        self.max_failures = int(max_failures)
        self.error: str | None = None
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._lease_owner: dict[str, str] = {}  # lease id -> shard key (kept forever)
        self._lease_started: dict[str, float] = {}
        self._lease_counter = itertools.count()
        self._durations: list[float] = []
        for spec in specs:
            self.add(spec)

    # -- queue growth ------------------------------------------------------------------
    def add(self, spec: ShardSpec) -> None:
        """Enqueue a shard (initial derivation and dynamic continuations)."""
        key = spec.key()
        with self._lock:
            if key in self._entries:
                return
            self._entries[key] = _Entry(spec)

    # -- lease lifecycle ---------------------------------------------------------------
    def _expire_locked(self, now: float) -> list[ShardSpec]:
        expired = []
        for entry in self._entries.values():
            if entry.state != "running":
                continue
            stale = [lease for lease, deadline in entry.leases.items() if deadline < now]
            for lease in stale:
                del entry.leases[lease]
            if stale and not entry.leases:
                entry.failures += 1
                if entry.failures >= self.max_failures:
                    entry.state = "failed"
                    self.error = (
                        f"shard {entry.spec.key()} lost its lease "
                        f"{entry.failures} times (last worker never completed)"
                    )
                else:
                    entry.state = "pending"
                    expired.append(entry.spec)
        return expired

    def expire(self) -> list[ShardSpec]:
        """Drop overdue leases; returns the shards thrown back to pending."""
        with self._lock:
            return self._expire_locked(self._clock())

    def _grant_locked(self, entry: _Entry, worker: str, now: float) -> tuple[str, ShardSpec]:
        lease = f"L{next(self._lease_counter)}-{worker}"
        entry.state = "running"
        entry.leases[lease] = now + self.lease_timeout
        if entry.first_leased_at is None:
            entry.first_leased_at = now
        self._lease_owner[lease] = entry.spec.key()
        self._lease_started[lease] = now
        return lease, entry.spec

    def _straggler_threshold_locked(self) -> float | None:
        if not self._durations:
            return None
        return self.straggler_factor * max(
            statistics.median(self._durations), 1e-3
        )

    def lease(self, worker: str = "?") -> tuple[str, ShardSpec] | None:
        """Grant the next pending shard (or a straggler duplicate); None if idle."""
        with self._lock:
            now = self._clock()
            self._expire_locked(now)
            if self.error is not None:
                return None
            for entry in self._entries.values():
                if entry.state == "pending":
                    return self._grant_locked(entry, worker, now)
            threshold = self._straggler_threshold_locked()
            if threshold is not None:
                for entry in self._entries.values():
                    if (
                        entry.state == "running"
                        and len(entry.leases) == 1
                        and entry.first_leased_at is not None
                        and now - entry.first_leased_at > threshold
                    ):
                        return self._grant_locked(entry, worker, now)
            return None

    def heartbeat(self, lease: str) -> str:
        """Extend a lease; ``"ok"``, ``"done"`` (shard finished) or ``"lost"``."""
        with self._lock:
            key = self._lease_owner.get(lease)
            if key is None:
                return "lost"
            entry = self._entries.get(key)
            if entry is None:
                return "lost"
            if entry.state == "done":
                return "done"
            if lease in entry.leases:
                entry.leases[lease] = self._clock() + self.lease_timeout
                return "ok"
            return "lost"

    def complete(self, lease: str) -> bool:
        """First-complete-wins: True iff this lease's result should be applied.

        A worker whose lease expired (but which finished anyway) is still
        accepted when nobody else completed first — the work is
        deterministic, so the result is as good as any re-run's.
        """
        with self._lock:
            key = self._lease_owner.get(lease)
            if key is None:
                return False
            entry = self._entries.get(key)
            if entry is None or entry.state in ("done", "failed"):
                return False
            entry.state = "done"
            entry.leases.clear()
            started = self._lease_started.get(lease)
            if started is not None:
                self._durations.append(self._clock() - started)
            return True

    def fail(self, lease: str, error: str = "") -> None:
        """A worker reported a shard exception: requeue or poison the queue."""
        with self._lock:
            key = self._lease_owner.get(lease)
            if key is None:
                return
            entry = self._entries.get(key)
            if entry is None or entry.state != "running":
                return
            entry.leases.pop(lease, None)
            entry.failures += 1
            if entry.failures >= self.max_failures:
                entry.state = "failed"
                self.error = f"shard {key} failed {entry.failures} times: {error}"
            elif not entry.leases:
                entry.state = "pending"

    # -- progress ----------------------------------------------------------------------
    def all_done(self) -> bool:
        with self._lock:
            return all(entry.state == "done" for entry in self._entries.values())

    def counts(self) -> dict[str, int]:
        with self._lock:
            out = {"pending": 0, "running": 0, "done": 0, "failed": 0}
            for entry in self._entries.values():
                out[entry.state] += 1
            return out

    def specs(self) -> list[ShardSpec]:
        with self._lock:
            return [entry.spec for entry in self._entries.values()]


class FabricCoordinator:
    """The sweep-side brain: lease queue + exact merge + outcome assembly.

    Transport-agnostic: every transport funnels worker requests into
    :meth:`rpc` (thread-safe) and the coordinator neither knows nor cares
    whether the bytes came from a thread, a pipe or a socket — the
    scheduler-DB replay idiom: a durable spec store whose entries take the
    identical path regardless of which worker picks them up.
    """

    def __init__(
        self,
        points: Sequence[SweepPoint],
        checkpoint_dir,
        policies_per_shard: int = 1,
        chunks_per_slab: int | None = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        lease_timeout: float = _LEASE_TIMEOUT,
        straggler_factor: float = _STRAGGLER_FACTOR,
        max_failures: int = _MAX_FAILURES,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    ) -> None:
        self.points = list(points)
        self.checkpoint_dir = Path(checkpoint_dir)
        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        self.checkpoint_every = int(checkpoint_every)
        self.queue = ShardQueue(
            derive_shards(
                self.points,
                policies_per_shard=policies_per_shard,
                chunks_per_slab=chunks_per_slab,
                chunk_size=chunk_size,
            ),
            lease_timeout=lease_timeout,
            straggler_factor=straggler_factor,
            max_failures=max_failures,
        )
        self.aggregates = MergeableAggregates()
        self._merge_lock = threading.Lock()

    # -- worker RPC surface ------------------------------------------------------------
    def rpc(self, request: dict) -> dict:
        op = request.get("op")
        if op == "lease":
            granted = self.queue.lease(str(request.get("worker", "?")))
            if granted is None:
                done = self.done()
                return {"ok": True, "idle": not done, "done": done}
            lease, spec = granted
            return {
                "ok": True,
                "lease": lease,
                "spec": spec,
                "checkpoint_every": self.checkpoint_every,
            }
        if op == "heartbeat":
            return {"ok": True, "status": self.queue.heartbeat(str(request["lease"]))}
        if op == "complete":
            result = request["result"]
            if not isinstance(result, ShardResult):
                return {"ok": False, "error": "complete needs a ShardResult payload"}
            accepted = self.queue.complete(str(request["lease"]))
            if accepted:
                with self._merge_lock:
                    self.aggregates.absorb(result)
                if not result.final:
                    self.queue.add(result.spec.continuation(result.chunks_done))
            return {"ok": True, "accepted": accepted}
        if op == "fail":
            self.queue.fail(str(request["lease"]), str(request.get("error", "")))
            return {"ok": True}
        return {"ok": False, "error": f"unknown op {op!r}"}

    # -- sweep lifecycle ---------------------------------------------------------------
    def done(self) -> bool:
        return self.queue.error is not None or self.queue.all_done()

    def outcomes(self) -> list[SweepOutcome]:
        """Assemble per-point outcomes in input order (raises on a failed sweep)."""
        if self.queue.error is not None:
            raise RuntimeError(f"distributed sweep failed: {self.queue.error}")
        missing = self.aggregates.pending(range(len(self.points)))
        if missing:
            raise RuntimeError(
                f"distributed sweep incomplete: no final slab for points {missing}"
            )
        return [
            _outcome_from_result(point, self.aggregates.result(index))
            for index, point in enumerate(self.points)
        ]

    def cleanup_checkpoints(self) -> None:
        """Remove every lineage checkpoint this sweep may have written."""
        for spec in self.queue.specs():
            with contextlib.suppress(OSError):
                checkpoint_path(self.checkpoint_dir, spec).unlink()


# -- the worker side (transport-agnostic) -----------------------------------------------


def _heartbeat_pump(client, lease: str, interval: float, stop: threading.Event) -> None:
    while not stop.wait(interval):
        try:
            reply = client.rpc({"op": "heartbeat", "lease": lease})
        except Exception:
            return  # the RPC path retries internally; give up quietly past that
        if reply.get("status") == "done":
            return


def worker_loop(
    client,
    checkpoint_dir,
    worker: str = "worker",
    heartbeat_interval: float | None = None,
    idle_sleep: float = 0.05,
) -> int:
    """Lease shards until the coordinator reports the sweep done.

    ``client`` is anything with ``rpc(dict) -> dict`` — the in-process
    coordinator handle, a multiprocessing queue pair, or a TCP client.  A
    heartbeat thread keeps the lease alive while :func:`run_shard` blocks;
    exceptions turn into ``fail`` reports (the coordinator decides whether
    to re-lease or abort).  Returns the number of shards completed.
    """
    completed = 0
    while True:
        reply = client.rpc({"op": "lease", "worker": worker})
        if reply.get("done"):
            return completed
        spec = reply.get("spec")
        if spec is None:
            time.sleep(idle_sleep)
            continue
        lease = reply["lease"]
        stop = threading.Event()
        pump = None
        if heartbeat_interval:
            pump = threading.Thread(
                target=_heartbeat_pump,
                args=(client, lease, heartbeat_interval, stop),
                daemon=True,
            )
            pump.start()
        try:
            result = run_shard(
                spec,
                checkpoint_dir,
                checkpoint_every=int(reply.get("checkpoint_every", DEFAULT_CHECKPOINT_EVERY)),
            )
        except Exception as error:
            stop.set()
            client.rpc(
                {"op": "fail", "lease": lease, "error": f"{type(error).__name__}: {error}"}
            )
            continue
        finally:
            stop.set()
            if pump is not None:
                pump.join(timeout=1.0)
        client.rpc({"op": "complete", "lease": lease, "result": result})
        completed += 1


class _LocalClient:
    """In-process transport: the client *is* the coordinator."""

    def __init__(self, coordinator: FabricCoordinator) -> None:
        self._coordinator = coordinator

    def rpc(self, request: dict) -> dict:
        return self._coordinator.rpc(request)


# -- multiprocess transport -------------------------------------------------------------


class _QueueClient:
    """Worker-side RPC over a shared request queue + per-worker reply queue.

    Heartbeats are fire-and-forget (no reply) so the pump thread's traffic
    never interleaves with the main thread's request/reply pairs.
    """

    def __init__(self, requests, replies, worker_id: int) -> None:
        self._requests = requests
        self._replies = replies
        self._worker_id = worker_id
        self._lock = threading.Lock()

    def rpc(self, request: dict) -> dict:
        if request.get("op") == "heartbeat":
            self._requests.put((self._worker_id, request, False))
            return {"ok": True, "status": "ok"}
        with self._lock:
            self._requests.put((self._worker_id, request, True))
            return self._replies.get()


def _process_worker_main(
    worker_id: int, requests, replies, checkpoint_dir: str, heartbeat_interval: float
) -> None:
    client = _QueueClient(requests, replies, worker_id)
    worker_loop(
        client,
        checkpoint_dir,
        worker=f"proc-{worker_id}",
        heartbeat_interval=heartbeat_interval,
    )


def _serve_queue_requests(
    coordinator: FabricCoordinator, requests, replies: list, stop: threading.Event
) -> None:
    while not stop.is_set():
        try:
            worker_id, request, needs_reply = requests.get(timeout=0.1)
        except queue_module.Empty:
            continue
        reply = coordinator.rpc(request)
        if needs_reply:
            replies[worker_id].put(reply)


def _run_transport_process(
    coordinator: FabricCoordinator, workers: int, heartbeat_interval: float
) -> None:
    import multiprocessing as mp

    context = mp.get_context()
    requests = context.Queue()
    replies = [context.Queue() for _ in range(workers)]
    stop = threading.Event()
    pump = threading.Thread(
        target=_serve_queue_requests,
        args=(coordinator, requests, replies, stop),
        daemon=True,
    )
    pump.start()
    procs = [
        context.Process(
            target=_process_worker_main,
            args=(
                i,
                requests,
                replies[i],
                str(coordinator.checkpoint_dir),
                heartbeat_interval,
            ),
            daemon=True,
        )
        for i in range(workers)
    ]
    for proc in procs:
        proc.start()
    try:
        while not coordinator.done():
            coordinator.queue.expire()
            if all(not proc.is_alive() for proc in procs):
                raise RuntimeError(
                    "all fabric workers exited before the sweep completed"
                )
            time.sleep(0.05)
        # Let live workers observe "done" on their next lease and exit.
        for proc in procs:
            proc.join(timeout=5.0)
    finally:
        stop.set()
        pump.join(timeout=2.0)
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)


# -- inprocess transport ----------------------------------------------------------------


def _run_transport_inprocess(coordinator: FabricCoordinator, workers: int) -> None:
    threads = [
        threading.Thread(
            target=worker_loop,
            args=(_LocalClient(coordinator), coordinator.checkpoint_dir),
            kwargs={"worker": f"thread-{i}"},
            daemon=True,
        )
        for i in range(workers)
    ]
    for thread in threads:
        thread.start()
    while not coordinator.done():
        coordinator.queue.expire()
        time.sleep(0.02)
    for thread in threads:
        thread.join(timeout=5.0)


# -- TCP transport ----------------------------------------------------------------------


def _encode_result(result: ShardResult) -> str:
    return base64.b64encode(pickle.dumps(result)).decode("ascii")


def _decode_result(blob: str) -> ShardResult:
    return pickle.loads(base64.b64decode(blob.encode("ascii")))


class FabricServer:
    """JSON-lines TCP front end over a :class:`FabricCoordinator`.

    One request per line, one response per line, UTF-8 JSON — the
    :class:`repro.service.server.AdmissionServer` idiom.  Shard specs travel
    as plain JSON (:meth:`ShardSpec.as_dict`); shard results, which carry
    accumulator objects, travel as base64 pickles inside the JSON envelope.
    Runs its asyncio loop in a background thread so the coordinator's
    blocking main loop stays untouched.
    """

    def __init__(
        self, coordinator: FabricCoordinator, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.coordinator = coordinator
        self.host = host
        self.port = int(port)
        self._thread: threading.Thread | None = None
        self._loop = None
        self._server = None
        self._ready = threading.Event()
        self._failure: BaseException | None = None

    # -- request handling (runs on the loop thread) ------------------------------------
    def _dispatch(self, request: dict) -> dict:
        op = request.get("op")
        if op == "lease":
            reply = self.coordinator.rpc(request)
            spec = reply.pop("spec", None)
            if spec is not None:
                reply["spec"] = spec.as_dict()
            return reply
        if op == "complete":
            request = dict(request)
            request["result"] = _decode_result(request["result"])
            return self.coordinator.rpc(request)
        return self.coordinator.rpc(request)

    async def _handle(self, reader, writer):
        import asyncio

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line)
                    # Shard work is CPU-trivial here (queue ops + merges);
                    # run in the default executor so a large result unpickle
                    # never starves the accept loop.
                    response = await asyncio.get_running_loop().run_in_executor(
                        None, self._dispatch, request
                    )
                except (KeyError, ValueError, TypeError, RuntimeError) as error:
                    response = {"ok": False, "error": f"{type(error).__name__}: {error}"}
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
        finally:
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()

    async def _main(self, started: threading.Event) -> None:
        import asyncio

        self._loop = asyncio.get_running_loop()
        # Completed-shard lines carry base64-pickled accumulators — far past
        # asyncio's default 64 KiB readline limit.
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port, limit=1 << 28
        )
        self.port = self._server.sockets[0].getsockname()[1]
        started.set()
        async with self._server:
            with contextlib.suppress(asyncio.CancelledError):
                await asyncio.Event().wait()

    def _thread_main(self) -> None:
        import asyncio

        try:
            asyncio.run(self._main(self._ready))
        except BaseException as error:  # surfaces in start()/stop()
            self._failure = error
            self._ready.set()

    def start(self) -> "FabricServer":
        self._thread = threading.Thread(target=self._thread_main, daemon=True)
        self._thread.start()
        self._ready.wait(timeout=10.0)
        if self._failure is not None:
            raise RuntimeError(f"fabric server failed to start: {self._failure}")
        if self._server is None:
            raise RuntimeError("fabric server did not come up within 10s")
        return self

    def stop(self) -> None:
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._cancel_all)
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def _cancel_all(self) -> None:
        import asyncio

        for task in asyncio.all_tasks(self._loop):
            task.cancel()


class FabricClient:
    """Blocking JSON-lines TCP client with retry, backoff + jitter, and timeouts.

    Every RPC is bounded by ``timeout`` (socket-level), so a stalled
    coordinator read raises instead of hanging the worker; transient
    connect/send/recv failures reconnect and retry with exponential backoff
    and multiplicative jitter.  ``complete`` retries are safe: the
    coordinator's first-complete-wins makes re-delivery idempotent.
    Thread-safe (one in-flight RPC at a time).
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 60.0,
        retries: int = 5,
        backoff_base: float = 0.1,
        backoff_cap: float = 5.0,
        seed: int | None = None,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._sock: socket.socket | None = None
        self._file = None

    def _connect(self) -> None:
        if self._sock is not None:
            return
        sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
        sock.settimeout(self.timeout)
        self._sock = sock
        self._file = sock.makefile("rwb")

    def close(self) -> None:
        with self._lock:
            self._close_locked()

    def _close_locked(self) -> None:
        if self._file is not None:
            with contextlib.suppress(OSError):
                self._file.close()
            self._file = None
        if self._sock is not None:
            with contextlib.suppress(OSError):
                self._sock.close()
            self._sock = None

    def _backoff(self, attempt: int) -> float:
        # Full-jitter exponential backoff: uniform in (0, base * 2^attempt],
        # capped — avoids thundering-herd re-lease storms after a
        # coordinator hiccup.
        span = min(self.backoff_cap, self.backoff_base * (2.0 ** attempt))
        return span * (0.5 + 0.5 * self._rng.random())

    def rpc(self, request: dict) -> dict:
        if request.get("op") == "complete" and isinstance(
            request.get("result"), ShardResult
        ):
            request = dict(request)
            request["result"] = _encode_result(request["result"])
        line = json.dumps(request).encode() + b"\n"
        last_error: Exception | None = None
        with self._lock:
            for attempt in range(self.retries + 1):
                try:
                    self._connect()
                    self._file.write(line)
                    self._file.flush()
                    reply = self._file.readline()
                    if not reply:
                        raise ConnectionError("coordinator closed the connection")
                    return json.loads(reply)
                except (OSError, ValueError, ConnectionError) as error:
                    last_error = error
                    self._close_locked()
                    if attempt >= self.retries:
                        break
                    time.sleep(self._backoff(attempt))
        raise ConnectionError(
            f"fabric RPC to {self.host}:{self.port} failed after "
            f"{self.retries + 1} attempts: {last_error}"
        )


class _TcpWorkerClient(FabricClient):
    """Worker-facing TCP client that re-hydrates lease specs from JSON."""

    def rpc(self, request: dict) -> dict:
        reply = super().rpc(request)
        spec = reply.get("spec")
        if spec is not None:
            reply["spec"] = ShardSpec.from_dict(spec)
        return reply


def run_shard_worker(
    host: str,
    port: int,
    checkpoint_dir,
    worker: str = "",
    heartbeat_interval: float | None = 5.0,
    timeout: float = 60.0,
    retries: int = 5,
) -> int:
    """Connect to a fabric coordinator and work shards until the sweep ends.

    The entry point behind ``repro shard-worker --connect host:port`` —
    run it on as many machines as you like; every worker needs the same
    code version (checkpoints and specs are pickled/replayed) but rebuilds
    workloads locally from the spec parameters, so no trace data crosses
    the wire.  Returns the number of shards this worker completed.
    """
    client = _TcpWorkerClient(host, port, timeout=timeout, retries=retries)
    name = worker or f"{socket.gethostname()}-{os.getpid()}"
    try:
        return worker_loop(
            client,
            checkpoint_dir,
            worker=name,
            heartbeat_interval=heartbeat_interval,
        )
    finally:
        client.close()


def _spawn_local_tcp_workers(
    port: int, workers: int, checkpoint_dir, heartbeat_interval: float
) -> list:
    """Local worker subprocesses for the TCP-loopback (simulated multi-node) case."""
    import repro

    src_root = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in (src_root, env.get("PYTHONPATH")) if part
    )
    procs = []
    for index in range(workers):
        procs.append(
            subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro",
                    "shard-worker",
                    "--connect",
                    f"127.0.0.1:{port}",
                    "--checkpoint-dir",
                    str(checkpoint_dir),
                    "--worker",
                    f"tcp-{index}",
                    "--heartbeat-interval",
                    str(heartbeat_interval),
                ],
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )
        )
    return procs


def _run_transport_tcp(
    coordinator: FabricCoordinator, workers: int, heartbeat_interval: float
) -> None:
    server = FabricServer(coordinator).start()
    procs = []
    try:
        procs = _spawn_local_tcp_workers(
            server.port, workers, coordinator.checkpoint_dir, heartbeat_interval
        )
        while not coordinator.done():
            coordinator.queue.expire()
            if all(proc.poll() is not None for proc in procs):
                raise RuntimeError(
                    "all fabric workers exited before the sweep completed"
                )
            time.sleep(0.05)
        for proc in procs:
            with contextlib.suppress(subprocess.TimeoutExpired):
                proc.wait(timeout=5.0)
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
                with contextlib.suppress(subprocess.TimeoutExpired):
                    proc.wait(timeout=2.0)
                if proc.poll() is None:
                    proc.kill()
        server.stop()


# -- entry point ------------------------------------------------------------------------


def run_fabric_sweep(
    points: Sequence[SweepPoint],
    workers: int | None = None,
    transport: str = "process",
    policies_per_shard: int = 1,
    chunks_per_slab: int | None = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    checkpoint_dir=None,
    lease_timeout: float = _LEASE_TIMEOUT,
    heartbeat_interval: float | None = None,
    straggler_factor: float = _STRAGGLER_FACTOR,
    max_failures: int = _MAX_FAILURES,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    cleanup: bool = True,
) -> list[SweepOutcome]:
    """Run a sweep through the shard fabric; outcomes in input order.

    The distributed counterpart of
    :func:`repro.analysis.parallel.run_sweep` — same points in, same
    outcomes out, and the assembled aggregates are *bit-identical*
    (``StreamResult.digest``) to ``run_sweep(fused=True)`` at any worker
    count, transport and shard order.  ``checkpoint_dir`` must be shared by
    all workers (a local path for local transports, a shared filesystem for
    real multi-node TCP); ``None`` uses a sweep-lifetime temp directory.
    """
    if transport not in TRANSPORTS:
        raise ValueError(f"transport must be one of {TRANSPORTS}, got {transport!r}")
    points = list(points)
    if not points:
        return []
    if workers is None:
        workers = max(1, min(4, os.cpu_count() or 1))
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if heartbeat_interval is None:
        heartbeat_interval = max(0.5, lease_timeout / 3.0)

    with contextlib.ExitStack() as stack:
        if checkpoint_dir is None:
            checkpoint_dir = stack.enter_context(
                tempfile.TemporaryDirectory(prefix="repro-fabric-")
            )
        coordinator = FabricCoordinator(
            points,
            checkpoint_dir,
            policies_per_shard=policies_per_shard,
            chunks_per_slab=chunks_per_slab,
            chunk_size=chunk_size,
            lease_timeout=lease_timeout,
            straggler_factor=straggler_factor,
            max_failures=max_failures,
            checkpoint_every=checkpoint_every,
        )
        if transport == "inprocess":
            _run_transport_inprocess(coordinator, workers)
        elif transport == "process":
            _run_transport_process(coordinator, workers, heartbeat_interval)
        else:
            _run_transport_tcp(coordinator, workers, heartbeat_interval)
        try:
            return coordinator.outcomes()
        finally:
            if cleanup:
                coordinator.cleanup_checkpoints()
