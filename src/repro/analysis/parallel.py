"""Parallel parameter-grid sweeps over the batch simulation engine.

The evaluation studies (delay-tolerance sweeps, utilization sweeps, weight
sensitivity, trace robustness, …) are embarrassingly parallel: every grid
point is an independent simulation.  This module expands a parameter grid
into self-describing :class:`SweepPoint`\\ s, derives a *content-based*
deterministic seed for each point, and shards the points across
``concurrent.futures`` workers.

Determinism guarantees (enforced by ``tests/analysis/test_parallel.py``):

* a point's seed depends only on its *workload-shaping* parameters
  (:data:`WORKLOAD_PARAMS`) and the sweep's base seed — not on grid order,
  worker count, executor kind, or policy-side knobs, so every policy in a
  sweep is evaluated against the identical workload;
* :func:`run_sweep` returns outcomes in the order of its input points for
  every executor, so ``run_sweep(points, workers=1)`` and
  ``run_sweep(points, workers=8)`` are element-wise identical.

Worker processes rebuild traces and datasets from the point's parameters
(cheap relative to simulation), so only small parameter/summary payloads
cross process boundaries; policy cells of one workload reuse a per-worker
LRU-cached source/trace instead of regenerating it, and ``engine="stream"``
cells replay the chunked source through the streaming engine without ever
materializing the trace.

``run_sweep(..., fused=True)`` collapses the cells that share a workload
*and* simulation conditions (everything but the policy) into one fused task
driven by :class:`~repro.cluster.multi.MultiPolicyRunner` — the workload is
generated, columnized and streamed once per group instead of once per cell.
With the process executor the parent additionally packs each distinct
workload's columns into a ``multiprocessing.shared_memory`` segment exactly
once; workers attach and stream zero-copy
:class:`~repro.traces.stream.ColumnSource` views instead of regenerating the
trace per worker.  Segments are unlinked deterministically by the parent
when the sweep finishes, and worker-side attachments are closed on eviction
from a small LRU and at worker shutdown.
"""

from __future__ import annotations

import atexit
import collections
import concurrent.futures
import contextlib
import dataclasses
import itertools
import threading
import zlib
from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.traces.scenarios import available_scenarios

__all__ = ["SweepPoint", "SweepOutcome", "derive_seed", "expand_grid", "run_sweep"]

_TRACE_KINDS = ("borg", "alibaba")
_ENGINES = ("batch", "scalar", "stream")
_EXECUTORS = ("serial", "thread", "process")


def _known_trace_kinds() -> tuple[str, ...]:
    """Valid ``SweepPoint.trace_kind`` values: classic generators + scenarios."""
    return _TRACE_KINDS + available_scenarios()


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One fully specified simulation in a sweep (hashable and picklable).

    ``scheduler_kwargs`` is a tuple of ``(name, value)`` pairs so the point
    stays hashable; :func:`expand_grid` converts mappings automatically.
    ``seed`` seeds both the trace generator and the sustainability dataset.
    """

    scheduler: str = "baseline"
    scheduler_kwargs: tuple[tuple[str, object], ...] = ()
    trace_kind: str = "borg"
    #: ``None`` keeps the scenario family's natural rate/length (scenario
    #: trace kinds only — the classic generators have no family defaults).
    rate_per_hour: float | None = 40.0
    duration_days: float | None = 0.25
    delay_tolerance: float = 0.25
    servers_per_region: int = 20
    scheduling_interval_s: float = 300.0
    include_embodied: bool = True
    engine: str = "batch"
    seed: int = 0

    def __post_init__(self) -> None:
        known = _known_trace_kinds()
        if self.trace_kind not in known:
            raise ValueError(f"trace_kind must be one of {known}, got {self.trace_kind!r}")
        if self.engine not in _ENGINES:
            raise ValueError(f"engine must be one of {_ENGINES}, got {self.engine!r}")
        if self.trace_kind in _TRACE_KINDS and (
            self.rate_per_hour is None or self.duration_days is None
        ):
            raise ValueError(
                "rate_per_hour/duration_days of None (scenario family default) "
                f"are only valid for scenario trace kinds, not {self.trace_kind!r}"
            )

    def label(self) -> str:
        """Short human-readable identifier for reports."""
        rate = "auto" if self.rate_per_hour is None else f"{self.rate_per_hour:g}"
        return (
            f"{self.scheduler}@{self.trace_kind}"
            f"/tol={self.delay_tolerance:g}/rate={rate}"
            f"/seed={self.seed}"
        )


@dataclasses.dataclass(frozen=True)
class SweepOutcome:
    """Small, picklable result of one sweep point.

    ``digest`` is the engine result's CRC32 aggregate fingerprint when the
    result type provides one (``BatchResult.digest`` for the batch engine,
    ``StreamResult.digest`` for streaming/fused/distributed cells; the
    scalar reference engine has none).  Distributed sweeps are gated on
    digest equality against the single-box fused run — compare like engines
    only, the two digests cover different payloads.
    """

    point: SweepPoint
    summary: dict[str, float | str | int]
    total_carbon_g: float
    total_water_l: float
    mean_service_ratio: float
    violation_fraction: float
    num_jobs: int
    digest: int | None = None


#: Parameters that shape the generated workload (trace + dataset).  Seeds are
#: derived from these alone: two points differing only in policy-side knobs
#: (scheduler, tolerance, engine, …) share a seed and therefore replay the
#: *same* jobs against the *same* intensities — the "identical conditions"
#: methodology every savings comparison in the paper rests on.
WORKLOAD_PARAMS = ("trace_kind", "rate_per_hour", "duration_days")


def derive_seed(base_seed: int, **params: object) -> int:
    """Deterministic, content-based seed for one grid point.

    Hashes the canonical ``repr`` of the sorted workload-shaping parameter
    items (:data:`WORKLOAD_PARAMS`; other keyword arguments are ignored)
    with CRC32 — stable across processes and Python invocations, unlike
    ``hash`` — and folds in ``base_seed``.  Two sweeps with the same base
    seed therefore simulate identical workloads regardless of grid order,
    worker count, or which policy-side parameters accompany the point.
    """
    workload = {name: params[name] for name in WORKLOAD_PARAMS if name in params}
    canonical = repr(sorted(workload.items())).encode("utf-8")
    return (zlib.crc32(canonical) ^ (int(base_seed) & 0xFFFFFFFF)) & 0x7FFFFFFF


def expand_grid(
    base_seed: int = 0,
    engine: str = "batch",
    **param_lists: Sequence[object] | object,
) -> list[SweepPoint]:
    """Expand keyword parameter lists into the cross-product of sweep points.

    Every keyword accepts either a single value or a sequence of values
    (strings count as single values); the cross-product is taken over the
    sequence-valued parameters.  ``scheduler_kwargs`` values may be mappings.

    Examples
    --------
    >>> points = expand_grid(
    ...     scheduler=["baseline", "round-robin"],
    ...     delay_tolerance=[0.0, 0.25, 0.5],
    ...     rate_per_hour=40.0,
    ... )
    >>> len(points)
    6
    """
    field_names = {field.name for field in dataclasses.fields(SweepPoint)}
    unknown = set(param_lists) - (field_names - {"seed", "engine"})
    if unknown:
        raise TypeError(f"unknown sweep parameters: {sorted(unknown)}")

    def as_choices(value: object) -> list[object]:
        if isinstance(value, (str, bytes, Mapping)):
            return [value]
        if isinstance(value, Iterable):
            return list(value)
        return [value]

    defaults = {
        field.name: field.default for field in dataclasses.fields(SweepPoint)
    }
    names = list(param_lists)
    choice_lists = [as_choices(param_lists[name]) for name in names]
    points = []
    for combo in itertools.product(*choice_lists):
        params = dict(zip(names, combo))
        kwargs = params.get("scheduler_kwargs", ())
        if isinstance(kwargs, Mapping):
            params["scheduler_kwargs"] = tuple(sorted(kwargs.items()))
        # Missing workload parameters fall back to the SweepPoint defaults so
        # the derived seed does not depend on whether they were spelled out.
        workload = {name: params.get(name, defaults[name]) for name in WORKLOAD_PARAMS}
        seed = derive_seed(base_seed, **workload)
        points.append(SweepPoint(engine=engine, seed=seed, **params))
    return points


#: Workload signature → source/trace LRU of the workloads this worker has
#: simulated recently.  A sweep runs every policy against identical
#: workloads (the seed derivation guarantees it), so policy cells of one
#: workload hit this cache instead of re-generating the full trace per cell
#: — sweep memory and generation time no longer scale with
#: ``n_policies × n_jobs``.  The cache is *thread-local*:
#: ``executor="thread"`` runs cells of different workloads concurrently, and
#: a shared structure would let one thread read another's source mid-update
#: (breaking the module's worker-count invariance).  Bounded to
#: :data:`_WORKLOAD_CACHE_SIZE` workloads per thread/process — a long sweep
#: over many workloads (or grid orders that interleave them) evicts the
#: least recently used entry instead of growing without limit.
_WORKLOAD_CACHE = threading.local()
_WORKLOAD_CACHE_SIZE = 4


def _workload_entries() -> "collections.OrderedDict":
    entries = getattr(_WORKLOAD_CACHE, "entries", None)
    if entries is None:
        entries = collections.OrderedDict()
        _WORKLOAD_CACHE.entries = entries
    return entries


def _workload_key(point: SweepPoint) -> tuple:
    return (point.trace_kind, point.rate_per_hour, point.duration_days, point.seed)


def _build_source(point: SweepPoint):
    from repro.traces.alibaba import AlibabaTraceGenerator
    from repro.traces.borg import BorgTraceGenerator
    from repro.traces.scenarios import scenario_source

    if point.trace_kind in _TRACE_KINDS:
        generator_cls = (
            BorgTraceGenerator if point.trace_kind == "borg" else AlibabaTraceGenerator
        )
        return generator_cls(
            rate_per_hour=point.rate_per_hour,
            duration_days=point.duration_days,
            seed=point.seed,
        )
    return scenario_source(
        point.trace_kind,
        seed=point.seed,
        rate_per_hour=point.rate_per_hour,
        duration_days=point.duration_days,
    )


def _workload_entry(point: SweepPoint) -> dict:
    entries = _workload_entries()
    key = _workload_key(point)
    entry = entries.get(key)
    if entry is None:
        entry = {"source": _build_source(point), "trace": None}
        entries[key] = entry
        while len(entries) > _WORKLOAD_CACHE_SIZE:
            entries.popitem(last=False)
    else:
        entries.move_to_end(key)
    return entry


def _point_source(point: SweepPoint):
    """The chunked trace source of one sweep point (LRU-cached per worker)."""
    return _workload_entry(point)["source"]


def _point_trace(point: SweepPoint):
    """The materialized trace of one sweep point (LRU-cached per worker)."""
    entry = _workload_entry(point)
    if entry["trace"] is None:
        entry["trace"] = entry["source"].materialize()
    return entry["trace"]


# -- shared-memory chunk transport (process-executor fused sweeps) ------------------

#: Worker-side LRU of attached shared-memory segments: name → (shm, source).
#: Evicted attachments are closed immediately; the atexit hook closes the
#: rest so worker shutdown never leaks segment handles.  The parent owns the
#: segments and unlinks them when the sweep completes.
_SHM_ATTACH_LIMIT = 4
_SHM_ATTACHMENTS: "collections.OrderedDict[str, tuple]" = collections.OrderedDict()
_SHM_LOCK = threading.Lock()


def _close_all_shared_attachments() -> None:
    with _SHM_LOCK:
        while _SHM_ATTACHMENTS:
            _name, (shm, _source) = _SHM_ATTACHMENTS.popitem(last=False)
            try:
                shm.close()
            except OSError:  # pragma: no cover - close is best-effort at exit
                pass


atexit.register(_close_all_shared_attachments)


def pack_shared_workload(source, chunk_size: int = 8192):
    """Copy a source's columns into one shared-memory segment.

    Returns ``(shm, handle)`` — the caller owns ``shm`` and must
    ``close()`` + ``unlink()`` it when the consumers are done; ``handle`` is
    a small picklable dict workers pass to :func:`attach_shared_workload`.
    """
    from multiprocessing import shared_memory

    from repro.traces.stream import CHUNK_COLUMNS

    chunks = list(source.iter_chunks(chunk_size))
    if chunks:
        columns = {
            field: np.ascontiguousarray(
                np.concatenate([getattr(chunk, field) for chunk in chunks])
            )
            for field in CHUNK_COLUMNS
        }
        region_keys = chunks[0].region_keys
        workload_names = chunks[0].workload_names
    else:
        columns = {field: np.zeros(0) for field in CHUNK_COLUMNS}
        region_keys = workload_names = ()
    total = sum(column.nbytes for column in columns.values())
    shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
    try:
        fields = []
        offset = 0
        for field in CHUNK_COLUMNS:
            column = columns[field]
            view = np.ndarray(column.shape, dtype=column.dtype, buffer=shm.buf, offset=offset)
            view[:] = column
            fields.append((field, column.dtype.str, offset, len(column)))
            offset += column.nbytes
        handle = {
            "shm": shm.name,
            "fields": fields,
            "region_keys": tuple(region_keys),
            "workload_names": tuple(workload_names),
            "name": getattr(source, "name", "stream"),
            "label": getattr(source, "label", None),
            "seed": getattr(source, "seed", 0),
            "horizon_s": float(getattr(source, "horizon_s", 0.0)),
        }
    except BaseException:
        # Ownership never transferred to the caller — tear the segment down
        # here or it strands in /dev/shm until interpreter exit (or forever,
        # if the exit handlers never run).
        shm.close()
        shm.unlink()
        raise
    return shm, handle


def attach_shared_workload(handle: dict):
    """Worker-side view of a packed workload as a zero-copy ``ColumnSource``."""
    from multiprocessing import shared_memory

    from repro.traces.stream import ColumnSource

    name = handle["shm"]
    with _SHM_LOCK:
        cached = _SHM_ATTACHMENTS.get(name)
        if cached is not None:
            _SHM_ATTACHMENTS.move_to_end(name)
            return cached[1]
        shm = shared_memory.SharedMemory(name=name)
        columns = {
            field: np.ndarray((length,), dtype=np.dtype(dtype), buffer=shm.buf, offset=offset)
            for field, dtype, offset, length in handle["fields"]
        }
        source = ColumnSource(
            columns,
            region_keys=handle["region_keys"],
            workload_names=handle["workload_names"],
            name=handle["name"],
            seed=handle["seed"],
            horizon_s=handle["horizon_s"],
            label=handle["label"],
        )
        _SHM_ATTACHMENTS[name] = (shm, source)
        while len(_SHM_ATTACHMENTS) > _SHM_ATTACH_LIMIT:
            _stale, (stale_shm, _stale_source) = _SHM_ATTACHMENTS.popitem(last=False)
            stale_shm.close()
        return source


def _point_dataset(point: SweepPoint, source):
    """The sweep point's sustainability dataset (same recipe for all paths)."""
    import math

    from repro.sustainability.datasets import ElectricityMapsLikeProvider

    duration_days = (
        point.duration_days
        if point.duration_days is not None
        else source.horizon_s / 86_400.0
    )
    horizon_hours = max(int(math.ceil(duration_days * 24)) + 48, 72)
    return ElectricityMapsLikeProvider(horizon_hours=horizon_hours, seed=point.seed)


def _point_chaos(point: SweepPoint) -> str | None:
    """The chaos spec attached to the point's scenario family (if any)."""
    if point.trace_kind in _TRACE_KINDS:
        return None
    from repro.traces.scenarios import get_scenario

    return get_scenario(point.trace_kind).chaos


def _run_point(point: SweepPoint) -> SweepOutcome:
    """Simulate one sweep point (module-level so process pools can pickle it)."""
    from repro.cluster.simulator import BatchSimulator, Simulator
    from repro.cluster.streaming import StreamingSimulator
    from repro.schedulers.registry import make_scheduler

    source = _point_source(point)
    dataset = _point_dataset(point, source)
    scheduler = make_scheduler(point.scheduler, **dict(point.scheduler_kwargs))
    chaos = _point_chaos(point)
    if point.engine == "stream":
        # Bounded memory: the policy cell replays the shared chunked source
        # without ever materializing the trace.
        result = StreamingSimulator(
            source,
            scheduler,
            dataset=dataset,
            servers_per_region=point.servers_per_region,
            scheduling_interval_s=point.scheduling_interval_s,
            delay_tolerance=point.delay_tolerance,
            include_embodied=point.include_embodied,
            collect="aggregate",
            chaos=chaos,
            chaos_seed=point.seed,
        ).run()
    else:
        engine_cls = BatchSimulator if point.engine == "batch" else Simulator
        result = engine_cls(
            trace=_point_trace(point),
            scheduler=scheduler,
            dataset=dataset,
            servers_per_region=point.servers_per_region,
            scheduling_interval_s=point.scheduling_interval_s,
            delay_tolerance=point.delay_tolerance,
            include_embodied=point.include_embodied,
            chaos=chaos,
            chaos_seed=point.seed,
        ).run()
    return _outcome_from_result(point, result)


def _outcome_from_result(point: SweepPoint, result) -> SweepOutcome:
    digest = result.digest() if hasattr(result, "digest") else None
    return SweepOutcome(
        point=point,
        summary=result.summary(),
        total_carbon_g=result.total_carbon_g,
        total_water_l=result.total_water_l,
        mean_service_ratio=result.mean_service_ratio,
        violation_fraction=result.violation_fraction,
        num_jobs=result.num_jobs,
        digest=digest,
    )


#: SweepPoint fields that define a *fusable cell group*: points agreeing on
#: all of these (i.e. differing only in the policy and its kwargs) can run
#: through one MultiPolicyRunner pass.
_FUSE_FIELDS = (
    "trace_kind", "rate_per_hour", "duration_days", "delay_tolerance",
    "servers_per_region", "scheduling_interval_s", "include_embodied", "seed",
)


def _fuse_key(point: SweepPoint) -> tuple:
    return tuple(getattr(point, name) for name in _FUSE_FIELDS)


def _run_fused_group(
    points: Sequence[SweepPoint], handle: dict | None = None
) -> list[SweepOutcome]:
    """Run one fused cell group (same workload + conditions, many policies).

    ``handle``, when given, points at a shared-memory workload packed by the
    parent (:func:`pack_shared_workload`); otherwise the worker builds the
    source from the point's parameters through the per-worker LRU cache.
    Results are the streaming engine's aggregates, decision-identical to the
    per-cell engines.
    """
    from repro.cluster.multi import MultiPolicyRunner
    from repro.schedulers.registry import make_scheduler

    points = list(points)
    first = points[0]
    source = attach_shared_workload(handle) if handle else _point_source(first)
    dataset = _point_dataset(first, source)
    schedulers = [
        (str(i), make_scheduler(p.scheduler, **dict(p.scheduler_kwargs)))
        for i, p in enumerate(points)
    ]
    results = MultiPolicyRunner(
        source,
        schedulers,
        dataset=dataset,
        collect="aggregate",
        servers_per_region=first.servers_per_region,
        scheduling_interval_s=first.scheduling_interval_s,
        delay_tolerance=first.delay_tolerance,
        include_embodied=first.include_embodied,
        chaos=_point_chaos(first),
        chaos_seed=first.seed,
    ).run()
    return [
        _outcome_from_result(point, results[str(i)])
        for i, point in enumerate(points)
    ]


def _run_sweep_fused(
    points: list[SweepPoint], workers: int | None, executor: str
) -> list[SweepOutcome]:
    """Fused execution plan: group cells, optionally pack workloads into shm."""
    groups: "collections.OrderedDict[tuple, list[int]]" = collections.OrderedDict()
    for index, point in enumerate(points):
        groups.setdefault(_fuse_key(point), []).append(index)
    tasks = [[points[i] for i in indices] for indices in groups.values()]

    segments = []
    handles: list[dict | None] = [None] * len(tasks)
    outcomes: list[SweepOutcome | None] = [None] * len(points)
    try:
        if executor == "process" and not (workers == 1 or len(tasks) <= 1):
            # Pack each distinct workload once; groups sharing a workload
            # (e.g. several delay tolerances) share one segment.
            by_workload: dict[tuple, dict] = {}
            for task_index, group in enumerate(tasks):
                key = _workload_key(group[0])
                handle = by_workload.get(key)
                if handle is None:
                    shm, handle = pack_shared_workload(_point_source(group[0]))
                    segments.append(shm)
                    by_workload[key] = handle
                handles[task_index] = handle
            with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
                group_outcomes = list(pool.map(_run_fused_group, tasks, handles))
        elif executor == "thread" and not (workers == 1 or len(tasks) <= 1):
            with concurrent.futures.ThreadPoolExecutor(max_workers=workers) as pool:
                group_outcomes = list(pool.map(_run_fused_group, tasks))
        else:
            group_outcomes = [_run_fused_group(task) for task in tasks]
    finally:
        # Per-segment best-effort teardown: one failing close()/unlink() must
        # not leave the remaining segments stranded in /dev/shm (and runs on
        # the failure path too — a raising policy cell still cleans up).
        for shm in segments:
            with contextlib.suppress(OSError):
                shm.close()
            with contextlib.suppress(OSError, FileNotFoundError):
                shm.unlink()

    for indices, group_result in zip(groups.values(), group_outcomes):
        for position, outcome in zip(indices, group_result):
            outcomes[position] = outcome
    return outcomes  # type: ignore[return-value]


def run_sweep(
    points: Sequence[SweepPoint],
    workers: int | None = None,
    executor: str = "process",
    fused: bool = False,
    transport: str | None = None,
    **fabric_kwargs,
) -> list[SweepOutcome]:
    """Simulate every point, sharding across workers; outcomes in input order.

    Parameters
    ----------
    points:
        Sweep points (typically from :func:`expand_grid`).
    workers:
        Worker count; ``None`` lets ``concurrent.futures`` pick, ``1`` is
        equivalent to ``executor="serial"``.
    executor:
        ``"process"`` (default — real parallelism for the CPU-bound
        simulations), ``"thread"`` (no spawn cost; useful for small sweeps
        and tests) or ``"serial"``.
    fused:
        Collapse cells that differ only in the policy into one-pass
        multi-policy tasks (:class:`~repro.cluster.multi.MultiPolicyRunner`),
        sharing trace generation and columnization across the group; with
        ``executor="process"`` each distinct workload is additionally packed
        into shared memory once and streamed zero-copy by the workers.
        Fused cells run the bounded-memory streaming engine regardless of
        ``point.engine`` (decisions are engine-invariant; summaries agree to
        float tolerance).
    transport:
        Route the sweep through the shard fabric
        (:func:`repro.analysis.fabric.run_fabric_sweep`) instead of the
        executor pool: ``"inprocess"``, ``"process"`` or ``"tcp"``.
        ``executor``/``fused`` are ignored (fabric shards are always fused
        slabs); extra keyword arguments — ``chunks_per_slab``,
        ``checkpoint_dir``, ``lease_timeout``, … — pass through.  Merged
        results are bit-identical (``StreamResult.digest``) to
        ``fused=True`` on one box.
    """
    if transport is not None:
        from repro.analysis.fabric import run_fabric_sweep

        return run_fabric_sweep(
            points, workers=workers, transport=transport, **fabric_kwargs
        )
    if fabric_kwargs:
        raise TypeError(
            f"{sorted(fabric_kwargs)} are fabric options: pass transport= as well"
        )
    if executor not in _EXECUTORS:
        raise ValueError(f"executor must be one of {_EXECUTORS}, got {executor!r}")
    if workers is not None and workers < 1:
        raise ValueError("workers must be >= 1")
    points = list(points)
    if fused:
        return _run_sweep_fused(points, workers, executor)
    if executor == "serial" or workers == 1 or len(points) <= 1:
        return [_run_point(point) for point in points]
    pool_cls = (
        concurrent.futures.ProcessPoolExecutor
        if executor == "process"
        else concurrent.futures.ThreadPoolExecutor
    )
    with pool_cls(max_workers=workers) as pool:
        return list(pool.map(_run_point, points))
