"""Parallel parameter-grid sweeps over the batch simulation engine.

The evaluation studies (delay-tolerance sweeps, utilization sweeps, weight
sensitivity, trace robustness, …) are embarrassingly parallel: every grid
point is an independent simulation.  This module expands a parameter grid
into self-describing :class:`SweepPoint`\\ s, derives a *content-based*
deterministic seed for each point, and shards the points across
``concurrent.futures`` workers.

Determinism guarantees (enforced by ``tests/analysis/test_parallel.py``):

* a point's seed depends only on its *workload-shaping* parameters
  (:data:`WORKLOAD_PARAMS`) and the sweep's base seed — not on grid order,
  worker count, executor kind, or policy-side knobs, so every policy in a
  sweep is evaluated against the identical workload;
* :func:`run_sweep` returns outcomes in the order of its input points for
  every executor, so ``run_sweep(points, workers=1)`` and
  ``run_sweep(points, workers=8)`` are element-wise identical.

Worker processes rebuild traces and datasets from the point's parameters
(cheap relative to simulation), so only small parameter/summary payloads
cross process boundaries; consecutive policy cells of one workload reuse a
per-worker cached source/trace instead of regenerating it, and
``engine="stream"`` cells replay the chunked source through the streaming
engine without ever materializing the trace.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import itertools
import threading
import zlib
from collections.abc import Iterable, Mapping, Sequence

from repro.traces.scenarios import available_scenarios

__all__ = ["SweepPoint", "SweepOutcome", "derive_seed", "expand_grid", "run_sweep"]

_TRACE_KINDS = ("borg", "alibaba")
_ENGINES = ("batch", "scalar", "stream")
_EXECUTORS = ("serial", "thread", "process")


def _known_trace_kinds() -> tuple[str, ...]:
    """Valid ``SweepPoint.trace_kind`` values: classic generators + scenarios."""
    return _TRACE_KINDS + available_scenarios()


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One fully specified simulation in a sweep (hashable and picklable).

    ``scheduler_kwargs`` is a tuple of ``(name, value)`` pairs so the point
    stays hashable; :func:`expand_grid` converts mappings automatically.
    ``seed`` seeds both the trace generator and the sustainability dataset.
    """

    scheduler: str = "baseline"
    scheduler_kwargs: tuple[tuple[str, object], ...] = ()
    trace_kind: str = "borg"
    #: ``None`` keeps the scenario family's natural rate/length (scenario
    #: trace kinds only — the classic generators have no family defaults).
    rate_per_hour: float | None = 40.0
    duration_days: float | None = 0.25
    delay_tolerance: float = 0.25
    servers_per_region: int = 20
    scheduling_interval_s: float = 300.0
    include_embodied: bool = True
    engine: str = "batch"
    seed: int = 0

    def __post_init__(self) -> None:
        known = _known_trace_kinds()
        if self.trace_kind not in known:
            raise ValueError(f"trace_kind must be one of {known}, got {self.trace_kind!r}")
        if self.engine not in _ENGINES:
            raise ValueError(f"engine must be one of {_ENGINES}, got {self.engine!r}")
        if self.trace_kind in _TRACE_KINDS and (
            self.rate_per_hour is None or self.duration_days is None
        ):
            raise ValueError(
                "rate_per_hour/duration_days of None (scenario family default) "
                f"are only valid for scenario trace kinds, not {self.trace_kind!r}"
            )

    def label(self) -> str:
        """Short human-readable identifier for reports."""
        rate = "auto" if self.rate_per_hour is None else f"{self.rate_per_hour:g}"
        return (
            f"{self.scheduler}@{self.trace_kind}"
            f"/tol={self.delay_tolerance:g}/rate={rate}"
            f"/seed={self.seed}"
        )


@dataclasses.dataclass(frozen=True)
class SweepOutcome:
    """Small, picklable result of one sweep point."""

    point: SweepPoint
    summary: dict[str, float | str | int]
    total_carbon_g: float
    total_water_l: float
    mean_service_ratio: float
    violation_fraction: float
    num_jobs: int


#: Parameters that shape the generated workload (trace + dataset).  Seeds are
#: derived from these alone: two points differing only in policy-side knobs
#: (scheduler, tolerance, engine, …) share a seed and therefore replay the
#: *same* jobs against the *same* intensities — the "identical conditions"
#: methodology every savings comparison in the paper rests on.
WORKLOAD_PARAMS = ("trace_kind", "rate_per_hour", "duration_days")


def derive_seed(base_seed: int, **params: object) -> int:
    """Deterministic, content-based seed for one grid point.

    Hashes the canonical ``repr`` of the sorted workload-shaping parameter
    items (:data:`WORKLOAD_PARAMS`; other keyword arguments are ignored)
    with CRC32 — stable across processes and Python invocations, unlike
    ``hash`` — and folds in ``base_seed``.  Two sweeps with the same base
    seed therefore simulate identical workloads regardless of grid order,
    worker count, or which policy-side parameters accompany the point.
    """
    workload = {name: params[name] for name in WORKLOAD_PARAMS if name in params}
    canonical = repr(sorted(workload.items())).encode("utf-8")
    return (zlib.crc32(canonical) ^ (int(base_seed) & 0xFFFFFFFF)) & 0x7FFFFFFF


def expand_grid(
    base_seed: int = 0,
    engine: str = "batch",
    **param_lists: Sequence[object] | object,
) -> list[SweepPoint]:
    """Expand keyword parameter lists into the cross-product of sweep points.

    Every keyword accepts either a single value or a sequence of values
    (strings count as single values); the cross-product is taken over the
    sequence-valued parameters.  ``scheduler_kwargs`` values may be mappings.

    Examples
    --------
    >>> points = expand_grid(
    ...     scheduler=["baseline", "round-robin"],
    ...     delay_tolerance=[0.0, 0.25, 0.5],
    ...     rate_per_hour=40.0,
    ... )
    >>> len(points)
    6
    """
    field_names = {field.name for field in dataclasses.fields(SweepPoint)}
    unknown = set(param_lists) - (field_names - {"seed", "engine"})
    if unknown:
        raise TypeError(f"unknown sweep parameters: {sorted(unknown)}")

    def as_choices(value: object) -> list[object]:
        if isinstance(value, (str, bytes, Mapping)):
            return [value]
        if isinstance(value, Iterable):
            return list(value)
        return [value]

    defaults = {
        field.name: field.default for field in dataclasses.fields(SweepPoint)
    }
    names = list(param_lists)
    choice_lists = [as_choices(param_lists[name]) for name in names]
    points = []
    for combo in itertools.product(*choice_lists):
        params = dict(zip(names, combo))
        kwargs = params.get("scheduler_kwargs", ())
        if isinstance(kwargs, Mapping):
            params["scheduler_kwargs"] = tuple(sorted(kwargs.items()))
        # Missing workload parameters fall back to the SweepPoint defaults so
        # the derived seed does not depend on whether they were spelled out.
        workload = {name: params.get(name, defaults[name]) for name in WORKLOAD_PARAMS}
        seed = derive_seed(base_seed, **workload)
        points.append(SweepPoint(engine=engine, seed=seed, **params))
    return points


#: Workload signature → source/trace of the most recent point this worker
#: simulated.  A sweep runs every policy against identical workloads (the
#: seed derivation guarantees it), and :func:`run_sweep` hands points to
#: workers in grid order, so consecutive policy cells of one point hit this
#: cache instead of re-generating the full trace per cell — sweep memory and
#: generation time no longer scale with ``n_policies × n_jobs``.  The cache
#: is *thread-local*: ``executor="thread"`` runs cells of different
#: workloads concurrently, and a shared single slot would let one thread
#: read another's source mid-update (breaking the module's worker-count
#: invariance).  One entry per thread/process keeps it O(1 workload).
_WORKLOAD_CACHE = threading.local()


def _point_source(point: SweepPoint):
    """The chunked trace source of one sweep point (cached per worker)."""
    from repro.traces.alibaba import AlibabaTraceGenerator
    from repro.traces.borg import BorgTraceGenerator
    from repro.traces.scenarios import scenario_source

    cache = _WORKLOAD_CACHE
    key = (point.trace_kind, point.rate_per_hour, point.duration_days, point.seed)
    if getattr(cache, "key", None) != key:
        if point.trace_kind in _TRACE_KINDS:
            generator_cls = (
                BorgTraceGenerator if point.trace_kind == "borg" else AlibabaTraceGenerator
            )
            source = generator_cls(
                rate_per_hour=point.rate_per_hour,
                duration_days=point.duration_days,
                seed=point.seed,
            )
        else:
            source = scenario_source(
                point.trace_kind,
                seed=point.seed,
                rate_per_hour=point.rate_per_hour,
                duration_days=point.duration_days,
            )
        cache.key = key
        cache.source = source
        cache.trace = None
    return cache.source


def _point_trace(point: SweepPoint):
    """The materialized trace of one sweep point (cached per worker)."""
    source = _point_source(point)
    if _WORKLOAD_CACHE.trace is None:
        _WORKLOAD_CACHE.trace = source.materialize()
    return _WORKLOAD_CACHE.trace


def _run_point(point: SweepPoint) -> SweepOutcome:
    """Simulate one sweep point (module-level so process pools can pickle it)."""
    import math

    from repro.cluster.simulator import BatchSimulator, Simulator
    from repro.cluster.streaming import StreamingSimulator
    from repro.schedulers.registry import make_scheduler
    from repro.sustainability.datasets import ElectricityMapsLikeProvider

    source = _point_source(point)
    duration_days = (
        point.duration_days
        if point.duration_days is not None
        else source.horizon_s / 86_400.0
    )
    horizon_hours = max(int(math.ceil(duration_days * 24)) + 48, 72)
    dataset = ElectricityMapsLikeProvider(horizon_hours=horizon_hours, seed=point.seed)
    scheduler = make_scheduler(point.scheduler, **dict(point.scheduler_kwargs))
    if point.engine == "stream":
        # Bounded memory: the policy cell replays the shared chunked source
        # without ever materializing the trace.
        result = StreamingSimulator(
            source,
            scheduler,
            dataset=dataset,
            servers_per_region=point.servers_per_region,
            scheduling_interval_s=point.scheduling_interval_s,
            delay_tolerance=point.delay_tolerance,
            include_embodied=point.include_embodied,
            collect="aggregate",
        ).run()
    else:
        engine_cls = BatchSimulator if point.engine == "batch" else Simulator
        result = engine_cls(
            trace=_point_trace(point),
            scheduler=scheduler,
            dataset=dataset,
            servers_per_region=point.servers_per_region,
            scheduling_interval_s=point.scheduling_interval_s,
            delay_tolerance=point.delay_tolerance,
            include_embodied=point.include_embodied,
        ).run()
    return SweepOutcome(
        point=point,
        summary=result.summary(),
        total_carbon_g=result.total_carbon_g,
        total_water_l=result.total_water_l,
        mean_service_ratio=result.mean_service_ratio,
        violation_fraction=result.violation_fraction,
        num_jobs=result.num_jobs,
    )


def run_sweep(
    points: Sequence[SweepPoint],
    workers: int | None = None,
    executor: str = "process",
) -> list[SweepOutcome]:
    """Simulate every point, sharding across workers; outcomes in input order.

    Parameters
    ----------
    points:
        Sweep points (typically from :func:`expand_grid`).
    workers:
        Worker count; ``None`` lets ``concurrent.futures`` pick, ``1`` is
        equivalent to ``executor="serial"``.
    executor:
        ``"process"`` (default — real parallelism for the CPU-bound
        simulations), ``"thread"`` (no spawn cost; useful for small sweeps
        and tests) or ``"serial"``.
    """
    if executor not in _EXECUTORS:
        raise ValueError(f"executor must be one of {_EXECUTORS}, got {executor!r}")
    if workers is not None and workers < 1:
        raise ValueError("workers must be >= 1")
    points = list(points)
    if executor == "serial" or workers == 1 or len(points) <= 1:
        return [_run_point(point) for point in points]
    pool_cls = (
        concurrent.futures.ProcessPoolExecutor
        if executor == "process"
        else concurrent.futures.ThreadPoolExecutor
    )
    with pool_cls(max_workers=workers) as pool:
        return list(pool.map(_run_point, points))
