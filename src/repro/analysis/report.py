"""Plain-text report tables.

The benchmark harness reproduces the paper's tables and figure series as
aligned text tables printed to stdout (matplotlib is intentionally not a
dependency; the repository targets headless, offline environments).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["format_table", "format_kv_block"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render an aligned text table.

    ``rows`` may contain strings, ints or floats; floats are formatted with
    ``float_format``.  Column widths adapt to the content.
    """
    rendered_rows: list[list[str]] = []
    for row in rows:
        rendered: list[str] = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)

    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but the table has {len(headers)} columns: {row!r}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_line([str(h) for h in headers]))
    lines.append(render_line(["-" * w for w in widths]))
    lines.extend(render_line(row) for row in rendered_rows)
    return "\n".join(lines)


def format_kv_block(title: str, entries: dict[str, object]) -> str:
    """Render a small aligned key/value block (used for experiment metadata)."""
    if not entries:
        return title
    width = max(len(key) for key in entries)
    lines = [title] + [f"  {key.ljust(width)} : {value}" for key, value in entries.items()]
    return "\n".join(lines)
