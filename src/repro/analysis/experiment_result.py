"""Common container for experiment outputs.

Every per-figure experiment function returns an :class:`ExperimentResult`:
a named table (headers + rows) plus free-form metadata.  The benchmark
harness prints ``result.table()`` so running any benchmark reproduces the
corresponding paper table/figure as text, and EXPERIMENTS.md is assembled
from the same objects.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping, Sequence

from repro.analysis.report import format_kv_block, format_table

__all__ = ["ExperimentResult"]


@dataclasses.dataclass(frozen=True)
class ExperimentResult:
    """Output of one reproduced table/figure.

    Attributes
    ----------
    experiment:
        Identifier matching the paper, e.g. ``"figure-5"`` or ``"table-2"``.
    description:
        One-line description of what the experiment shows.
    headers / rows:
        The reproduced table.
    metadata:
        Scale parameters and any derived headline numbers (used by
        EXPERIMENTS.md and by assertions in the benchmark harness).
    """

    experiment: str
    description: str
    headers: Sequence[str]
    rows: Sequence[Sequence[object]]
    metadata: Mapping[str, object] = dataclasses.field(default_factory=dict)

    def table(self, float_format: str = "{:.2f}") -> str:
        """The experiment rendered as an aligned text table."""
        title = f"{self.experiment}: {self.description}"
        return format_table(self.headers, self.rows, title=title, float_format=float_format)

    def report(self) -> str:
        """Table plus metadata block (what the benchmarks print)."""
        parts = [self.table()]
        if self.metadata:
            parts.append(format_kv_block("metadata", dict(self.metadata)))
        return "\n".join(parts)

    def column(self, header: str) -> list[object]:
        """All values of one column (KeyError if the header is unknown)."""
        try:
            index = list(self.headers).index(header)
        except ValueError:
            raise KeyError(f"unknown column {header!r}; available: {list(self.headers)}") from None
        return [row[index] for row in self.rows]
