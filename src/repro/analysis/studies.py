"""Sensitivity, robustness and overhead studies (paper Fig. 11–13, Tables 2–3).

Continues :mod:`repro.analysis.experiments` with the remaining evaluation
artifacts: utilization and region-availability sensitivity, decision-making
overhead, the service-time/violation table, the communication-overhead table,
the embodied/water-intensity variation and request-rate robustness studies,
and an ablation of WaterWise's design components (history learner, slack
manager, soft constraints).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.analysis.experiment_result import ExperimentResult
from repro.analysis.savings import savings_table
from repro.analysis.sweep import (
    ExperimentScale,
    default_policy_set,
    run_policies,
    simulate,
    waterwise_factory,
)
from repro.cluster.footprint import FootprintCalculator
from repro.core.config import WaterWiseConfig
from repro.core.waterwise import WaterWiseScheduler
from repro.regions.catalog import DEFAULT_REGION_KEYS, region_subset
from repro.regions.latency import TransferLatencyModel
from repro.schedulers import BaselineScheduler
from repro.sustainability.embodied import DEFAULT_SERVER, ServerSpec
from repro.traces.workloads import get_workload

__all__ = [
    "fig11_utilization",
    "fig12_region_availability",
    "fig13_overhead",
    "table2_service_time",
    "table3_communication_overhead",
    "sensitivity_embodied_and_water_variation",
    "sensitivity_request_rate",
    "ablation_components",
]


# ---------------------------------------------------------------------------
# Fig. 11: utilization sensitivity
# ---------------------------------------------------------------------------

def fig11_utilization(
    scale: ExperimentScale | None = None,
    utilizations: Sequence[float] = (0.05, 0.15, 0.25),
    delay_tolerance: float = 0.5,
) -> ExperimentResult:
    """Fig. 11: savings across average cluster utilization levels."""
    scale = scale or ExperimentScale()
    trace = scale.borg_trace()
    dataset = scale.dataset()
    rows = []
    for utilization in utilizations:
        servers = scale.servers_for(trace, dataset.region_keys, utilization=utilization)
        results = run_policies(
            trace,
            dataset,
            default_policy_set(),
            servers_per_region=servers,
            delay_tolerance=delay_tolerance,
            scheduling_interval_s=scale.scheduling_interval_s,
        )
        for entry in savings_table(results):
            if entry.policy == "baseline":
                continue
            rows.append(
                [
                    f"{utilization * 100:g}%",
                    servers,
                    entry.policy,
                    entry.carbon_savings_pct,
                    entry.water_savings_pct,
                ]
            )
    return ExperimentResult(
        experiment="figure-11",
        description="Savings across average data-center utilization levels",
        headers=["utilization", "servers_per_region", "policy", "carbon_savings_pct", "water_savings_pct"],
        rows=rows,
        metadata={"delay_tolerance": delay_tolerance, "jobs": len(trace)},
    )


# ---------------------------------------------------------------------------
# Fig. 12: region-availability sensitivity
# ---------------------------------------------------------------------------

_DEFAULT_REGION_SUBSETS: tuple[tuple[str, ...], ...] = (
    ("zurich", "madrid", "oregon", "milan"),
    ("zurich", "milan", "mumbai"),
    ("zurich", "oregon"),
)


def fig12_region_availability(
    scale: ExperimentScale | None = None,
    subsets: Sequence[Sequence[str]] = _DEFAULT_REGION_SUBSETS,
    delay_tolerance: float = 0.5,
) -> ExperimentResult:
    """Fig. 12: WaterWise savings when only a subset of regions is available."""
    scale = scale or ExperimentScale()
    full_trace = scale.borg_trace()
    rows = []
    for subset in subsets:
        regions = region_subset(subset)
        keys = [region.key for region in regions]
        trace = full_trace.restricted_to_regions(keys)
        dataset = scale.dataset(regions=regions)
        servers = scale.servers_for(trace, keys)
        results = run_policies(
            trace,
            dataset,
            {"baseline": BaselineScheduler, "waterwise": WaterWiseScheduler},
            servers_per_region=servers,
            delay_tolerance=delay_tolerance,
            scheduling_interval_s=scale.scheduling_interval_s,
            regions=regions,
        )
        entry = savings_table(results)[-1]
        rows.append(["+".join(keys), entry.carbon_savings_pct, entry.water_savings_pct])
    return ExperimentResult(
        experiment="figure-12",
        description="WaterWise savings under different region availability",
        headers=["available_regions", "carbon_savings_pct", "water_savings_pct"],
        rows=rows,
        metadata={"delay_tolerance": delay_tolerance},
    )


# ---------------------------------------------------------------------------
# Fig. 13: decision-making overhead
# ---------------------------------------------------------------------------

def fig13_overhead(
    scale: ExperimentScale | None = None,
    delay_tolerance: float = 0.5,
) -> ExperimentResult:
    """Fig. 13: WaterWise decision-making overhead on both traces."""
    scale = scale or ExperimentScale()
    dataset = scale.dataset()
    rows = []
    metadata: dict[str, object] = {"delay_tolerance": delay_tolerance}
    for trace_name, trace in (("google-borg-like", scale.borg_trace()),
                              ("alibaba-like", scale.alibaba_trace())):
        servers = scale.servers_for(trace, dataset.region_keys)
        result = simulate(
            trace,
            WaterWiseScheduler(),
            dataset,
            servers_per_region=servers,
            delay_tolerance=delay_tolerance,
            scheduling_interval_s=scale.scheduling_interval_s,
        )
        decision_times = np.asarray(result.decision_times_s)
        mean_exec = float(np.mean([o.execution_time for o in result.outcomes]))
        overhead_pct = 100.0 * decision_times / mean_exec if mean_exec else decision_times
        rows.append(
            [
                trace_name,
                len(trace),
                float(np.mean(decision_times) * 1000.0),
                float(np.max(decision_times) * 1000.0),
                float(np.mean(overhead_pct)),
                float(np.max(overhead_pct)),
            ]
        )
        metadata[f"{trace_name}_rounds"] = len(decision_times)
    return ExperimentResult(
        experiment="figure-13",
        description="WaterWise decision-making overhead (per scheduling round)",
        headers=[
            "trace",
            "jobs",
            "mean_decision_ms",
            "max_decision_ms",
            "mean_overhead_pct_of_exec",
            "max_overhead_pct_of_exec",
        ],
        rows=rows,
        metadata=metadata,
    )


# ---------------------------------------------------------------------------
# Table 2: service time and violations
# ---------------------------------------------------------------------------

def table2_service_time(
    scale: ExperimentScale | None = None,
    tolerances: Sequence[float] = (0.25, 0.50, 0.75, 1.00),
) -> ExperimentResult:
    """Table 2: normalized service time and delay-tolerance violations."""
    scale = scale or ExperimentScale()
    trace = scale.borg_trace()
    dataset = scale.dataset()
    servers = scale.servers_for(trace, dataset.region_keys)
    rows = []
    for tolerance in tolerances:
        results = run_policies(
            trace,
            dataset,
            default_policy_set(),
            servers_per_region=servers,
            delay_tolerance=float(tolerance),
            scheduling_interval_s=scale.scheduling_interval_s,
        )
        for name, result in results.items():
            rows.append(
                [
                    f"{tolerance * 100:g}%",
                    name,
                    result.mean_service_ratio,
                    100.0 * result.violation_fraction,
                ]
            )
    return ExperimentResult(
        experiment="table-2",
        description="Average service time (normalized) and % delay-tolerance violations",
        headers=["delay_tolerance", "policy", "service_time_ratio", "violation_pct"],
        rows=rows,
        metadata={"jobs": len(trace), "servers_per_region": servers},
    )


# ---------------------------------------------------------------------------
# Table 3: communication overhead
# ---------------------------------------------------------------------------

def table3_communication_overhead(
    home_region: str = "oregon",
    workload_name: str = "canneal",
    horizon_hours: int = 168,
    seed: int = 7,
) -> ExperimentResult:
    """Table 3: carbon/water overhead of moving a job away from its home region.

    A representative job (one of the Table 1 workloads) is charged the
    transfer energy of shipping its package from ``home_region`` to each
    remote region; the overhead is expressed as a percentage of the job's
    execution carbon/water in the destination region, mirroring the paper's
    presentation (execution results needed back home).
    """
    scale = ExperimentScale(seed=seed)
    dataset = scale.dataset(horizon_hours=horizon_hours)
    regions = list(dataset.regions)
    latency = TransferLatencyModel(regions)
    calculator = FootprintCalculator(dataset)
    workload = get_workload(workload_name)
    execution_time = workload.mean_execution_time_s
    energy = workload.energy_kwh(execution_time, DEFAULT_SERVER)

    from repro.traces.job import Job

    job = Job(
        job_id=0,
        workload=workload.name,
        arrival_time=0.0,
        execution_time=execution_time,
        energy_kwh=energy,
        home_region=home_region,
        package_gb=workload.package_gb,
    )
    time_s = 0.0
    home_series = dataset.series_for(home_region)
    rows = []
    for region in regions:
        if region.key == home_region:
            continue
        dest_series = dataset.series_for(region.key)
        exec_carbon = calculator.carbon_matrix([job], [region.key], time_s)[0, 0]
        exec_water = calculator.water_matrix([job], [region.key], time_s)[0, 0]
        transfer_energy = latency.transfer_energy_kwh(home_region, region.key, job.package_gb)
        # The package leaves the home grid and lands in the destination grid;
        # each endpoint is charged half of the transfer energy.
        carbon_overhead = 0.5 * transfer_energy * (
            home_series.carbon_intensity_at(time_s) + dest_series.carbon_intensity_at(time_s)
        )
        water_overhead = 0.5 * transfer_energy * (
            home_series.water_intensity_at(time_s) + dest_series.water_intensity_at(time_s)
        )
        rows.append(
            [
                region.key,
                latency.transfer_time(home_region, region.key, job.package_gb),
                100.0 * carbon_overhead / exec_carbon,
                100.0 * water_overhead / exec_water,
            ]
        )
    return ExperimentResult(
        experiment="table-3",
        description=f"Communication overhead of remote execution (home region: {home_region})",
        headers=["destination", "transfer_time_s", "carbon_overhead_pct", "water_overhead_pct"],
        rows=rows,
        metadata={"workload": workload.name, "package_gb": workload.package_gb},
    )


# ---------------------------------------------------------------------------
# Sensitivity studies described in the evaluation text
# ---------------------------------------------------------------------------

def sensitivity_embodied_and_water_variation(
    scale: ExperimentScale | None = None,
    variation: float = 0.10,
    delay_tolerance: float = 0.5,
) -> ExperimentResult:
    """±10% variation of embodied carbon and of water intensity (Sec. 6 text)."""
    scale = scale or ExperimentScale()
    trace = scale.borg_trace()
    rows = []
    scenarios = [
        ("reference", None, 1.0),
        (f"embodied_carbon_+{variation:.0%}", 1.0 + variation, 1.0),
        (f"embodied_carbon_-{variation:.0%}", 1.0 - variation, 1.0),
        (f"water_intensity_+{variation:.0%}", None, 1.0 + variation),
        (f"water_intensity_-{variation:.0%}", None, 1.0 - variation),
    ]
    for label, embodied_scale, water_scale in scenarios:
        dataset = scale.dataset()
        if water_scale != 1.0:
            dataset = dataset.perturbed(water_scale=water_scale)
        server = DEFAULT_SERVER
        if embodied_scale is not None and embodied_scale != 1.0:
            server = ServerSpec(
                embodied_carbon_kg=DEFAULT_SERVER.embodied_carbon_kg * embodied_scale
            )
        servers = scale.servers_for(trace, dataset.region_keys)

        def run(scheduler):
            from repro.cluster.simulator import Simulator

            return Simulator(
                trace,
                scheduler,
                dataset=dataset,
                servers_per_region=servers,
                scheduling_interval_s=scale.scheduling_interval_s,
                delay_tolerance=delay_tolerance,
                server=server,
            ).run()

        baseline = run(BaselineScheduler())
        waterwise = run(WaterWiseScheduler())
        rows.append(
            [
                label,
                waterwise.carbon_savings_vs(baseline),
                waterwise.water_savings_vs(baseline),
            ]
        )
    return ExperimentResult(
        experiment="sensitivity-embodied-water",
        description="WaterWise savings under ±10% embodied-carbon and water-intensity variation",
        headers=["scenario", "carbon_savings_pct", "water_savings_pct"],
        rows=rows,
        metadata={"delay_tolerance": delay_tolerance, "variation": variation},
    )


def sensitivity_request_rate(
    scale: ExperimentScale | None = None,
    rate_multipliers: Sequence[float] = (1.0, 2.0),
    delay_tolerance: float = 0.5,
) -> ExperimentResult:
    """Doubling the request rate (Sec. 6 text: "even if the request rates double")."""
    scale = scale or ExperimentScale()
    dataset = scale.dataset()
    rows = []
    for multiplier in rate_multipliers:
        trace = scale.borg_trace(rate_multiplier=multiplier)
        servers = scale.servers_for(trace, dataset.region_keys)
        results = run_policies(
            trace,
            dataset,
            {"baseline": BaselineScheduler, "waterwise": WaterWiseScheduler},
            servers_per_region=servers,
            delay_tolerance=delay_tolerance,
            scheduling_interval_s=scale.scheduling_interval_s,
        )
        entry = savings_table(results)[-1]
        rows.append(
            [f"{multiplier:g}x", len(trace), entry.carbon_savings_pct, entry.water_savings_pct]
        )
    return ExperimentResult(
        experiment="sensitivity-request-rate",
        description="WaterWise savings as the job submission rate increases",
        headers=["request_rate", "jobs", "carbon_savings_pct", "water_savings_pct"],
        rows=rows,
        metadata={"delay_tolerance": delay_tolerance},
    )


# ---------------------------------------------------------------------------
# Ablation of WaterWise's design components (repository extension)
# ---------------------------------------------------------------------------

def ablation_components(
    scale: ExperimentScale | None = None,
    delay_tolerance: float = 0.5,
    stress_utilization: float = 0.60,
) -> ExperimentResult:
    """Ablation: switch off the history learner, slack manager or soft constraints.

    Not a paper figure — DESIGN.md calls these out as the design choices worth
    isolating; the paper's Sec. 6 discusses their roles qualitatively.  The
    slack manager and the soft constraints only engage when capacity is tight,
    so this study deliberately runs at a much higher utilization
    (``stress_utilization``) than the main evaluation's 15%.
    """
    scale = scale or ExperimentScale()
    trace = scale.borg_trace()
    dataset = scale.dataset()
    servers = scale.servers_for(trace, dataset.region_keys, utilization=stress_utilization)
    variants = {
        "baseline": BaselineScheduler,
        "waterwise-full": waterwise_factory(WaterWiseConfig()),
        "waterwise-no-history": waterwise_factory(WaterWiseConfig(use_history=False)),
        "waterwise-no-slack": waterwise_factory(WaterWiseConfig(use_slack_manager=False)),
        "waterwise-no-soft": waterwise_factory(WaterWiseConfig(use_soft_constraints=False)),
    }
    results = run_policies(
        trace,
        dataset,
        variants,
        servers_per_region=servers,
        delay_tolerance=delay_tolerance,
        scheduling_interval_s=scale.scheduling_interval_s,
    )
    rows = []
    for entry in savings_table(results):
        if entry.policy == "baseline":
            continue
        rows.append(
            [
                entry.policy,
                entry.carbon_savings_pct,
                entry.water_savings_pct,
                entry.mean_service_ratio,
                entry.violation_pct,
            ]
        )
    return ExperimentResult(
        experiment="ablation-components",
        description="WaterWise component ablation (history / slack manager / soft constraints)",
        headers=["variant", "carbon_savings_pct", "water_savings_pct", "service_ratio", "violation_pct"],
        rows=rows,
        metadata={
            "delay_tolerance": delay_tolerance,
            "jobs": len(trace),
            "servers_per_region": servers,
            "stress_utilization": stress_utilization,
        },
    )
