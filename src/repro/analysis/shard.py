"""Transport-agnostic shard protocol for distributed sweeps.

A *shard* is the unit of work the sweep fabric (:mod:`repro.analysis.fabric`)
dispatches to workers: one fused cell group's workload, a subset of its
policies, and a *time slab* — a contiguous range of trace chunks.
:class:`ShardSpec` pins all three deterministically, so any worker on any
transport replays the identical simulation:

* **workload spec** — the :class:`~repro.analysis.parallel.SweepPoint`\\ s of
  the shard (all sharing one fuse key, i.e. one workload + conditions);
  workers rebuild the trace and dataset from the point parameters through
  the same per-worker LRU cache the executor sweeps use;
* **policy subset** — sharding along the policy axis is what parallelizes a
  fused group: each policy-subset shard drives its own
  :class:`~repro.cluster.multi.MultiPolicyRunner` over the shared workload;
* **time-slab range** — ``(chunk_start, max_chunks)`` in engine chunks.
  Slabs of one *lineage* (same points × policies × chunk size) necessarily
  run **sequentially** — simulation state at chunk *k* depends on chunks
  ``< k`` — chained through fused format-4 checkpoints named after the
  lineage hash.  Slabs exist for fault tolerance and straggler granularity,
  not parallelism: a worker lost mid-slab costs at most
  ``checkpoint_every`` chunks of replay, and the coordinator re-leases the
  *slab*, not the whole lineage.

Each non-final slab ships the aggregates accumulated *during the slab* (the
collector is reset at slab entry); the final slab ships a finalized
:class:`~repro.cluster.streaming.StreamResult` whose engine-derived fields
(makespan, utilization, decision times) cover the whole lineage because the
engine state rode the checkpoint chain.  :class:`MergeableAggregates` folds
the per-slab partials together with the exact, order-independent ``merge()``
of :class:`~repro.cluster.metrics.RunningJobStats` /
:class:`~repro.cluster.footprint.RunningFootprintTotals`, so the assembled
result is **bit-identical** (``StreamResult.digest``) to a single-box fused
run — at any worker count, any transport, any shard arrival order.

Checkpoint names derive from the lineage hash (not PID or tmpnam): a
re-dispatched shard finds its predecessor's file, and
:func:`orphan_checkpoints` identifies files no live sweep owns.
"""

from __future__ import annotations

import dataclasses
import hashlib
from collections.abc import Sequence
from pathlib import Path

from repro.analysis.parallel import (
    SweepPoint,
    _fuse_key,
    _point_chaos,
    _point_dataset,
    _point_source,
)
from repro.cluster.footprint import RunningFootprintTotals
from repro.cluster.metrics import RunningJobStats
from repro.cluster.multi import MultiPolicyRunner
from repro.cluster.streaming import StreamingSimulator, StreamResult

__all__ = [
    "ShardSpec",
    "ShardResult",
    "MergeableAggregates",
    "derive_shards",
    "run_shard",
    "checkpoint_path",
    "orphan_checkpoints",
]

DEFAULT_CHUNK_SIZE = 4096
#: Chunks between mid-slab checkpoints inside :func:`run_shard` — the replay
#: bound after a worker loss.
DEFAULT_CHECKPOINT_EVERY = 8


def _canonical_hash(payload: object) -> str:
    """Deterministic short hash of a ``repr``-stable payload (cross-process)."""
    return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()[:16]


@dataclasses.dataclass(frozen=True)
class ShardSpec:
    """One leasable unit of sweep work (hashable, picklable, JSON-able).

    ``points`` are the policy cells of the shard — all sharing one fuse key —
    and ``indices`` their positions in the originating sweep's point list
    (results are keyed by original index so the coordinator reassembles
    outcomes in input order).  ``chunk_start``/``max_chunks``/``slab``
    locate the time slab; ``max_chunks=None`` means "run to the end of the
    stream" (single-slab lineages).
    """

    points: tuple[SweepPoint, ...]
    indices: tuple[int, ...]
    chunk_size: int = DEFAULT_CHUNK_SIZE
    chunk_start: int = 0
    max_chunks: int | None = None
    slab: int = 0

    def __post_init__(self) -> None:
        if not self.points:
            raise ValueError("a shard needs at least one point")
        if len(self.points) != len(self.indices):
            raise ValueError(
                f"{len(self.points)} points but {len(self.indices)} indices"
            )
        keys = {_fuse_key(point) for point in self.points}
        if len(keys) > 1:
            raise ValueError(
                "all points of a shard must share one fuse key (same workload "
                "and simulation conditions); got mixed groups"
            )
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if self.chunk_start < 0 or self.slab < 0:
            raise ValueError("chunk_start and slab must be >= 0")
        if self.max_chunks is not None and self.max_chunks < 1:
            raise ValueError("max_chunks must be >= 1 (or None for unbounded)")

    # -- identity ----------------------------------------------------------------------
    def lineage(self) -> str:
        """Hash of the slab-invariant identity (points × indices × chunking).

        Every slab — and every re-dispatch — of one lineage shares this
        value, so they all address the same ``shard-<lineage>.ckpt`` file.
        """
        return _canonical_hash((self.points, self.indices, self.chunk_size))

    def key(self) -> str:
        """Hash of the full identity, slab range included (the lease key)."""
        return _canonical_hash(
            (self.points, self.indices, self.chunk_size, self.chunk_start,
             self.max_chunks, self.slab)
        )

    def continuation(self, chunks_done: int) -> "ShardSpec":
        """The next slab of this lineage, starting where this one stopped."""
        return dataclasses.replace(
            self, chunk_start=int(chunks_done), slab=self.slab + 1
        )

    # -- JSON transport ----------------------------------------------------------------
    def as_dict(self) -> dict:
        """Pure-JSON representation (the TCP transport ships specs this way)."""
        return {
            "points": [dataclasses.asdict(point) for point in self.points],
            "indices": list(self.indices),
            "chunk_size": self.chunk_size,
            "chunk_start": self.chunk_start,
            "max_chunks": self.max_chunks,
            "slab": self.slab,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ShardSpec":
        points = []
        for raw in payload["points"]:
            raw = dict(raw)
            raw["scheduler_kwargs"] = tuple(
                (str(name), value) for name, value in raw.get("scheduler_kwargs", ())
            )
            points.append(SweepPoint(**raw))
        return cls(
            points=tuple(points),
            indices=tuple(int(i) for i in payload["indices"]),
            chunk_size=int(payload["chunk_size"]),
            chunk_start=int(payload["chunk_start"]),
            max_chunks=(
                None if payload["max_chunks"] is None else int(payload["max_chunks"])
            ),
            slab=int(payload["slab"]),
        )


@dataclasses.dataclass
class ShardResult:
    """What a worker returns for one shard (picklable).

    Non-final slabs carry ``partials`` — per-point
    ``(RunningJobStats, RunningFootprintTotals)`` accumulated during the
    slab — and the coordinator enqueues :meth:`ShardSpec.continuation`.
    The final slab carries finalized ``results`` (whole-lineage engine
    fields; its own slab's aggregates inside).  Both are keyed by the
    *original sweep index*.
    """

    spec: ShardSpec
    final: bool
    chunks_done: int
    partials: dict[int, tuple[RunningJobStats, RunningFootprintTotals]]
    results: dict[int, StreamResult]


def derive_shards(
    points: Sequence[SweepPoint],
    policies_per_shard: int = 1,
    chunks_per_slab: int | None = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> list[ShardSpec]:
    """Deterministic slab-0 shards of a sweep's fused groups.

    Groups the points by fuse key exactly as ``run_sweep(fused=True)`` does,
    then splits each group along the policy axis into subsets of
    ``policies_per_shard`` cells (1 by default — policy cells dominate the
    cost and per-policy shards load-balance best).  Later slabs are created
    dynamically by the coordinator as non-final slabs complete, so only
    slab 0 is derived here.  Input order is preserved group-by-group, and
    the derivation is a pure function of ``points`` — every coordinator
    derives the identical shard list.
    """
    if policies_per_shard < 1:
        raise ValueError("policies_per_shard must be >= 1")
    groups: dict[tuple, list[int]] = {}
    for index, point in enumerate(points):
        groups.setdefault(_fuse_key(point), []).append(index)
    shards = []
    for indices in groups.values():
        for lo in range(0, len(indices), policies_per_shard):
            subset = indices[lo : lo + policies_per_shard]
            shards.append(
                ShardSpec(
                    points=tuple(points[i] for i in subset),
                    indices=tuple(subset),
                    chunk_size=chunk_size,
                    chunk_start=0,
                    max_chunks=chunks_per_slab,
                    slab=0,
                )
            )
    return shards


def checkpoint_path(checkpoint_dir, spec: ShardSpec) -> Path:
    """The lineage-addressed checkpoint file of a shard.

    Named from the :meth:`ShardSpec.lineage` hash — not PID or tmpnam — so a
    re-dispatched shard finds its predecessor's checkpoint, successor slabs
    chain through the same file, and stale files are attributable.
    """
    return Path(checkpoint_dir) / f"shard-{spec.lineage()}.ckpt"


def orphan_checkpoints(
    checkpoint_dir, specs: Sequence[ShardSpec]
) -> list[Path]:
    """Shard checkpoints in ``checkpoint_dir`` owned by none of ``specs``.

    Deterministic names make orphans *identifiable*: anything matching
    ``shard-*.ckpt`` whose lineage hash is not claimed by a live spec is
    left over from a dead or finished sweep and safe to delete.
    """
    alive = {spec.lineage() for spec in specs}
    orphans = []
    for path in sorted(Path(checkpoint_dir).glob("shard-*.ckpt")):
        lineage = path.name[len("shard-") : -len(".ckpt")]
        if lineage not in alive:
            orphans.append(path)
    return orphans


def _build_runner(spec: ShardSpec, source, dataset) -> MultiPolicyRunner:
    from repro.schedulers.registry import make_scheduler

    first = spec.points[0]
    schedulers = [
        (str(i), make_scheduler(p.scheduler, **dict(p.scheduler_kwargs)))
        for i, p in enumerate(spec.points)
    ]
    return MultiPolicyRunner(
        source,
        schedulers,
        dataset=dataset,
        chunk_size=spec.chunk_size,
        collect="aggregate",
        # A uniform sample cannot be merged across shards, so sharded runs
        # disable the reservoir throughout; digests exclude it.
        reservoir_size=0,
        servers_per_region=first.servers_per_region,
        scheduling_interval_s=first.scheduling_interval_s,
        delay_tolerance=first.delay_tolerance,
        include_embodied=first.include_embodied,
        chaos=_point_chaos(first),
        chaos_seed=first.seed,
    )


def run_shard(
    spec: ShardSpec,
    checkpoint_dir,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
) -> ShardResult:
    """Run one shard to its slab boundary (or stream end) and return its result.

    Resume-aware in both directions the fault model needs:

    * entering a slab whose predecessor completed finds the lineage
      checkpoint with ``chunks_done == chunk_start`` and **resets the
      collectors** (the new slab accumulates only its own jobs);
    * re-dispatch after a worker loss finds ``chunks_done > chunk_start``
      (a mid-slab or own-end checkpoint) and **keeps the collectors** —
      the slab's partial so far rides the engine state, so at most
      ``checkpoint_every`` chunks are replayed, and a shard that died
      between its end-of-slab checkpoint and result delivery replays
      nothing at all.
    """
    if checkpoint_every < 1:
        raise ValueError("checkpoint_every must be >= 1")
    ckpt = checkpoint_path(checkpoint_dir, spec)
    first = spec.points[0]
    source = _point_source(first)
    dataset = _point_dataset(first, source)
    target = None if spec.max_chunks is None else spec.chunk_start + spec.max_chunks

    if spec.chunk_start == 0 and not ckpt.exists():
        runner = _build_runner(spec, source, dataset)
        chunks_done = 0
    else:
        if not ckpt.exists():
            raise FileNotFoundError(
                f"shard {spec.key()} (slab {spec.slab}) expects its lineage "
                f"checkpoint at {ckpt}, but the predecessor never wrote it"
            )
        payload = StreamingSimulator.load_checkpoint(ckpt)
        chunks_done = int(payload.get("extra", {}).get("chunks_done", 0))
        if chunks_done < spec.chunk_start:
            raise RuntimeError(
                f"lineage checkpoint at {ckpt} stops at chunk {chunks_done}, "
                f"before this slab's start {spec.chunk_start}: the predecessor "
                "slab is incomplete"
            )
        runner = MultiPolicyRunner.from_checkpoint_payload(
            payload, source, dataset=dataset
        )
        if chunks_done == spec.chunk_start:
            # Predecessor-end checkpoint: fresh slab, fresh partial.
            runner.reset_collectors()
        # chunks_done > chunk_start: mid-slab re-dispatch — the collector
        # already carries this slab's partial; just continue.

    exhausted = False
    while target is None or chunks_done < target:
        remaining = None if target is None else target - chunks_done
        step = checkpoint_every if remaining is None else min(checkpoint_every, remaining)
        consumed = runner.run_chunks(max_chunks=step)
        chunks_done += consumed
        if consumed < step:
            exhausted = True
            break
        if target is not None and chunks_done >= target:
            break
        runner.save_checkpoint(ckpt, extra={"chunks_done": chunks_done})

    if exhausted or target is None:
        results = runner.finalize()
        return ShardResult(
            spec=spec,
            final=True,
            chunks_done=chunks_done,
            partials={},
            results={
                spec.indices[i]: results[str(i)] for i in range(len(spec.points))
            },
        )

    runner.save_checkpoint(ckpt, extra={"chunks_done": chunks_done})
    partials = runner.partials()
    return ShardResult(
        spec=spec,
        final=False,
        chunks_done=chunks_done,
        partials={
            spec.indices[i]: partials[str(i)] for i in range(len(spec.points))
        },
        results={},
    )


class MergeableAggregates:
    """Exact streaming merge of shard results into whole-lineage results.

    Feed every :class:`ShardResult` to :meth:`absorb` as it arrives — in any
    order.  Per-slab partials fold through the exact ``merge()`` of the
    accumulators; the final slab's :class:`StreamResult` contributes the
    engine-derived whole-lineage fields (makespan, utilization, decision
    times) plus its own slab's aggregates.  :meth:`result` swaps the fully
    merged accumulators into that result, making it bit-identical
    (``digest()``) to a single-box fused run of the same cells.
    """

    def __init__(self) -> None:
        self._partials: dict[int, tuple[RunningJobStats, RunningFootprintTotals]] = {}
        self._finals: dict[int, StreamResult] = {}

    def absorb(self, shard_result: ShardResult) -> None:
        """Fold one shard's payload in (takes ownership of its accumulators)."""
        for index, (stats, footprints) in shard_result.partials.items():
            self._fold(index, stats, footprints)
        for index, result in shard_result.results.items():
            self._finals[index] = result
            self._fold(index, result.stats, result.footprint_totals)

    def _fold(
        self, index: int, stats: RunningJobStats, footprints: RunningFootprintTotals
    ) -> None:
        held = self._partials.get(index)
        if held is None:
            self._partials[index] = (stats, footprints)
        else:
            held[0].merge(stats)
            held[1].merge(footprints)

    def complete(self, index: int) -> bool:
        """Whether the lineage owning ``index`` has delivered its final slab."""
        return index in self._finals

    def pending(self, indices: Sequence[int]) -> list[int]:
        """The subset of ``indices`` still waiting for a final slab."""
        return [index for index in indices if index not in self._finals]

    def result(self, index: int) -> StreamResult:
        """The assembled whole-lineage result for one sweep point."""
        result = self._finals[index]
        stats, footprints = self._partials[index]
        result.stats = stats
        result.footprint_totals = footprints
        if result.chaos_stats is not None:
            # The final slab attached its own slab's eviction count; the
            # merged accumulator has the whole lineage's.
            result.chaos_stats = dict(result.chaos_stats)
            result.chaos_stats["evictions"] = int(stats.evictions)
        return result
