"""Savings relative to the carbon- and water-unaware baseline.

The paper reports every result as a percentage saving with respect to the
baseline policy that runs each job in its home region.  These helpers turn a
set of :class:`~repro.cluster.metrics.SimulationResult` objects into that
representation.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping

from repro.cluster.metrics import SimulationResult

__all__ = ["PolicySavings", "savings_table", "savings_for"]


@dataclasses.dataclass(frozen=True)
class PolicySavings:
    """Carbon/water savings of one policy versus the baseline."""

    policy: str
    carbon_savings_pct: float
    water_savings_pct: float
    mean_service_ratio: float
    violation_pct: float

    def as_row(self) -> list[str]:
        return [
            self.policy,
            f"{self.carbon_savings_pct:6.2f}",
            f"{self.water_savings_pct:6.2f}",
            f"{self.mean_service_ratio:5.3f}",
            f"{self.violation_pct:5.2f}",
        ]


def savings_for(result: SimulationResult, baseline: SimulationResult) -> PolicySavings:
    """Savings of ``result`` relative to ``baseline``."""
    return PolicySavings(
        policy=result.scheduler_name,
        carbon_savings_pct=result.carbon_savings_vs(baseline),
        water_savings_pct=result.water_savings_vs(baseline),
        mean_service_ratio=result.mean_service_ratio,
        violation_pct=100.0 * result.violation_fraction,
    )


def savings_table(
    results: Mapping[str, SimulationResult], baseline_key: str = "baseline"
) -> list[PolicySavings]:
    """Savings of every policy in ``results`` relative to ``results[baseline_key]``.

    The baseline itself is included (with zero savings) so tables show the
    reference row explicitly.  Rows are labelled with the *mapping keys*, not
    the schedulers' own names, so several differently-configured instances of
    the same policy (e.g. WaterWise ablation variants) stay distinguishable.
    """
    if baseline_key not in results:
        raise KeyError(
            f"baseline policy {baseline_key!r} missing from results ({sorted(results)})"
        )
    baseline = results[baseline_key]
    return [
        dataclasses.replace(savings_for(result, baseline), policy=key)
        for key, result in results.items()
    ]
