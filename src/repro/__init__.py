"""WaterWise reproduction: carbon- and water-aware geo-distributed job scheduling.

The package is organized as a set of substrates (MILP solver, sustainability
models, traces, cluster simulator) plus the WaterWise scheduler core built on
top of them.  The most commonly used entry points are re-exported here.

Subpackages
-----------
``repro.milp``
    MILP modeling layer and solvers (native simplex + branch & bound, and a
    SciPy/HiGHS backend).
``repro.sustainability``
    Carbon and water footprint models, energy-source catalog, grid-mix model,
    WUE/WSF data, and synthetic dataset providers.
``repro.regions``
    Region catalog (the five evaluation regions), transfer-latency matrix and
    wet-bulb weather model.
``repro.traces``
    Job model, Borg-like and Alibaba-like synthetic trace generators and the
    PARSEC/CloudSuite workload profiles.
``repro.cluster``
    Discrete-event geo-distributed cluster simulator and metrics accounting.
``repro.schedulers``
    Baseline scheduling policies (home-region baseline, round-robin,
    least-load, carbon/water greedy-optimal oracles, Ecovisor-like).
``repro.core``
    The WaterWise scheduler: MILP objective, constraints, soft constraints,
    slack manager, history learner and decision controller.
``repro.analysis``
    Savings computation, parameter sweeps and report tables used by the
    benchmark harness.
"""

from repro._version import __version__

__all__ = ["__version__"]
