"""Trace replay through the live admission path.

A :class:`TraceReplayer` paces a recorded :class:`TraceSource` through an
:class:`AdmissionGateway` — the *same* gateway, engine, and ``admit()`` path a
live session uses — so the live service can be verified by digest equality
against the batch engine rather than trusted.

Pacing:

* ``pace == 0`` — fast-forward: a :class:`SimClock` jumps to each chunk's
  first arrival, so the replay runs at CPU speed.  This is the verification
  mode (differential cells, CI smoke).
* ``pace > 0`` — a :class:`WallClock` scaled to ``pace`` simulated seconds
  per wall second delivers chunks on the recorded schedule (``pace=1`` is
  real time, ``pace=3600`` plays an hour per second).

The replayer never awaits a chunk's decisions before submitting the next
chunk: a scheduling round can defer a job until later arrivals raise the
safety watermark, so awaiting inline would deadlock on exactly the jobs the
watermark rule exists to protect.  Futures are collected as they are issued
and gathered after ``close()`` finalizes the engine (finalization decides
every remaining job).
"""

from __future__ import annotations

import dataclasses

from repro.service.clock import SimClock, WallClock
from repro.service.gateway import AdmissionGateway, GatewayStats, PlacementDecision

__all__ = ["ReplayReport", "TraceReplayer", "replay_source", "run_replay"]

DEFAULT_CHUNK_SIZE = 2048


@dataclasses.dataclass(frozen=True)
class ReplayReport:
    """Everything a replay produces: the engine result plus service counters."""

    #: Finalized engine result (``BatchResult`` or ``StreamResult``) — its
    #: ``digest()`` is byte-comparable to a batch run of the same trace.
    result: object
    decisions: tuple[PlacementDecision, ...]
    stats: GatewayStats
    pace: float
    chunks: int
    jobs: int

    def as_dict(self) -> dict:
        """JSON-friendly summary (decisions elided — counters only)."""
        digest = getattr(self.result, "digest", None)
        return {
            "pace": self.pace,
            "chunks": self.chunks,
            "jobs": self.jobs,
            # Full-collect runs report BatchResult's per-job decision digest;
            # aggregate-collect runs report StreamResult's aggregate digest.
            # The two cover different payloads — compare like with like.
            "digest": digest() if digest is not None else None,
            "stats": self.stats.as_dict(),
        }


class TraceReplayer:
    """Drives one recorded source through one gateway.

    The gateway must be in ``"recorded"`` arrival mode (the default): the
    watermark must stay arrival-driven or a wall clock running ahead of the
    trace would reject older chunks and break replay/batch equivalence.
    """

    def __init__(
        self,
        source,
        gateway: AdmissionGateway,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        if gateway.arrival_mode != "recorded":
            raise ValueError(
                "trace replay requires a gateway in 'recorded' arrival mode; "
                f"got {gateway.arrival_mode!r}"
            )
        if int(chunk_size) < 1:
            raise ValueError("chunk_size must be >= 1")
        self.source = source
        self.gateway = gateway
        self.chunk_size = int(chunk_size)
        self.chunks = 0
        self.jobs = 0
        self._futures: list = []

    async def run(self, max_chunks: int | None = None, skip_jobs: int = 0) -> int:
        """Pace chunks into the gateway; returns the number of chunks sent.

        ``skip_jobs`` fast-forwards past already-admitted jobs (resuming a
        checkpointed replay: pass ``engine.state.jobs_seen``).  With
        ``max_chunks`` the replay can be interrupted mid-trace — checkpoint,
        then resume with a fresh replayer.
        """
        sent = 0
        for chunk in self.source.iter_chunks(self.chunk_size, skip_jobs=skip_jobs):
            if max_chunks is not None and sent >= max_chunks:
                break
            if chunk.n:
                await self.gateway.clock.sleep_until(float(chunk.arrival[0]))
                self._futures.extend(await self.gateway.submit_nowait(chunk))
                self.jobs += chunk.n
            sent += 1
            self.chunks += 1
        return sent

    async def finish(self, pace: float = 0.0) -> ReplayReport:
        """Finalize the engine and gather every decision into a report."""
        result = await self.gateway.close()
        decisions = tuple([future.result() for future in self._futures])
        return ReplayReport(
            result=result,
            decisions=decisions,
            stats=self.gateway.stats(),
            pace=pace,
            chunks=self.chunks,
            jobs=self.jobs,
        )


def _clock_for_pace(pace: float, start: float):
    if pace < 0:
        raise ValueError(f"pace must be >= 0, got {pace!r}")
    if pace == 0:
        return SimClock(start=start)
    return WallClock(rate=pace, start=start)


async def replay_source(
    source,
    engine,
    pace: float = 0.0,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    max_pending_batches: int = 64,
) -> ReplayReport:
    """Replay ``source`` through a fresh gateway over ``engine`` (async)."""
    start = 0.0
    if engine.state is not None:
        start = engine.state.watermark
    clock = _clock_for_pace(float(pace), start)
    gateway = AdmissionGateway(
        engine,
        clock=clock,
        arrival_mode="recorded",
        max_pending_batches=max_pending_batches,
    )
    await gateway.start()
    skip = engine.state.jobs_seen if engine.state is not None else 0
    replayer = TraceReplayer(source, gateway, chunk_size=chunk_size)
    await replayer.run(skip_jobs=skip)
    return await replayer.finish(pace=float(pace))


def run_replay(
    source,
    engine,
    pace: float = 0.0,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    max_pending_batches: int = 64,
) -> ReplayReport:
    """Synchronous wrapper around :func:`replay_source` (owns an event loop)."""
    import asyncio

    return asyncio.run(
        replay_source(
            source,
            engine,
            pace=pace,
            chunk_size=chunk_size,
            max_pending_batches=max_pending_batches,
        )
    )
