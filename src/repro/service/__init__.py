"""Live scheduler service: wall-clock admission over the streaming engine.

Every engine in :mod:`repro.cluster` runs in *simulated* time — a trace is
known up front and the event loop jumps from round to round.  This package
serves the same engine **online**: jobs arrive as requests, placements are
answered as responses, and the clock is (optionally) the wall clock.

The layering, bottom to top:

* :mod:`repro.service.clock` — the clock abstraction (:class:`SimClock` /
  :class:`WallClock`) so simulated and wall time drive one engine through
  one code path,
* :meth:`repro.cluster.streaming.StreamingSimulator.admit` — the engine-side
  incremental API: ingest a chunk of submissions, advance to the clock
  watermark, return the placement decisions that became safe,
* :mod:`repro.service.gateway` — the asyncio admission gateway: bounded
  request queue (backpressure), per-job decision futures, decision-latency /
  throughput counters, and in-loop checkpointing of live sessions,
* :mod:`repro.service.replay` — trace replay through the *identical* live
  decision path, paced (``pace`` × real time) or fast-forwarded (``pace=0``);
  a replayed run's result digest is byte-identical to the batch engine's,
  which is how the live service is verified,
* :mod:`repro.service.server` — a small JSON-lines TCP front end over the
  gateway for out-of-process clients (``repro serve``).
"""

from repro.service.clock import Clock, SimClock, WallClock
from repro.service.gateway import AdmissionGateway, GatewayStats, PlacementDecision
from repro.service.replay import ReplayReport, TraceReplayer, replay_source, run_replay
from repro.service.server import AdmissionServer

__all__ = [
    "AdmissionGateway",
    "AdmissionServer",
    "Clock",
    "GatewayStats",
    "PlacementDecision",
    "ReplayReport",
    "SimClock",
    "TraceReplayer",
    "WallClock",
    "replay_source",
    "run_replay",
]
