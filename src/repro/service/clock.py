"""Clock abstraction: simulated and wall time driving one engine.

The streaming engine's admission API (:meth:`StreamingSimulator.admit`) is
parameterized by a *watermark* — "no job can arrive before this time".  Where
that watermark comes from is the only difference between a replayed trace and
a live service, so it is abstracted into a clock with two implementations:

* :class:`SimClock` — a manually advanced simulation clock.  ``sleep_until``
  returns immediately after jumping the clock forward, so a replay driven by
  it fast-forwards through the trace at CPU speed (``pace=0``).
* :class:`WallClock` — real time, scaled by ``rate`` simulated seconds per
  wall second.  ``sleep_until`` actually sleeps (without blocking the event
  loop), so a replay driven by it delivers jobs on their recorded schedule.

Both expose the same two-method surface, so the gateway and replayer never
branch on which world they are in.
"""

from __future__ import annotations

import asyncio
import time

__all__ = ["Clock", "SimClock", "WallClock"]


class Clock:
    """Minimal clock protocol: a current time and an async wait-until."""

    def now(self) -> float:
        """Current time in simulation seconds (0 = session epoch)."""
        raise NotImplementedError

    async def sleep_until(self, when: float) -> None:
        """Return once ``now()`` is at or past ``when``."""
        raise NotImplementedError


class SimClock(Clock):
    """Manually advanced simulation clock (never sleeps, never goes back)."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance_to(self, when: float) -> float:
        """Jump forward to ``when`` (no-op if the clock is already past it)."""
        when = float(when)
        if when > self._now:
            self._now = when
        return self._now

    async def sleep_until(self, when: float) -> None:
        self.advance_to(when)
        # Yield once so concurrent tasks (the gateway loop) stay responsive
        # even though simulated waiting costs no wall time.
        await asyncio.sleep(0)

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.3f})"


class WallClock(Clock):
    """Real time since construction, scaled by ``rate`` sim-seconds/second.

    ``rate=1`` replays a trace on its recorded schedule; larger rates
    compress it (``rate=60`` plays an hour per minute).  Built on the
    monotonic clock, so system time adjustments never move it backwards.
    """

    def __init__(self, rate: float = 1.0, start: float = 0.0) -> None:
        if not rate > 0.0:
            raise ValueError(f"rate must be > 0, got {rate!r}")
        self.rate = float(rate)
        self._start = float(start)
        self._origin = time.monotonic()

    def now(self) -> float:
        return self._start + (time.monotonic() - self._origin) * self.rate

    async def sleep_until(self, when: float) -> None:
        # Loop: asyncio.sleep undershoots occasionally and `rate` scaling
        # amplifies timer noise, so re-check rather than trust one sleep.
        while True:
            remaining = float(when) - self.now()
            if remaining <= 0.0:
                return
            await asyncio.sleep(remaining / self.rate)

    def __repr__(self) -> str:
        return f"WallClock(rate={self.rate:g}, now={self.now():.3f})"
