"""JSON-lines TCP front end over the admission gateway.

One request per line, one response per line, UTF-8 JSON.  The protocol is
deliberately tiny — enough for out-of-process clients, load generators, and
the ``repro serve`` CLI selftest; it is not a public API.

Requests (``op`` field selects):

* ``{"op": "submit", "jobs": [{...}, ...]}`` — admit a batch.  Each job dict
  needs ``job_id``, ``workload``, ``home_region``, ``execution_time``,
  ``energy_kwh`` (``arrival_time`` optional — live sessions are stamped by
  the gateway clock anyway).  The response arrives once *every* job in the
  batch is placed: ``{"ok": true, "decisions": [[job_id, region, decided_at,
  latency_s], ...]}``.
* ``{"op": "tick"}`` — advance the engine to the clock; response carries the
  number of decisions flushed.
* ``{"op": "stats"}`` — counter snapshot.
* ``{"op": "checkpoint", "path": "..."}`` — checkpoint the live session.
* ``{"op": "shutdown"}`` — finalize the engine and stop the server.

Errors come back as ``{"ok": false, "error": "..."}`` on the connection that
caused them; the server itself stays up (except for engine-poisoning
failures, which the gateway reports to every subsequent request).
"""

from __future__ import annotations

import asyncio
import json

from repro.service.gateway import AdmissionGateway
from repro.traces.job import Job

__all__ = ["AdmissionServer"]


class AdmissionServer:
    """Serve one :class:`AdmissionGateway` on a TCP socket."""

    def __init__(self, gateway: AdmissionGateway, host: str = "127.0.0.1", port: int = 0):
        self.gateway = gateway
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._shutdown = asyncio.Event()
        self.result = None

    async def start(self) -> "AdmissionServer":
        await self.gateway.start()
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        # Resolve the ephemeral port (port=0) to the one actually bound.
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_until_shutdown(self):
        """Block until a client sends ``shutdown``; returns the engine result."""
        async with self._server:
            await self._shutdown.wait()
        return self.result

    async def stop(self) -> None:
        """Stop accepting and finalize the engine (if not already shut down)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.result is None and not self._shutdown.is_set():
            self.result = await self.gateway.close()
        self._shutdown.set()

    def _job_from_dict(self, payload: dict) -> Job:
        arrival = payload.get("arrival_time", 0.0)
        return Job(
            job_id=int(payload["job_id"]),
            workload=str(payload["workload"]),
            arrival_time=float(arrival),
            execution_time=float(payload["execution_time"]),
            energy_kwh=float(payload["energy_kwh"]),
            home_region=str(payload["home_region"]),
            package_gb=float(payload.get("package_gb", 1.0)),
            servers_required=int(payload.get("servers_required", 1)),
        )

    async def _dispatch(self, request: dict) -> dict:
        op = request.get("op")
        if op == "submit":
            jobs = [self._job_from_dict(job) for job in request["jobs"]]
            decisions = await self.gateway.submit(jobs)
            return {
                "ok": True,
                "decisions": [
                    [d.job_id, d.region, d.decided_at, d.latency_s] for d in decisions
                ],
            }
        if op == "tick":
            return {"ok": True, "decided": await self.gateway.tick()}
        if op == "stats":
            return {"ok": True, "stats": self.gateway.stats().as_dict()}
        if op == "checkpoint":
            await self.gateway.checkpoint(request["path"])
            return {"ok": True, "path": request["path"]}
        if op == "shutdown":
            self.result = await self.gateway.close()
            self._shutdown.set()
            return {"ok": True, "jobs": self.gateway.stats().decided}
        return {"ok": False, "error": f"unknown op {op!r}"}

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        try:
            while not self._shutdown.is_set():
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line)
                    response = await self._dispatch(request)
                except (KeyError, ValueError, TypeError, RuntimeError) as error:
                    response = {"ok": False, "error": f"{type(error).__name__}: {error}"}
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
