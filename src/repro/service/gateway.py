"""Asyncio admission gateway: job batches in, placement decisions out.

The gateway is the single owner of a :class:`StreamingSimulator` and serves
it online.  Clients submit batches of jobs (``Job`` objects or an already
columnar ``JobChunk``); the gateway funnels them through a *bounded* request
queue — a full queue suspends submitters, which is the backpressure contract
— into :meth:`StreamingSimulator.admit`, and resolves one future per job
when its placement decision is committed.  A decision may resolve on a later
admission than the one that submitted the job (scheduling rounds can defer),
so submitters await futures rather than parse a synchronous reply.

Two arrival modes cover the two ways time can flow:

* ``"recorded"`` (default) — jobs keep the arrival times they carry, and the
  engine's safety watermark advances on arrivals only.  This is the replay
  mode: it is decision-identical to a batch run *by construction*, which is
  what the differential harness verifies (digest equality).
* ``"clock"`` — the gateway stamps each batch with the clock's current time
  when the batch is *admitted* (never before the watermark, which queued
  work ahead of the batch may have raised).  This is the live mode: between
  requests the
  gateway can ``tick`` the watermark forward so deferred jobs make progress
  and chaos-timeline capacity events fire at their scheduled times.

Checkpointing a live session goes through the same queue (``checkpoint()``)
so the state is only ever pickled between admissions — never mid-round.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from typing import NamedTuple

import numpy as np

from repro.cluster.metrics import P2Quantile
from repro.service.clock import Clock, SimClock
from repro.traces.stream import JobChunk

__all__ = ["AdmissionGateway", "GatewayStats", "PlacementDecision"]


class PlacementDecision(NamedTuple):
    """One resolved placement: where a job runs and how long the answer took."""

    job_id: int
    region: str
    #: Simulation time of the scheduling round that committed the placement.
    decided_at: float
    #: Wall seconds from submission to decision (service latency, *not*
    #: simulated queueing delay).
    latency_s: float


@dataclasses.dataclass(frozen=True)
class GatewayStats:
    """Counter snapshot (see :meth:`AdmissionGateway.stats`)."""

    submitted: int
    decided: int
    outstanding: int
    #: Decisions the engine re-emitted for jobs no waiter claimed — normal
    #: after resuming a checkpointed session whose submitters are gone.
    unclaimed: int
    batches: int
    ticks: int
    checkpoints: int
    latency_p50_s: float
    latency_p95_s: float
    latency_p99_s: float
    latency_mean_s: float
    latency_max_s: float
    #: Wall seconds between the first submission and the latest decision.
    busy_wall_s: float

    @property
    def throughput_jobs_per_s(self) -> float:
        if self.busy_wall_s <= 0.0:
            return 0.0
        return self.decided / self.busy_wall_s

    def as_dict(self) -> dict:
        payload = dataclasses.asdict(self)
        payload["throughput_jobs_per_s"] = self.throughput_jobs_per_s
        return payload


class _Request(NamedTuple):
    kind: str  # "batch" | "tick" | "checkpoint" | "finalize"
    payload: object
    future: asyncio.Future | None


class AdmissionGateway:
    """Single-owner async front end over one :class:`StreamingSimulator`.

    Parameters
    ----------
    engine:
        The resident streaming engine (fresh, or rebuilt from a checkpoint —
        the gateway continues a resumed session transparently).
    clock:
        Time source (:class:`SimClock` default).  A live service passes a
        :class:`~repro.service.clock.WallClock`.
    arrival_mode:
        ``"recorded"`` keeps submitted arrival times (replay), ``"clock"``
        stamps batches with ``clock.now()`` (live).  See the module docstring
        for the watermark semantics of each.
    max_pending_batches:
        Bound of the request queue; submitters suspend when it is full
        (backpressure).
    tick_interval_s:
        Wall seconds of queue idleness before the loop self-ticks (clock
        mode only; default 0.05).  Required for liveness: a job stamped at
        ``clock.now()`` is decided by a scheduling round *after* the current
        watermark, so without ticks an awaited submission would wait forever
        on a quiet service.  ``None`` disables (recorded mode's default —
        the watermark is arrival-driven there, so ticks cannot help).
    """

    def __init__(
        self,
        engine,
        clock: Clock | None = None,
        arrival_mode: str = "recorded",
        max_pending_batches: int = 64,
        tick_interval_s: float | None = None,
    ) -> None:
        if arrival_mode not in ("recorded", "clock"):
            raise ValueError(
                f"arrival_mode must be 'recorded' or 'clock', got {arrival_mode!r}"
            )
        if int(max_pending_batches) < 1:
            raise ValueError("max_pending_batches must be >= 1")
        self.engine = engine
        self.clock = clock if clock is not None else SimClock()
        self.arrival_mode = arrival_mode
        self.max_pending_batches = int(max_pending_batches)
        if tick_interval_s is None and arrival_mode == "clock":
            tick_interval_s = 0.05
        if tick_interval_s is not None and not tick_interval_s > 0.0:
            raise ValueError("tick_interval_s must be > 0 (or None to disable)")
        self.tick_interval_s = tick_interval_s
        self._queue: asyncio.Queue[_Request] | None = None
        self._task: asyncio.Task | None = None
        self._waiters: dict[int, tuple[asyncio.Future, float]] = {}
        self._closed = False
        self._failure: BaseException | None = None
        # Counters.
        self._submitted = 0
        self._decided = 0
        self._unclaimed = 0
        self._batches = 0
        self._ticks = 0
        self._checkpoints = 0
        self._latency_q = {q: P2Quantile(q) for q in (0.5, 0.95, 0.99)}
        self._latency_total = 0.0
        self._latency_max = 0.0
        self._first_submit: float | None = None
        self._last_decide: float | None = None

    # -- lifecycle ---------------------------------------------------------------------
    async def start(self) -> "AdmissionGateway":
        """Start the admission loop (idempotent); returns self for chaining."""
        if self._task is None:
            self._queue = asyncio.Queue(maxsize=self.max_pending_batches)
            self._task = asyncio.create_task(self._loop(), name="admission-gateway")
        return self

    async def close(self):
        """Finalize the engine and return its result (BatchResult/StreamResult).

        Every job admitted so far is decided by finalization, so all
        outstanding futures resolve before the result is returned.
        """
        self._ensure_open()
        self._closed = True
        future = asyncio.get_running_loop().create_future()
        await self._queue.put(_Request("finalize", None, future))
        result = await future
        await self._task
        return result

    async def abort(self) -> None:
        """Stop serving *without* finalizing (e.g. right after a checkpoint).

        Outstanding futures are cancelled; the engine keeps its state, so the
        caller may checkpoint before aborting and resume the session later.
        """
        if self._task is None:
            return
        self._closed = True
        self._task.cancel()
        try:
            await self._task
        except asyncio.CancelledError:
            pass
        self._fail_waiters(asyncio.CancelledError())

    # -- client surface ----------------------------------------------------------------
    async def submit(self, jobs) -> list[PlacementDecision]:
        """Submit a batch and await every job's placement decision.

        Beware awaiting inline while replaying a recorded trace: a deferred
        job's decision may only become safe after *later* arrivals are
        ingested, so a replayer must use :meth:`submit_nowait` and gather at
        the end (see :mod:`repro.service.replay`).  Live sessions, which tick
        the watermark forward, can await directly.
        """
        futures = await self.submit_nowait(jobs)
        return list(await asyncio.gather(*futures))

    async def submit_nowait(self, jobs) -> list[asyncio.Future]:
        """Enqueue a batch; returns one future per job, in submission order.

        The i-th future always belongs to the i-th submitted job, even in
        recorded mode where the chunk handed to the engine is arrival-sorted
        internally — callers may zip the futures against their input list.
        Suspends while the request queue is full (backpressure).  ``jobs``
        is a :class:`JobChunk` or a sequence of ``Job`` objects.
        """
        self._ensure_open()
        if isinstance(jobs, JobChunk):
            chunk = jobs
            batch_ids = [int(job_id) for job_id in chunk.job_id.tolist()]
        else:
            jobs = list(jobs)
            batch_ids = [int(job.job_id) for job in jobs]
            chunk = self._chunk_from_jobs(jobs)
        # Validate the whole batch before registering any waiter: raising
        # halfway through would strand the already-registered futures as
        # permanently "outstanding" ids that can never be resubmitted.
        batch_seen: set[int] = set()
        for job_id in batch_ids:
            if job_id in self._waiters or job_id in batch_seen:
                raise ValueError(
                    f"job id {job_id} is already outstanding; live job ids "
                    "must be unique until their decision resolves"
                )
            batch_seen.add(job_id)
        loop = asyncio.get_running_loop()
        submitted_at = time.monotonic()
        if self._first_submit is None:
            self._first_submit = submitted_at
        futures: list[asyncio.Future] = []
        for job_id in batch_ids:
            future = loop.create_future()
            self._waiters[job_id] = (future, submitted_at)
            futures.append(future)
        self._submitted += chunk.n
        await self._queue.put(_Request("batch", chunk, None))
        return futures

    async def tick(self, now: float | None = None) -> int:
        """Advance the engine to the clock (or ``now``) without new jobs.

        Runs the scheduling rounds the new watermark makes safe — deferred
        jobs progress, chaos capacity events fire — and resolves any decision
        futures that became available.  Returns the number of decisions.
        Only meaningful in ``"clock"`` mode; in ``"recorded"`` mode the
        watermark stays arrival-driven and a tick merely flushes decisions.
        """
        self._ensure_open()
        future = asyncio.get_running_loop().create_future()
        await self._queue.put(_Request("tick", now, future))
        return await future

    async def checkpoint(self, path, extra: dict | None = None) -> None:
        """Checkpoint the live session between admissions (format 3 path)."""
        self._ensure_open()
        future = asyncio.get_running_loop().create_future()
        await self._queue.put(_Request("checkpoint", (path, extra), future))
        await future

    def stats(self) -> GatewayStats:
        """Snapshot the admission counters (cheap; safe to call any time)."""
        quantile = {
            q: (tracker.value() if self._decided else 0.0)
            for q, tracker in self._latency_q.items()
        }
        busy = 0.0
        if self._first_submit is not None and self._last_decide is not None:
            busy = max(0.0, self._last_decide - self._first_submit)
        return GatewayStats(
            submitted=self._submitted,
            decided=self._decided,
            outstanding=len(self._waiters),
            unclaimed=self._unclaimed,
            batches=self._batches,
            ticks=self._ticks,
            checkpoints=self._checkpoints,
            latency_p50_s=quantile[0.5],
            latency_p95_s=quantile[0.95],
            latency_p99_s=quantile[0.99],
            latency_mean_s=self._latency_total / self._decided if self._decided else 0.0,
            latency_max_s=self._latency_max,
            busy_wall_s=busy,
        )

    # -- internals ---------------------------------------------------------------------
    def _ensure_open(self) -> None:
        if self._failure is not None:
            raise RuntimeError("admission gateway failed") from self._failure
        if self._closed:
            raise RuntimeError("admission gateway is closed")
        if self._task is None or self._queue is None:
            raise RuntimeError("admission gateway is not started (await start())")

    def _watermark(self) -> float:
        state = self.engine.state
        return state.watermark if state is not None else 0.0

    def _admit_now(self) -> float | None:
        # In recorded mode the watermark must stay arrival-driven: advancing
        # it to a wall clock that runs ahead of the trace would reject the
        # next (older) chunk and break replay/batch equivalence.
        return self.clock.now() if self.arrival_mode == "clock" else None

    def _chunk_from_jobs(self, jobs) -> JobChunk:
        jobs = list(jobs)
        region_keys = self.engine._keys_tuple
        region_index = {key: i for i, key in enumerate(region_keys)}
        if self.arrival_mode == "clock":
            # Placeholder only — clock-mode batches are stamped at admission
            # time inside the loop (see _stamp_clock_chunk), because queued
            # work ahead of this batch may raise the watermark first.
            arrival = np.zeros(len(jobs))
        else:
            jobs.sort(key=lambda job: job.arrival_time)
            arrival = np.array([job.arrival_time for job in jobs], dtype=float)
        workload_names = tuple(dict.fromkeys(job.workload for job in jobs))
        workload_index = {name: i for i, name in enumerate(workload_names)}
        for job in jobs:
            if job.home_region not in region_index:
                raise ValueError(
                    f"job {job.job_id} has home region {job.home_region!r} "
                    f"outside the served cluster {sorted(region_keys)}"
                )
        return JobChunk(
            region_keys=region_keys,
            workload_names=workload_names,
            job_id=np.array([job.job_id for job in jobs], dtype=np.int64),
            arrival=arrival,
            exec_est=np.array([job.execution_time for job in jobs], dtype=float),
            # realized_* falls back to the estimate when no true value is
            # known — true_execution_time defaults to None, which would turn
            # into NaN here and silently wedge the completion event kernel.
            exec_real=np.array([job.realized_execution_time for job in jobs], dtype=float),
            energy_est=np.array([job.energy_kwh for job in jobs], dtype=float),
            energy_real=np.array([job.realized_energy_kwh for job in jobs], dtype=float),
            home_idx=np.array([region_index[job.home_region] for job in jobs], dtype=np.int64),
            workload_idx=np.array(
                [workload_index[job.workload] for job in jobs], dtype=np.int64
            ),
            package_gb=np.array([job.package_gb for job in jobs], dtype=float),
            servers=np.array([job.servers_required for job in jobs], dtype=np.int64),
        )

    def _stamp_clock_chunk(self, chunk: JobChunk) -> JobChunk:
        """Stamp a clock-mode batch at admission (processing) time.

        Stamping at submit time is wrong under pipelining: an earlier queued
        batch or tick admits at ``clock.now()`` and raises the watermark, so
        a submit-time stamp taken by a second concurrent client can already
        be in the past by the time its batch reaches the engine — which
        ``_ingest`` rejects, and the resulting engine error would poison the
        gateway for every client.  Clamping to the current watermark keeps
        arrivals monotone no matter how requests interleave.
        """
        if self.arrival_mode != "clock" or not chunk.n:
            return chunk
        stamp = max(self.clock.now(), self._watermark())
        return dataclasses.replace(chunk, arrival=np.full(chunk.n, stamp))

    def _resolve(self, decisions) -> int:
        resolved_at = time.monotonic()
        count = 0
        for job_id, region, decided_at in decisions.items():
            waiter = self._waiters.pop(job_id, None)
            if waiter is None:
                self._unclaimed += 1
                continue
            future, submitted_at = waiter
            latency = resolved_at - submitted_at
            decision = PlacementDecision(job_id, region, decided_at, latency)
            if not future.done():
                future.set_result(decision)
            count += 1
            self._decided += 1
            self._latency_total += latency
            self._latency_max = max(self._latency_max, latency)
            for tracker in self._latency_q.values():
                tracker.add(latency)
        if count:
            self._last_decide = resolved_at
        return count

    def _fail_waiters(self, error: BaseException) -> None:
        for future, _submitted_at in self._waiters.values():
            if not future.done():
                if isinstance(error, asyncio.CancelledError):
                    future.cancel()
                else:
                    future.set_exception(error)
        self._waiters.clear()

    async def _loop(self) -> None:
        engine = self.engine
        try:
            while True:
                # Self-tick while requests are outstanding and the queue is
                # idle, so awaited decisions resolve as the clock advances.
                if self.tick_interval_s is not None and self._waiters:
                    try:
                        request = await asyncio.wait_for(
                            self._queue.get(), timeout=self.tick_interval_s
                        )
                    except asyncio.TimeoutError:
                        self._ticks += 1
                        self._resolve(engine.admit(None, now=self._admit_now()))
                        continue
                else:
                    request = await self._queue.get()
                if request.kind == "batch":
                    self._batches += 1
                    chunk = self._stamp_clock_chunk(request.payload)
                    decisions = engine.admit(chunk, now=self._admit_now())
                    self._resolve(decisions)
                elif request.kind == "tick":
                    now = request.payload
                    if now is None:
                        now = self._admit_now()
                    self._ticks += 1
                    count = self._resolve(engine.admit(None, now=now))
                    request.future.set_result(count)
                elif request.kind == "checkpoint":
                    path, extra = request.payload
                    engine.save_checkpoint(path, extra=extra)
                    self._checkpoints += 1
                    request.future.set_result(None)
                elif request.kind == "finalize":
                    result = engine.finalize()
                    self._resolve(engine.drain_decisions())
                    request.future.set_result(result)
                    return
        except asyncio.CancelledError:
            raise
        except BaseException as error:
            # The engine's state is suspect after an admission error: fail
            # every waiter and poison the gateway so submits stop cleanly.
            self._failure = error
            self._fail_waiters(error)
            while not self._queue.empty():
                stale = self._queue.get_nowait()
                if stale.future is not None and not stale.future.done():
                    stale.future.set_exception(error)
            raise
