"""Shared argument-validation helpers.

These helpers keep validation messages consistent across the package and keep
the calling code compact.  They are intentionally strict: scheduling and
footprint computations silently produce nonsense when fed negative energies,
NaN intensities or empty traces, so public entry points validate their inputs.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from typing import Any

__all__ = [
    "ensure_positive",
    "ensure_non_negative",
    "ensure_in_unit_interval",
    "ensure_finite",
    "ensure_fraction_pair",
    "ensure_non_empty",
    "ensure_one_of",
]


def ensure_finite(value: float, name: str) -> float:
    """Return ``value`` as a float, raising ``ValueError`` if NaN/inf."""
    value = float(value)
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return value


def ensure_positive(value: float, name: str) -> float:
    """Return ``value`` as a float, raising ``ValueError`` unless it is > 0."""
    value = ensure_finite(value, name)
    if value <= 0.0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def ensure_non_negative(value: float, name: str) -> float:
    """Return ``value`` as a float, raising ``ValueError`` unless it is >= 0."""
    value = ensure_finite(value, name)
    if value < 0.0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def ensure_in_unit_interval(value: float, name: str) -> float:
    """Return ``value`` as a float, raising ``ValueError`` unless 0 <= value <= 1."""
    value = ensure_finite(value, name)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be within [0, 1], got {value!r}")
    return value


def ensure_fraction_pair(a: float, b: float, names: tuple[str, str]) -> tuple[float, float]:
    """Validate two non-negative weights that must sum to 1 (within tolerance)."""
    a = ensure_non_negative(a, names[0])
    b = ensure_non_negative(b, names[1])
    if abs((a + b) - 1.0) > 1e-9:
        raise ValueError(f"{names[0]} + {names[1]} must equal 1.0, got {a + b!r}")
    return a, b


def ensure_non_empty(seq: Sequence[Any] | Iterable[Any], name: str) -> list[Any]:
    """Materialize ``seq`` into a list, raising ``ValueError`` if it is empty."""
    items = list(seq)
    if not items:
        raise ValueError(f"{name} must not be empty")
    return items


def ensure_one_of(value: Any, options: Sequence[Any], name: str) -> Any:
    """Raise ``ValueError`` unless ``value`` is one of ``options``."""
    if value not in options:
        raise ValueError(f"{name} must be one of {list(options)!r}, got {value!r}")
    return value
