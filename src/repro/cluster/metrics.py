"""Per-job outcomes, aggregate simulation results, and streaming accumulators.

Besides the object-world :class:`JobOutcome` / :class:`SimulationResult`
pair, this module provides the *carry-over accumulators* of the streaming
horizon engine: :class:`RunningJobStats` folds finished-job chunks into the
aggregate figures of merit without retaining per-job columns, assisted by
:class:`StreamingQuantiles` / :class:`P2Quantile` (constant-memory
quantile estimation) and
:class:`ReservoirSample` (a seeded uniform sample of per-job rows for
post-hoc inspection).  All three are picklable, so a checkpointed engine
resumes mid-aggregation.
"""

from __future__ import annotations

import dataclasses
import statistics
from collections.abc import Mapping, Sequence

import numpy as np

__all__ = [
    "JobOutcome",
    "SimulationResult",
    "P2Quantile",
    "StreamingQuantiles",
    "ReservoirSample",
    "RunningJobStats",
]


@dataclasses.dataclass(frozen=True)
class JobOutcome:
    """Everything the evaluation needs to know about one completed job.

    Times are seconds since the start of the trace.  ``service_time`` follows
    the paper's definition of delay tolerance: it measures the extra delay a
    job experienced relative to running immediately with no transfer or
    queuing, so it is counted from the first scheduling round at which the
    job was considered (``considered_time``) rather than from the raw arrival
    time; the batching alignment delay is identical for every policy and
    would otherwise obscure the comparison.  ``raw_service_time`` (from
    arrival) is also kept for completeness.
    """

    job_id: int
    workload: str
    home_region: str
    executed_region: str
    arrival_time: float
    considered_time: float
    assigned_time: float
    ready_time: float
    start_time: float
    finish_time: float
    execution_time: float
    transfer_latency: float
    carbon_g: float
    water_l: float
    deferrals: int
    delay_tolerance: float

    @property
    def queue_delay(self) -> float:
        """Seconds spent waiting for a free server after the transfer completed."""
        return max(0.0, self.start_time - self.ready_time)

    @property
    def scheduling_delay(self) -> float:
        """Seconds between first consideration and final assignment (deferrals)."""
        return max(0.0, self.assigned_time - self.considered_time)

    @property
    def service_time(self) -> float:
        """Delay-tolerance-relevant service time (see class docstring)."""
        return self.finish_time - self.considered_time

    @property
    def raw_service_time(self) -> float:
        """Service time measured from the job's raw arrival."""
        return self.finish_time - self.arrival_time

    @property
    def service_ratio(self) -> float:
        """Service time normalized to the realized execution time (1.0 = no delay)."""
        return self.service_time / self.execution_time

    @property
    def migrated(self) -> bool:
        """Whether the job executed away from its home region."""
        return self.executed_region != self.home_region

    @property
    def violated_delay_tolerance(self) -> bool:
        """Whether the service time exceeded the allowed delay tolerance."""
        return self.service_time > (1.0 + self.delay_tolerance) * self.execution_time + 1e-9


class SimulationResult:
    """Aggregated result of one simulation run.

    Provides the figures of merit used throughout the paper's evaluation:
    total carbon and water footprints, average normalized service time,
    percentage of delay-tolerance violations, job distribution across regions,
    utilization, and the scheduler decision-making overhead.
    """

    #: Aggregate MILP-solver counters for the run (presolve ratios, warm-start
    #: iteration savings, structured-path hit rates) when the policy routed
    #: rounds through a :class:`~repro.milp.session.SolverSession`; ``None``
    #: for policies that never solve MILPs.  Set by the engines after
    #: construction.
    solver_stats: dict | None = None
    #: Event-kernel telemetry for array-engine runs; ``None`` here (the
    #: object-world engine has no array kernel).  Declared so result types
    #: stay attribute-compatible.  See :class:`repro.cluster.events.KernelStats`.
    kernel_stats: dict | None = None

    def __init__(
        self,
        scheduler_name: str,
        outcomes: Sequence[JobOutcome],
        region_servers: Mapping[str, int],
        region_utilization: Mapping[str, float],
        makespan_s: float,
        decision_times_s: Sequence[float],
        round_times_s: Sequence[float],
        delay_tolerance: float,
        trace_name: str = "",
    ) -> None:
        self.scheduler_name = scheduler_name
        self.outcomes = tuple(outcomes)
        self.region_servers = dict(region_servers)
        self.region_utilization = dict(region_utilization)
        self.makespan_s = float(makespan_s)
        self.decision_times_s = tuple(decision_times_s)
        self.round_times_s = tuple(round_times_s)
        self.delay_tolerance = float(delay_tolerance)
        self.trace_name = trace_name

    # -- totals ------------------------------------------------------------------------
    @property
    def num_jobs(self) -> int:
        return len(self.outcomes)

    @property
    def total_carbon_g(self) -> float:
        return float(sum(outcome.carbon_g for outcome in self.outcomes))

    @property
    def total_carbon_kg(self) -> float:
        return self.total_carbon_g / 1000.0

    @property
    def total_water_l(self) -> float:
        return float(sum(outcome.water_l for outcome in self.outcomes))

    @property
    def total_water_m3(self) -> float:
        return self.total_water_l / 1000.0

    # -- service time / violations ----------------------------------------------------------
    @property
    def mean_service_ratio(self) -> float:
        """Average service time normalized to execution time (paper Table 2)."""
        if not self.outcomes:
            return float("nan")
        return statistics.fmean(outcome.service_ratio for outcome in self.outcomes)

    @property
    def violation_fraction(self) -> float:
        """Fraction of jobs whose delay tolerance was violated (paper Table 2)."""
        if not self.outcomes:
            return 0.0
        violated = sum(1 for outcome in self.outcomes if outcome.violated_delay_tolerance)
        return violated / len(self.outcomes)

    @property
    def mean_queue_delay_s(self) -> float:
        if not self.outcomes:
            return 0.0
        return statistics.fmean(outcome.queue_delay for outcome in self.outcomes)

    @property
    def mean_transfer_latency_s(self) -> float:
        if not self.outcomes:
            return 0.0
        return statistics.fmean(outcome.transfer_latency for outcome in self.outcomes)

    @property
    def migration_fraction(self) -> float:
        """Fraction of jobs executed away from their home region."""
        if not self.outcomes:
            return 0.0
        return sum(1 for outcome in self.outcomes if outcome.migrated) / len(self.outcomes)

    # -- distribution / utilization -------------------------------------------------------------
    def jobs_per_region(self) -> dict[str, int]:
        """Number of jobs executed in each region (paper Fig. 3b)."""
        counts: dict[str, int] = {key: 0 for key in self.region_servers}
        for outcome in self.outcomes:
            counts[outcome.executed_region] = counts.get(outcome.executed_region, 0) + 1
        return counts

    def region_distribution(self) -> dict[str, float]:
        """Share of jobs executed in each region (sums to 1)."""
        counts = self.jobs_per_region()
        total = sum(counts.values())
        if total == 0:
            return {key: 0.0 for key in counts}
        return {key: value / total for key, value in counts.items()}

    @property
    def overall_utilization(self) -> float:
        """Server-weighted average utilization across regions."""
        total_servers = sum(self.region_servers.values())
        if total_servers == 0:
            return 0.0
        return (
            sum(
                self.region_utilization.get(key, 0.0) * servers
                for key, servers in self.region_servers.items()
            )
            / total_servers
        )

    # -- overhead ----------------------------------------------------------------------------------
    @property
    def total_decision_time_s(self) -> float:
        """Total wall-clock time spent inside the scheduling policy."""
        return float(sum(self.decision_times_s))

    @property
    def mean_decision_time_s(self) -> float:
        if not self.decision_times_s:
            return 0.0
        return statistics.fmean(self.decision_times_s)

    def decision_overhead_fraction(self) -> float:
        """Decision time as a fraction of the mean job execution time (Fig. 13)."""
        if not self.outcomes:
            return 0.0
        mean_exec = statistics.fmean(outcome.execution_time for outcome in self.outcomes)
        if mean_exec == 0.0:
            return 0.0
        return self.mean_decision_time_s / mean_exec

    # -- comparisons --------------------------------------------------------------------------------
    def carbon_savings_vs(self, baseline: "SimulationResult") -> float:
        """Percent carbon-footprint saving relative to ``baseline`` (higher is better)."""
        if baseline.total_carbon_g == 0.0:
            return 0.0
        return 100.0 * (1.0 - self.total_carbon_g / baseline.total_carbon_g)

    def water_savings_vs(self, baseline: "SimulationResult") -> float:
        """Percent water-footprint saving relative to ``baseline`` (higher is better)."""
        if baseline.total_water_l == 0.0:
            return 0.0
        return 100.0 * (1.0 - self.total_water_l / baseline.total_water_l)

    # -- reporting -----------------------------------------------------------------------------------
    def summary(self) -> dict[str, float | str | int]:
        """Flat summary dictionary for reports and benchmark output."""
        return {
            "scheduler": self.scheduler_name,
            "trace": self.trace_name,
            "jobs": self.num_jobs,
            "carbon_kg": round(self.total_carbon_kg, 3),
            "water_m3": round(self.total_water_m3, 3),
            "mean_service_ratio": round(self.mean_service_ratio, 4),
            "violation_pct": round(100.0 * self.violation_fraction, 3),
            "migration_pct": round(100.0 * self.migration_fraction, 2),
            "utilization_pct": round(100.0 * self.overall_utilization, 2),
            "mean_decision_time_s": round(self.mean_decision_time_s, 5),
            "delay_tolerance_pct": round(100.0 * self.delay_tolerance, 1),
        }

    def __repr__(self) -> str:
        return (
            f"SimulationResult({self.scheduler_name!r}, jobs={self.num_jobs}, "
            f"carbon={self.total_carbon_kg:.2f} kg, water={self.total_water_m3:.2f} m3)"
        )


class P2Quantile:
    """Streaming quantile estimate via the P² algorithm (Jain & Chlamtac 1985).

    Keeps five markers instead of the sample, so memory stays O(1) no matter
    how many observations arrive.  Until five observations are seen the exact
    order statistic is returned.  Results are deterministic in the insertion
    order, which the streaming engine fixes (finish order).
    """

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"q must be in (0, 1), got {q}")
        self.q = float(q)
        self._heights: list[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
        self.count = 0

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        heights = self._heights
        if len(heights) < 5:
            heights.append(value)
            heights.sort()
            return
        positions = self._positions
        # Locate the cell and update the extreme markers.
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while value >= heights[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            positions[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]
        # Adjust the three interior markers toward their desired positions.
        for i in (1, 2, 3):
            delta = self._desired[i] - positions[i]
            if (delta >= 1.0 and positions[i + 1] - positions[i] > 1.0) or (
                delta <= -1.0 and positions[i - 1] - positions[i] < -1.0
            ):
                step = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:  # parabolic estimate escaped the bracket: linear step
                    j = i + int(step)
                    heights[i] = heights[i] + step * (heights[j] - heights[i]) / (
                        positions[j] - positions[i]
                    )
                positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h, p = self._heights, self._positions
        return h[i] + step / (p[i + 1] - p[i - 1]) * (
            (p[i] - p[i - 1] + step) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
            + (p[i + 1] - p[i] - step) * (h[i] - h[i - 1]) / (p[i] - p[i - 1])
        )

    def add_many(self, values) -> None:
        for value in np.asarray(values, dtype=float).ravel():
            self.add(value)

    def value(self) -> float:
        """The current quantile estimate (NaN before the first observation)."""
        heights = self._heights
        if not heights:
            return float("nan")
        if self.count <= 5:
            rank = self.q * (len(heights) - 1)
            lo = int(np.floor(rank))
            hi = int(np.ceil(rank))
            frac = rank - lo
            return heights[lo] * (1.0 - frac) + heights[hi] * frac
        return heights[2]


class StreamingQuantiles:
    """Vectorized streaming quantile estimates over a fixed log-spaced grid.

    The P² estimator (:class:`P2Quantile`) updates five markers *per
    observation* in Python — at a million jobs that inner loop dominates the
    streaming engine's aggregation time.  This estimator instead folds whole
    batches into a fixed histogram (``np.searchsorted`` + ``np.bincount``),
    making the update cost one vectorized pass per flushed chunk.  Because
    bin counts are order-independent, the estimates are *exactly* invariant
    to chunking and flush batching (P² was only deterministic in insertion
    order), and the histogram pickles for checkpoint/resume.

    The grid spans ``[lo, hi]`` with geometrically spaced edges — with the
    default 8192 bins over [1e-3, 1e7] the relative resolution is ~0.3%,
    far inside the accuracy of any streaming estimate.  Values outside the
    grid clamp into the edge bins; the exact running min/max bound the
    returned estimates.  The exact order statistics are returned while fewer
    than ``exact_limit`` observations have been seen (small runs stay exact).
    """

    def __init__(
        self,
        quantiles: Sequence[float] = (0.5, 0.95, 0.99),
        lo: float = 1e-3,
        hi: float = 1e7,
        bins: int = 8192,
        exact_limit: int = 512,
    ) -> None:
        for q in quantiles:
            if not 0.0 < q < 1.0:
                raise ValueError(f"quantiles must be in (0, 1), got {q}")
        if not (0.0 < lo < hi):
            raise ValueError("need 0 < lo < hi")
        if bins < 2:
            raise ValueError("bins must be >= 2")
        self.qs = tuple(float(q) for q in quantiles)
        self._log_lo = float(np.log(lo))
        self._log_hi = float(np.log(hi))
        self._edges = np.exp(np.linspace(self._log_lo, self._log_hi, int(bins) + 1))
        self._counts = np.zeros(int(bins), dtype=np.int64)
        self._exact: list[float] | None = []
        self._exact_limit = int(exact_limit)
        self.count = 0
        self.min = np.inf
        self.max = -np.inf

    def _fold(self, values: np.ndarray) -> None:
        cells = np.clip(
            np.searchsorted(self._edges, values, side="right") - 1,
            0,
            len(self._counts) - 1,
        )
        self._counts += np.bincount(cells, minlength=len(self._counts))

    def add_many(self, values) -> None:
        values = np.asarray(values, dtype=float).ravel()
        if len(values) == 0:
            return
        self.count += len(values)
        self.min = min(self.min, float(values.min()))
        self.max = max(self.max, float(values.max()))
        if self._exact is not None:
            self._exact.extend(values.tolist())
            if len(self._exact) > self._exact_limit:
                self._fold(np.asarray(self._exact))
                self._exact = None
            return
        self._fold(values)

    def add(self, value: float) -> None:
        self.add_many(np.array([float(value)]))

    def value(self, q: float) -> float:
        """Estimate of quantile ``q`` (NaN before the first observation)."""
        if self.count == 0:
            return float("nan")
        if self._exact is not None:
            return float(np.quantile(np.asarray(self._exact), q))
        # Rank-based read: first bin whose cumulative count reaches the
        # target rank; the geometric bin midpoint is the estimate, clamped to
        # the exact observed range.
        target = q * (self.count - 1) + 1.0
        cumulative = np.cumsum(self._counts)
        cell = int(np.searchsorted(cumulative, target, side="left"))
        cell = min(cell, len(self._counts) - 1)
        estimate = float(np.sqrt(self._edges[cell] * self._edges[cell + 1]))
        return float(min(max(estimate, self.min), self.max))

    def values(self) -> dict[float, float]:
        """All configured quantile estimates, keyed by quantile."""
        return {q: self.value(q) for q in self.qs}


class ReservoirSample:
    """Uniform fixed-size sample over a stream of per-job rows (algorithm R).

    ``offer`` takes a dict of equal-length arrays; each row is kept with
    probability ``capacity / rows_seen``.  Seeded, so a given stream always
    produces the same sample, and picklable, so resume continues the same
    random sequence.
    """

    def __init__(self, capacity: int, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.seen = 0
        self._rng = np.random.default_rng(np.random.SeedSequence([int(seed), 0x5E5E]))
        self._rows: dict[str, list] = {}

    def offer(self, rows: Mapping[str, np.ndarray]) -> None:
        names = sorted(rows)
        if not names:
            return
        n = len(rows[names[0]])
        if n == 0:
            return
        if not self._rows:
            self._rows = {name: [] for name in names}
        columns = {name: np.asarray(rows[name]) for name in names}
        start = 0
        # Fill phase: the first `capacity` rows are always kept.
        while len(self._rows[names[0]]) < self.capacity and start < n:
            for name in names:
                self._rows[name].append(columns[name][start])
            self.seen += 1
            start += 1
        if start >= n:
            return
        # Replacement phase, vectorized: row t (1-based count) replaces a
        # random slot when integers(0, t) < capacity.
        counts = self.seen + 1 + np.arange(n - start)
        draws = self._rng.integers(0, counts)
        hits = np.flatnonzero(draws < self.capacity)
        for i in hits.tolist():
            slot = int(draws[i])
            for name in names:
                self._rows[name][slot] = columns[name][start + i]
        self.seen += n - start

    def rows(self) -> dict[str, np.ndarray]:
        """The current sample as arrays (insertion/replacement order)."""
        return {name: np.asarray(values) for name, values in self._rows.items()}


class RunningJobStats:
    """Carry-over aggregation of finished jobs for the streaming engine.

    Folds chunks of finished-job columns into the same figures of merit
    :class:`SimulationResult` computes from its outcome list — totals, means,
    violation/migration fractions, per-region job counts — plus streaming
    service-ratio quantiles and an optional reservoir of per-job rows.
    Memory is O(regions + reservoir), independent of the number of jobs.
    """

    def __init__(
        self,
        n_regions: int,
        delay_tolerance: float,
        reservoir_size: int = 0,
        seed: int = 0,
        quantiles: Sequence[float] = (0.5, 0.95, 0.99),
    ) -> None:
        self.n_regions = int(n_regions)
        self.delay_tolerance = float(delay_tolerance)
        self.num_jobs = 0
        self.carbon_g = 0.0
        self.water_l = 0.0
        self.service_ratio_sum = 0.0
        self.queue_delay_sum = 0.0
        self.transfer_sum = 0.0
        self.execution_sum = 0.0
        self.violations = 0
        self.migrated = 0
        self.evictions = 0
        self.jobs_per_region = np.zeros(self.n_regions, dtype=np.int64)
        self.quantiles = StreamingQuantiles(quantiles)
        self.reservoir = (
            ReservoirSample(reservoir_size, seed=seed) if reservoir_size else None
        )

    def add(
        self,
        *,
        region_idx: np.ndarray,
        home_idx: np.ndarray,
        considered: np.ndarray,
        ready: np.ndarray,
        start: np.ndarray,
        finish: np.ndarray,
        execution_time: np.ndarray,
        transfer_latency: np.ndarray,
        carbon_g: np.ndarray,
        water_l: np.ndarray,
        job_id: np.ndarray | None = None,
        evictions: np.ndarray | None = None,
    ) -> None:
        n = len(region_idx)
        if n == 0:
            return
        if evictions is not None:
            self.evictions += int(np.sum(evictions))
        service = finish - considered
        ratios = service / execution_time
        limit = (1.0 + self.delay_tolerance) * execution_time + 1e-9
        self.num_jobs += n
        self.carbon_g += float(np.sum(carbon_g))
        self.water_l += float(np.sum(water_l))
        self.service_ratio_sum += float(np.sum(ratios))
        self.queue_delay_sum += float(np.sum(np.maximum(0.0, start - ready)))
        self.transfer_sum += float(np.sum(transfer_latency))
        self.execution_sum += float(np.sum(execution_time))
        self.violations += int(np.count_nonzero(service > limit))
        self.migrated += int(np.count_nonzero(region_idx != home_idx))
        self.jobs_per_region += np.bincount(region_idx, minlength=self.n_regions)
        self.quantiles.add_many(ratios)
        if self.reservoir is not None:
            self.reservoir.offer(
                {
                    "job_id": job_id if job_id is not None else np.zeros(n, dtype=np.int64),
                    "region_idx": region_idx,
                    "service_ratio": ratios,
                    "carbon_g": carbon_g,
                    "water_l": water_l,
                }
            )

    # -- derived figures ---------------------------------------------------------------
    @property
    def mean_service_ratio(self) -> float:
        return self.service_ratio_sum / self.num_jobs if self.num_jobs else float("nan")

    @property
    def violation_fraction(self) -> float:
        return self.violations / self.num_jobs if self.num_jobs else 0.0

    @property
    def migration_fraction(self) -> float:
        return self.migrated / self.num_jobs if self.num_jobs else 0.0

    @property
    def mean_queue_delay_s(self) -> float:
        return self.queue_delay_sum / self.num_jobs if self.num_jobs else 0.0

    @property
    def mean_transfer_latency_s(self) -> float:
        return self.transfer_sum / self.num_jobs if self.num_jobs else 0.0

    @property
    def mean_execution_time_s(self) -> float:
        return self.execution_sum / self.num_jobs if self.num_jobs else 0.0

    def service_ratio_quantiles(self) -> dict[float, float]:
        return self.quantiles.values()
