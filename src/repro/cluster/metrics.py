"""Per-job outcomes and aggregate simulation results."""

from __future__ import annotations

import dataclasses
import statistics
from collections.abc import Mapping, Sequence

__all__ = ["JobOutcome", "SimulationResult"]


@dataclasses.dataclass(frozen=True)
class JobOutcome:
    """Everything the evaluation needs to know about one completed job.

    Times are seconds since the start of the trace.  ``service_time`` follows
    the paper's definition of delay tolerance: it measures the extra delay a
    job experienced relative to running immediately with no transfer or
    queuing, so it is counted from the first scheduling round at which the
    job was considered (``considered_time``) rather than from the raw arrival
    time; the batching alignment delay is identical for every policy and
    would otherwise obscure the comparison.  ``raw_service_time`` (from
    arrival) is also kept for completeness.
    """

    job_id: int
    workload: str
    home_region: str
    executed_region: str
    arrival_time: float
    considered_time: float
    assigned_time: float
    ready_time: float
    start_time: float
    finish_time: float
    execution_time: float
    transfer_latency: float
    carbon_g: float
    water_l: float
    deferrals: int
    delay_tolerance: float

    @property
    def queue_delay(self) -> float:
        """Seconds spent waiting for a free server after the transfer completed."""
        return max(0.0, self.start_time - self.ready_time)

    @property
    def scheduling_delay(self) -> float:
        """Seconds between first consideration and final assignment (deferrals)."""
        return max(0.0, self.assigned_time - self.considered_time)

    @property
    def service_time(self) -> float:
        """Delay-tolerance-relevant service time (see class docstring)."""
        return self.finish_time - self.considered_time

    @property
    def raw_service_time(self) -> float:
        """Service time measured from the job's raw arrival."""
        return self.finish_time - self.arrival_time

    @property
    def service_ratio(self) -> float:
        """Service time normalized to the realized execution time (1.0 = no delay)."""
        return self.service_time / self.execution_time

    @property
    def migrated(self) -> bool:
        """Whether the job executed away from its home region."""
        return self.executed_region != self.home_region

    @property
    def violated_delay_tolerance(self) -> bool:
        """Whether the service time exceeded the allowed delay tolerance."""
        return self.service_time > (1.0 + self.delay_tolerance) * self.execution_time + 1e-9


class SimulationResult:
    """Aggregated result of one simulation run.

    Provides the figures of merit used throughout the paper's evaluation:
    total carbon and water footprints, average normalized service time,
    percentage of delay-tolerance violations, job distribution across regions,
    utilization, and the scheduler decision-making overhead.
    """

    #: Aggregate MILP-solver counters for the run (presolve ratios, warm-start
    #: iteration savings, structured-path hit rates) when the policy routed
    #: rounds through a :class:`~repro.milp.session.SolverSession`; ``None``
    #: for policies that never solve MILPs.  Set by the engines after
    #: construction.
    solver_stats: dict | None = None

    def __init__(
        self,
        scheduler_name: str,
        outcomes: Sequence[JobOutcome],
        region_servers: Mapping[str, int],
        region_utilization: Mapping[str, float],
        makespan_s: float,
        decision_times_s: Sequence[float],
        round_times_s: Sequence[float],
        delay_tolerance: float,
        trace_name: str = "",
    ) -> None:
        self.scheduler_name = scheduler_name
        self.outcomes = tuple(outcomes)
        self.region_servers = dict(region_servers)
        self.region_utilization = dict(region_utilization)
        self.makespan_s = float(makespan_s)
        self.decision_times_s = tuple(decision_times_s)
        self.round_times_s = tuple(round_times_s)
        self.delay_tolerance = float(delay_tolerance)
        self.trace_name = trace_name

    # -- totals ------------------------------------------------------------------------
    @property
    def num_jobs(self) -> int:
        return len(self.outcomes)

    @property
    def total_carbon_g(self) -> float:
        return float(sum(outcome.carbon_g for outcome in self.outcomes))

    @property
    def total_carbon_kg(self) -> float:
        return self.total_carbon_g / 1000.0

    @property
    def total_water_l(self) -> float:
        return float(sum(outcome.water_l for outcome in self.outcomes))

    @property
    def total_water_m3(self) -> float:
        return self.total_water_l / 1000.0

    # -- service time / violations ----------------------------------------------------------
    @property
    def mean_service_ratio(self) -> float:
        """Average service time normalized to execution time (paper Table 2)."""
        if not self.outcomes:
            return float("nan")
        return statistics.fmean(outcome.service_ratio for outcome in self.outcomes)

    @property
    def violation_fraction(self) -> float:
        """Fraction of jobs whose delay tolerance was violated (paper Table 2)."""
        if not self.outcomes:
            return 0.0
        violated = sum(1 for outcome in self.outcomes if outcome.violated_delay_tolerance)
        return violated / len(self.outcomes)

    @property
    def mean_queue_delay_s(self) -> float:
        if not self.outcomes:
            return 0.0
        return statistics.fmean(outcome.queue_delay for outcome in self.outcomes)

    @property
    def mean_transfer_latency_s(self) -> float:
        if not self.outcomes:
            return 0.0
        return statistics.fmean(outcome.transfer_latency for outcome in self.outcomes)

    @property
    def migration_fraction(self) -> float:
        """Fraction of jobs executed away from their home region."""
        if not self.outcomes:
            return 0.0
        return sum(1 for outcome in self.outcomes if outcome.migrated) / len(self.outcomes)

    # -- distribution / utilization -------------------------------------------------------------
    def jobs_per_region(self) -> dict[str, int]:
        """Number of jobs executed in each region (paper Fig. 3b)."""
        counts: dict[str, int] = {key: 0 for key in self.region_servers}
        for outcome in self.outcomes:
            counts[outcome.executed_region] = counts.get(outcome.executed_region, 0) + 1
        return counts

    def region_distribution(self) -> dict[str, float]:
        """Share of jobs executed in each region (sums to 1)."""
        counts = self.jobs_per_region()
        total = sum(counts.values())
        if total == 0:
            return {key: 0.0 for key in counts}
        return {key: value / total for key, value in counts.items()}

    @property
    def overall_utilization(self) -> float:
        """Server-weighted average utilization across regions."""
        total_servers = sum(self.region_servers.values())
        if total_servers == 0:
            return 0.0
        return (
            sum(
                self.region_utilization.get(key, 0.0) * servers
                for key, servers in self.region_servers.items()
            )
            / total_servers
        )

    # -- overhead ----------------------------------------------------------------------------------
    @property
    def total_decision_time_s(self) -> float:
        """Total wall-clock time spent inside the scheduling policy."""
        return float(sum(self.decision_times_s))

    @property
    def mean_decision_time_s(self) -> float:
        if not self.decision_times_s:
            return 0.0
        return statistics.fmean(self.decision_times_s)

    def decision_overhead_fraction(self) -> float:
        """Decision time as a fraction of the mean job execution time (Fig. 13)."""
        if not self.outcomes:
            return 0.0
        mean_exec = statistics.fmean(outcome.execution_time for outcome in self.outcomes)
        if mean_exec == 0.0:
            return 0.0
        return self.mean_decision_time_s / mean_exec

    # -- comparisons --------------------------------------------------------------------------------
    def carbon_savings_vs(self, baseline: "SimulationResult") -> float:
        """Percent carbon-footprint saving relative to ``baseline`` (higher is better)."""
        if baseline.total_carbon_g == 0.0:
            return 0.0
        return 100.0 * (1.0 - self.total_carbon_g / baseline.total_carbon_g)

    def water_savings_vs(self, baseline: "SimulationResult") -> float:
        """Percent water-footprint saving relative to ``baseline`` (higher is better)."""
        if baseline.total_water_l == 0.0:
            return 0.0
        return 100.0 * (1.0 - self.total_water_l / baseline.total_water_l)

    # -- reporting -----------------------------------------------------------------------------------
    def summary(self) -> dict[str, float | str | int]:
        """Flat summary dictionary for reports and benchmark output."""
        return {
            "scheduler": self.scheduler_name,
            "trace": self.trace_name,
            "jobs": self.num_jobs,
            "carbon_kg": round(self.total_carbon_kg, 3),
            "water_m3": round(self.total_water_m3, 3),
            "mean_service_ratio": round(self.mean_service_ratio, 4),
            "violation_pct": round(100.0 * self.violation_fraction, 3),
            "migration_pct": round(100.0 * self.migration_fraction, 2),
            "utilization_pct": round(100.0 * self.overall_utilization, 2),
            "mean_decision_time_s": round(self.mean_decision_time_s, 5),
            "delay_tolerance_pct": round(100.0 * self.delay_tolerance, 1),
        }

    def __repr__(self) -> str:
        return (
            f"SimulationResult({self.scheduler_name!r}, jobs={self.num_jobs}, "
            f"carbon={self.total_carbon_kg:.2f} kg, water={self.total_water_m3:.2f} m3)"
        )
