"""Per-job outcomes, aggregate simulation results, and streaming accumulators.

Besides the object-world :class:`JobOutcome` / :class:`SimulationResult`
pair, this module provides the *carry-over accumulators* of the streaming
horizon engine: :class:`RunningJobStats` folds finished-job chunks into the
aggregate figures of merit without retaining per-job columns, assisted by
:class:`StreamingQuantiles` / :class:`P2Quantile` (constant-memory
quantile estimation) and
:class:`ReservoirSample` (a seeded uniform sample of per-job rows for
post-hoc inspection).  All three are picklable, so a checkpointed engine
resumes mid-aggregation.
"""

from __future__ import annotations

import dataclasses
import math
import statistics
from collections.abc import Mapping, Sequence

import numpy as np

__all__ = [
    "JobOutcome",
    "SimulationResult",
    "ExactSum",
    "P2Quantile",
    "StreamingQuantiles",
    "ReservoirSample",
    "RunningJobStats",
]

_MANT_BITS = 53
_MANT_SCALE = float(1 << _MANT_BITS)
#: int64 partial sums stay overflow-safe for segments of ≤ 512 mantissas:
#: 512 × (2**53 − 1) < 2**62.
_SEGMENT = 512


class ExactSum:
    """Exact, order-independent accumulator of finite float64 values.

    Every finite float64 is an integer multiple of a power of two
    (``value = M * 2**E`` with ``|M| < 2**53``), so the accumulator keeps the
    running total as an arbitrary-precision integer ``n`` scaled by ``2**e``
    — the *exact* real-number sum of everything it has seen.  Rounding
    happens once, in :meth:`value`, which means two accumulators fed the same
    multiset of values report bit-identical totals regardless of insertion
    order, chunking, or how they were combined from partial accumulators with
    :meth:`merge`.  That invariance is what lets distributed shard results
    combine bit-identically to a single-box fused run.

    :meth:`add_array` folds whole NumPy arrays with vectorized
    mantissa/exponent decomposition (``np.frexp`` + segmented int64 partial
    sums), so streaming-engine flushes stay cheap.  Plain attributes only, so
    instances pickle (checkpoints carry them).
    """

    def __init__(self) -> None:
        #: Exact total = ``_n * 2**_e`` (``_n == 0`` means an empty sum).
        self._n = 0
        self._e = 0

    def _fold(self, n: int, e: int) -> None:
        if n == 0:
            return
        if self._n == 0:
            self._n, self._e = n, e
        elif e >= self._e:
            self._n += n << (e - self._e)
        else:
            self._n = (self._n << (self._e - e)) + n
            self._e = e
        if self._n:
            # Strip trailing zero bits so the integer stays small.
            trailing = (self._n & -self._n).bit_length() - 1
            if trailing:
                self._n >>= trailing
                self._e += trailing
        else:
            self._e = 0

    def add(self, value: float) -> None:
        value = float(value)
        if value == 0.0:
            return
        if not math.isfinite(value):
            raise ValueError(f"ExactSum accepts finite values only, got {value!r}")
        mantissa, exponent = math.frexp(value)
        self._fold(int(mantissa * _MANT_SCALE), exponent - _MANT_BITS)

    def add_array(self, values) -> None:
        values = np.ascontiguousarray(values, dtype=float).ravel()
        if values.size == 0:
            return
        if not np.all(np.isfinite(values)):
            raise ValueError("ExactSum accepts finite values only")
        mantissa, exponent = np.frexp(values)
        mant = (mantissa * _MANT_SCALE).astype(np.int64)
        exp = exponent.astype(np.int64) - _MANT_BITS
        order = np.argsort(exp, kind="stable")
        mant = mant[order]
        exp = exp[order]
        # Segment boundaries: every exponent change plus every _SEGMENT
        # values, so each int64 partial sum is overflow-safe and shares one
        # exponent; the few partials then combine exactly in Python ints.
        cuts = np.flatnonzero(np.diff(exp)) + 1
        starts = np.union1d(np.arange(0, len(mant), _SEGMENT), cuts)
        partials = np.add.reduceat(mant, starts)
        part_exp = exp[starts]
        base = int(part_exp[0])
        total = 0
        for part, ex in zip(partials.tolist(), part_exp.tolist()):
            total += part << (ex - base)
        self._fold(total, base)

    def merge(self, other: "ExactSum") -> None:
        """Fold another accumulator in exactly (commutative and associative)."""
        self._fold(other._n, other._e)

    def value(self) -> float:
        """The correctly-rounded float64 total (0.0 for an empty sum)."""
        if self._n == 0:
            return 0.0
        if self._e >= 0:
            return float(self._n << self._e)
        # Correctly-rounded by CPython's exact int/int true division.
        return self._n / (1 << -self._e)

    def __float__(self) -> float:
        return self.value()

    def __repr__(self) -> str:
        return f"ExactSum({self.value()!r})"


@dataclasses.dataclass(frozen=True)
class JobOutcome:
    """Everything the evaluation needs to know about one completed job.

    Times are seconds since the start of the trace.  ``service_time`` follows
    the paper's definition of delay tolerance: it measures the extra delay a
    job experienced relative to running immediately with no transfer or
    queuing, so it is counted from the first scheduling round at which the
    job was considered (``considered_time``) rather than from the raw arrival
    time; the batching alignment delay is identical for every policy and
    would otherwise obscure the comparison.  ``raw_service_time`` (from
    arrival) is also kept for completeness.
    """

    job_id: int
    workload: str
    home_region: str
    executed_region: str
    arrival_time: float
    considered_time: float
    assigned_time: float
    ready_time: float
    start_time: float
    finish_time: float
    execution_time: float
    transfer_latency: float
    carbon_g: float
    water_l: float
    deferrals: int
    delay_tolerance: float

    @property
    def queue_delay(self) -> float:
        """Seconds spent waiting for a free server after the transfer completed."""
        return max(0.0, self.start_time - self.ready_time)

    @property
    def scheduling_delay(self) -> float:
        """Seconds between first consideration and final assignment (deferrals)."""
        return max(0.0, self.assigned_time - self.considered_time)

    @property
    def service_time(self) -> float:
        """Delay-tolerance-relevant service time (see class docstring)."""
        return self.finish_time - self.considered_time

    @property
    def raw_service_time(self) -> float:
        """Service time measured from the job's raw arrival."""
        return self.finish_time - self.arrival_time

    @property
    def service_ratio(self) -> float:
        """Service time normalized to the realized execution time (1.0 = no delay)."""
        return self.service_time / self.execution_time

    @property
    def migrated(self) -> bool:
        """Whether the job executed away from its home region."""
        return self.executed_region != self.home_region

    @property
    def violated_delay_tolerance(self) -> bool:
        """Whether the service time exceeded the allowed delay tolerance."""
        return self.service_time > (1.0 + self.delay_tolerance) * self.execution_time + 1e-9


class SimulationResult:
    """Aggregated result of one simulation run.

    Provides the figures of merit used throughout the paper's evaluation:
    total carbon and water footprints, average normalized service time,
    percentage of delay-tolerance violations, job distribution across regions,
    utilization, and the scheduler decision-making overhead.
    """

    #: Aggregate MILP-solver counters for the run (presolve ratios, warm-start
    #: iteration savings, structured-path hit rates) when the policy routed
    #: rounds through a :class:`~repro.milp.session.SolverSession`; ``None``
    #: for policies that never solve MILPs.  Set by the engines after
    #: construction.
    solver_stats: dict | None = None
    #: Event-kernel telemetry for array-engine runs; ``None`` here (the
    #: object-world engine has no array kernel).  Declared so result types
    #: stay attribute-compatible.  See :class:`repro.cluster.events.KernelStats`.
    kernel_stats: dict | None = None

    def __init__(
        self,
        scheduler_name: str,
        outcomes: Sequence[JobOutcome],
        region_servers: Mapping[str, int],
        region_utilization: Mapping[str, float],
        makespan_s: float,
        decision_times_s: Sequence[float],
        round_times_s: Sequence[float],
        delay_tolerance: float,
        trace_name: str = "",
    ) -> None:
        self.scheduler_name = scheduler_name
        self.outcomes = tuple(outcomes)
        self.region_servers = dict(region_servers)
        self.region_utilization = dict(region_utilization)
        self.makespan_s = float(makespan_s)
        self.decision_times_s = tuple(decision_times_s)
        self.round_times_s = tuple(round_times_s)
        self.delay_tolerance = float(delay_tolerance)
        self.trace_name = trace_name

    # -- totals ------------------------------------------------------------------------
    @property
    def num_jobs(self) -> int:
        return len(self.outcomes)

    @property
    def total_carbon_g(self) -> float:
        return float(sum(outcome.carbon_g for outcome in self.outcomes))

    @property
    def total_carbon_kg(self) -> float:
        return self.total_carbon_g / 1000.0

    @property
    def total_water_l(self) -> float:
        return float(sum(outcome.water_l for outcome in self.outcomes))

    @property
    def total_water_m3(self) -> float:
        return self.total_water_l / 1000.0

    # -- service time / violations ----------------------------------------------------------
    @property
    def mean_service_ratio(self) -> float:
        """Average service time normalized to execution time (paper Table 2)."""
        if not self.outcomes:
            return float("nan")
        return statistics.fmean(outcome.service_ratio for outcome in self.outcomes)

    @property
    def violation_fraction(self) -> float:
        """Fraction of jobs whose delay tolerance was violated (paper Table 2)."""
        if not self.outcomes:
            return 0.0
        violated = sum(1 for outcome in self.outcomes if outcome.violated_delay_tolerance)
        return violated / len(self.outcomes)

    @property
    def mean_queue_delay_s(self) -> float:
        if not self.outcomes:
            return 0.0
        return statistics.fmean(outcome.queue_delay for outcome in self.outcomes)

    @property
    def mean_transfer_latency_s(self) -> float:
        if not self.outcomes:
            return 0.0
        return statistics.fmean(outcome.transfer_latency for outcome in self.outcomes)

    @property
    def migration_fraction(self) -> float:
        """Fraction of jobs executed away from their home region."""
        if not self.outcomes:
            return 0.0
        return sum(1 for outcome in self.outcomes if outcome.migrated) / len(self.outcomes)

    # -- distribution / utilization -------------------------------------------------------------
    def jobs_per_region(self) -> dict[str, int]:
        """Number of jobs executed in each region (paper Fig. 3b)."""
        counts: dict[str, int] = {key: 0 for key in self.region_servers}
        for outcome in self.outcomes:
            counts[outcome.executed_region] = counts.get(outcome.executed_region, 0) + 1
        return counts

    def region_distribution(self) -> dict[str, float]:
        """Share of jobs executed in each region (sums to 1)."""
        counts = self.jobs_per_region()
        total = sum(counts.values())
        if total == 0:
            return {key: 0.0 for key in counts}
        return {key: value / total for key, value in counts.items()}

    @property
    def overall_utilization(self) -> float:
        """Server-weighted average utilization across regions."""
        total_servers = sum(self.region_servers.values())
        if total_servers == 0:
            return 0.0
        return (
            sum(
                self.region_utilization.get(key, 0.0) * servers
                for key, servers in self.region_servers.items()
            )
            / total_servers
        )

    # -- overhead ----------------------------------------------------------------------------------
    @property
    def total_decision_time_s(self) -> float:
        """Total wall-clock time spent inside the scheduling policy."""
        return float(sum(self.decision_times_s))

    @property
    def mean_decision_time_s(self) -> float:
        if not self.decision_times_s:
            return 0.0
        return statistics.fmean(self.decision_times_s)

    def decision_overhead_fraction(self) -> float:
        """Decision time as a fraction of the mean job execution time (Fig. 13)."""
        if not self.outcomes:
            return 0.0
        mean_exec = statistics.fmean(outcome.execution_time for outcome in self.outcomes)
        if mean_exec == 0.0:
            return 0.0
        return self.mean_decision_time_s / mean_exec

    # -- comparisons --------------------------------------------------------------------------------
    def carbon_savings_vs(self, baseline: "SimulationResult") -> float:
        """Percent carbon-footprint saving relative to ``baseline`` (higher is better)."""
        if baseline.total_carbon_g == 0.0:
            return 0.0
        return 100.0 * (1.0 - self.total_carbon_g / baseline.total_carbon_g)

    def water_savings_vs(self, baseline: "SimulationResult") -> float:
        """Percent water-footprint saving relative to ``baseline`` (higher is better)."""
        if baseline.total_water_l == 0.0:
            return 0.0
        return 100.0 * (1.0 - self.total_water_l / baseline.total_water_l)

    # -- reporting -----------------------------------------------------------------------------------
    def summary(self) -> dict[str, float | str | int]:
        """Flat summary dictionary for reports and benchmark output."""
        return {
            "scheduler": self.scheduler_name,
            "trace": self.trace_name,
            "jobs": self.num_jobs,
            "carbon_kg": round(self.total_carbon_kg, 3),
            "water_m3": round(self.total_water_m3, 3),
            "mean_service_ratio": round(self.mean_service_ratio, 4),
            "violation_pct": round(100.0 * self.violation_fraction, 3),
            "migration_pct": round(100.0 * self.migration_fraction, 2),
            "utilization_pct": round(100.0 * self.overall_utilization, 2),
            "mean_decision_time_s": round(self.mean_decision_time_s, 5),
            "delay_tolerance_pct": round(100.0 * self.delay_tolerance, 1),
        }

    def __repr__(self) -> str:
        return (
            f"SimulationResult({self.scheduler_name!r}, jobs={self.num_jobs}, "
            f"carbon={self.total_carbon_kg:.2f} kg, water={self.total_water_m3:.2f} m3)"
        )


class P2Quantile:
    """Streaming quantile estimate via the P² algorithm (Jain & Chlamtac 1985).

    Keeps five markers instead of the sample, so memory stays O(1) no matter
    how many observations arrive.  Until five observations are seen the exact
    order statistic is returned.  Results are deterministic in the insertion
    order, which the streaming engine fixes (finish order).
    """

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"q must be in (0, 1), got {q}")
        self.q = float(q)
        self._heights: list[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
        self.count = 0

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        heights = self._heights
        if len(heights) < 5:
            heights.append(value)
            heights.sort()
            return
        positions = self._positions
        # Locate the cell and update the extreme markers.
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while value >= heights[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            positions[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]
        # Adjust the three interior markers toward their desired positions.
        for i in (1, 2, 3):
            delta = self._desired[i] - positions[i]
            if (delta >= 1.0 and positions[i + 1] - positions[i] > 1.0) or (
                delta <= -1.0 and positions[i - 1] - positions[i] < -1.0
            ):
                step = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:  # parabolic estimate escaped the bracket: linear step
                    j = i + int(step)
                    heights[i] = heights[i] + step * (heights[j] - heights[i]) / (
                        positions[j] - positions[i]
                    )
                positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h, p = self._heights, self._positions
        return h[i] + step / (p[i + 1] - p[i - 1]) * (
            (p[i] - p[i - 1] + step) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
            + (p[i + 1] - p[i] - step) * (h[i] - h[i - 1]) / (p[i] - p[i - 1])
        )

    def add_many(self, values) -> None:
        for value in np.asarray(values, dtype=float).ravel():
            self.add(value)

    def value(self) -> float:
        """The current quantile estimate (NaN before the first observation)."""
        heights = self._heights
        if not heights:
            return float("nan")
        if self.count <= 5:
            rank = self.q * (len(heights) - 1)
            lo = int(np.floor(rank))
            hi = int(np.ceil(rank))
            frac = rank - lo
            return heights[lo] * (1.0 - frac) + heights[hi] * frac
        return heights[2]


class StreamingQuantiles:
    """Vectorized streaming quantile estimates over a fixed log-spaced grid.

    The P² estimator (:class:`P2Quantile`) updates five markers *per
    observation* in Python — at a million jobs that inner loop dominates the
    streaming engine's aggregation time.  This estimator instead folds whole
    batches into a fixed histogram (``np.searchsorted`` + ``np.bincount``),
    making the update cost one vectorized pass per flushed chunk.  Because
    bin counts are order-independent, the estimates are *exactly* invariant
    to chunking and flush batching (P² was only deterministic in insertion
    order), and the histogram pickles for checkpoint/resume.

    The grid spans ``[lo, hi]`` with geometrically spaced edges — with the
    default 8192 bins over [1e-3, 1e7] the relative resolution is ~0.3%,
    far inside the accuracy of any streaming estimate.  Values outside the
    grid clamp into the edge bins; the exact running min/max bound the
    returned estimates.  The exact order statistics are returned while fewer
    than ``exact_limit`` observations have been seen (small runs stay exact).
    """

    def __init__(
        self,
        quantiles: Sequence[float] = (0.5, 0.95, 0.99),
        lo: float = 1e-3,
        hi: float = 1e7,
        bins: int = 8192,
        exact_limit: int = 512,
    ) -> None:
        for q in quantiles:
            if not 0.0 < q < 1.0:
                raise ValueError(f"quantiles must be in (0, 1), got {q}")
        if not (0.0 < lo < hi):
            raise ValueError("need 0 < lo < hi")
        if bins < 2:
            raise ValueError("bins must be >= 2")
        self.qs = tuple(float(q) for q in quantiles)
        self._log_lo = float(np.log(lo))
        self._log_hi = float(np.log(hi))
        self._edges = np.exp(np.linspace(self._log_lo, self._log_hi, int(bins) + 1))
        self._counts = np.zeros(int(bins), dtype=np.int64)
        self._exact: list[float] | None = []
        self._exact_limit = int(exact_limit)
        self.count = 0
        self.min = np.inf
        self.max = -np.inf

    def _fold(self, values: np.ndarray) -> None:
        cells = np.clip(
            np.searchsorted(self._edges, values, side="right") - 1,
            0,
            len(self._counts) - 1,
        )
        self._counts += np.bincount(cells, minlength=len(self._counts))

    def add_many(self, values) -> None:
        values = np.asarray(values, dtype=float).ravel()
        if len(values) == 0:
            return
        self.count += len(values)
        self.min = min(self.min, float(values.min()))
        self.max = max(self.max, float(values.max()))
        if self._exact is not None:
            self._exact.extend(values.tolist())
            if len(self._exact) > self._exact_limit:
                self._fold(np.asarray(self._exact))
                self._exact = None
            return
        self._fold(values)

    def add(self, value: float) -> None:
        self.add_many(np.array([float(value)]))

    def value(self, q: float) -> float:
        """Estimate of quantile ``q`` (NaN before the first observation)."""
        if self.count == 0:
            return float("nan")
        if self._exact is not None:
            return float(np.quantile(np.asarray(self._exact), q))
        # Rank-based read: first bin whose cumulative count reaches the
        # target rank; the geometric bin midpoint is the estimate, clamped to
        # the exact observed range.
        target = q * (self.count - 1) + 1.0
        cumulative = np.cumsum(self._counts)
        cell = int(np.searchsorted(cumulative, target, side="left"))
        cell = min(cell, len(self._counts) - 1)
        estimate = float(np.sqrt(self._edges[cell] * self._edges[cell + 1]))
        return float(min(max(estimate, self.min), self.max))

    def values(self) -> dict[float, float]:
        """All configured quantile estimates, keyed by quantile."""
        return {q: self.value(q) for q in self.qs}

    def merge(self, other: "StreamingQuantiles") -> None:
        """Fold another estimator over the same grid in exactly.

        Bin counts add and min/max combine, so the merged estimator is
        *identical* to one that saw the union of both value streams in any
        order — including the exact-mode handoff: the merged estimator stays
        in exact mode iff the combined count is within ``exact_limit``, just
        as a single-box estimator would.  ``other`` is not mutated.
        """
        if self.qs != other.qs or self._exact_limit != other._exact_limit:
            raise ValueError("cannot merge StreamingQuantiles with different configs")
        if self._log_lo != other._log_lo or self._log_hi != other._log_hi or len(
            self._counts
        ) != len(other._counts):
            raise ValueError("cannot merge StreamingQuantiles with different grids")
        if other.count == 0:
            return
        self.count += other.count
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        if self._exact is not None and other._exact is not None:
            self._exact.extend(other._exact)
            if len(self._exact) > self._exact_limit:
                self._fold(np.asarray(self._exact))
                self._exact = None
            return
        if self._exact is not None:
            if self._exact:
                self._fold(np.asarray(self._exact))
            self._exact = None
        self._counts += other._counts
        if other._exact:
            self._fold(np.asarray(other._exact))


class ReservoirSample:
    """Uniform fixed-size sample over a stream of per-job rows (algorithm R).

    ``offer`` takes a dict of equal-length arrays; each row is kept with
    probability ``capacity / rows_seen``.  Seeded, so a given stream always
    produces the same sample, and picklable, so resume continues the same
    random sequence.
    """

    def __init__(self, capacity: int, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.seen = 0
        self._rng = np.random.default_rng(np.random.SeedSequence([int(seed), 0x5E5E]))
        self._rows: dict[str, list] = {}

    def offer(self, rows: Mapping[str, np.ndarray]) -> None:
        names = sorted(rows)
        if not names:
            return
        n = len(rows[names[0]])
        if n == 0:
            return
        if not self._rows:
            self._rows = {name: [] for name in names}
        columns = {name: np.asarray(rows[name]) for name in names}
        start = 0
        # Fill phase: the first `capacity` rows are always kept.
        while len(self._rows[names[0]]) < self.capacity and start < n:
            for name in names:
                self._rows[name].append(columns[name][start])
            self.seen += 1
            start += 1
        if start >= n:
            return
        # Replacement phase, vectorized: row t (1-based count) replaces a
        # random slot when integers(0, t) < capacity.
        counts = self.seen + 1 + np.arange(n - start)
        draws = self._rng.integers(0, counts)
        hits = np.flatnonzero(draws < self.capacity)
        for i in hits.tolist():
            slot = int(draws[i])
            for name in names:
                self._rows[name][slot] = columns[name][start + i]
        self.seen += n - start

    def rows(self) -> dict[str, np.ndarray]:
        """The current sample as arrays (insertion/replacement order)."""
        return {name: np.asarray(values) for name, values in self._rows.items()}


class RunningJobStats:
    """Carry-over aggregation of finished jobs for the streaming engine.

    Folds chunks of finished-job columns into the same figures of merit
    :class:`SimulationResult` computes from its outcome list — totals, means,
    violation/migration fractions, per-region job counts — plus streaming
    service-ratio quantiles and an optional reservoir of per-job rows.
    Memory is O(regions + reservoir), independent of the number of jobs.

    Float totals accumulate in :class:`ExactSum`, so every figure is exactly
    invariant to chunking and — via :meth:`merge` — to how a run was split
    into shards: partial stats from any partition of the job stream combine
    bit-identically to a single accumulator that saw everything.
    """

    def __init__(
        self,
        n_regions: int,
        delay_tolerance: float,
        reservoir_size: int = 0,
        seed: int = 0,
        quantiles: Sequence[float] = (0.5, 0.95, 0.99),
    ) -> None:
        self.n_regions = int(n_regions)
        self.delay_tolerance = float(delay_tolerance)
        self.num_jobs = 0
        self._carbon_g = ExactSum()
        self._water_l = ExactSum()
        self._service_ratio_sum = ExactSum()
        self._queue_delay_sum = ExactSum()
        self._transfer_sum = ExactSum()
        self._execution_sum = ExactSum()
        self.violations = 0
        self.migrated = 0
        self.evictions = 0
        self.jobs_per_region = np.zeros(self.n_regions, dtype=np.int64)
        self.quantiles = StreamingQuantiles(quantiles)
        self.reservoir = (
            ReservoirSample(reservoir_size, seed=seed) if reservoir_size else None
        )

    # -- exact totals (floats, rounded once at read time) -------------------------------
    @property
    def carbon_g(self) -> float:
        return self._carbon_g.value()

    @property
    def water_l(self) -> float:
        return self._water_l.value()

    @property
    def service_ratio_sum(self) -> float:
        return self._service_ratio_sum.value()

    @property
    def queue_delay_sum(self) -> float:
        return self._queue_delay_sum.value()

    @property
    def transfer_sum(self) -> float:
        return self._transfer_sum.value()

    @property
    def execution_sum(self) -> float:
        return self._execution_sum.value()

    def add(
        self,
        *,
        region_idx: np.ndarray,
        home_idx: np.ndarray,
        considered: np.ndarray,
        ready: np.ndarray,
        start: np.ndarray,
        finish: np.ndarray,
        execution_time: np.ndarray,
        transfer_latency: np.ndarray,
        carbon_g: np.ndarray,
        water_l: np.ndarray,
        job_id: np.ndarray | None = None,
        evictions: np.ndarray | None = None,
    ) -> None:
        n = len(region_idx)
        if n == 0:
            return
        if evictions is not None:
            self.evictions += int(np.sum(evictions))
        service = finish - considered
        ratios = service / execution_time
        limit = (1.0 + self.delay_tolerance) * execution_time + 1e-9
        self.num_jobs += n
        self._carbon_g.add_array(carbon_g)
        self._water_l.add_array(water_l)
        self._service_ratio_sum.add_array(ratios)
        self._queue_delay_sum.add_array(np.maximum(0.0, start - ready))
        self._transfer_sum.add_array(transfer_latency)
        self._execution_sum.add_array(execution_time)
        self.violations += int(np.count_nonzero(service > limit))
        self.migrated += int(np.count_nonzero(region_idx != home_idx))
        self.jobs_per_region += np.bincount(region_idx, minlength=self.n_regions)
        self.quantiles.add_many(ratios)
        if self.reservoir is not None:
            self.reservoir.offer(
                {
                    "job_id": job_id if job_id is not None else np.zeros(n, dtype=np.int64),
                    "region_idx": region_idx,
                    "service_ratio": ratios,
                    "carbon_g": carbon_g,
                    "water_l": water_l,
                }
            )

    # -- derived figures ---------------------------------------------------------------
    @property
    def mean_service_ratio(self) -> float:
        return self.service_ratio_sum / self.num_jobs if self.num_jobs else float("nan")

    @property
    def violation_fraction(self) -> float:
        return self.violations / self.num_jobs if self.num_jobs else 0.0

    @property
    def migration_fraction(self) -> float:
        return self.migrated / self.num_jobs if self.num_jobs else 0.0

    @property
    def mean_queue_delay_s(self) -> float:
        return self.queue_delay_sum / self.num_jobs if self.num_jobs else 0.0

    @property
    def mean_transfer_latency_s(self) -> float:
        return self.transfer_sum / self.num_jobs if self.num_jobs else 0.0

    @property
    def mean_execution_time_s(self) -> float:
        return self.execution_sum / self.num_jobs if self.num_jobs else 0.0

    def service_ratio_quantiles(self) -> dict[float, float]:
        return self.quantiles.values()

    def merge(self, other: "RunningJobStats") -> None:
        """Fold another partial accumulator in exactly.

        Commutative and associative: merging per-shard stats in any order
        yields the same figures, bit for bit, as one accumulator over the
        whole job stream.  The reservoir is the one exception — a uniform
        sample of a union cannot be reconstructed from two independent
        samples, so merged stats drop it.  ``other`` is not mutated.
        """
        if self.n_regions != other.n_regions:
            raise ValueError(
                f"cannot merge stats over {other.n_regions} regions into {self.n_regions}"
            )
        if self.delay_tolerance != other.delay_tolerance:
            raise ValueError("cannot merge stats with different delay tolerances")
        self.num_jobs += other.num_jobs
        self._carbon_g.merge(other._carbon_g)
        self._water_l.merge(other._water_l)
        self._service_ratio_sum.merge(other._service_ratio_sum)
        self._queue_delay_sum.merge(other._queue_delay_sum)
        self._transfer_sum.merge(other._transfer_sum)
        self._execution_sum.merge(other._execution_sum)
        self.violations += other.violations
        self.migrated += other.migrated
        self.evictions += other.evictions
        self.jobs_per_region = self.jobs_per_region + other.jobs_per_region
        self.quantiles.merge(other.quantiles)
        if other.num_jobs and self.reservoir is not None:
            self.reservoir = None
