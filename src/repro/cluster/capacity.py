"""Cluster sizing helpers.

The paper evaluates WaterWise at an average utilization of ≈ 15% (with 5% and
25% sensitivity points), obtained by fixing the number of servers per region
for a given trace.  :func:`servers_for_target_utilization` inverts that
relationship: given a trace and a utilization target, it returns the number
of servers per region such that

``total busy server-seconds ≈ target × servers × regions × horizon``.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro._validation import ensure_positive
from repro.traces.trace import Trace

__all__ = ["servers_for_target_utilization"]


def servers_for_target_utilization(
    trace: Trace,
    region_keys: Sequence[str],
    target_utilization: float = 0.15,
    minimum_servers: int = 2,
) -> int:
    """Servers per region needed to hit ``target_utilization`` for ``trace``.

    Assumes jobs are spread roughly evenly across regions (which all policies
    in the evaluation approximately do) and that each job occupies
    ``servers_required`` servers for its execution time.

    Parameters
    ----------
    trace:
        The workload to size for.
    region_keys:
        The regions sharing the load.
    target_utilization:
        Desired average utilization in (0, 1].
    minimum_servers:
        Lower bound so tiny traces still get a workable cluster.
    """
    if not region_keys:
        raise ValueError("region_keys must not be empty")
    if not 0.0 < target_utilization <= 1.0:
        raise ValueError(f"target_utilization must be in (0, 1], got {target_utilization}")
    if len(trace) == 0:
        return int(minimum_servers)
    ensure_positive(minimum_servers, "minimum_servers")

    busy_server_seconds = sum(
        job.realized_execution_time * job.servers_required for job in trace
    )
    horizon = max(trace.horizon_s, 1.0)
    n_regions = len(region_keys)
    servers = busy_server_seconds / (target_utilization * n_regions * horizon)
    return max(int(minimum_servers), int(math.ceil(servers)))
