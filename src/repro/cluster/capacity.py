"""Cluster sizing helpers.

The paper evaluates WaterWise at an average utilization of ≈ 15% (with 5% and
25% sensitivity points), obtained by fixing the number of servers per region
for a given trace.  :func:`servers_for_target_utilization` inverts that
relationship: given a trace and a utilization target, it returns the number
of servers per region such that

``total busy server-seconds ≈ target × servers × regions × horizon``.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro._validation import ensure_positive
from repro.traces.trace import Trace

__all__ = ["servers_for_target_utilization"]


def _busy_server_seconds_and_horizon(workload) -> tuple[float, float, int]:
    """(busy server-seconds, horizon, job count) of a trace *or* a source.

    Materialized traces are summed from their cached columns in one NumPy
    pass; chunked :class:`~repro.traces.stream.TraceSource` streams are
    folded chunk by chunk, so sizing a cluster for a multi-million-job
    stream never materializes it.
    """
    if isinstance(workload, Trace):
        columns = workload.to_columns()
        busy = float(
            np.sum(columns["realized_execution_time"] * columns["servers_required"])
        )
        return busy, workload.horizon_s, len(workload)
    busy = 0.0
    horizon = 0.0
    count = 0
    for chunk in workload.iter_chunks(4096):
        busy += float(np.sum(chunk.exec_real * chunk.servers))
        if chunk.n:
            horizon = float(chunk.arrival[-1])
            count += chunk.n
    return busy, horizon, count


def servers_for_target_utilization(
    trace: Trace,
    region_keys: Sequence[str],
    target_utilization: float = 0.15,
    minimum_servers: int = 2,
) -> int:
    """Servers per region needed to hit ``target_utilization`` for ``trace``.

    Assumes jobs are spread roughly evenly across regions (which all policies
    in the evaluation approximately do) and that each job occupies
    ``servers_required`` servers for its execution time.

    Parameters
    ----------
    trace:
        The workload to size for — a :class:`Trace` or a chunked
        :class:`~repro.traces.stream.TraceSource` (streamed, not
        materialized).
    region_keys:
        The regions sharing the load.
    target_utilization:
        Desired average utilization in (0, 1].
    minimum_servers:
        Lower bound so tiny traces still get a workable cluster.
    """
    if not region_keys:
        raise ValueError("region_keys must not be empty")
    if not 0.0 < target_utilization <= 1.0:
        raise ValueError(f"target_utilization must be in (0, 1], got {target_utilization}")
    ensure_positive(minimum_servers, "minimum_servers")
    busy_server_seconds, horizon_s, count = _busy_server_seconds_and_horizon(trace)
    if count == 0:
        return int(minimum_servers)

    horizon = max(horizon_s, 1.0)
    n_regions = len(region_keys)
    servers = busy_server_seconds / (target_utilization * n_regions * horizon)
    return max(int(minimum_servers), int(math.ceil(servers)))
