"""Fused multi-policy runner: one trace pass, K policies in lockstep.

Every figure in the paper's evaluation compares N sustainability-aware
policies over the *same* workload, yet a per-cell sweep simulates each
(workload × policy) pair independently — regenerating, re-columnizing and
re-ingesting the identical trace N times.  :class:`MultiPolicyRunner` drives
one chunked :class:`~repro.traces.stream.TraceSource` through K independent
:class:`~repro.cluster.streaming.StreamingSimulator` engine states in
lockstep:

* trace generation / columnization happens **once per chunk** instead of
  once per policy (each engine ingests the shared :class:`JobChunk` views —
  chunk arrays are read-only from the engines' perspective);
* the sustainability dataset, footprint prefix-integrals and transfer-model
  propagation matrices are built **once** and shared by every engine (the
  engines only read them);
* every policy still owns its engine state and scheduler, so decisions,
  results and digests are *identical* to running each policy through its own
  :class:`StreamingSimulator` — the differential harness enforces digest
  equality registry-wide.

Memory stays O(K × (chunk + active jobs)) in ``collect="aggregate"`` mode,
so a fused sweep inherits the streaming engine's bounded-memory guarantee.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.cluster.interface import Scheduler
from repro.cluster.streaming import (
    CHECKPOINT_FORMAT,
    StreamingSimulator,
    atomic_pickle_dump,
)

__all__ = ["MultiPolicyRunner"]


class MultiPolicyRunner:
    """Run several policies over one chunk stream, sharing the workload pass.

    Parameters
    ----------
    source:
        Chunked trace source (any object with ``iter_chunks`` /
        ``horizon_s``; a materialized trace can be wrapped in
        :class:`~repro.traces.stream.TraceView`).
    schedulers:
        ``{label: scheduler}`` mapping or ``[(label, scheduler)]`` sequence;
        labels key the result dictionary (duplicate labels are rejected).
    dataset / engine_kwargs:
        Forwarded to every engine.  When ``dataset`` is omitted the first
        engine's auto-built dataset is shared by all of them, so every policy
        sees identical intensities — the paper's "identical conditions"
        methodology.  ``kernel=`` rides along like any engine knob: a fused
        sweep can run every policy on the ``auto``/``vector``/``scalar``/
        ``compiled`` tier, and :meth:`kernel_stats` surfaces the per-policy
        telemetry.
    chunk_size:
        Jobs per shared chunk (results are chunk-size-invariant).
    collect:
        ``"full"`` (per-policy :class:`~repro.cluster.batch.BatchResult`) or
        ``"aggregate"`` (bounded-memory
        :class:`~repro.cluster.streaming.StreamResult`).
    """

    def __init__(
        self,
        source,
        schedulers: Mapping[str, Scheduler] | Sequence[tuple[str, Scheduler]],
        dataset=None,
        chunk_size: int = 4096,
        collect: str = "aggregate",
        **engine_kwargs,
    ) -> None:
        if isinstance(schedulers, Mapping):
            pairs = list(schedulers.items())
        else:
            pairs = [(str(label), scheduler) for label, scheduler in schedulers]
        if not pairs:
            raise ValueError("MultiPolicyRunner needs at least one scheduler")
        labels = [label for label, _ in pairs]
        if len(set(labels)) != len(labels):
            raise ValueError(f"duplicate scheduler labels: {sorted(labels)}")
        self.source = source
        self.chunk_size = int(chunk_size)
        self.engines: dict[str, StreamingSimulator] = {}
        for label, scheduler in pairs:
            engine = StreamingSimulator(
                source,
                scheduler,
                dataset=dataset,
                chunk_size=chunk_size,
                collect=collect,
                **engine_kwargs,
            )
            if dataset is None:
                # Auto-built once; every subsequent engine shares it (and the
                # footprint calculator's prefix-integral caches warm for all).
                # Share the *pre-chaos* input dataset: each engine applies its
                # own (deterministic, identical) signal-shock factors, so a
                # chaotic fused run never double-scales intensities.
                dataset = engine.input_dataset
            self.engines[label] = engine

    @property
    def labels(self) -> list[str]:
        return list(self.engines)

    def kernel_stats(self) -> dict[str, dict | None]:
        """Per-policy event-kernel telemetry (``None`` for unstarted engines).

        Counters accumulate as :meth:`run` advances, so this can be sampled
        mid-sweep; after finalize the same payloads are also on each
        result's ``kernel_stats``.
        """
        stats: dict[str, dict | None] = {}
        for label, engine in self.engines.items():
            if engine.state is None:
                stats[label] = None
            else:
                payload = engine.state.kernel_stats.as_dict()
                payload["kernel"] = engine.kernel
                stats[label] = payload
        return stats

    def run(self) -> dict[str, object]:
        """Stream the source once, advancing every engine per chunk.

        Returns ``{label: result}`` with the same result objects the
        per-policy engines would produce (``BatchResult`` for
        ``collect="full"``, ``StreamResult`` for ``"aggregate"``).
        """
        self.run_chunks()
        return self.finalize()

    def run_chunks(self, max_chunks: int | None = None) -> int:
        """Advance up to ``max_chunks`` shared chunks (all remaining if ``None``).

        The fused counterpart of
        :meth:`StreamingSimulator.run_chunks <repro.cluster.streaming.StreamingSimulator.run_chunks>`:
        chunks are pulled starting after the jobs the (lockstepped) states
        have already seen, so the same call pattern works for fresh runs and
        resumed checkpoints — the shard fabric uses it to run one time slab
        at a time.  Returns the number of chunks consumed.
        """
        engines = list(self.engines.values())
        for engine in engines:
            if engine.state is None:
                engine.init_state()
        consumed = 0
        if max_chunks is not None and max_chunks <= 0:
            return consumed
        for chunk in self.source.iter_chunks(
            self.chunk_size, skip_jobs=engines[0].state.jobs_seen
        ):
            for engine in engines:
                engine.advance(chunk)
            consumed += 1
            if max_chunks is not None and consumed >= max_chunks:
                break
        return consumed

    def finalize(self) -> dict[str, object]:
        """Finalize every engine; ``{label: result}`` (see :meth:`run`)."""
        return {label: engine.finalize() for label, engine in self.engines.items()}

    def reset_collectors(self) -> None:
        """Fresh aggregate collectors on every engine (see ``reset_collector``)."""
        for engine in self.engines.values():
            engine.reset_collector()

    def partials(self) -> dict[str, tuple[object, object]]:
        """Per-policy ``(RunningJobStats, RunningFootprintTotals)`` partials.

        Snapshot of each engine's aggregate collector — what a time slab has
        accumulated since the last :meth:`reset_collectors`.  The shard
        fabric ships these to the coordinator, which merges them exactly.
        """
        out: dict[str, tuple[object, object]] = {}
        for label, engine in self.engines.items():
            collector = engine.state.collector
            out[label] = (collector.stats, collector.footprints)
        return out

    # -- checkpointing -----------------------------------------------------------------
    def save_checkpoint(self, path, extra: dict | None = None) -> None:
        """Pickle every engine's state + scheduler (+ caller metadata) to ``path``.

        The fused analogue of
        :meth:`StreamingSimulator.save_checkpoint <repro.cluster.streaming.StreamingSimulator.save_checkpoint>`:
        one file carries the lockstepped states of all K policies, so a
        resumed run (or a re-dispatched shard) continues every policy from
        the same chunk boundary.  The source and dataset are reconstruction
        parameters the resuming caller must supply, exactly as for
        single-engine checkpoints.
        """
        for label, engine in self.engines.items():
            if engine.state is None:
                raise RuntimeError(
                    f"nothing to checkpoint: engine {label!r} has no state"
                )
        first = next(iter(self.engines.values()))
        payload = {
            "format": CHECKPOINT_FORMAT,
            "multi": True,
            "states": {label: engine.state for label, engine in self.engines.items()},
            "schedulers": {
                label: engine.scheduler for label, engine in self.engines.items()
            },
            "config": {
                "servers_per_region": dict(first._servers),
                "scheduling_interval_s": first.scheduling_interval_s,
                "delay_tolerance": first.delay_tolerance,
                "include_embodied": first.footprints.include_embodied,
                "max_rounds": first.max_rounds,
                "chunk_size": first.chunk_size,
                "collect": first.collect,
                "reservoir_size": first.reservoir_size,
                "reservoir_seed": first.reservoir_seed,
                "kernel": first.kernel,
                "chaos": first.chaos,
                "chaos_seed": first.chaos_seed,
            },
            "extra": dict(extra or {}),
        }
        atomic_pickle_dump(path, payload)

    @classmethod
    def from_checkpoint(
        cls,
        path,
        source,
        dataset=None,
        regions=None,
        latency=None,
        server=None,
        **overrides,
    ) -> "MultiPolicyRunner":
        """Rebuild a fused runner mid-run from a :meth:`save_checkpoint` file.

        Same contract as
        :meth:`StreamingSimulator.from_checkpoint <repro.cluster.streaming.StreamingSimulator.from_checkpoint>`:
        ``source``/``dataset`` must reproduce the original workload and
        intensities, and only non-semantic knobs (``chunk_size``,
        ``max_rounds``, ``kernel``) may be overridden.
        """
        payload = StreamingSimulator.load_checkpoint(path)
        return cls.from_checkpoint_payload(
            payload,
            source,
            dataset=dataset,
            regions=regions,
            latency=latency,
            server=server,
            **overrides,
        )

    @classmethod
    def from_checkpoint_payload(
        cls,
        payload: dict,
        source,
        dataset=None,
        regions=None,
        latency=None,
        server=None,
        **overrides,
    ) -> "MultiPolicyRunner":
        """:meth:`from_checkpoint` over an already-loaded payload dict.

        The shard fabric reads the checkpoint once (it also needs the
        ``extra`` metadata) and rebuilds the runner from the same payload.
        """
        allowed = {"chunk_size", "max_rounds", "kernel"}
        refused = set(overrides) - allowed
        if refused:
            raise ValueError(
                f"cannot override {sorted(refused)} on resume: the checkpointed "
                f"engine state depends on them (overridable: {sorted(allowed)})"
            )
        if not payload.get("multi"):
            raise ValueError("payload is not a fused multi-policy checkpoint")
        config = dict(payload["config"])
        config.update(overrides)
        chunk_size = config.pop("chunk_size")
        collect = config.pop("collect")
        if regions is not None:
            config["regions"] = regions
        if latency is not None:
            config["latency"] = latency
        if server is not None:
            config["server"] = server
        runner = cls(
            source,
            list(payload["schedulers"].items()),
            dataset=dataset,
            chunk_size=chunk_size,
            collect=collect,
            **config,
        )
        for label, engine in runner.engines.items():
            state = payload["states"][label]
            if state.region_keys != engine._keys_tuple:
                raise ValueError(
                    "checkpoint was taken over regions "
                    f"{state.region_keys} but the engine simulates {engine._keys_tuple}"
                )
            engine.state = state
        return runner
