"""Fused multi-policy runner: one trace pass, K policies in lockstep.

Every figure in the paper's evaluation compares N sustainability-aware
policies over the *same* workload, yet a per-cell sweep simulates each
(workload × policy) pair independently — regenerating, re-columnizing and
re-ingesting the identical trace N times.  :class:`MultiPolicyRunner` drives
one chunked :class:`~repro.traces.stream.TraceSource` through K independent
:class:`~repro.cluster.streaming.StreamingSimulator` engine states in
lockstep:

* trace generation / columnization happens **once per chunk** instead of
  once per policy (each engine ingests the shared :class:`JobChunk` views —
  chunk arrays are read-only from the engines' perspective);
* the sustainability dataset, footprint prefix-integrals and transfer-model
  propagation matrices are built **once** and shared by every engine (the
  engines only read them);
* every policy still owns its engine state and scheduler, so decisions,
  results and digests are *identical* to running each policy through its own
  :class:`StreamingSimulator` — the differential harness enforces digest
  equality registry-wide.

Memory stays O(K × (chunk + active jobs)) in ``collect="aggregate"`` mode,
so a fused sweep inherits the streaming engine's bounded-memory guarantee.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.cluster.interface import Scheduler
from repro.cluster.streaming import StreamingSimulator

__all__ = ["MultiPolicyRunner"]


class MultiPolicyRunner:
    """Run several policies over one chunk stream, sharing the workload pass.

    Parameters
    ----------
    source:
        Chunked trace source (any object with ``iter_chunks`` /
        ``horizon_s``; a materialized trace can be wrapped in
        :class:`~repro.traces.stream.TraceView`).
    schedulers:
        ``{label: scheduler}`` mapping or ``[(label, scheduler)]`` sequence;
        labels key the result dictionary (duplicate labels are rejected).
    dataset / engine_kwargs:
        Forwarded to every engine.  When ``dataset`` is omitted the first
        engine's auto-built dataset is shared by all of them, so every policy
        sees identical intensities — the paper's "identical conditions"
        methodology.  ``kernel=`` rides along like any engine knob: a fused
        sweep can run every policy on the ``auto``/``vector``/``scalar``/
        ``compiled`` tier, and :meth:`kernel_stats` surfaces the per-policy
        telemetry.
    chunk_size:
        Jobs per shared chunk (results are chunk-size-invariant).
    collect:
        ``"full"`` (per-policy :class:`~repro.cluster.batch.BatchResult`) or
        ``"aggregate"`` (bounded-memory
        :class:`~repro.cluster.streaming.StreamResult`).
    """

    def __init__(
        self,
        source,
        schedulers: Mapping[str, Scheduler] | Sequence[tuple[str, Scheduler]],
        dataset=None,
        chunk_size: int = 4096,
        collect: str = "aggregate",
        **engine_kwargs,
    ) -> None:
        if isinstance(schedulers, Mapping):
            pairs = list(schedulers.items())
        else:
            pairs = [(str(label), scheduler) for label, scheduler in schedulers]
        if not pairs:
            raise ValueError("MultiPolicyRunner needs at least one scheduler")
        labels = [label for label, _ in pairs]
        if len(set(labels)) != len(labels):
            raise ValueError(f"duplicate scheduler labels: {sorted(labels)}")
        self.source = source
        self.chunk_size = int(chunk_size)
        self.engines: dict[str, StreamingSimulator] = {}
        for label, scheduler in pairs:
            engine = StreamingSimulator(
                source,
                scheduler,
                dataset=dataset,
                chunk_size=chunk_size,
                collect=collect,
                **engine_kwargs,
            )
            if dataset is None:
                # Auto-built once; every subsequent engine shares it (and the
                # footprint calculator's prefix-integral caches warm for all).
                # Share the *pre-chaos* input dataset: each engine applies its
                # own (deterministic, identical) signal-shock factors, so a
                # chaotic fused run never double-scales intensities.
                dataset = engine.input_dataset
            self.engines[label] = engine

    @property
    def labels(self) -> list[str]:
        return list(self.engines)

    def kernel_stats(self) -> dict[str, dict | None]:
        """Per-policy event-kernel telemetry (``None`` for unstarted engines).

        Counters accumulate as :meth:`run` advances, so this can be sampled
        mid-sweep; after finalize the same payloads are also on each
        result's ``kernel_stats``.
        """
        stats: dict[str, dict | None] = {}
        for label, engine in self.engines.items():
            if engine.state is None:
                stats[label] = None
            else:
                payload = engine.state.kernel_stats.as_dict()
                payload["kernel"] = engine.kernel
                stats[label] = payload
        return stats

    def run(self) -> dict[str, object]:
        """Stream the source once, advancing every engine per chunk.

        Returns ``{label: result}`` with the same result objects the
        per-policy engines would produce (``BatchResult`` for
        ``collect="full"``, ``StreamResult`` for ``"aggregate"``).
        """
        engines = list(self.engines.values())
        for engine in engines:
            if engine.state is None:
                engine.init_state()
        for chunk in self.source.iter_chunks(self.chunk_size):
            for engine in engines:
                engine.advance(chunk)
        return {label: engine.finalize() for label, engine in self.engines.items()}
