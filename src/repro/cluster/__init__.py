"""Geo-distributed cluster simulator.

The paper evaluates WaterWise by replaying production traces against a
175-node cluster spread over five AWS regions; its artifact drives the same
logic through trace simulation.  This subpackage is that simulation substrate:

* :mod:`repro.cluster.interface` — the contract between the simulator and
  any scheduling policy (:class:`Scheduler`, :class:`SchedulingContext`,
  :class:`SchedulerDecision`),
* :mod:`repro.cluster.footprint` — vectorized carbon/water footprint
  matrices for a batch of jobs across regions (what the policies optimize),
* :mod:`repro.cluster.datacenter` — the per-region capacity/queue model,
* :mod:`repro.cluster.simulator` — the discrete-event trace-driven simulators
  (the scalar reference :class:`Simulator` and the vectorized
  :class:`BatchSimulator`),
* :mod:`repro.cluster.batch` — columnar job/result containers for the batch
  engine (:class:`JobArrays`, :class:`BatchSchedulingContext`,
  :class:`BatchResult`),
* :mod:`repro.cluster.events` — the array-batched event kernel both array
  engines drive their discrete-event core through,
* :mod:`repro.cluster.multi` — the fused multi-policy runner (one workload
  pass, K policies in lockstep),
* :mod:`repro.cluster.timeline` — the chaos & elasticity engine: seeded,
  chunk-invariant streams of capacity events (outages, autoscaling, flaps)
  and signal shocks (carbon/water spikes, forecast error),
* :mod:`repro.cluster.metrics` — per-job outcomes and aggregate results,
* :mod:`repro.cluster.capacity` — helpers to size clusters for a target
  utilization (the paper's 5% / 15% / 25% settings).
"""

from repro.cluster.batch import DEFER, BatchResult, BatchSchedulingContext, JobArrays
from repro.cluster.capacity import servers_for_target_utilization
from repro.cluster.datacenter import Datacenter
from repro.cluster.footprint import FootprintCalculator, RunningFootprintTotals
from repro.cluster.interface import Scheduler, SchedulerDecision, SchedulingContext
from repro.cluster.events import EventQueue
from repro.cluster.metrics import JobOutcome, RunningJobStats, SimulationResult
from repro.cluster.multi import MultiPolicyRunner
from repro.cluster.simulator import BatchSimulator, Simulator
from repro.cluster.streaming import (
    AdmissionDecisions,
    EngineState,
    StreamingSimulator,
    StreamResult,
)
from repro.cluster.timeline import (
    CHAOS_SPECS,
    ChaosSpec,
    ClusterTimeline,
    available_chaos,
    get_chaos,
)

__all__ = [
    "AdmissionDecisions",
    "CHAOS_SPECS",
    "DEFER",
    "BatchResult",
    "BatchSchedulingContext",
    "BatchSimulator",
    "ChaosSpec",
    "ClusterTimeline",
    "Datacenter",
    "EngineState",
    "EventQueue",
    "FootprintCalculator",
    "JobArrays",
    "JobOutcome",
    "MultiPolicyRunner",
    "RunningFootprintTotals",
    "RunningJobStats",
    "Scheduler",
    "SchedulerDecision",
    "SchedulingContext",
    "SimulationResult",
    "Simulator",
    "StreamResult",
    "StreamingSimulator",
    "available_chaos",
    "get_chaos",
    "servers_for_target_utilization",
]
