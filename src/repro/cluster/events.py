"""Array-batched event kernel shared by the batch and streaming engines.

Both simulation engines used to drive their discrete-event core through a
Python ``heapq`` of ``(when, kind, seq, slot)`` tuples — one pop, one tuple
compare and a handful of scalar array reads *per event*, which at a million
jobs (two events each) dominates the non-decision runtime.  This module
replaces the heap with an :class:`EventQueue` that keeps the pending READY
and FINISH events in NumPy arrays sorted by ``(when, seq)`` and processes a
whole *round window* (all events up to the next scheduling round) at once.

The window kernel exploits that regions are independent inside the event
loop — queues, free servers, committed counts and busy-second accounting
never couple two regions between scheduling rounds — and splits the window
per region:

* **Clean regions** (FIFO queue empty at the window start, and a per-region
  prefix-sum over the window's server deltas — applying same-time events in
  the heap's order, finishes before readies — proves free capacity never
  binds): every ready job provably starts at its ready time, so starts,
  finishes, busy seconds, committed/free updates and the finished-slot list
  are computed as vectorized segment operations.  No per-event Python.
* **Prefix regions** (capacity binds *somewhere* in the window, but the
  queue is empty at the window start): the prefix sum identifies the
  region's *first binding point* — the earliest ``(when, seq)`` at which a
  READY would overdraw free capacity.  Everything strictly before that
  point in heap order is provably clean and is applied with the same
  vectorized machinery; only the residue from the binding point on is
  replayed.  When the replay drains every FIFO queue the kernel re-tests
  the remaining events and iterates, so a brief contention burst pays
  scalar cost only for the burst, not the whole window.
* **Conveyor regions** (contended, but with enough window events to
  amortize a per-region setup): the FIFO start *order* of a region's
  residue is known up front, so only start *times* remain — computed by
  the classic ordered-workload recursion over a min-heap of server
  release times (:func:`_conveyor`).  Three C-level ``heapq`` calls per
  start instead of a full event replay, with all NumPy bookkeeping pooled
  across regions.
* **Contended regions** (non-empty queue at the window start, or a prefix
  too short to be worth splitting, below the conveyor's event floor):
  their events are replayed through the *classic* heap loop, operation
  for operation identical to the pre-kernel engines (finishes before
  readies at equal times, sequenced pushes, FIFO admission).

The replay residue itself has two implementations: the reference Python
heap loop in this module, and a flat-array twin in
:mod:`repro.cluster._kernel_compiled` that compiles under numba ``@njit``
when numba is installed (``kernel="compiled"``; ``kernel="auto"`` picks it
up automatically) and runs as plain Python otherwise.  Both are held
byte-identical to the reference by the registry-wide differential harness.

Callers can additionally force regions onto the replay path through the
``contended`` mask; the prefix-sum proof itself is already structurally
safe under time-varying capacity (a drained region running over its
shrunken capacity shows up as a negative free count the prefix sum
rejects, and the engines cut windows at every capacity breakpoint so
capacity is constant inside a window), so the engines no longer need it.

The clean path only fires when it is provably equivalent to the replay, and
the replay *is* the original algorithm, so per-job regions, start/finish/
ready times, deferrals and footprints — everything ``BatchResult.digest()``
hashes — are byte-identical either way.  The registry-wide differential
harness enforces this, and the engines expose ``kernel="scalar"`` to force
the reference loop everywhere (used by differential tests and as the
benchmark baseline).

Sequence numbers keep their engine-level contract: commits assign one
``seq`` per READY push in commit order, starts one ``seq`` per FINISH push.
Sequence *order* only ever breaks ties between same-region events (distinct
regions cannot interact), and within a region every path assigns sequence
numbers in the region's own causal order, so equal-time FIFO tie-breaking
is preserved exactly.

The finished list is canonical across kernels: every path records
``(when, region, seq)`` per finish and the window close sorts once on that
key before extending the caller's list.  ``when`` and ``region`` are job
properties; within a region the *relative* seq order equals the region's
causal start order on every kernel, chunking and checkpoint layout — so
all kernels, chunk sizes and resume points emit the identical flush order.
(Plain ``(when, seq)`` would not be canonical: the absolute seq a start
receives depends on how the kernels interleave *cross-region* work, so a
cross-region tie at an equal float finish time could flip between
kernels.)
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

__all__ = ["EventQueue", "KernelStats", "process_until"]

#: Event kinds, ordered like the legacy heap tuples (finishes pop first at
#: equal times).  Values mirror ``simulator._EVENT_FINISH`` / ``_EVENT_READY``.
KIND_FINISH = 0
KIND_READY = 1

_EMPTY_F = np.zeros(0)
_EMPTY_I = np.zeros(0, dtype=np.int64)

#: Segmentation tunables.  A prefix shorter than ``_MIN_PREFIX_EVENTS`` is
#: not worth the fixed cost of a vectorized apply — the region replays
#: whole.  An early-exit (queues drained mid-replay) only pays off when the
#: residue left is at least ``_MIN_RESIDUE_EVENTS``; and a window never
#: runs more than ``_MAX_SEGMENT_PASSES`` verdict passes before the last
#: residue is replayed to completion.
_MIN_PREFIX_EVENTS = 24
_MIN_RESIDUE_EVENTS = 64
_MAX_SEGMENT_PASSES = 6
#: A region's residue only takes the conveyor path when it holds at least
#: this many window events — below that the pooled heap replay's per-event
#: cost undercuts the conveyor's fixed per-region setup.
_MIN_CONVEYOR_EVENTS = 32


@dataclass
class KernelStats:
    """Per-run event-kernel telemetry.

    Counters are cumulative over every window a run processes; the streaming
    engine checkpoints them on :class:`~repro.cluster.streaming.EngineState`
    so a resumed run keeps counting where it left off.  ``clean_events``
    counts events applied through the vectorized clean/prefix machinery,
    ``conveyor_events`` events through the server-release conveyor (a
    release-time heap instead of a full event replay),
    ``replayed_events`` events through the Python heap replay and
    ``compiled_events`` events through the flat-array kernel (numba-compiled
    when available, interpreted otherwise).
    """

    windows: int = 0
    clean_events: int = 0
    conveyor_events: int = 0
    replayed_events: int = 0
    compiled_events: int = 0
    prefix_segments: int = 0
    segment_passes: int = 0
    early_exits: int = 0
    compile_time_s: float = 0.0
    compiled_active: bool = False

    def merge(self, other: "KernelStats") -> None:
        self.windows += other.windows
        self.clean_events += other.clean_events
        self.conveyor_events += other.conveyor_events
        self.replayed_events += other.replayed_events
        self.compiled_events += other.compiled_events
        self.prefix_segments += other.prefix_segments
        self.segment_passes += other.segment_passes
        self.early_exits += other.early_exits
        self.compile_time_s += other.compile_time_s
        self.compiled_active = self.compiled_active or other.compiled_active

    @property
    def total_events(self) -> int:
        return (
            self.clean_events
            + self.conveyor_events
            + self.replayed_events
            + self.compiled_events
        )

    @property
    def vector_fraction(self) -> float:
        """Fraction of events that never touched a per-event Python loop."""
        total = self.total_events
        return self.clean_events / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "windows": self.windows,
            "clean_events": self.clean_events,
            "conveyor_events": self.conveyor_events,
            "replayed_events": self.replayed_events,
            "compiled_events": self.compiled_events,
            "prefix_segments": self.prefix_segments,
            "segment_passes": self.segment_passes,
            "early_exits": self.early_exits,
            "compile_time_s": self.compile_time_s,
            "compiled_active": self.compiled_active,
            "vector_fraction": self.vector_fraction,
        }


def _merge_sorted(
    when: np.ndarray, seq: np.ndarray, slot: np.ndarray,
    new_when: np.ndarray, new_seq: np.ndarray, new_slot: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Merge a push batch into ``(when, seq)``-sorted pending arrays.

    Every push batch the engines produce carries sequence numbers assigned
    from the queue's monotone counter *after* everything already pending —
    so all new seqs exceed all pending seqs, and within the batch seqs
    ascend in batch order.  That invariant reduces the merge to a single
    ``searchsorted`` on ``when`` with ``side="right"`` (equal-time new
    events land after pending ones, which is exactly their seq order): a
    linear scatter instead of the former O(n log n) re-sort of the whole
    queue per push.  The batch itself is verified sorted by ``when`` and
    stably sorted only when it is not (overflow finishes arrive in start
    order, not finish order).
    """
    if len(new_when) == 0:
        return when, seq, slot
    if len(new_when) > 1 and np.any(new_when[1:] < new_when[:-1]):
        order = np.argsort(new_when, kind="stable")
        new_when = new_when[order]
        new_seq = new_seq[order]
        new_slot = new_slot[order]
    if len(when) == 0:
        return new_when, new_seq, new_slot
    if new_when[0] >= when[-1]:
        return (
            np.concatenate([when, new_when]),
            np.concatenate([seq, new_seq]),
            np.concatenate([slot, new_slot]),
        )
    n, m = len(when), len(new_when)
    new_pos = np.searchsorted(when, new_when, side="right") + np.arange(
        m, dtype=np.intp
    )
    old = np.ones(n + m, dtype=bool)
    old[new_pos] = False
    out_when = np.empty(n + m, dtype=when.dtype)
    out_seq = np.empty(n + m, dtype=seq.dtype)
    out_slot = np.empty(n + m, dtype=slot.dtype)
    out_when[old] = when
    out_seq[old] = seq
    out_slot[old] = slot
    out_when[new_pos] = new_when
    out_seq[new_pos] = new_seq
    out_slot[new_pos] = new_slot
    return out_when, out_seq, out_slot


class EventQueue:
    """Pending READY/FINISH events as ``(when, seq)``-sorted NumPy arrays.

    Plain arrays plus an integer sequence counter, so the queue pickles —
    it is part of the streaming engine's checkpointable
    :class:`~repro.cluster.streaming.EngineState`.
    """

    def __init__(self) -> None:
        self.ready_when = _EMPTY_F
        self.ready_seq = _EMPTY_I
        self.ready_slot = _EMPTY_I
        self.finish_when = _EMPTY_F
        self.finish_seq = _EMPTY_I
        self.finish_slot = _EMPTY_I
        self.sequence = 0

    def __len__(self) -> int:
        return len(self.ready_when) + len(self.finish_when)

    def push_ready_batch(self, when: np.ndarray, slots: np.ndarray) -> None:
        """Queue READY events, assigning sequence numbers in the given order.

        The order of ``slots`` is the commit order — it decides equal-time
        FIFO tie-breaking exactly like consecutive ``heappush`` calls did.
        """
        n = len(slots)
        if n == 0:
            return
        seq = np.arange(self.sequence, self.sequence + n, dtype=np.int64)
        self.sequence += n
        self.ready_when, self.ready_seq, self.ready_slot = _merge_sorted(
            self.ready_when, self.ready_seq, self.ready_slot,
            np.asarray(when, dtype=float), seq, np.asarray(slots, dtype=np.int64),
        )

    def _push_finish_arrays(
        self, when: np.ndarray, seq: np.ndarray, slots: np.ndarray
    ) -> None:
        self.finish_when, self.finish_seq, self.finish_slot = _merge_sorted(
            self.finish_when, self.finish_seq, self.finish_slot, when, seq, slots
        )


def process_until(
    queue: EventQueue,
    limit: float,
    *,
    servers: np.ndarray,
    exec_real: np.ndarray,
    region_of: np.ndarray,
    start: np.ndarray,
    finish: np.ndarray,
    free: np.ndarray,
    committed: np.ndarray,
    busy_seconds: np.ndarray,
    queues: list,
    finished: list | None,
    use_fast: bool = True,
    contended: np.ndarray | None = None,
    compiled: bool = False,
    stats: KernelStats | None = None,
) -> float:
    """Process every event at or before ``limit``; returns the max finish time.

    ``servers`` / ``exec_real`` / ``region_of`` / ``start`` / ``finish`` are
    slot-indexed job columns (mutated in place for started/finished jobs);
    ``free`` / ``committed`` / ``busy_seconds`` / ``queues`` are the
    per-region state.  ``finished`` (when not ``None``) receives the
    finished slots in the canonical ``(when, region, seq)`` order — the same
    order on every kernel, chunk size and checkpoint layout.  ``contended``
    (a per-region bool mask) forces regions onto the replay path regardless
    of the clean proof; the engines no longer need it (capacity is constant
    inside a window) but the hook remains for tests.  ``compiled`` routes
    the replay residue through the flat-array kernel in
    :mod:`repro.cluster._kernel_compiled` (numba-jitted when available,
    interpreted otherwise).  ``stats`` (a :class:`KernelStats`) accumulates
    per-path event counters.  Returns ``-inf`` when nothing finished.
    """
    nf = int(np.searchsorted(queue.finish_when, limit, side="right"))
    nr = int(np.searchsorted(queue.ready_when, limit, side="right"))
    if nf == 0 and nr == 0:
        return -np.inf

    r_when = queue.ready_when[:nr]
    r_seq = queue.ready_seq[:nr]
    r_slot = queue.ready_slot[:nr]
    f_when = queue.finish_when[:nf]
    f_seq = queue.finish_seq[:nf]
    f_slot = queue.finish_slot[:nf]
    queue.ready_when = queue.ready_when[nr:]
    queue.ready_seq = queue.ready_seq[nr:]
    queue.ready_slot = queue.ready_slot[nr:]
    queue.finish_when = queue.finish_when[nf:]
    queue.finish_seq = queue.finish_seq[nf:]
    queue.finish_slot = queue.finish_slot[nf:]

    r_reg = region_of[r_slot]
    f_reg = region_of[f_slot]

    rec: list | None = [] if finished is not None else None
    makespan = -np.inf
    passes = 0
    if stats is not None:
        stats.windows += 1

    while len(r_when) or len(f_when):
        if use_fast:
            cut_when, cut_seq = _window_cuts(
                limit, r_when, r_seq, r_slot, r_reg, f_when, f_slot, f_reg,
                servers=servers, exec_real=exec_real, free=free, queues=queues,
                allow_split=passes < _MAX_SEGMENT_PASSES,
            )
            if contended is not None:
                cut_when[contended] = -np.inf
            if (cut_when != -np.inf).any():
                r_cut = cut_when[r_reg]
                r_take = (r_when < r_cut) | (
                    (r_when == r_cut) & (r_seq < cut_seq[r_reg])
                )
                f_take = f_when <= cut_when[f_reg]
                if r_take.any() or f_take.any():
                    span, resid = _apply_clean(
                        queue, limit, cut_when,
                        r_when[r_take], r_slot[r_take], r_reg[r_take],
                        f_when[f_take], f_seq[f_take], f_slot[f_take],
                        f_reg[f_take],
                        servers=servers, exec_real=exec_real, start=start,
                        finish=finish, free=free, committed=committed,
                        busy_seconds=busy_seconds, rec=rec,
                    )
                    makespan = max(makespan, span)
                    if stats is not None:
                        stats.clean_events += int(r_take.sum()) + int(
                            f_take.sum()
                        )
                        stats.prefix_segments += int(
                            np.isfinite(cut_when).sum()
                        )
                        stats.segment_passes += 1
                    r_keep = ~r_take
                    f_keep = ~f_take
                    r_when, r_seq, r_slot = (
                        r_when[r_keep], r_seq[r_keep], r_slot[r_keep]
                    )
                    r_reg = r_reg[r_keep]
                    f_when, f_seq, f_slot = (
                        f_when[f_keep], f_seq[f_keep], f_slot[f_keep]
                    )
                    f_reg = f_reg[f_keep]
                    if resid is not None:
                        rs_when, rs_seq, rs_slot, rs_reg = resid
                        f_when = np.concatenate([f_when, rs_when])
                        f_seq = np.concatenate([f_seq, rs_seq])
                        f_slot = np.concatenate([f_slot, rs_slot])
                        f_reg = np.concatenate([f_reg, rs_reg])
            if not compiled and (len(r_when) or len(f_when)):
                conv = _conveyor(
                    queue, limit, r_when, r_seq, r_slot, r_reg,
                    f_when, f_seq, f_slot, f_reg,
                    servers=servers, exec_real=exec_real, start=start,
                    finish=finish, free=free, committed=committed,
                    busy_seconds=busy_seconds, queues=queues, rec=rec,
                    skip=contended,
                )
                if conv is not None:
                    span, handled_r, handled_f, n_conv = conv
                    makespan = max(makespan, span)
                    if stats is not None:
                        stats.conveyor_events += n_conv
                    r_keep = ~handled_r
                    f_keep = ~handled_f
                    r_when, r_seq, r_slot = (
                        r_when[r_keep], r_seq[r_keep], r_slot[r_keep]
                    )
                    r_reg = r_reg[r_keep]
                    f_when, f_seq, f_slot = (
                        f_when[f_keep], f_seq[f_keep], f_slot[f_keep]
                    )
                    f_reg = f_reg[f_keep]
        n_events = len(r_when) + len(f_when)
        if n_events == 0:
            break
        passes += 1
        if compiled:
            from . import _kernel_compiled

            span = _kernel_compiled.replay_window(
                queue, limit, r_when, r_seq, r_slot, r_reg,
                f_when, f_seq, f_slot, f_reg,
                servers=servers, exec_real=exec_real, start=start,
                finish=finish, free=free, committed=committed,
                busy_seconds=busy_seconds, queues=queues, rec=rec,
                stats=stats,
            )
            makespan = max(makespan, span)
            if stats is not None:
                stats.compiled_events += n_events
            break
        early_ok = (
            use_fast
            and passes < _MAX_SEGMENT_PASSES
            and n_events >= 2 * _MIN_RESIDUE_EVENTS
        )
        span, leftover = _replay(
            queue, limit, r_when, r_seq, r_slot, r_reg,
            f_when, f_seq, f_slot, f_reg,
            servers=servers, exec_real=exec_real,
            start=start, finish=finish, free=free, committed=committed,
            busy_seconds=busy_seconds, queues=queues, rec=rec,
            stop_on_drain=early_ok,
        )
        makespan = max(makespan, span)
        if stats is not None:
            stats.replayed_events += n_events
        if leftover is None:
            break
        r_when, r_seq, r_slot, r_reg, f_when, f_seq, f_slot, f_reg = leftover
        if stats is not None:
            stats.replayed_events -= len(r_when) + len(f_when)
            stats.early_exits += 1

    if rec is not None and rec:
        if len(rec) == 1:
            d_when, d_reg, d_seq, d_slot = rec[0]
        else:
            d_when = np.concatenate([r[0] for r in rec])
            d_reg = np.concatenate([r[1] for r in rec])
            d_seq = np.concatenate([r[2] for r in rec])
            d_slot = np.concatenate([r[3] for r in rec])
        order = np.lexsort((d_seq, d_reg, d_when))
        finished.extend(d_slot[order].tolist())
    return makespan


def _window_cuts(
    limit: float,
    r_when: np.ndarray,
    r_seq: np.ndarray,
    r_slot: np.ndarray,
    r_reg: np.ndarray,
    f_when: np.ndarray,
    f_slot: np.ndarray,
    f_reg: np.ndarray,
    *,
    servers: np.ndarray,
    exec_real: np.ndarray,
    free: np.ndarray,
    queues: list,
    allow_split: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-region binding point: how far may this window be applied clean?

    Returns ``(cut_when, cut_seq)`` arrays indexed by region.  ``+inf``
    means the whole window is provably clean for that region; ``-inf``
    means no clean prefix (non-empty FIFO queue, a binding point too early
    to be worth splitting, or splitting disabled); a finite value is the
    ``(when, seq)`` of the region's first binding READY — the earliest
    event, in exact heap order ``(when, finishes-first, seq)``, at which a
    ready would overdraw free capacity.  Events strictly before that point
    (readies by ``(when, seq)``, finishes by ``when <= cut_when``) are
    provably clean: replaying them admits every ready at its ready time.

    The scan walks each region's window events in exact heap order, so the
    first failing ready it sees is exactly the first ready the replay would
    queue.  Negative running capacity at *finish* positions is tolerated —
    finishes apply unconditionally in the replay, and a drained region
    under chaos legitimately starts a window with negative free.
    """
    n_regions = len(free)
    cut_when = np.full(n_regions, -np.inf)
    cut_seq = np.zeros(n_regions, dtype=np.int64)
    eligible = np.array([not queues[r] for r in range(n_regions)])
    cut_when[eligible] = np.inf
    if not eligible.any():
        return cut_when, cut_seq

    # Restrict to eligible regions *before* building the merged event view —
    # at saturated peaks most regions carry a queue, and the window then
    # skips the whole lexsort/cumsum proof.
    r_keep = eligible[r_reg]
    f_keep = eligible[f_reg]
    if not r_keep.all():
        r_when = r_when[r_keep]
        r_seq = r_seq[r_keep]
        r_slot = r_slot[r_keep]
        r_reg = r_reg[r_keep]
    if not f_keep.all():
        f_when = f_when[f_keep]
        f_slot = f_slot[f_keep]
        f_reg = f_reg[f_keep]
    if not (len(r_when) or len(f_when)):
        # No eligible region has events this window; report "no clean
        # prefix" for all of them (vacuously true — nothing to apply).
        cut_when[:] = -np.inf
        return cut_when, cut_seq

    r_srv = servers[r_slot]
    f_srv = servers[f_slot]
    r_exec = exec_real[r_slot]
    if allow_split and len(r_exec) and r_exec.min() <= 0.0:
        # A zero-length job's synthetic finish would sort *before* its own
        # ready at the same instant; for a post-binding ready that phantom
        # would corrupt the prefix proof.  Never occurs with real traces —
        # fall back to the all-or-nothing verdict.
        allow_split = False
    new_when = r_when + r_exec
    in_window = new_when <= limit
    ev_when = np.concatenate([f_when, new_when[in_window], r_when])
    ev_seq = np.concatenate([np.zeros(len(f_when), dtype=np.int64),
                             r_seq[in_window], r_seq])
    n_finish = len(f_when) + int(in_window.sum())
    ev_kind = np.concatenate(
        [np.zeros(n_finish, dtype=np.int8), np.ones(len(r_when), dtype=np.int8)]
    )
    ev_reg = np.concatenate([f_reg, r_reg[in_window], r_reg])
    ev_delta = np.concatenate([f_srv, r_srv[in_window], -r_srv])
    # Region-major sort; within each region the order is the replay pop
    # order.  Seq participates so the scan order among same-time readies
    # *is* the pop order — the binding point must be the first ready the
    # replay would actually queue, not an arbitrary same-time peer.
    # (Finish seqs are zeroed: same-time finishes commute.)
    order = np.lexsort((ev_seq, ev_kind, ev_when, ev_reg))
    s_reg = ev_reg[order]
    s_delta = ev_delta[order]
    s_kind = ev_kind[order]
    s_when = ev_when[order]
    s_seq = ev_seq[order]
    # One global cumsum, re-based per region segment: running free capacity
    # after each event, for every eligible region at once.
    bounds = np.searchsorted(s_reg, np.arange(n_regions + 1))
    cum = np.cumsum(s_delta)
    seg_base = np.concatenate([[0], cum])[bounds[:-1]]
    running = free[s_reg] + cum - np.repeat(seg_base, np.diff(bounds))
    bad_idx = np.flatnonzero((running < 0) & (s_kind == KIND_READY))
    if not len(bad_idx):
        return cut_when, cut_seq
    first_of = np.searchsorted(bad_idx, bounds[:-1])
    for region in np.unique(s_reg[bad_idx]).tolist():
        pos = int(bad_idx[first_of[region]])
        if not allow_split or pos - bounds[region] < _MIN_PREFIX_EVENTS:
            cut_when[region] = -np.inf
        else:
            cut_when[region] = s_when[pos]
            cut_seq[region] = s_seq[pos]
    return cut_when, cut_seq


def _conveyor(
    queue: EventQueue,
    limit: float,
    r_when: np.ndarray,
    r_seq: np.ndarray,
    r_slot: np.ndarray,
    r_reg: np.ndarray,
    f_when: np.ndarray,
    f_seq: np.ndarray,
    f_slot: np.ndarray,
    f_reg: np.ndarray,
    *,
    servers: np.ndarray,
    exec_real: np.ndarray,
    start: np.ndarray,
    finish: np.ndarray,
    free: np.ndarray,
    committed: np.ndarray,
    busy_seconds: np.ndarray,
    queues: list,
    rec: list | None,
    skip: np.ndarray | None = None,
) -> tuple[float, np.ndarray, np.ndarray, int] | None:
    """Server-release conveyor: contended regions without the event replay.

    Inside one region the FIFO start **order** of a window residue is known
    up front — queued jobs first, then readies in ``(when, seq)`` order —
    so the only question is start *times*.  Those follow the classic
    ordered-workload recursion for a FIFO multi-server queue: keep a
    min-heap of server release times (one entry per server a pending
    finish will free, plus ``free`` spare tokens), and each job in FIFO
    order claims its ``servers_required`` earliest releases, starting at
    ``max(latest claimed release, its ready time)`` and returning that
    many copies of its own finish to the heap.  For the dominant
    one-server case that is three C-level ``heapq`` calls per *start*
    (and nothing at all per job still queued at the window edge) instead
    of the replay's tuple heap, branchy FIFO admission and per-event
    counter updates.

    Equivalence to the replay is exact, case by case:

    * a queued job starts only when a FINISH frees a server — with a
      non-empty initial queue the region's ``free`` tokens activate at the
      window's first finish time (the replay's FIFO drain loop only runs
      in the finish branch), with an empty initial queue they are
      available immediately (a ready with enough free servers starts on
      arrival);
    * negative initial ``free`` (chaos drain) absorbs the deficit's worth
      of earliest releases before anything starts;
    * a release *after* ``limit`` never lands in the heap, so jobs the
      replay would leave queued past the window stay queued here too, and
      a multi-server head the heap cannot cover blocks the queue exactly
      like the replay's head-of-line check.

    The per-region work runs on plain Python lists (the initial FIFO queue
    head-first via ``popleft`` — a saturated queue thousands deep costs
    only its actual starts); all NumPy work — region grouping, start/
    finish scatter, per-region counter deltas, the ``rec`` entry and the
    overflow push — is pooled across every handled region so a window
    touching many lightly-loaded regions pays the fixed cost once, not
    per region.

    Returns ``(makespan, handled_ready_mask, handled_finish_mask,
    n_events)`` or ``None`` when no region qualified.  Regions in ``skip``
    (the forced-contended test hook) and regions with fewer than
    ``_MIN_CONVEYOR_EVENTS`` window events are left for the replay.
    """
    n_regions = len(free)
    cnt_r = np.bincount(r_reg, minlength=n_regions)
    cnt_f = np.bincount(f_reg, minlength=n_regions)
    cand = (cnt_r + cnt_f) >= _MIN_CONVEYOR_EVENTS
    if skip is not None:
        cand &= ~np.asarray(skip, dtype=bool)
    if not cand.any():
        return None
    # Region-major grouping; the stable sort keeps each region's readies in
    # (when, seq) order and its finishes in queue order.
    r_ord = np.argsort(r_reg, kind="stable")
    f_ord = np.argsort(f_reg, kind="stable")
    rs_slot = r_slot[r_ord]
    rs_when_l = r_when[r_ord].tolist()
    rs_slot_l = rs_slot.tolist()
    rs_exec_l = exec_real[rs_slot].tolist()
    rs_srv_l = servers[rs_slot].tolist()
    fs_when_l = f_when[f_ord].tolist()
    fs_srv_l = servers[f_slot[f_ord]].tolist()
    r_off = np.concatenate([[0], np.cumsum(cnt_r)]).tolist()
    f_off = np.concatenate([[0], np.cumsum(cnt_f)]).tolist()
    free_l = free.tolist()

    handled = np.zeros(n_regions, dtype=bool)
    all_slots: list[int] = []
    all_starts: list[float] = []
    all_exec: list[float] = []
    reg_ids: list[int] = []
    reg_counts: list[int] = []
    n_handled = 0
    heapreplace = heapq.heapreplace
    heappop = heapq.heappop
    heappush = heapq.heappush
    append_slot = all_slots.append
    append_start = all_starts.append
    append_exec = all_exec.append
    exec_item = exec_real.item

    for reg in np.flatnonzero(cand).tolist():
        a, b = r_off[reg], r_off[reg + 1]
        c, d = f_off[reg], f_off[reg + 1]
        rexec = rs_exec_l[a:b]
        if rexec and min(rexec) < 0.0:
            # Negative remaining time never occurs with real traces; skip
            # rather than reason about time-travelling releases.
            continue
        fifo = queues[reg]
        fsrv = fs_srv_l[c:d]
        avail = fs_when_l[c:d]
        if fsrv and max(fsrv) > 1:
            avail = np.repeat(
                np.array(avail), np.array(fsrv, dtype=np.int64)
            ).tolist()
        f0 = free_l[reg]
        if f0 > 0:
            if not fifo:
                avail.extend([-np.inf] * f0)
            elif avail:
                avail.extend([min(avail)] * f0)
        elif f0 < 0:
            if -f0 >= len(avail):
                avail = []
            else:
                avail.sort()
                avail = avail[-f0:]
        heapq.heapify(avail)

        k0 = len(all_starts)
        exhausted = not avail
        # Phase 1: head-first through the initial FIFO queue.  Only jobs
        # that actually start are popped; the first blocked job ends the
        # region's window (strict FIFO head-of-line order).
        while fifo and not exhausted:
            slot, srv = fifo[0]
            dur = exec_item(slot)
            if srv == 1:
                begin = avail[0]
                done = begin + dur
                if done <= limit:
                    heapreplace(avail, done)
                else:
                    heappop(avail)
                    exhausted = not avail
            else:
                if len(avail) < srv:
                    break
                begin = -np.inf
                for _ in range(srv):
                    t = heappop(avail)
                    if t > begin:
                        begin = t
                done = begin + dur
                if done <= limit:
                    for _ in range(srv):
                        heappush(avail, done)
                else:
                    exhausted = not avail
            fifo.popleft()
            append_start(begin)
            append_slot(slot)
            append_exec(dur)
        # Phase 2: the window's readies, in (when, seq) order.  Once the
        # heap is exhausted (or a wide job cannot be covered) the rest
        # queue up behind, exactly like the replay's admission branch.
        blocked = bool(fifo)
        ready_pos = a
        if not blocked and not exhausted and a < b and max(rs_srv_l[a:b]) == 1:
            # Branch-free fast path: every residue job wants one server, so
            # each iteration is exactly one heap op and three appends.
            k1 = len(all_starts)
            for ready_at, dur, slot in zip(rs_when_l[a:b], rexec, rs_slot_l[a:b]):
                release = avail[0]
                begin = release if release >= ready_at else ready_at
                done = begin + dur
                append_start(begin)
                append_slot(slot)
                append_exec(dur)
                if done <= limit:
                    heapreplace(avail, done)
                else:
                    heappop(avail)
                    if not avail:
                        break
            ready_pos = a + (len(all_starts) - k1)
        elif not blocked and not exhausted:
            for i in range(a, b):
                ready_at = rs_when_l[i]
                dur = rexec[i - a]
                srv = rs_srv_l[i]
                if srv == 1:
                    release = avail[0]
                    begin = release if release >= ready_at else ready_at
                    done = begin + dur
                    if done <= limit:
                        heapreplace(avail, done)
                    else:
                        heappop(avail)
                        if not avail:
                            ready_pos = i + 1
                            append_start(begin)
                            append_slot(rs_slot_l[i])
                            append_exec(dur)
                            break
                else:
                    if len(avail) < srv:
                        break
                    begin = ready_at
                    for _ in range(srv):
                        t = heappop(avail)
                        if t > begin:
                            begin = t
                    done = begin + dur
                    if done <= limit:
                        for _ in range(srv):
                            heappush(avail, done)
                    elif not avail:
                        ready_pos = i + 1
                        append_start(begin)
                        append_slot(rs_slot_l[i])
                        append_exec(dur)
                        break
                ready_pos = i + 1
                append_start(begin)
                append_slot(rs_slot_l[i])
                append_exec(dur)
        if ready_pos < b:
            fifo.extend(zip(rs_slot_l[ready_pos:b], rs_srv_l[ready_pos:b]))
        handled[reg] = True
        reg_ids.append(reg)
        reg_counts.append(len(all_starts) - k0)
        n_handled += (b - a) + (d - c)
    if not handled.any():
        return None

    # Pooled bookkeeping over every handled region.
    f_handled = handled[f_reg]
    r_handled = handled[r_reg]
    fh_when = f_when[f_handled]
    fh_slot = f_slot[f_handled]
    fh_reg = f_reg[f_handled]
    fh_srv = servers[fh_slot]
    rh_reg = r_reg[r_handled]
    rh_srv = servers[r_slot[r_handled]]
    slots_all = np.array(all_slots, dtype=np.int64)
    s_all = np.array(all_starts)
    fin_all = s_all + np.array(all_exec)
    srv_all = servers[slots_all]
    regs_all = np.repeat(
        np.array(reg_ids, dtype=np.int64), np.array(reg_counts, dtype=np.int64)
    )
    k = len(all_starts)
    seq0 = queue.sequence
    queue.sequence = seq0 + k
    new_seq = np.arange(seq0, seq0 + k, dtype=np.int64)
    in_w = fin_all <= limit
    ap_slot = slots_all[in_w]
    ap_fin = fin_all[in_w]
    ap_reg = regs_all[in_w]
    ap_srv = srv_all[in_w]
    init_busy = fh_srv * (fh_when - start[fh_slot])
    start[slots_all] = s_all
    finish[fh_slot] = fh_when
    finish[ap_slot] = ap_fin
    busy_seconds += np.bincount(fh_reg, weights=init_busy, minlength=n_regions)
    busy_seconds += np.bincount(
        ap_reg, weights=ap_srv * (ap_fin - s_all[in_w]), minlength=n_regions
    )
    freed = np.bincount(fh_reg, weights=fh_srv, minlength=n_regions) + np.bincount(
        ap_reg, weights=ap_srv, minlength=n_regions
    )
    taken = np.bincount(regs_all, weights=srv_all, minlength=n_regions)
    free += (freed - taken).astype(np.int64)
    committed += (
        np.bincount(rh_reg, weights=rh_srv, minlength=n_regions) - freed
    ).astype(np.int64)
    makespan = -np.inf
    if len(fh_when):
        makespan = float(fh_when.max())
    if len(ap_fin):
        makespan = max(makespan, float(ap_fin.max()))
    if rec is not None and (len(fh_when) or len(ap_fin)):
        rec.append((
            np.concatenate([fh_when, ap_fin]),
            np.concatenate([fh_reg, ap_reg]),
            np.concatenate([f_seq[f_handled], new_seq[in_w]]),
            np.concatenate([fh_slot, ap_slot]),
        ))
    out = ~in_w
    if out.any():
        queue._push_finish_arrays(fin_all[out], new_seq[out], slots_all[out])
    return makespan, r_handled, f_handled, n_handled


def _apply_clean(
    queue: EventQueue,
    limit: float,
    cut_when: np.ndarray,
    r_when: np.ndarray,
    r_slot: np.ndarray,
    r_reg: np.ndarray,
    f_when: np.ndarray,
    f_seq: np.ndarray,
    f_slot: np.ndarray,
    f_reg: np.ndarray,
    *,
    servers: np.ndarray,
    exec_real: np.ndarray,
    start: np.ndarray,
    finish: np.ndarray,
    free: np.ndarray,
    committed: np.ndarray,
    busy_seconds: np.ndarray,
    rec: list | None,
) -> tuple[float, tuple | None]:
    """Vectorized apply of the clean prefix (every taken ready starts on time).

    ``cut_when`` is the per-region binding point (``+inf`` for fully clean
    regions): a started job whose synthetic finish lands *past* its
    region's cut but inside the window is not applied here — it is
    returned as ``(when, seq, slot, region)`` residue arrays so the replay
    sees it as a pending FINISH (it frees capacity that admits queued
    jobs mid-residue).  Finishes past ``limit`` go back to the event queue
    as before.
    """
    n_regions = len(free)
    r_srv = servers[r_slot]
    f_srv = servers[f_slot]
    r_exec = exec_real[r_slot]

    start[r_slot] = r_when
    nr = len(r_slot)
    new_seq = np.arange(queue.sequence, queue.sequence + nr, dtype=np.int64)
    queue.sequence += nr
    new_when = r_when + r_exec
    in_window = new_when <= limit
    applied = in_window & (new_when <= cut_when[r_reg])
    residual = in_window & ~applied

    started = np.bincount(r_reg, weights=r_srv, minlength=n_regions)
    done_reg = np.concatenate([f_reg, r_reg[applied]])
    done_srv = np.concatenate([f_srv, r_srv[applied]])
    done_dur = np.concatenate([f_when - start[f_slot], r_exec[applied]])
    done_cnt = np.bincount(done_reg, weights=done_srv, minlength=n_regions)
    free += (done_cnt - started).astype(np.int64)
    committed += (started - done_cnt).astype(np.int64)
    busy_seconds += np.bincount(
        done_reg, weights=done_srv * done_dur, minlength=n_regions
    )

    nw = new_when[applied]
    finish[f_slot] = f_when
    finish[r_slot[applied]] = nw

    makespan = -np.inf
    if len(f_when):
        # Not f_when[-1]: on later segmentation passes the finish arrays mix
        # residual synthetic finishes in and are no longer (when)-sorted.
        makespan = float(f_when.max())
    if len(nw):
        makespan = max(makespan, float(nw.max()))

    if rec is not None and (len(f_when) or len(nw)):
        rec.append((
            np.concatenate([f_when, nw]),
            done_reg,
            np.concatenate([f_seq, new_seq[applied]]),
            np.concatenate([f_slot, r_slot[applied]]),
        ))

    resid = None
    if residual.any():
        resid = (
            new_when[residual], new_seq[residual],
            r_slot[residual], r_reg[residual],
        )
    out = ~in_window
    if out.any():
        queue._push_finish_arrays(new_when[out], new_seq[out], r_slot[out])
    return makespan, resid


def _replay(
    queue: EventQueue,
    limit: float,
    r_when: np.ndarray,
    r_seq: np.ndarray,
    r_slot: np.ndarray,
    r_reg: np.ndarray,
    f_when: np.ndarray,
    f_seq: np.ndarray,
    f_slot: np.ndarray,
    f_reg: np.ndarray,
    *,
    servers: np.ndarray,
    exec_real: np.ndarray,
    start: np.ndarray,
    finish: np.ndarray,
    free: np.ndarray,
    committed: np.ndarray,
    busy_seconds: np.ndarray,
    queues: list,
    rec: list | None,
    stop_on_drain: bool = False,
) -> tuple[float, tuple | None]:
    """The classic heap loop over in-window events (the reference path).

    Event tuples carry ``(when, kind, seq, slot, region, servers, started)``
    — the per-slot payloads are gathered vectorized up front and the
    per-region counters are mirrored into Python lists for the duration of
    the window, so the loop never touches a NumPy scalar on its hot path.
    FIFO queues hold ``(slot, servers)`` pairs for the same reason.

    With ``stop_on_drain`` the loop exits as soon as a FINISH drains the
    last non-empty FIFO queue while enough events remain to be worth
    re-testing — the caller re-runs the clean-prefix verdict on the
    leftover, which this function returns as
    ``(r_when, r_seq, r_slot, r_reg, f_when, f_seq, f_slot, f_reg)``
    (``None`` when the window ran to completion).
    """
    entries: list[tuple] = [
        (when, KIND_FINISH, seq, slot, region, srv, began)
        for when, seq, slot, region, srv, began in zip(
            f_when.tolist(), f_seq.tolist(), f_slot.tolist(), f_reg.tolist(),
            servers[f_slot].tolist(), start[f_slot].tolist(),
        )
    ]
    entries.extend(
        (when, KIND_READY, seq, slot, region, srv, 0.0)
        for when, seq, slot, region, srv in zip(
            r_when.tolist(), r_seq.tolist(), r_slot.tolist(), r_reg.tolist(),
            servers[r_slot].tolist(),
        )
    )
    heapq.heapify(entries)

    free_l = free.tolist()
    committed_l = committed.tolist()
    busy_l = busy_seconds.tolist()
    over_when: list[float] = []
    over_seq: list[int] = []
    over_slot: list[int] = []
    d_when: list[float] = []
    d_reg: list[int] = []
    d_seq: list[int] = []
    d_slot: list[int] = []
    busy_queues = sum(1 for q in queues if q)
    stopped = False
    makespan = -np.inf
    heappush = heapq.heappush
    heappop = heapq.heappop

    def start_job(slot: int, region: int, srv: int, when: float) -> None:
        free_l[region] -= srv
        start[slot] = when
        finish_at = when + float(exec_real[slot])
        seq = queue.sequence
        queue.sequence = seq + 1
        if finish_at <= limit:
            heappush(entries, (finish_at, KIND_FINISH, seq, slot, region, srv, when))
        else:
            over_when.append(finish_at)
            over_seq.append(seq)
            over_slot.append(slot)

    while entries:
        when, kind, seq, slot, region, srv, began = heappop(entries)
        if kind == KIND_READY:
            committed_l[region] += srv
            if free_l[region] >= srv and not queues[region]:
                start_job(slot, region, srv, when)
            else:
                if not queues[region]:
                    busy_queues += 1
                queues[region].append((slot, srv))
        else:  # KIND_FINISH
            free_l[region] += srv
            committed_l[region] -= srv
            busy_l[region] += srv * (when - began)
            finish[slot] = when
            if when > makespan:
                makespan = when
            if rec is not None:
                d_when.append(when)
                d_reg.append(region)
                d_seq.append(seq)
                d_slot.append(slot)
            fifo = queues[region]
            if fifo:
                while fifo and free_l[region] >= fifo[0][1]:
                    queued_slot, queued_srv = fifo.popleft()
                    start_job(queued_slot, region, queued_srv, when)
                if not fifo:
                    busy_queues -= 1
                    if (
                        stop_on_drain
                        and busy_queues == 0
                        and len(entries) >= _MIN_RESIDUE_EVENTS
                    ):
                        stopped = True
                        break

    free[:] = free_l
    committed[:] = committed_l
    busy_seconds[:] = busy_l
    if over_when:
        queue._push_finish_arrays(
            np.array(over_when), np.array(over_seq, dtype=np.int64),
            np.array(over_slot, dtype=np.int64),
        )
    if rec is not None and d_when:
        rec.append((
            np.array(d_when),
            np.array(d_reg, dtype=np.int64),
            np.array(d_seq, dtype=np.int64),
            np.array(d_slot, dtype=np.int64),
        ))

    leftover = None
    if stopped and entries:
        lr_when, lr_seq, lr_slot, lr_reg = [], [], [], []
        lf_when, lf_seq, lf_slot, lf_reg = [], [], [], []
        for when, kind, seq, slot, region, _srv, _began in entries:
            if kind == KIND_READY:
                lr_when.append(when)
                lr_seq.append(seq)
                lr_slot.append(slot)
                lr_reg.append(region)
            else:
                lf_when.append(when)
                lf_seq.append(seq)
                lf_slot.append(slot)
                lf_reg.append(region)
        lr_when = np.array(lr_when)
        lr_seq = np.array(lr_seq, dtype=np.int64)
        lr_slot = np.array(lr_slot, dtype=np.int64)
        lr_reg = np.array(lr_reg, dtype=np.int64)
        order = np.lexsort((lr_seq, lr_when))
        leftover = (
            lr_when[order], lr_seq[order], lr_slot[order], lr_reg[order],
            np.array(lf_when), np.array(lf_seq, dtype=np.int64),
            np.array(lf_slot, dtype=np.int64), np.array(lf_reg, dtype=np.int64),
        )
    return makespan, leftover
