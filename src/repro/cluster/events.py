"""Array-batched event kernel shared by the batch and streaming engines.

Both simulation engines used to drive their discrete-event core through a
Python ``heapq`` of ``(when, kind, seq, slot)`` tuples — one pop, one tuple
compare and a handful of scalar array reads *per event*, which at a million
jobs (two events each) dominates the non-decision runtime.  This module
replaces the heap with an :class:`EventQueue` that keeps the pending READY
and FINISH events in NumPy arrays sorted by ``(when, seq)`` and processes a
whole *round window* (all events up to the next scheduling round) at once.

The window kernel exploits that regions are independent inside the event
loop — queues, free servers, committed counts and busy-second accounting
never couple two regions between scheduling rounds — and splits the window
per region:

* **Clean regions** (FIFO queue empty at the window start, and a per-region
  prefix-sum over the window's server deltas — applying same-time events in
  the heap's order, finishes before readies — proves free capacity never
  binds): every ready job provably starts at its ready time, so starts,
  finishes, busy seconds, committed/free updates and the finished-slot list
  are computed as vectorized segment operations.  No per-event Python.
* **Contended regions** (non-empty queue or capacity binding inside the
  window): their events are replayed through the *classic* heap loop,
  operation for operation identical to the pre-kernel engines (finishes
  before readies at equal times, sequenced pushes, FIFO admission).

Callers can additionally force regions onto the replay path through the
``contended`` mask: the engines mark every region with a pending capacity
change at the window's edge (chaos timelines,
:mod:`repro.cluster.timeline`), and a drained region running over its
shrunken capacity shows up as a negative free count the prefix sum rejects —
so time-varying capacity is structurally safe on both paths.

The clean path only fires when it is provably equivalent to the replay, and
the replay *is* the original algorithm, so per-job regions, start/finish/
ready times, deferrals and footprints — everything ``BatchResult.digest()``
hashes — are byte-identical either way.  The registry-wide differential
harness enforces this, and the engines expose ``kernel="scalar"`` to force
the reference loop everywhere (used by differential tests and as the
benchmark baseline).

Sequence numbers keep their engine-level contract: commits assign one
``seq`` per READY push in commit order, starts one ``seq`` per FINISH push.
Sequence *order* only ever breaks ties between same-region events (distinct
regions cannot interact), and within a region both paths assign sequence
numbers in the region's own causal order, so equal-time FIFO tie-breaking is
preserved exactly.

One deliberate non-guarantee: the *cross-region interleaving* of the
finished list differs between the kernels in mixed windows (clean regions
flush before contended ones), and is deterministic but not identical to the
pure-replay order.  Per-job values and per-region order — everything
``BatchResult.digest()`` and the aggregate totals depend on up to float
rounding — are unaffected; only flush-order-sensitive aggregate extras (the
seeded reservoir sample, last-ulp float-sum rounding) can differ between
``kernel="vector"`` and ``kernel="scalar"``.  Each kernel by itself remains
exactly chunk-size- and checkpoint-invariant.
"""

from __future__ import annotations

import heapq

import numpy as np

__all__ = ["EventQueue", "process_until"]

#: Event kinds, ordered like the legacy heap tuples (finishes pop first at
#: equal times).  Values mirror ``simulator._EVENT_FINISH`` / ``_EVENT_READY``.
KIND_FINISH = 0
KIND_READY = 1

_EMPTY_F = np.zeros(0)
_EMPTY_I = np.zeros(0, dtype=np.int64)


def _merge_sorted(
    when: np.ndarray, seq: np.ndarray, slot: np.ndarray,
    new_when: np.ndarray, new_seq: np.ndarray, new_slot: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Merge two ``(when, seq)``-sorted event arrays into one."""
    if len(new_when) == 0:
        return when, seq, slot
    when = np.concatenate([when, new_when])
    seq = np.concatenate([seq, new_seq])
    slot = np.concatenate([slot, new_slot])
    order = np.lexsort((seq, when))
    return when[order], seq[order], slot[order]


class EventQueue:
    """Pending READY/FINISH events as ``(when, seq)``-sorted NumPy arrays.

    Plain arrays plus an integer sequence counter, so the queue pickles —
    it is part of the streaming engine's checkpointable
    :class:`~repro.cluster.streaming.EngineState`.
    """

    def __init__(self) -> None:
        self.ready_when = _EMPTY_F
        self.ready_seq = _EMPTY_I
        self.ready_slot = _EMPTY_I
        self.finish_when = _EMPTY_F
        self.finish_seq = _EMPTY_I
        self.finish_slot = _EMPTY_I
        self.sequence = 0

    def __len__(self) -> int:
        return len(self.ready_when) + len(self.finish_when)

    def push_ready_batch(self, when: np.ndarray, slots: np.ndarray) -> None:
        """Queue READY events, assigning sequence numbers in the given order.

        The order of ``slots`` is the commit order — it decides equal-time
        FIFO tie-breaking exactly like consecutive ``heappush`` calls did.
        """
        n = len(slots)
        if n == 0:
            return
        seq = np.arange(self.sequence, self.sequence + n, dtype=np.int64)
        self.sequence += n
        self.ready_when, self.ready_seq, self.ready_slot = _merge_sorted(
            self.ready_when, self.ready_seq, self.ready_slot,
            np.asarray(when, dtype=float), seq, np.asarray(slots, dtype=np.int64),
        )

    def _push_finish_arrays(
        self, when: np.ndarray, seq: np.ndarray, slots: np.ndarray
    ) -> None:
        self.finish_when, self.finish_seq, self.finish_slot = _merge_sorted(
            self.finish_when, self.finish_seq, self.finish_slot, when, seq, slots
        )


def process_until(
    queue: EventQueue,
    limit: float,
    *,
    servers: np.ndarray,
    exec_real: np.ndarray,
    region_of: np.ndarray,
    start: np.ndarray,
    finish: np.ndarray,
    free: np.ndarray,
    committed: np.ndarray,
    busy_seconds: np.ndarray,
    queues: list,
    finished: list | None,
    use_fast: bool = True,
    contended: np.ndarray | None = None,
) -> float:
    """Process every event at or before ``limit``; returns the max finish time.

    ``servers`` / ``exec_real`` / ``region_of`` / ``start`` / ``finish`` are
    slot-indexed job columns (mutated in place for started/finished jobs);
    ``free`` / ``committed`` / ``busy_seconds`` / ``queues`` are the
    per-region state.  ``finished`` (when not ``None``) receives the finished
    slots in a deterministic near-pop order (exact pop order per region).
    ``contended`` (a per-region bool mask) forces regions onto the replay
    path regardless of the clean proof — the engines pass the regions with a
    capacity change at this window's edge (see
    :mod:`repro.cluster.timeline`), so elasticity correctness is structural
    rather than relying on the prefix sum noticing a mid-window change.
    Returns ``-inf`` when nothing finished.
    """
    nf = int(np.searchsorted(queue.finish_when, limit, side="right"))
    nr = int(np.searchsorted(queue.ready_when, limit, side="right"))
    if nf == 0 and nr == 0:
        return -np.inf

    r_when = queue.ready_when[:nr]
    r_seq = queue.ready_seq[:nr]
    r_slot = queue.ready_slot[:nr]
    f_when = queue.finish_when[:nf]
    f_seq = queue.finish_seq[:nf]
    f_slot = queue.finish_slot[:nf]
    queue.ready_when = queue.ready_when[nr:]
    queue.ready_seq = queue.ready_seq[nr:]
    queue.ready_slot = queue.ready_slot[nr:]
    queue.finish_when = queue.finish_when[nf:]
    queue.finish_seq = queue.finish_seq[nf:]
    queue.finish_slot = queue.finish_slot[nf:]

    r_reg = region_of[r_slot]
    f_reg = region_of[f_slot]

    clean = None
    if use_fast:
        clean = _clean_regions(
            limit, r_when, r_slot, r_reg, f_when, f_slot, f_reg,
            servers=servers, exec_real=exec_real, free=free, queues=queues,
        )
        if contended is not None:
            clean &= ~contended

    makespan = -np.inf
    if clean is not None and clean.any():
        r_mask = clean[r_reg]
        f_mask = clean[f_reg]
        span = _apply_clean(
            queue, limit,
            r_when[r_mask], r_slot[r_mask], r_reg[r_mask],
            f_when[f_mask], f_seq[f_mask], f_slot[f_mask], f_reg[f_mask],
            servers=servers, exec_real=exec_real, start=start, finish=finish,
            free=free, committed=committed, busy_seconds=busy_seconds,
            finished=finished,
        )
        makespan = max(makespan, span)
        r_keep = ~r_mask
        f_keep = ~f_mask
        r_when, r_seq, r_slot = r_when[r_keep], r_seq[r_keep], r_slot[r_keep]
        f_when, f_seq, f_slot = f_when[f_keep], f_seq[f_keep], f_slot[f_keep]
        r_reg, f_reg = r_reg[r_keep], f_reg[f_keep]

    if len(r_when) or len(f_when):
        span = _replay(
            queue, limit, r_when, r_seq, r_slot, r_reg, f_when, f_seq, f_slot, f_reg,
            servers=servers, exec_real=exec_real,
            start=start, finish=finish, free=free, committed=committed,
            busy_seconds=busy_seconds, queues=queues, finished=finished,
        )
        makespan = max(makespan, span)
    return makespan


def _clean_regions(
    limit: float,
    r_when: np.ndarray,
    r_slot: np.ndarray,
    r_reg: np.ndarray,
    f_when: np.ndarray,
    f_slot: np.ndarray,
    f_reg: np.ndarray,
    *,
    servers: np.ndarray,
    exec_real: np.ndarray,
    free: np.ndarray,
    queues: list,
) -> np.ndarray:
    """Per-region verdict: may this window be applied without replay?

    A region qualifies when its FIFO queue is empty at the window start and
    the per-region prefix sum over the window's server deltas — finishes
    (freeing) before readies (starting) at equal times, exactly like the heap
    order — never overdraws its free servers.  Same-kind same-time deltas
    share a sign, so their internal order cannot affect the running minimum.
    """
    n_regions = len(free)
    clean = np.array([not queues[r] for r in range(n_regions)])
    if not clean.any():
        return clean

    r_srv = servers[r_slot]
    f_srv = servers[f_slot]
    new_when = r_when + exec_real[r_slot]
    in_window = new_when <= limit
    ev_when = np.concatenate([f_when, new_when[in_window], r_when])
    n_finish = len(f_when) + int(in_window.sum())
    ev_kind = np.concatenate(
        [np.zeros(n_finish, dtype=np.int8), np.ones(len(r_when), dtype=np.int8)]
    )
    ev_reg = np.concatenate([f_reg, r_reg[in_window], r_reg])
    ev_delta = np.concatenate([f_srv, r_srv[in_window], -r_srv])
    order = np.lexsort((ev_kind, ev_when))
    s_reg = ev_reg[order]
    s_delta = ev_delta[order]
    for region in range(n_regions):
        if not clean[region]:
            continue
        mask = s_reg == region
        if not mask.any():
            continue
        running = free[region] + np.cumsum(s_delta[mask])
        if running.min() < 0:
            clean[region] = False
    return clean


def _apply_clean(
    queue: EventQueue,
    limit: float,
    r_when: np.ndarray,
    r_slot: np.ndarray,
    r_reg: np.ndarray,
    f_when: np.ndarray,
    f_seq: np.ndarray,
    f_slot: np.ndarray,
    f_reg: np.ndarray,
    *,
    servers: np.ndarray,
    exec_real: np.ndarray,
    start: np.ndarray,
    finish: np.ndarray,
    free: np.ndarray,
    committed: np.ndarray,
    busy_seconds: np.ndarray,
    finished: list | None,
) -> float:
    """Vectorized window for the clean regions (every ready starts on time)."""
    n_regions = len(free)
    r_srv = servers[r_slot]
    f_srv = servers[f_slot]
    r_exec = exec_real[r_slot]

    start[r_slot] = r_when
    nr = len(r_slot)
    new_seq = np.arange(queue.sequence, queue.sequence + nr, dtype=np.int64)
    queue.sequence += nr
    new_when = r_when + r_exec
    in_window = new_when <= limit

    started = np.bincount(r_reg, weights=r_srv, minlength=n_regions)
    done_reg = np.concatenate([f_reg, r_reg[in_window]])
    done_srv = np.concatenate([f_srv, r_srv[in_window]])
    done_dur = np.concatenate([f_when - start[f_slot], r_exec[in_window]])
    done_cnt = np.bincount(done_reg, weights=done_srv, minlength=n_regions)
    free += (done_cnt - started).astype(np.int64)
    committed += (started - done_cnt).astype(np.int64)
    busy_seconds += np.bincount(
        done_reg, weights=done_srv * done_dur, minlength=n_regions
    )

    nw = new_when[in_window]
    finish[f_slot] = f_when
    finish[r_slot[in_window]] = nw

    makespan = -np.inf
    if len(f_when):
        makespan = float(f_when[-1])
    if len(nw):
        makespan = max(makespan, float(nw.max()))

    if finished is not None and (len(f_when) or len(nw)):
        done_when = np.concatenate([f_when, nw])
        done_seq = np.concatenate([f_seq, new_seq[in_window]])
        done_slot = np.concatenate([f_slot, r_slot[in_window]])
        pop_order = np.lexsort((done_seq, done_when))
        finished.extend(done_slot[pop_order].tolist())

    out = ~in_window
    if out.any():
        queue._push_finish_arrays(new_when[out], new_seq[out], r_slot[out])
    return makespan


def _replay(
    queue: EventQueue,
    limit: float,
    r_when: np.ndarray,
    r_seq: np.ndarray,
    r_slot: np.ndarray,
    r_reg: np.ndarray,
    f_when: np.ndarray,
    f_seq: np.ndarray,
    f_slot: np.ndarray,
    f_reg: np.ndarray,
    *,
    servers: np.ndarray,
    exec_real: np.ndarray,
    start: np.ndarray,
    finish: np.ndarray,
    free: np.ndarray,
    committed: np.ndarray,
    busy_seconds: np.ndarray,
    queues: list,
    finished: list | None,
) -> float:
    """The classic heap loop over in-window events (the reference path).

    Event tuples carry ``(when, kind, seq, slot, region, servers, started)``
    — the per-slot payloads are gathered vectorized up front and the
    per-region counters are mirrored into Python lists for the duration of
    the window, so the loop never touches a NumPy scalar on its hot path.
    FIFO queues hold ``(slot, servers)`` pairs for the same reason.
    """
    entries: list[tuple] = [
        (when, KIND_FINISH, seq, slot, region, srv, began)
        for when, seq, slot, region, srv, began in zip(
            f_when.tolist(), f_seq.tolist(), f_slot.tolist(), f_reg.tolist(),
            servers[f_slot].tolist(), start[f_slot].tolist(),
        )
    ]
    entries.extend(
        (when, KIND_READY, seq, slot, region, srv, 0.0)
        for when, seq, slot, region, srv in zip(
            r_when.tolist(), r_seq.tolist(), r_slot.tolist(), r_reg.tolist(),
            servers[r_slot].tolist(),
        )
    )
    heapq.heapify(entries)

    free_l = free.tolist()
    committed_l = committed.tolist()
    busy_l = busy_seconds.tolist()
    over_when: list[float] = []
    over_seq: list[int] = []
    over_slot: list[int] = []
    makespan = -np.inf
    heappush = heapq.heappush
    heappop = heapq.heappop

    def start_job(slot: int, region: int, srv: int, when: float) -> None:
        free_l[region] -= srv
        start[slot] = when
        finish_at = when + float(exec_real[slot])
        seq = queue.sequence
        queue.sequence = seq + 1
        if finish_at <= limit:
            heappush(entries, (finish_at, KIND_FINISH, seq, slot, region, srv, when))
        else:
            over_when.append(finish_at)
            over_seq.append(seq)
            over_slot.append(slot)

    while entries:
        when, kind, _seq, slot, region, srv, began = heappop(entries)
        if kind == KIND_READY:
            committed_l[region] += srv
            if free_l[region] >= srv and not queues[region]:
                start_job(slot, region, srv, when)
            else:
                queues[region].append((slot, srv))
        else:  # KIND_FINISH
            free_l[region] += srv
            committed_l[region] -= srv
            busy_l[region] += srv * (when - began)
            finish[slot] = when
            if when > makespan:
                makespan = when
            if finished is not None:
                finished.append(slot)
            fifo = queues[region]
            while fifo and free_l[region] >= fifo[0][1]:
                queued_slot, queued_srv = fifo.popleft()
                start_job(queued_slot, region, queued_srv, when)

    free[:] = free_l
    committed[:] = committed_l
    busy_seconds[:] = busy_l
    if over_when:
        queue._push_finish_arrays(
            np.array(over_when), np.array(over_seq, dtype=np.int64),
            np.array(over_slot, dtype=np.int64),
        )
    return makespan
