"""Contract between the simulator and scheduling policies.

A scheduling policy sees the world exactly the way WaterWise's Optimization
Decision Controller does in the paper: at each scheduling round it receives
the batch of jobs awaiting placement (newly arrived plus previously deferred),
a snapshot of remaining capacity per region, the current carbon/water
intensities (through the footprint calculator and dataset), the transfer
latency model and the configured delay tolerance.  It must account for every
job in the batch — either by assigning it to a region or by explicitly
deferring it to the next round.

Oracles with future knowledge (the Carbon-/Water-Greedy-Opt baselines) are
given access to the full dataset series through the same context, which is
precisely the "infeasible in practice" information advantage the paper
describes.
"""

from __future__ import annotations

import abc
import dataclasses
from collections.abc import Mapping, Sequence

from repro.cluster.footprint import FootprintCalculator
from repro.regions.latency import TransferLatencyModel
from repro.regions.region import Region
from repro.sustainability.datasets import SustainabilityDataset
from repro.traces.job import Job

__all__ = ["SchedulingContext", "SchedulerDecision", "Scheduler"]


@dataclasses.dataclass(frozen=True)
class SchedulingContext:
    """Snapshot of the cluster handed to a policy at one scheduling round.

    Attributes
    ----------
    now:
        Current simulation time (seconds since trace start).
    regions:
        Candidate regions, in a stable order.
    capacity:
        Remaining capacity (free server slots not already promised to queued
        jobs) per region key — the paper's ``cap(n)``.
    dataset:
        Sustainability dataset (current and, for oracles, future intensities).
    latency:
        Inter-region transfer latency model.
    footprints:
        Vectorized footprint calculator bound to ``dataset``.
    delay_tolerance:
        Allowed relative increase of service time over execution time
        (0.25 = 25%).
    scheduling_interval_s:
        Period between scheduling rounds, exposed so policies can reason
        about deferral cost.
    job_wait_times:
        Seconds each job in the batch has already been waiting since its
        arrival (keyed by ``job_id``); the slack manager's
        ``T_start − T_current`` term.
    """

    now: float
    regions: tuple[Region, ...]
    capacity: Mapping[str, int]
    dataset: SustainabilityDataset
    latency: TransferLatencyModel
    footprints: FootprintCalculator
    delay_tolerance: float
    scheduling_interval_s: float
    job_wait_times: Mapping[int, float]

    @property
    def region_keys(self) -> list[str]:
        return [region.key for region in self.regions]

    @property
    def total_capacity(self) -> int:
        return int(sum(self.capacity.values()))

    def wait_time(self, job: Job) -> float:
        """Time ``job`` has been waiting since arrival (0 if unknown)."""
        return float(self.job_wait_times.get(job.job_id, max(0.0, self.now - job.arrival_time)))

    def transfer_time(self, job: Job, region_key: str) -> float:
        """Transfer latency of moving ``job`` from home to ``region_key``."""
        return self.latency.transfer_time(job.home_region, region_key, job.package_gb)


@dataclasses.dataclass(frozen=True)
class SchedulerDecision:
    """Outcome of one scheduling round.

    ``assignments`` maps job id → destination region key; ``deferred`` lists
    job ids intentionally postponed to the next round.  Every job given to
    the policy must appear in exactly one of the two; the simulator enforces
    this and fails loudly otherwise (a silently dropped job would corrupt the
    evaluation).
    """

    assignments: Mapping[int, str] = dataclasses.field(default_factory=dict)
    deferred: Sequence[int] = dataclasses.field(default_factory=tuple)

    def validate_for(self, jobs: Sequence[Job], known_regions: Sequence[str]) -> None:
        """Raise ``ValueError`` unless the decision covers the batch exactly."""
        job_ids = {job.job_id for job in jobs}
        assigned = set(self.assignments)
        deferred = set(self.deferred)
        unknown = (assigned | deferred) - job_ids
        if unknown:
            raise ValueError(f"decision references unknown job ids: {sorted(unknown)}")
        overlap = assigned & deferred
        if overlap:
            raise ValueError(f"jobs both assigned and deferred: {sorted(overlap)}")
        missing = job_ids - assigned - deferred
        if missing:
            raise ValueError(f"decision does not cover jobs: {sorted(missing)}")
        bad_regions = {r for r in self.assignments.values() if r not in known_regions}
        if bad_regions:
            raise ValueError(f"decision assigns to unknown regions: {sorted(bad_regions)}")


class Scheduler(abc.ABC):
    """Base class for scheduling policies.

    Subclasses implement :meth:`schedule`; :attr:`name` identifies the policy
    in results and reports.
    """

    #: Human-readable policy name (overridden by subclasses).
    name: str = "scheduler"

    @abc.abstractmethod
    def schedule(self, jobs: Sequence[Job], context: SchedulingContext) -> SchedulerDecision:
        """Place (or defer) every job in ``jobs`` given the cluster ``context``."""

    def reset(self) -> None:
        """Clear any internal state before a fresh simulation (optional)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
