"""Vectorized carbon/water footprint evaluation for scheduling decisions.

Every scheduling policy in this repository — WaterWise's MILP as well as the
greedy oracles — needs the same quantity: for a batch of M jobs and N
candidate regions, the carbon footprint ``CO2(m, n)`` and water footprint
``H2O(m, n)`` of running job *m* in region *n* right now (or at some future
time, for the oracles).  :class:`FootprintCalculator` builds those M×N
matrices in a handful of NumPy operations using the job *estimates* (what a
real scheduler would know) and the dataset's intensity values at the decision
time.

The simulator separately uses :meth:`FootprintCalculator.integrate_job` for
*accounting*: the realized footprint of a finished job, integrating the
region's hourly intensity series over the job's actual execution window.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.cluster.metrics import ExactSum
from repro.sustainability.carbon import CarbonModel
from repro.sustainability.datasets import SustainabilityDataset
from repro.sustainability.embodied import DEFAULT_SERVER, ServerSpec
from repro.sustainability.water import WaterModel
from repro.traces.job import Job

__all__ = ["FootprintCalculator", "RunningFootprintTotals"]

_SECONDS_PER_HOUR = 3600.0


class RunningFootprintTotals:
    """Carry-over footprint accumulator for the streaming engine.

    The one-shot batch engine integrates every job's footprint in a single
    :meth:`FootprintCalculator.integrate_batch` pass after the event loop
    drains.  The streaming engine instead integrates each chunk of *finished*
    jobs as it retires them (the same prefix-sum kernel, so the per-job
    values are identical) and folds the results into this accumulator:
    per-region and overall totals survive across chunk boundaries while the
    per-job columns are released.  Picklable, so checkpoints carry it.

    Per-region sums accumulate in :class:`~repro.cluster.metrics.ExactSum`,
    so every total is exactly invariant to chunking and — via :meth:`merge` —
    to how a run was split into shards: partials from any partition of the
    job stream combine bit-identically to a single-box accumulator.
    """

    def __init__(self, n_regions: int) -> None:
        self.n_regions = int(n_regions)
        self._carbon = [ExactSum() for _ in range(self.n_regions)]
        self._water = [ExactSum() for _ in range(self.n_regions)]
        self.jobs_integrated = 0

    def add(
        self, region_idx: np.ndarray, carbon_g: np.ndarray, water_l: np.ndarray
    ) -> None:
        region_idx = np.asarray(region_idx)
        carbon_g = np.asarray(carbon_g, dtype=float)
        water_l = np.asarray(water_l, dtype=float)
        for code in np.unique(region_idx).tolist():
            mask = region_idx == code
            self._carbon[code].add_array(carbon_g[mask])
            self._water[code].add_array(water_l[mask])
        self.jobs_integrated += len(region_idx)

    def merge(self, other: "RunningFootprintTotals") -> None:
        """Fold another partial accumulator in exactly (any merge order)."""
        if self.n_regions != other.n_regions:
            raise ValueError(
                f"cannot merge totals over {other.n_regions} regions into {self.n_regions}"
            )
        for mine, theirs in zip(self._carbon, other._carbon):
            mine.merge(theirs)
        for mine, theirs in zip(self._water, other._water):
            mine.merge(theirs)
        self.jobs_integrated += other.jobs_integrated

    @property
    def carbon_g_per_region(self) -> np.ndarray:
        return np.array([s.value() for s in self._carbon])

    @property
    def water_l_per_region(self) -> np.ndarray:
        return np.array([s.value() for s in self._water])

    @property
    def total_carbon_g(self) -> float:
        total = ExactSum()
        for s in self._carbon:
            total.merge(s)
        return total.value()

    @property
    def total_water_l(self) -> float:
        total = ExactSum()
        for s in self._water:
            total.merge(s)
        return total.value()


class _RegionPrefixIntegrals:
    """Prefix-sum integrators over one region's hourly intensity series.

    For a piecewise-constant hourly series ``v[h]`` (clamped to the final
    hour beyond the horizon, like ``RegionSustainabilitySeries`` lookups),
    ``integral(t)`` is the exact running integral ``∫₀ᵗ v`` in value·seconds.
    Differences of two such integrals reproduce, hour segment by hour
    segment, what :meth:`FootprintCalculator.integrate_job` accumulates with
    a Python loop — but for whole job batches in a few NumPy operations.
    """

    def __init__(self, series) -> None:
        self.wsf = float(series.wsf)
        self.pue = float(series.pue)
        self._values = (
            np.asarray(series.carbon_intensity, dtype=float),
            np.asarray(series.ewif, dtype=float),
            np.asarray(series.wue, dtype=float),
        )
        self._cums = tuple(
            np.concatenate(([0.0], np.cumsum(v) * _SECONDS_PER_HOUR)) for v in self._values
        )

    def _integral(self, which: int, t: np.ndarray) -> np.ndarray:
        values = self._values[which]
        cum = self._cums[which]
        horizon = len(values)
        hour = np.minimum((t // _SECONDS_PER_HOUR).astype(np.int64), horizon)
        offset = t - _SECONDS_PER_HOUR * hour
        return cum[hour] + values[np.minimum(hour, horizon - 1)] * offset

    def carbon_integral(self, t0: np.ndarray, t1: np.ndarray) -> np.ndarray:
        return self._integral(0, t1) - self._integral(0, t0)

    def ewif_integral(self, t0: np.ndarray, t1: np.ndarray) -> np.ndarray:
        return self._integral(1, t1) - self._integral(1, t0)

    def wue_integral(self, t0: np.ndarray, t1: np.ndarray) -> np.ndarray:
        return self._integral(2, t1) - self._integral(2, t0)


class FootprintCalculator:
    """Carbon/water footprints of jobs across regions.

    Parameters
    ----------
    dataset:
        Sustainability dataset providing per-region intensity series.
    server:
        Server model for embodied footprints.
    include_embodied:
        Whether embodied carbon/water are included (True for WaterWise,
        configurable for baselines and ablations).
    """

    def __init__(
        self,
        dataset: SustainabilityDataset,
        server: ServerSpec = DEFAULT_SERVER,
        include_embodied: bool = True,
    ) -> None:
        self.dataset = dataset
        self.server = server
        self.include_embodied = bool(include_embodied)
        self.carbon_model = CarbonModel(server=server, include_embodied=include_embodied)
        self.water_model = WaterModel(server=server, include_embodied=include_embodied)
        self._prefix_cache: dict[str, _RegionPrefixIntegrals] = {}

    # -- decision-time estimates ---------------------------------------------------
    def _region_factors(self, region_keys: Sequence[str], time_s: float):
        """Per-region (CI, EWIF, WUE, WSF, PUE) arrays at ``time_s``."""
        ci, ewif, wue, wsf, pue = [], [], [], [], []
        for key in region_keys:
            series = self.dataset.series_for(key)
            ci.append(series.carbon_intensity_at(time_s))
            ewif.append(series.ewif_at(time_s))
            wue.append(series.wue_at(time_s))
            wsf.append(series.wsf)
            pue.append(series.pue)
        return (np.array(ci), np.array(ewif), np.array(wue), np.array(wsf), np.array(pue))

    def carbon_matrix_arrays(
        self,
        energy_kwh: np.ndarray,
        execution_time_s: np.ndarray,
        region_keys: Sequence[str],
        time_s: float,
    ) -> np.ndarray:
        """Array-world :meth:`carbon_matrix`: per-job estimate columns in, M×N out.

        ``energy_kwh`` / ``execution_time_s`` are 1-D arrays of the
        scheduler-visible estimates (one entry per job).  All operations are
        elementwise, so the result is bit-identical to the ``Job``-based
        matrix — the vectorized scheduler fast paths rely on that.
        """
        energy = np.asarray(energy_kwh, dtype=float)
        exec_time = np.asarray(execution_time_s, dtype=float)
        if energy.size == 0 or not region_keys:
            return np.zeros((energy.size, len(region_keys)))
        ci = self._region_factors(region_keys, time_s)[0][None, :]
        return np.asarray(self.carbon_model.total(energy[:, None], ci, exec_time[:, None]))

    def water_matrix_arrays(
        self,
        energy_kwh: np.ndarray,
        execution_time_s: np.ndarray,
        region_keys: Sequence[str],
        time_s: float,
    ) -> np.ndarray:
        """Array-world :meth:`water_matrix` (see :meth:`carbon_matrix_arrays`)."""
        energy = np.asarray(energy_kwh, dtype=float)
        exec_time = np.asarray(execution_time_s, dtype=float)
        if energy.size == 0 or not region_keys:
            return np.zeros((energy.size, len(region_keys)))
        _, ewif, wue, wsf, pue = self._region_factors(region_keys, time_s)
        return np.asarray(
            self.water_model.total(
                energy[:, None], ewif[None, :], wue[None, :], wsf[None, :], pue[None, :],
                exec_time[:, None],
            )
        )

    def footprint_matrices_arrays(
        self,
        energy_kwh: np.ndarray,
        execution_time_s: np.ndarray,
        region_keys: Sequence[str],
        time_s: float,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Both array-world matrices in one call."""
        return (
            self.carbon_matrix_arrays(energy_kwh, execution_time_s, region_keys, time_s),
            self.water_matrix_arrays(energy_kwh, execution_time_s, region_keys, time_s),
        )

    def carbon_matrix(
        self, jobs: Sequence[Job], region_keys: Sequence[str], time_s: float
    ) -> np.ndarray:
        """Estimated carbon footprint (g) of each job in each region at ``time_s``.

        Shape ``(len(jobs), len(region_keys))``; uses the scheduler-visible
        estimates of energy and execution time.
        """
        if not jobs or not region_keys:
            return np.zeros((len(jobs), len(region_keys)))
        energy = np.array([job.energy_kwh for job in jobs])
        exec_time = np.array([job.execution_time for job in jobs])
        return self.carbon_matrix_arrays(energy, exec_time, region_keys, time_s)

    def water_matrix(
        self, jobs: Sequence[Job], region_keys: Sequence[str], time_s: float
    ) -> np.ndarray:
        """Estimated water footprint (L) of each job in each region at ``time_s``."""
        if not jobs or not region_keys:
            return np.zeros((len(jobs), len(region_keys)))
        energy = np.array([job.energy_kwh for job in jobs])
        exec_time = np.array([job.execution_time for job in jobs])
        return self.water_matrix_arrays(energy, exec_time, region_keys, time_s)

    def footprint_matrices(
        self, jobs: Sequence[Job], region_keys: Sequence[str], time_s: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Both matrices in one call (the common case for the MILP objective)."""
        return (
            self.carbon_matrix(jobs, region_keys, time_s),
            self.water_matrix(jobs, region_keys, time_s),
        )

    # -- accounting of realized executions --------------------------------------------
    def integrate_job(
        self, job: Job, region_key: str, start_time_s: float
    ) -> tuple[float, float]:
        """Realized (carbon_g, water_l) of running ``job`` in ``region_key``.

        The job's realized energy is spread uniformly over its realized
        execution window and integrated against the region's hourly intensity
        series, so a job spanning a carbon-intensity dip is charged less than
        one that runs entirely inside a peak.  Embodied footprints are added
        according to the calculator's configuration.
        """
        series = self.dataset.series_for(region_key)
        duration = job.realized_execution_time
        energy = job.realized_energy_kwh
        if duration <= 0.0:
            return 0.0, 0.0

        # Split the execution window at hour boundaries.
        start = start_time_s
        end = start_time_s + duration
        first_hour = int(start // _SECONDS_PER_HOUR)
        last_hour = int(np.ceil(end / _SECONDS_PER_HOUR))
        boundaries = np.arange(first_hour, last_hour + 1, dtype=float) * _SECONDS_PER_HOUR
        boundaries[0] = start
        boundaries[-1] = end
        segment_durations = np.diff(boundaries)
        if segment_durations.sum() <= 0.0:
            return 0.0, 0.0
        weights = segment_durations / duration
        segment_times = boundaries[:-1]

        ci = np.array([series.carbon_intensity_at(t) for t in segment_times])
        ewif = np.array([series.ewif_at(t) for t in segment_times])
        wue = np.array([series.wue_at(t) for t in segment_times])

        seg_energy = energy * weights
        carbon = float(np.sum(self.carbon_model.operational(seg_energy, ci)))
        water = float(
            np.sum(self.water_model.operational(seg_energy, ewif, wue, series.wsf, series.pue))
        )
        if self.include_embodied:
            carbon += self.carbon_model.embodied(duration)
            water += self.water_model.embodied(duration)
        return carbon, water

    def _prefix_integrals(self, region_key: str) -> _RegionPrefixIntegrals:
        cached = self._prefix_cache.get(region_key)
        if cached is None:
            cached = _RegionPrefixIntegrals(self.dataset.series_for(region_key))
            self._prefix_cache[region_key] = cached
        return cached

    def integrate_batch(
        self,
        region_keys: Sequence[str],
        region_idx: np.ndarray,
        start_time_s: np.ndarray,
        duration_s: np.ndarray,
        energy_kwh: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Realized (carbon_g, water_l) arrays for a whole batch of executions.

        The array counterpart of :meth:`integrate_job`: job ``i`` ran in
        region ``region_keys[region_idx[i]]`` from ``start_time_s[i]`` for
        ``duration_s[i]`` seconds consuming ``energy_kwh[i]`` kWh, its energy
        spread uniformly over the execution window and integrated against the
        region's hourly intensity series.  Uses cached per-region prefix sums,
        so the cost is a handful of NumPy gathers per region instead of a
        Python loop per job; results agree with :meth:`integrate_job` to
        floating-point rounding (≪ 1e-9 relative).
        """
        region_idx = np.asarray(region_idx)
        start = np.asarray(start_time_s, dtype=float)
        duration = np.asarray(duration_s, dtype=float)
        energy = np.asarray(energy_kwh, dtype=float)
        n = len(region_idx)
        carbon = np.zeros(n)
        water = np.zeros(n)
        if n == 0:
            return carbon, water

        end = start + duration
        for code, key in enumerate(region_keys):
            mask = region_idx == code
            if not np.any(mask):
                continue
            integrals = self._prefix_integrals(key)
            t0 = start[mask]
            t1 = end[mask]
            d = duration[mask]
            with np.errstate(divide="ignore", invalid="ignore"):
                mean_energy_rate = np.where(d > 0.0, energy[mask] / d, 0.0)
            carbon[mask] = mean_energy_rate * integrals.carbon_integral(t0, t1)
            scarcity = 1.0 + integrals.wsf
            water[mask] = mean_energy_rate * (
                integrals.pue * scarcity * integrals.ewif_integral(t0, t1)
                + scarcity * integrals.wue_integral(t0, t1)
            )

        if self.include_embodied:
            positive = duration > 0.0
            carbon[positive] += self.carbon_model.embodied(duration[positive])
            water[positive] += self.water_model.embodied(duration[positive])
        return carbon, water

    # -- per-region normalization helpers ------------------------------------------------
    def worst_case_footprints(
        self, jobs: Sequence[Job], region_keys: Sequence[str], time_s: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-job maxima across regions, used to normalize the MILP objective.

        Returns ``(CO2_max[m], H2O_max[m])`` — the paper's
        :math:`CO^{max}_{2,j}` and :math:`H_2O^{max}_j` (Eq. 7).
        """
        carbon, water = self.footprint_matrices(jobs, region_keys, time_s)
        if carbon.size == 0:
            return np.zeros(len(jobs)), np.zeros(len(jobs))
        return carbon.max(axis=1), water.max(axis=1)
