"""Trace-driven discrete-event simulator for geo-distributed scheduling.

The simulator replays a :class:`~repro.traces.trace.Trace` against a set of
regional data centers under a scheduling policy:

1. Jobs arrive according to the trace.  At every scheduling round (a fixed
   cadence, the paper's "jobs invoked together or nearby in time") the policy
   receives the batch of jobs that arrived since the previous round plus any
   jobs it previously deferred, and must assign or defer each of them.
2. An assigned job pays the inter-region transfer latency if placed away from
   home, then occupies servers in the destination data center for its
   realized execution time, queuing FIFO if the data center is full.
3. When a job finishes, its realized carbon and water footprints are
   integrated against the destination region's hourly intensity series and
   recorded as a :class:`~repro.cluster.metrics.JobOutcome`.

The simulator measures the wall-clock time spent inside the policy at every
round (the paper's decision-making overhead, Fig. 13) and reports aggregate
results as a :class:`~repro.cluster.metrics.SimulationResult`.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
import math
import time as _time
from collections import deque
from collections.abc import Mapping, Sequence

import numpy as np

from repro._validation import ensure_non_negative, ensure_positive
from repro.cluster.batch import (
    BatchResult,
    BatchSchedulingContext,
    JobArrays,
    resolve_fast_decision,
)
from repro.cluster.datacenter import Datacenter
from repro.cluster.events import EventQueue, KernelStats, process_until
from repro.cluster.footprint import FootprintCalculator
from repro.cluster.timeline import ChaosSpec, ClusterTimeline, apply_capacity_step, get_chaos
from repro.cluster.interface import Scheduler, SchedulingContext
from repro.cluster.metrics import JobOutcome, SimulationResult
from repro.regions.latency import TransferLatencyModel
from repro.regions.region import Region
from repro.sustainability.datasets import ElectricityMapsLikeProvider, SustainabilityDataset
from repro.sustainability.embodied import DEFAULT_SERVER, ServerSpec
from repro.traces.job import Job
from repro.traces.trace import Trace

__all__ = ["Simulator", "BatchSimulator"]

_EVENT_FINISH = 0
_EVENT_READY = 1


@dataclasses.dataclass
class _PendingJob:
    job: Job
    considered_time: float
    deferrals: int = 0


@dataclasses.dataclass
class _Execution:
    job: Job
    region_key: str
    considered_time: float
    assigned_time: float
    ready_time: float
    transfer_latency: float
    deferrals: int
    start_time: float | None = None


class _SimulatorBase:
    """Shared configuration/validation of the scalar and batch engines.

    Parameters
    ----------
    trace:
        The job trace to replay.
    scheduler:
        The scheduling policy under test.
    dataset:
        Sustainability dataset; built automatically (Electricity-Maps-like,
        covering the trace horizon plus a day of slack) when omitted.
    regions:
        Candidate regions; defaults to the dataset's regions.
    servers_per_region:
        Either one integer applied to every region or a mapping from region
        key to server count.
    scheduling_interval_s:
        Cadence of scheduling rounds (the batch window).
    delay_tolerance:
        Allowed relative service-time increase (0.25 = 25%).
    latency:
        Transfer latency model; a default model over ``regions`` is built
        when omitted.
    server:
        Server hardware model (energy / embodied footprints).
    include_embodied:
        Whether embodied footprints are charged to jobs.
    seed_dataset_horizon_slack_h:
        Extra dataset hours beyond the trace horizon (jobs finishing late).
    max_rounds:
        Safety limit on scheduling rounds (guards against policies that defer
        forever).
    kernel:
        Event-kernel flavour for the array engines.  ``"auto"`` (resolve
        ``"compiled"`` when numba is importable, ``"vector"`` otherwise);
        ``"vector"`` (default) enables the batched clean-window path of
        :mod:`repro.cluster.events` plus binding-point segmentation;
        ``"compiled"`` additionally routes contended residues through the
        flat-array kernel of :mod:`repro.cluster._kernel_compiled`
        (numba-jitted when available, interpreted otherwise);
        ``"scalar"`` forces the classic event-at-a-time reference loop
        everywhere.  All flavours are decision-identical (the differential
        harness compares their digests three ways); the scalar kernel
        exists as the testing reference and benchmark baseline.  The
        object-world :class:`Simulator` ignores it.  The resolved choice is
        surfaced as ``result.kernel_stats`` telemetry.
    chaos:
        Optional chaos timeline: a :class:`~repro.cluster.timeline.ChaosSpec`,
        a registry name (``"region-outage"``, …) or a ``field=value,...``
        spec string.  Builds a deterministic
        :class:`~repro.cluster.timeline.ClusterTimeline` over the workload
        horizon: capacity events (outages, flaps, autoscale) drive per-region
        elasticity inside the event loop, and signal shocks perturb the
        sustainability datasets — carbon/water spikes apply to decisions
        *and* accounting, forecast error to decisions only
        (``self.dataset`` is the decision view; footprints integrate against
        the truth).  The array engines support it; the object-world
        :class:`Simulator` raises.
    chaos_seed:
        Seed of the chaos timeline (independent of the trace seed).
    """

    def __init__(
        self,
        trace: Trace,
        scheduler: Scheduler,
        dataset: SustainabilityDataset | None = None,
        regions: Sequence[Region] | None = None,
        servers_per_region: int | Mapping[str, int] = 20,
        scheduling_interval_s: float = 300.0,
        delay_tolerance: float = 0.25,
        latency: TransferLatencyModel | None = None,
        server: ServerSpec = DEFAULT_SERVER,
        include_embodied: bool = True,
        seed_dataset_horizon_slack_h: int = 24,
        max_rounds: int = 1_000_000,
        kernel: str = "vector",
        chaos: "str | ChaosSpec | None" = None,
        chaos_seed: int = 0,
    ) -> None:
        self.trace = trace
        self.scheduler = scheduler
        # The *declared* horizon where the workload carries one (generator
        # duration; streams and their materialized traces agree on it, so
        # both engines see the identical value) and the last arrival
        # otherwise.  Sizes the auto-built dataset and the chaos timeline.
        horizon_s = getattr(trace, "declared_horizon_s", None)
        if horizon_s is None:
            horizon_s = getattr(trace, "horizon_s", 0.0)
        if dataset is None:
            horizon_hours = int(math.ceil(horizon_s / 3600.0)) + int(
                seed_dataset_horizon_slack_h
            )
            dataset = ElectricityMapsLikeProvider(horizon_hours=max(horizon_hours, 24))
        #: The un-perturbed dataset the caller supplied (or the auto-built
        #: one).  Multi-policy runners share *this* across engines so chaos
        #: perturbations are never applied twice.
        self.input_dataset = dataset
        self.dataset = dataset
        self.regions = tuple(regions) if regions is not None else tuple(dataset.regions)
        if not self.regions:
            raise ValueError("simulator needs at least one region")
        self.region_keys = [region.key for region in self.regions]
        self.scheduling_interval_s = ensure_positive(scheduling_interval_s, "scheduling_interval_s")
        self.delay_tolerance = ensure_non_negative(delay_tolerance, "delay_tolerance")
        self.latency = latency if latency is not None else TransferLatencyModel(self.regions)
        self.max_rounds = int(max_rounds)
        if kernel not in ("auto", "vector", "scalar", "compiled"):
            raise ValueError(
                "kernel must be 'auto', 'vector', 'scalar' or 'compiled', "
                f"got {kernel!r}"
            )
        if kernel == "auto":
            from . import _kernel_compiled

            kernel = "compiled" if _kernel_compiled.available() else "vector"
        self.kernel = kernel

        if isinstance(servers_per_region, Mapping):
            missing = set(self.region_keys) - set(servers_per_region)
            if missing:
                raise ValueError(f"servers_per_region missing regions: {sorted(missing)}")
            self._servers = {key: int(servers_per_region[key]) for key in self.region_keys}
        else:
            self._servers = {key: int(servers_per_region) for key in self.region_keys}
        for key, count in self._servers.items():
            if count < 1:
                raise ValueError(f"region {key!r} must have at least one server")

        # Chaos: build the deterministic timeline and split the dataset into
        # a decision view (spikes + forecast error) and an accounting view
        # (spikes only).  Without chaos both views stay the caller's object.
        self.chaos: ChaosSpec | None = None
        self.chaos_seed = int(chaos_seed)
        self._timeline: ClusterTimeline | None = None
        accounting_dataset = dataset
        if chaos is not None:
            spec = get_chaos(chaos)
            self.chaos = spec
            baseline = np.array(
                [self._servers[key] for key in self.region_keys], dtype=np.int64
            )
            self._timeline = ClusterTimeline(
                spec, self.region_keys, baseline, horizon_s, seed=self.chaos_seed
            )
            n_hours = getattr(dataset, "horizon_hours", None)
            if n_hours is None:
                n_hours = int(math.ceil(horizon_s / 3600.0)) + 1
            spike_carbon, spike_water = self._timeline.signal_factor_arrays(int(n_hours))
            if spike_carbon or spike_water:
                accounting_dataset = dataset.with_hourly_factors(
                    spike_carbon, spike_water
                )
            decision_dataset = accounting_dataset
            noise_carbon, noise_water = self._timeline.forecast_factor_arrays(int(n_hours))
            if noise_carbon or noise_water:
                decision_dataset = accounting_dataset.with_hourly_factors(
                    noise_carbon, noise_water
                )
            self.dataset = decision_dataset
        self.footprints = FootprintCalculator(
            accounting_dataset, server=server, include_embodied=include_embodied
        )

    def _next_round_time(self, round_time: float, next_arrival: float | None) -> float:
        """Time of the next scheduling round (shared by both engines).

        Normally one interval later; when nothing is pending
        (``next_arrival`` is the first future arrival) the clock skips ahead
        to the first interval-aligned tick at or after that arrival instead
        of idling through empty rounds.
        """
        interval = self.scheduling_interval_s
        next_round = round_time + interval
        if next_arrival is not None and next_arrival > next_round:
            next_round = math.ceil(next_arrival / interval) * interval
            if next_round < next_arrival:
                next_round += interval
        return next_round

    def _attach_solver_stats(self, result) -> None:
        """Expose the scheduler's solver-session counters on the result.

        MILP-backed policies (the WaterWise family) own a
        :class:`~repro.milp.session.SolverSession` through their decision
        controller; its aggregate statistics (presolve ratios, warm-start
        savings, structured-path hits) are part of a run's performance story,
        so both engines publish them.  Policies without a controller leave
        ``solver_stats`` as ``None``.
        """
        controller = getattr(self.scheduler, "controller", None)
        session = getattr(controller, "session", None)
        if session is not None:
            result.solver_stats = session.stats.as_dict()

    def _attach_chaos_stats(self, result, total_evictions: int) -> None:
        """Expose the chaos timeline's summary on the result (``None`` without chaos)."""
        if self._timeline is None:
            return
        stats = self._timeline.stats()
        stats["evictions"] = int(total_evictions)
        result.chaos_stats = stats

    def _attach_kernel_stats(self, result, stats) -> None:
        """Expose the event-kernel telemetry on the result.

        ``kernel_stats`` records which path every window event took (clean
        vectorized segment, Python replay, flat/compiled replay), how many
        binding-point splits fired and the lazy jit compile time — so
        vectorization coverage is observable instead of inferred from wall
        time.  See :class:`repro.cluster.events.KernelStats`.
        """
        payload = stats.as_dict()
        payload["kernel"] = self.kernel
        result.kernel_stats = payload


class Simulator(_SimulatorBase):
    """Scalar reference engine: replay the trace one ``Job`` object at a time.

    This is the readable, obviously-correct implementation the paper's
    evaluation semantics are defined by.  :class:`BatchSimulator` is the
    vectorized engine that must produce identical scheduling decisions and
    footprints (its equivalence is enforced by the test suite); prefer it for
    large traces.  Construction parameters are documented on
    :class:`_SimulatorBase`.
    """

    # -- main entry point ----------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Run the simulation to completion and return the aggregated result."""
        if self._timeline is not None:
            raise NotImplementedError(
                "the object-world Simulator does not support chaos timelines; "
                "use BatchSimulator(kernel='scalar') as the chaos reference engine"
            )
        self.scheduler.reset()
        datacenters = {key: Datacenter(key, self._servers[key]) for key in self.region_keys}
        events: list[tuple[float, int, int, object]] = []
        sequence = itertools.count()
        pending: dict[int, _PendingJob] = {}
        executions: dict[int, _Execution] = {}
        outcomes: list[JobOutcome] = []
        decision_times: list[float] = []
        round_times: list[float] = []
        makespan = 0.0

        jobs = list(self.trace)
        trace_idx = 0

        def push_event(when: float, kind: int, payload: object) -> None:
            heapq.heappush(events, (when, kind, next(sequence), payload))

        def record_start(entry) -> None:
            execution = executions[entry.job.job_id]
            execution.start_time = entry.start_time
            push_event(entry.finish_time, _EVENT_FINISH, entry.job.job_id)

        def process_events_until(limit: float) -> None:
            nonlocal makespan
            while events and events[0][0] <= limit:
                when, kind, _seq, payload = heapq.heappop(events)
                if kind == _EVENT_READY:
                    execution = payload  # type: ignore[assignment]
                    dc = datacenters[execution.region_key]
                    entry = dc.admit(execution.job, when)
                    if entry is not None:
                        record_start(entry)
                else:  # _EVENT_FINISH
                    job_id = payload  # type: ignore[assignment]
                    execution = executions[job_id]
                    dc = datacenters[execution.region_key]
                    started = dc.finish(job_id, when)
                    for entry in started:
                        record_start(entry)
                    makespan = max(makespan, when)
                    outcomes.append(self._build_outcome(execution, finish_time=when))

        round_time = 0.0
        rounds = 0
        while trace_idx < len(jobs) or pending:
            if rounds > self.max_rounds:
                raise RuntimeError(
                    f"scheduling did not converge after {self.max_rounds} rounds "
                    f"({len(pending)} jobs still pending)"
                )
            # Advance the cluster state up to this round.
            process_events_until(round_time)

            # Pull newly arrived jobs into the pending set.
            while trace_idx < len(jobs) and jobs[trace_idx].arrival_time <= round_time:
                job = jobs[trace_idx]
                pending[job.job_id] = _PendingJob(job=job, considered_time=round_time)
                trace_idx += 1

            if pending:
                rounds += 1
                round_times.append(round_time)
                decision_seconds = self._run_round(
                    round_time, pending, datacenters, executions, push_event
                )
                decision_times.append(decision_seconds)

            # Choose the next round time.
            next_arrival = (
                jobs[trace_idx].arrival_time
                if not pending and trace_idx < len(jobs)
                else None
            )
            round_time = self._next_round_time(round_time, next_arrival)

        # Drain every remaining event (jobs still running or queued).
        process_events_until(math.inf)

        region_utilization = {
            key: dc.utilization(makespan) for key, dc in datacenters.items()
        }
        outcomes.sort(key=lambda outcome: outcome.job_id)
        result = SimulationResult(
            scheduler_name=self.scheduler.name,
            outcomes=outcomes,
            region_servers=dict(self._servers),
            region_utilization=region_utilization,
            makespan_s=makespan,
            decision_times_s=decision_times,
            round_times_s=round_times,
            delay_tolerance=self.delay_tolerance,
            trace_name=self.trace.name,
        )
        self._attach_solver_stats(result)
        return result

    # -- internals ----------------------------------------------------------------------------
    def _run_round(
        self,
        now: float,
        pending: dict[int, _PendingJob],
        datacenters: Mapping[str, Datacenter],
        executions: dict[int, _Execution],
        push_event,
    ) -> float:
        batch = [entry.job for entry in pending.values()]
        context = SchedulingContext(
            now=now,
            regions=self.regions,
            capacity={key: dc.remaining_capacity() for key, dc in datacenters.items()},
            dataset=self.dataset,
            latency=self.latency,
            footprints=self.footprints,
            delay_tolerance=self.delay_tolerance,
            scheduling_interval_s=self.scheduling_interval_s,
            job_wait_times={
                job_id: now - entry.considered_time for job_id, entry in pending.items()
            },
        )
        started = _time.perf_counter()
        decision = self.scheduler.schedule(batch, context)
        decision_seconds = _time.perf_counter() - started
        decision.validate_for(batch, self.region_keys)

        for job_id, region_key in decision.assignments.items():
            entry = pending.pop(job_id)
            transfer = self.latency.transfer_time(
                entry.job.home_region, region_key, entry.job.package_gb
            )
            execution = _Execution(
                job=entry.job,
                region_key=region_key,
                considered_time=entry.considered_time,
                assigned_time=now,
                ready_time=now + transfer,
                transfer_latency=transfer,
                deferrals=entry.deferrals,
            )
            executions[job_id] = execution
            push_event(execution.ready_time, _EVENT_READY, execution)

        for job_id in decision.deferred:
            pending[job_id].deferrals += 1
        return decision_seconds

    def _build_outcome(self, execution: _Execution, finish_time: float) -> JobOutcome:
        if execution.start_time is None:
            raise RuntimeError(f"job {execution.job.job_id} finished without a start time")
        carbon, water = self.footprints.integrate_job(
            execution.job, execution.region_key, execution.start_time
        )
        return JobOutcome(
            job_id=execution.job.job_id,
            workload=execution.job.workload,
            home_region=execution.job.home_region,
            executed_region=execution.region_key,
            arrival_time=execution.job.arrival_time,
            considered_time=execution.considered_time,
            assigned_time=execution.assigned_time,
            ready_time=execution.ready_time,
            start_time=execution.start_time,
            finish_time=finish_time,
            execution_time=execution.job.realized_execution_time,
            transfer_latency=execution.transfer_latency,
            carbon_g=carbon,
            water_l=water,
            deferrals=execution.deferrals,
            delay_tolerance=self.delay_tolerance,
        )


class BatchSimulator(_SimulatorBase):
    """Vectorized batch engine: same semantics as :class:`Simulator`, on arrays.

    The simulation state lives in NumPy arrays indexed by trace position
    (see :class:`~repro.cluster.batch.JobArrays`); the event heap carries
    primitive tuples instead of dataclasses; scheduling decisions dispatch to
    a registered vectorized fast path
    (:mod:`repro.schedulers.vectorized`) when the policy has one, falling
    back to the policy's scalar ``schedule`` method otherwise; and realized
    carbon/water footprints are integrated for *all* jobs in one
    prefix-sum pass after the event loop drains
    (:meth:`~repro.cluster.footprint.FootprintCalculator.integrate_batch`).

    The engine is decision-equivalent to the scalar simulator: identical
    executed regions, start/finish times and deferral counts, and footprints
    equal to floating-point rounding (≪ 1e-9 relative).  Event tie-breaking
    replicates the scalar heap exactly — finishes before readies at equal
    times, globally sequenced pushes — so even saturated FIFO queues drain in
    the same order.

    Construction parameters are identical to :class:`Simulator`
    (documented on :class:`_SimulatorBase`).
    """

    # -- main entry point ----------------------------------------------------------------
    def run(self) -> BatchResult:
        """Run the simulation to completion and return the columnar result."""
        from repro.schedulers.vectorized import fast_path_for  # lazy: avoids import cycle

        self.scheduler.reset()
        arrays = JobArrays.from_trace(self.trace, self.region_keys)
        fast_path = fast_path_for(self.scheduler)
        n = arrays.n
        n_regions = len(self.region_keys)

        # Per-job state (trace order).
        considered = np.zeros(n)
        assigned_t = np.zeros(n)
        ready_t = np.zeros(n)
        start_t = np.full(n, -1.0)
        finish_t = np.full(n, -1.0)
        region_of = np.full(n, -1, dtype=np.int64)
        transfer_s = np.zeros(n)
        deferrals = np.zeros(n, dtype=np.int64)
        evictions = np.zeros(n, dtype=np.int64)

        # Per-region state.  ``servers`` is the *current* capacity — chaos
        # timelines mutate it between event segments; the baseline stays in
        # ``self._servers``.
        servers = np.array([self._servers[key] for key in self.region_keys], dtype=np.int64)
        free = servers.copy()
        committed = np.zeros(n_regions, dtype=np.int64)
        busy_server_seconds = np.zeros(n_regions)
        queues: list[deque[int]] = [deque() for _ in range(n_regions)]

        # Transfer latency split into a per-pair propagation term and a
        # per-job serialization term (their sum equals
        # ``TransferLatencyModel.transfer_time`` exactly).  The matrix is
        # keyed by the *simulator's* region order — the latency model may
        # order its regions differently or cover a superset.  Subclasses may
        # override ``transfer_time`` with a non-additive formula, so they
        # get a per-job call instead of the decomposition.
        transfer_decomposes = type(self.latency) is TransferLatencyModel
        if transfer_decomposes:
            propagation = self.latency.propagation_seconds(self.region_keys)
            serialization = arrays.package_gb * 8.0 / self.latency.bandwidth_gbps
        else:
            # Anything duck-typed only needs transfer_time(); see
            # commit_assignment's per-job fallback.
            propagation = serialization = None

        job_servers = arrays.servers
        exec_real = arrays.exec_real
        arrival = arrays.arrival

        events = EventQueue()
        makespan = 0.0
        use_fast = self.kernel != "scalar"
        compiled = self.kernel == "compiled"
        kernel_stats = KernelStats()
        tl = self._timeline
        tl_pos = 0

        def run_kernel(limit: float) -> None:
            nonlocal makespan
            span = process_until(
                events,
                limit,
                servers=job_servers,
                exec_real=exec_real,
                region_of=region_of,
                start=start_t,
                finish=finish_t,
                free=free,
                committed=committed,
                busy_seconds=busy_server_seconds,
                queues=queues,
                finished=None,
                use_fast=use_fast,
                compiled=compiled,
                stats=kernel_stats,
            )
            if span > makespan:
                makespan = span

        def process_events_until(limit: float) -> None:
            # Segment the window at the timeline's capacity breakpoints so
            # capacity is constant inside every kernel window: job events at
            # exactly a breakpoint happen *before* the capacity change.
            # Constant in-window capacity is what makes the prefix-sum proof
            # (and binding-point segmentation) valid during chaos — a
            # drained region running over shrunken capacity shows up as
            # negative free count the proof rejects, so no region needs to
            # be forced onto the replay path anymore.
            nonlocal tl_pos
            if tl is not None:
                while tl_pos < tl.n_events and tl.event_when[tl_pos] <= limit:
                    t = float(tl.event_when[tl_pos])
                    group_end = tl_pos + 1
                    while group_end < tl.n_events and tl.event_when[group_end] == t:
                        group_end += 1
                    run_kernel(t)
                    requeued = apply_capacity_step(
                        events,
                        t,
                        tl.event_region[tl_pos:group_end],
                        tl.event_capacity[tl_pos:group_end],
                        evict=tl.spec.eviction == "evict",
                        capacity=servers,
                        free=free,
                        committed=committed,
                        busy_seconds=busy_server_seconds,
                        queues=queues,
                        job_servers=job_servers,
                        exec_real=exec_real,
                        region_idx=region_of,
                        start=start_t,
                        finish=finish_t,
                        assigned=assigned_t,
                        ready=ready_t,
                        transfer=transfer_s,
                        evictions=evictions,
                    )
                    tl_pos = group_end
                    for slot in requeued:
                        pending[slot] = None
            run_kernel(limit)

        def commit_batch(jobs: np.ndarray, choice: np.ndarray, now: float) -> None:
            if len(jobs) == 0:
                return
            home = arrays.home_idx[jobs]
            if transfer_decomposes:
                transfer = np.where(
                    choice == home, 0.0, propagation[home, choice] + serialization[jobs]
                )
            else:
                transfer = np.array(
                    [
                        0.0
                        if choice[i] == home[i]
                        else self.latency.transfer_time(
                            self.region_keys[home[i]],
                            self.region_keys[choice[i]],
                            arrays.package_gb[jobs[i]],
                        )
                        for i in range(len(jobs))
                    ]
                )
            region_of[jobs] = choice
            assigned_t[jobs] = now
            transfer_s[jobs] = transfer
            ready_t[jobs] = now + transfer
            events.push_ready_batch(now + transfer, jobs)

        pending: dict[int, None] = {}  # insertion-ordered set of trace indices
        decision_times: list[float] = []
        round_times: list[float] = []
        trace_idx = 0
        round_time = 0.0
        rounds = 0

        def next_timeline_event() -> float | None:
            """Next capacity event that can still affect in-flight work.

            Keeps the round loop alive after the last arrival while evictions
            or admissions may still requeue jobs; a timeline over an idle
            cluster has nothing to act on and is applied in bulk at the end.
            """
            if tl is None or tl_pos >= tl.n_events:
                return None
            if not len(events) and not any(queues):
                return None
            return float(tl.event_when[tl_pos])

        while trace_idx < n or pending or next_timeline_event() is not None:
            if rounds > self.max_rounds:
                raise RuntimeError(
                    f"scheduling did not converge after {self.max_rounds} rounds "
                    f"({len(pending)} jobs still pending)"
                )
            process_events_until(round_time)

            stop = int(np.searchsorted(arrival, round_time, side="right"))
            if stop > trace_idx:
                considered[trace_idx:stop] = round_time
                for job in range(trace_idx, stop):
                    pending[job] = None
                trace_idx = stop

            if pending:
                rounds += 1
                round_times.append(round_time)
                batch = np.fromiter(pending.keys(), dtype=np.int64, count=len(pending))
                capacity = np.maximum(0, servers - committed)
                if fast_path is not None:
                    decision_seconds = self._run_fast_round(
                        fast_path, round_time, batch, capacity, arrays,
                        considered, pending, deferrals, commit_batch,
                    )
                else:
                    decision_seconds = self._run_fallback_round(
                        round_time, batch, capacity, considered,
                        pending, deferrals, commit_batch,
                    )
                decision_times.append(decision_seconds)

            next_wake = None
            if not pending:
                if trace_idx < n:
                    next_wake = float(arrival[trace_idx])
                next_event = next_timeline_event()
                if next_event is not None and (next_wake is None or next_event < next_wake):
                    next_wake = next_event
            round_time = self._next_round_time(round_time, next_wake)

        process_events_until(math.inf)

        # One vectorized pass replaces the scalar engine's per-job
        # ``integrate_job`` calls — the dominant cost of large simulations.
        carbon, water = self.footprints.integrate_batch(
            self.region_keys, region_of, start_t, exec_real, arrays.energy_real
        )

        # Utilization is normalized by the *baseline* server counts —
        # ``servers`` may have been mutated by the chaos timeline.
        region_utilization = {
            key: (
                float(busy_server_seconds[idx] / (self._servers[key] * makespan))
                if makespan > 0.0
                else 0.0
            )
            for idx, key in enumerate(self.region_keys)
        }
        order = np.argsort(arrays.job_id, kind="stable")
        result = BatchResult(
            scheduler_name=self.scheduler.name,
            trace_name=self.trace.name,
            region_keys=self.region_keys,
            job_id=arrays.job_id[order],
            workloads=[arrays.workloads[i] for i in order],
            home_idx=arrays.home_idx[order],
            region_idx=region_of[order],
            arrival=arrival[order],
            considered=considered[order],
            assigned=assigned_t[order],
            ready=ready_t[order],
            start=start_t[order],
            finish=finish_t[order],
            execution_time=exec_real[order],
            transfer_latency=transfer_s[order],
            carbon_g=carbon[order],
            water_l=water[order],
            deferrals=deferrals[order],
            region_servers=dict(self._servers),
            region_utilization=region_utilization,
            makespan_s=makespan,
            decision_times_s=decision_times,
            round_times_s=round_times,
            delay_tolerance=self.delay_tolerance,
            evictions=evictions[order],
        )
        self._attach_solver_stats(result)
        self._attach_chaos_stats(result, int(evictions.sum()))
        self._attach_kernel_stats(result, kernel_stats)
        return result

    # -- internals ----------------------------------------------------------------------------
    def _run_fast_round(
        self,
        fast_path,
        now: float,
        batch: np.ndarray,
        capacity: np.ndarray,
        arrays: JobArrays,
        considered: np.ndarray,
        pending: dict[int, None],
        deferrals: np.ndarray,
        commit_batch,
    ) -> float:
        context = BatchSchedulingContext(
            now=now,
            region_keys=arrays.region_keys,
            capacity=capacity,
            jobs=arrays,
            batch=batch,
            wait_times=now - considered[batch],
            delay_tolerance=self.delay_tolerance,
            scheduling_interval_s=self.scheduling_interval_s,
            dataset=self.dataset,
            latency=self.latency,
            footprints=self.footprints,
            regions=self.regions,
        )
        started = _time.perf_counter()
        result = fast_path(self.scheduler, context)
        decision_seconds = _time.perf_counter() - started

        choice, commit_positions = resolve_fast_decision(
            result, batch, len(arrays.region_keys)
        )
        deferrals[batch[choice < 0]] += 1
        jobs = batch[commit_positions]
        for job in jobs.tolist():
            del pending[job]
        commit_batch(jobs, choice[commit_positions], now)
        return decision_seconds

    def _run_fallback_round(
        self,
        now: float,
        batch: np.ndarray,
        capacity: np.ndarray,
        considered: np.ndarray,
        pending: dict[int, None],
        deferrals: np.ndarray,
        commit_batch,
    ) -> float:
        """Scalar-policy fallback: materialize Jobs and the classic context."""
        jobs = [self.trace[int(i)] for i in batch]
        wait_times = {
            job.job_id: now - considered[int(i)] for i, job in zip(batch, jobs)
        }
        context = SchedulingContext(
            now=now,
            regions=self.regions,
            capacity={
                key: int(capacity[idx]) for idx, key in enumerate(self.region_keys)
            },
            dataset=self.dataset,
            latency=self.latency,
            footprints=self.footprints,
            delay_tolerance=self.delay_tolerance,
            scheduling_interval_s=self.scheduling_interval_s,
            job_wait_times=wait_times,
        )
        started = _time.perf_counter()
        decision = self.scheduler.schedule(jobs, context)
        decision_seconds = _time.perf_counter() - started
        decision.validate_for(jobs, self.region_keys)

        index_of = {job.job_id: int(i) for i, job in zip(batch, jobs)}
        region_index = {key: idx for idx, key in enumerate(self.region_keys)}
        indices: list[int] = []
        regions: list[int] = []
        for job_id, region_key in decision.assignments.items():
            job = index_of[job_id]
            del pending[job]
            indices.append(job)
            regions.append(region_index[region_key])
        commit_batch(
            np.array(indices, dtype=np.int64), np.array(regions, dtype=np.int64), now
        )
        for job_id in decision.deferred:
            deferrals[index_of[job_id]] += 1
        return decision_seconds

