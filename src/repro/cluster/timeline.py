"""Chaos & elasticity: deterministic time-varying capacity and signal shocks.

Every scenario before this module varied *arrivals* only — region server
counts and sustainability signals were frozen for the length of a run.  The
:class:`ClusterTimeline` makes both first-class time-varying inputs, as a
chunk-invariant, slab-keyed event stream in the exact mould of the arrival
processes (:mod:`repro.traces.arrival`): the horizon is cut into
:data:`~repro.traces.arrival.SLAB_S`-second slabs and every draw inside slab
``k`` is a pure function of ``(seed, stream tag, k)``.  However a consumer
chunks or resumes the run, the same capacity events replay byte-identically —
chaos is just another deterministic event stream.

Three families of *capacity* events compose into one per-region capacity
function ``capacity_r(t)``:

* **outages** — Poisson per-region failures that zero the region's capacity
  for ``outage_duration_s`` and then restore it (the recovery event is always
  emitted, even past the horizon, so outage/recovery pairs are well-formed),
* **capacity flaps** — short partial degradations that keep only
  ``flap_fraction`` of the capacity, and
* **autoscale** — a deterministic (RNG-free) stepped diurnal curve
  ``1 + amplitude · sin(2π t / period)`` sampled every ``autoscale_step_s``.

``capacity_r(t) = max(0, round(baseline_r · autoscale(t) · Π active
multipliers))`` — evaluated only at the region's breakpoints (interval edges
and autoscale steps), with no-op transitions dropped, and materialized into
``(when, region)``-sorted event arrays the engines consume cursor-style
(``EngineState.timeline_pos`` is part of the checkpoint).

Two families of *signal* events never touch capacity:

* **carbon/water spikes** — per-region hourly multipliers on the true
  sustainability signals (accounting *and* decisions see them), and
* **forecast-error injection** — per-hour multiplicative noise applied to the
  *decision* dataset only, so policies act on wrong signals while footprints
  are integrated against the truth.

When a region shrinks below its running load the :class:`ChaosSpec` decides
the semantics, policy-visibly:

* ``eviction="evict"`` — running jobs are killed newest-first (descending
  ``(start, seq)``; within one region the event kernels agree on that order
  by contract) until the region fits, their partial busy-seconds are
  accounted, their ``evictions`` counter increments and they are requeued
  with their original ``considered`` time.  An outage (capacity 0) also
  kicks the FIFO-queued jobs back to the scheduler.
* ``eviction="drain"`` — running and queued jobs keep their servers; ``free``
  goes negative and no new work starts until enough finishes accumulate.
  The event kernel's clean-region prefix-sum proof sees the negative free
  count and falls back to the scalar replay, so correctness is structural,
  not hoped-for.
"""

from __future__ import annotations

import dataclasses
import math
from collections.abc import Sequence

import numpy as np

from repro._validation import ensure_non_negative, ensure_positive
from repro.traces.arrival import _slab_bounds, _slab_rng

__all__ = [
    "CHAOS_SPECS",
    "ChaosSpec",
    "ClusterTimeline",
    "apply_capacity_step",
    "available_chaos",
    "get_chaos",
]

#: Entropy tag separating timeline streams from every arrival stream.
_TIMELINE_TAG = 0x71A317
#: Sub-stream tags (outages, flaps, signal spikes, forecast noise).
_OUTAGE_STREAM = 1
_FLAP_STREAM = 2
_SPIKE_STREAM = 3
_FORECAST_STREAM = 4

_SECONDS_PER_DAY = 86_400.0


@dataclasses.dataclass(frozen=True)
class ChaosSpec:
    """Declarative description of one chaos scenario (all streams optional).

    A rate of ``0`` disables the corresponding stream, so a spec with every
    rate (and ``autoscale_amplitude`` / ``forecast_error``) at zero is a
    no-chaos run.  Instances are frozen and picklable — checkpoints store the
    spec itself so a resume rebuilds the identical timeline.
    """

    name: str = "custom"
    #: Per-region outage arrivals (Poisson, per day); capacity drops to 0.
    outage_rate_per_day: float = 0.0
    outage_duration_s: float = 1800.0
    #: Per-region partial degradations (Poisson, per day).
    flap_rate_per_day: float = 0.0
    flap_duration_s: float = 600.0
    #: Fraction of capacity *retained* during a flap.
    flap_fraction: float = 0.5
    #: Stepped diurnal autoscale curve (0 disables; RNG-free).
    autoscale_amplitude: float = 0.0
    autoscale_period_s: float = 86_400.0
    autoscale_step_s: float = 1800.0
    #: Per-region carbon/water spikes (Poisson, per day) on the true signals.
    carbon_spike_rate_per_day: float = 0.0
    spike_duration_s: float = 7200.0
    carbon_spike_factor: float = 3.0
    water_spike_factor: float = 1.0
    #: Uniform(±error) multiplicative noise on the *decision* signals only.
    forecast_error: float = 0.0
    #: What happens to running jobs when capacity drops below the load.
    eviction: str = "evict"

    def __post_init__(self) -> None:
        if self.eviction not in ("evict", "drain"):
            raise ValueError(
                f"eviction must be 'evict' or 'drain', got {self.eviction!r}"
            )
        ensure_non_negative(self.outage_rate_per_day, "outage_rate_per_day")
        ensure_non_negative(self.flap_rate_per_day, "flap_rate_per_day")
        ensure_non_negative(self.carbon_spike_rate_per_day, "carbon_spike_rate_per_day")
        ensure_positive(self.outage_duration_s, "outage_duration_s")
        ensure_positive(self.flap_duration_s, "flap_duration_s")
        ensure_positive(self.spike_duration_s, "spike_duration_s")
        ensure_positive(self.autoscale_period_s, "autoscale_period_s")
        ensure_positive(self.autoscale_step_s, "autoscale_step_s")
        ensure_positive(self.carbon_spike_factor, "carbon_spike_factor")
        ensure_positive(self.water_spike_factor, "water_spike_factor")
        if not 0.0 <= self.flap_fraction < 1.0:
            raise ValueError(f"flap_fraction must be in [0, 1), got {self.flap_fraction}")
        if not 0.0 <= self.autoscale_amplitude < 1.0:
            raise ValueError(
                f"autoscale_amplitude must be in [0, 1), got {self.autoscale_amplitude}"
            )
        if not 0.0 <= self.forecast_error < 1.0:
            raise ValueError(
                f"forecast_error must be in [0, 1), got {self.forecast_error}"
            )

    @property
    def has_capacity_events(self) -> bool:
        return (
            self.outage_rate_per_day > 0.0
            or self.flap_rate_per_day > 0.0
            or self.autoscale_amplitude > 0.0
        )


#: The built-in chaos family, mirrored by the scenario registry
#: (``repro.traces.scenarios``) and the CLI's ``--chaos`` choices.
CHAOS_SPECS: dict[str, ChaosSpec] = {
    "region-outage": ChaosSpec(
        name="region-outage", outage_rate_per_day=4.0, outage_duration_s=1800.0
    ),
    "capacity-flap": ChaosSpec(
        name="capacity-flap",
        flap_rate_per_day=24.0,
        flap_duration_s=600.0,
        flap_fraction=0.5,
        eviction="drain",
    ),
    "autoscale-diurnal": ChaosSpec(
        name="autoscale-diurnal", autoscale_amplitude=0.4, autoscale_step_s=1800.0
    ),
    "carbon-spike": ChaosSpec(
        name="carbon-spike",
        carbon_spike_rate_per_day=8.0,
        spike_duration_s=7200.0,
        carbon_spike_factor=3.0,
        water_spike_factor=2.0,
    ),
    "forecast-shock": ChaosSpec(name="forecast-shock", forecast_error=0.35),
}

_FLOAT_FIELDS = {
    field.name: field.type for field in dataclasses.fields(ChaosSpec)
    if field.name not in ("name", "eviction")
}


def available_chaos() -> tuple[str, ...]:
    """Sorted names of the built-in chaos specs."""
    return tuple(sorted(CHAOS_SPECS))


def get_chaos(spec: "str | ChaosSpec") -> ChaosSpec:
    """Resolve a chaos spec: an instance, a registry name, or ``k=v,...`` text.

    The textual form (the CLI's ``--chaos``) sets :class:`ChaosSpec` fields by
    name, e.g. ``"outage_rate_per_day=8,outage_duration_s=900,eviction=drain"``;
    unset fields keep their (inactive) defaults.
    """
    if isinstance(spec, ChaosSpec):
        return spec
    name = str(spec).strip()
    key = name.lower()
    if key in CHAOS_SPECS:
        return CHAOS_SPECS[key]
    if "=" not in name:
        raise KeyError(
            f"unknown chaos spec {spec!r}; choose one of {', '.join(available_chaos())} "
            "or pass field=value pairs (e.g. 'outage_rate_per_day=8,eviction=drain')"
        )
    kwargs: dict[str, object] = {"name": "custom"}
    for part in name.split(","):
        part = part.strip()
        if not part:
            continue
        field, _, value = part.partition("=")
        field = field.strip()
        value = value.strip()
        if field in ("name", "eviction"):
            kwargs[field] = value
        elif field in _FLOAT_FIELDS:
            kwargs[field] = float(value)
        else:
            raise KeyError(f"unknown ChaosSpec field {field!r} in chaos spec {spec!r}")
    return ChaosSpec(**kwargs)


class ClusterTimeline:
    """Materialized, deterministic capacity/signal event stream for one run.

    Parameters
    ----------
    spec:
        The :class:`ChaosSpec` (or registry name) to realize.
    region_keys:
        Region order; event ``region`` indices refer to it.
    baseline:
        Per-region baseline server counts (the static ``servers_per_region``).
    horizon_s:
        Workload horizon; chaos events are drawn over ``[0, horizon_s)``
        (recovery events may land past it so pairs stay well-formed).
    seed:
        Chaos seed; independent of the trace seed so the same workload can be
        replayed under different fault schedules.
    """

    def __init__(
        self,
        spec: "str | ChaosSpec",
        region_keys: Sequence[str],
        baseline: Sequence[int] | np.ndarray,
        horizon_s: float,
        seed: int = 0,
    ) -> None:
        self.spec = get_chaos(spec)
        self.region_keys = tuple(region_keys)
        self.baseline = np.asarray(baseline, dtype=np.int64).copy()
        if len(self.baseline) != len(self.region_keys):
            raise ValueError("baseline must have one server count per region")
        self.horizon_s = ensure_non_negative(float(horizon_s), "horizon_s")
        self.seed = int(seed)
        self._build_events(self.capacity_intervals())

    # -- slab-keyed generation ----------------------------------------------------------
    def _intervals(
        self, stream: int, rate_per_day: float, duration_s: float,
        multiplier: float, slab_chunk: int | None,
    ) -> list[tuple[int, float, float, float]]:
        """``(region, start, end, multiplier)`` intervals of one Poisson stream.

        Slab ``k`` draws from ``_slab_rng((seed, tag, stream), k)`` — count
        vector first, then the start times region by region — so the output
        is a pure function of the slab index.  ``slab_chunk`` only groups the
        slab iteration (the property suite proves grouping in {1, 7, 512, ∞}
        is byte-identical, i.e. there is no hidden cross-slab state).
        """
        if rate_per_day <= 0.0:
            return []
        n_regions = len(self.region_keys)
        entropy = (self.seed, _TIMELINE_TAG, stream)
        out: list[tuple[int, float, float, float]] = []
        bounds = list(_slab_bounds(self.horizon_s))
        chunk = len(bounds) if slab_chunk is None else max(1, int(slab_chunk))
        for lo in range(0, len(bounds), chunk):
            for k, start, end in bounds[lo:lo + chunk]:
                rng = _slab_rng(entropy, k)
                counts = rng.poisson(
                    rate_per_day * (end - start) / _SECONDS_PER_DAY, size=n_regions
                )
                for region in range(n_regions):
                    if not counts[region]:
                        continue
                    starts = np.sort(rng.uniform(start, end, size=counts[region]))
                    for s in starts.tolist():
                        out.append((region, s, s + duration_s, multiplier))
        return out

    def capacity_intervals(
        self, slab_chunk: int | None = None
    ) -> list[tuple[int, float, float, float]]:
        """All capacity-degrading intervals (outages then flaps), slab order."""
        spec = self.spec
        return self._intervals(
            _OUTAGE_STREAM, spec.outage_rate_per_day, spec.outage_duration_s,
            0.0, slab_chunk,
        ) + self._intervals(
            _FLAP_STREAM, spec.flap_rate_per_day, spec.flap_duration_s,
            spec.flap_fraction, slab_chunk,
        )

    def signal_intervals(
        self, slab_chunk: int | None = None
    ) -> list[tuple[int, float, float, float]]:
        """Carbon/water spike intervals (multiplier column carries the carbon factor)."""
        spec = self.spec
        return self._intervals(
            _SPIKE_STREAM, spec.carbon_spike_rate_per_day, spec.spike_duration_s,
            spec.carbon_spike_factor, slab_chunk,
        )

    def _autoscale_factor(self, t: float) -> float:
        spec = self.spec
        if spec.autoscale_amplitude == 0.0:
            return 1.0
        step = math.floor(t / spec.autoscale_step_s) * spec.autoscale_step_s
        return 1.0 + spec.autoscale_amplitude * math.sin(
            2.0 * math.pi * step / spec.autoscale_period_s
        )

    def _build_events(self, intervals: list[tuple[int, float, float, float]]) -> None:
        """Compose intervals + autoscale into ``(when, region)``-sorted events."""
        spec = self.spec
        n_regions = len(self.region_keys)
        breakpoints: list[set[float]] = [set() for _ in range(n_regions)]
        per_region: list[list[tuple[float, float, float]]] = [[] for _ in range(n_regions)]
        for region, s, e, mult in intervals:
            breakpoints[region].add(s)
            breakpoints[region].add(e)
            per_region[region].append((s, e, mult))
        if spec.autoscale_amplitude > 0.0:
            n_steps = int(math.ceil(self.horizon_s / spec.autoscale_step_s))
            steps = [j * spec.autoscale_step_s for j in range(1, n_steps)]
            for region in range(n_regions):
                breakpoints[region].update(steps)

        records: list[tuple[float, int, int]] = []
        for region in range(n_regions):
            cap = int(self.baseline[region])
            for t in sorted(breakpoints[region]):
                mult = 1.0
                for s, e, m in per_region[region]:
                    if s <= t < e:
                        mult *= m
                scaled = self.baseline[region] * self._autoscale_factor(t) * mult
                new_cap = max(0, int(math.floor(scaled + 0.5)))
                if new_cap != cap:
                    records.append((t, region, new_cap))
                    cap = new_cap
        records.sort()
        self.event_when = np.array([r[0] for r in records], dtype=float)
        self.event_region = np.array([r[1] for r in records], dtype=np.int64)
        self.event_capacity = np.array([r[2] for r in records], dtype=np.int64)
        self.n_events = len(records)

    # -- derived views ------------------------------------------------------------------
    def degraded_seconds(self) -> np.ndarray:
        """Per-region time within ``[0, horizon_s]`` spent below baseline capacity."""
        degraded = np.zeros(len(self.region_keys))
        horizon = self.horizon_s
        prev_t = np.zeros(len(self.region_keys))
        prev_cap = self.baseline.astype(float).copy()
        for when, region, cap in zip(
            self.event_when.tolist(), self.event_region.tolist(),
            self.event_capacity.tolist(),
        ):
            if prev_cap[region] < self.baseline[region]:
                degraded[region] += max(
                    0.0, min(when, horizon) - min(prev_t[region], horizon)
                )
            prev_t[region] = when
            prev_cap[region] = cap
        below = prev_cap < self.baseline
        degraded[below] += np.maximum(0.0, horizon - np.minimum(prev_t[below], horizon))
        return degraded

    def signal_factor_arrays(
        self, n_hours: int
    ) -> tuple[dict[str, np.ndarray], dict[str, np.ndarray]]:
        """Hourly carbon/water spike multipliers per region key.

        An hour is affected when any spike interval overlaps it; overlapping
        spikes multiply.  Regions with no spike are omitted, so a run without
        spikes keeps the original dataset object (byte-identical signals).
        """
        spec = self.spec
        carbon: dict[str, np.ndarray] = {}
        water: dict[str, np.ndarray] = {}
        if spec.carbon_spike_rate_per_day <= 0.0 or n_hours <= 0:
            return carbon, water
        for region, s, e, _ in self.signal_intervals():
            key = self.region_keys[region]
            if key not in carbon:
                carbon[key] = np.ones(n_hours)
                water[key] = np.ones(n_hours)
            first = max(0, int(math.floor(s / 3600.0)))
            last = min(n_hours, int(math.ceil(e / 3600.0)))
            carbon[key][first:last] *= spec.carbon_spike_factor
            water[key][first:last] *= spec.water_spike_factor
        return carbon, water

    def forecast_factor_arrays(
        self, n_hours: int
    ) -> tuple[dict[str, np.ndarray], dict[str, np.ndarray]]:
        """Hourly forecast-noise multipliers (decision signals only).

        Hour ``h`` draws from ``_slab_rng((seed, tag, stream), h)`` — one
        ``(n_regions, 2)`` uniform block — so the noise is chunk-invariant
        like everything else on the timeline.
        """
        err = self.spec.forecast_error
        if err <= 0.0 or n_hours <= 0:
            return {}, {}
        n_regions = len(self.region_keys)
        entropy = (self.seed, _TIMELINE_TAG, _FORECAST_STREAM)
        carbon = np.ones((n_regions, n_hours))
        water = np.ones((n_regions, n_hours))
        for h in range(int(n_hours)):
            u = _slab_rng(entropy, h).uniform(-1.0, 1.0, size=(n_regions, 2))
            carbon[:, h] = 1.0 + err * u[:, 0]
            water[:, h] = 1.0 + err * u[:, 1]
        return (
            {key: carbon[i] for i, key in enumerate(self.region_keys)},
            {key: water[i] for i, key in enumerate(self.region_keys)},
        )

    def stats(self) -> dict:
        """Summary used by the engines' ``chaos_stats`` result attribute."""
        degraded = self.degraded_seconds()
        return {
            "chaos": self.spec.name,
            "eviction": self.spec.eviction,
            "capacity_events": int(self.n_events),
            "degraded_seconds": {
                key: float(degraded[i]) for i, key in enumerate(self.region_keys)
            },
        }


def apply_capacity_step(
    queue,
    t: float,
    regions: np.ndarray,
    new_caps: np.ndarray,
    *,
    evict: bool,
    capacity: np.ndarray,
    free: np.ndarray,
    committed: np.ndarray,
    busy_seconds: np.ndarray,
    queues: list,
    job_servers: np.ndarray,
    exec_real: np.ndarray,
    region_idx: np.ndarray,
    start: np.ndarray,
    finish: np.ndarray,
    assigned: np.ndarray,
    ready: np.ndarray,
    transfer: np.ndarray,
    evictions: np.ndarray,
) -> list[int]:
    """Apply one timestamp's capacity events to live engine state.

    Shared by both engines so the semantics cannot drift: the caller has
    already processed every job event at or before ``t`` (the engines segment
    their event windows at capacity breakpoints), ``regions``/``new_caps``
    are this timestamp's events in ascending region order, and ``queue`` is
    the live :class:`~repro.cluster.events.EventQueue` (pending FINISH events
    are exactly the running jobs).

    Capacity *up* admits FIFO-queued jobs immediately, in queue order, exactly
    like the kernel's finish-time admission.  Capacity *down* under
    ``evict=True`` kills running jobs newest-first — descending ``(start,
    seq)``, an order both kernels agree on within one region — until the
    region fits, and an outage (capacity 0) also requeues the FIFO queue.
    Under ``evict=False`` (drain) the region simply runs over capacity until
    finishes catch up; ``free`` goes negative, which the clean-region proof
    treats as contended.  Returns the requeued slots, in deterministic order,
    for the caller to put back in its pending set (``considered`` and
    ``deferrals`` survive; assignment state is reset and ``evictions``
    incremented).
    """
    requeued: list[int] = []
    admit_when: list[float] = []
    admit_seq: list[int] = []
    admit_slot: list[int] = []
    for region, new_cap in zip(regions.tolist(), new_caps.tolist()):
        delta = int(new_cap) - int(capacity[region])
        if delta == 0:
            continue
        capacity[region] = new_cap
        free[region] += delta
        fifo = queues[region]
        if delta > 0:
            while fifo and free[region] >= fifo[0][1]:
                slot, srv = fifo.popleft()
                free[region] -= srv
                start[slot] = t
                seq = queue.sequence
                queue.sequence = seq + 1
                admit_when.append(t + float(exec_real[slot]))
                admit_seq.append(seq)
                admit_slot.append(slot)
            continue
        if not evict:
            continue
        if free[region] < 0:
            positions = np.flatnonzero(region_idx[queue.finish_slot] == region)
            cand_slot = queue.finish_slot[positions]
            order = np.lexsort((queue.finish_seq[positions], start[cand_slot]))
            keep = np.ones(len(queue.finish_when), dtype=bool)
            pos = len(order) - 1
            while free[region] < 0 and pos >= 0:
                i = int(order[pos])
                pos -= 1
                slot = int(cand_slot[i])
                srv = int(job_servers[slot])
                free[region] += srv
                committed[region] -= srv
                busy_seconds[region] += srv * (t - float(start[slot]))
                keep[positions[i]] = False
                _reset_slot(slot, region_idx, start, finish, assigned, ready, transfer)
                evictions[slot] += 1
                requeued.append(slot)
            if not keep.all():
                queue.finish_when = queue.finish_when[keep]
                queue.finish_seq = queue.finish_seq[keep]
                queue.finish_slot = queue.finish_slot[keep]
        if new_cap == 0:
            while fifo:
                slot, srv = fifo.popleft()
                committed[region] -= srv
                _reset_slot(slot, region_idx, start, finish, assigned, ready, transfer)
                evictions[slot] += 1
                requeued.append(slot)
    if admit_slot:
        queue._push_finish_arrays(
            np.array(admit_when),
            np.array(admit_seq, dtype=np.int64),
            np.array(admit_slot, dtype=np.int64),
        )
    return requeued


def _reset_slot(
    slot: int,
    region_idx: np.ndarray,
    start: np.ndarray,
    finish: np.ndarray,
    assigned: np.ndarray,
    ready: np.ndarray,
    transfer: np.ndarray,
) -> None:
    """Return an evicted/requeued job to its pre-assignment state."""
    region_idx[slot] = -1
    start[slot] = -1.0
    finish[slot] = -1.0
    assigned[slot] = 0.0
    ready[slot] = 0.0
    transfer[slot] = 0.0
