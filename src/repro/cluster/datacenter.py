"""Per-region data-center capacity and queue model."""

from __future__ import annotations

import dataclasses
from collections import deque

from repro.traces.job import Job

__all__ = ["Datacenter", "RunningJob"]


@dataclasses.dataclass(frozen=True)
class RunningJob:
    """A job currently occupying servers in a data center."""

    job: Job
    start_time: float
    finish_time: float
    servers: int


class Datacenter:
    """A single region's data center: fixed server pool + FIFO wait queue.

    Jobs committed to this data center first wait for their transfer to
    complete (handled by the simulator), then either start immediately if
    enough servers are free or join the FIFO queue.  ``servers`` is the total
    slot count (the paper's 35 nodes per region at the default scale).
    """

    def __init__(self, region_key: str, servers: int) -> None:
        if servers < 1:
            raise ValueError(f"data center {region_key!r} needs at least one server")
        self.region_key = region_key
        self.servers = int(servers)
        self.free_servers = int(servers)
        self._running: dict[int, RunningJob] = {}
        self._queue: deque[Job] = deque()
        self.busy_server_seconds = 0.0
        self.completed_jobs = 0

    # -- capacity accounting -----------------------------------------------------------
    @property
    def running_count(self) -> int:
        return len(self._running)

    @property
    def queued_count(self) -> int:
        return len(self._queue)

    @property
    def committed_load(self) -> int:
        """Servers needed by running + queued jobs (what future rounds must respect)."""
        running = sum(entry.servers for entry in self._running.values())
        queued = sum(job.servers_required for job in self._queue)
        return running + queued

    def remaining_capacity(self) -> int:
        """Free slots not already promised to queued jobs (the paper's ``cap(n)``)."""
        return max(0, self.servers - self.committed_load)

    # -- job lifecycle -------------------------------------------------------------------
    def can_start(self, job: Job) -> bool:
        return self.free_servers >= job.servers_required and not self._queue

    def start(self, job: Job, now: float) -> RunningJob:
        """Start ``job`` immediately (caller must have checked capacity)."""
        if self.free_servers < job.servers_required:
            raise RuntimeError(
                f"data center {self.region_key!r} has {self.free_servers} free servers, "
                f"job {job.job_id} needs {job.servers_required}"
            )
        self.free_servers -= job.servers_required
        entry = RunningJob(
            job=job,
            start_time=now,
            finish_time=now + job.realized_execution_time,
            servers=job.servers_required,
        )
        self._running[job.job_id] = entry
        return entry

    def enqueue(self, job: Job) -> None:
        """Append ``job`` to the FIFO wait queue."""
        self._queue.append(job)

    def admit(self, job: Job, now: float) -> RunningJob | None:
        """Start ``job`` if possible, otherwise queue it.  Returns the running
        entry when the job started."""
        if self.can_start(job):
            return self.start(job, now)
        self.enqueue(job)
        return None

    def finish(self, job_id: int, now: float) -> list[RunningJob]:
        """Complete a running job and start as many queued jobs as now fit.

        Returns the newly started jobs (so the simulator can schedule their
        finish events).
        """
        entry = self._running.pop(job_id, None)
        if entry is None:
            raise KeyError(f"job {job_id} is not running in data center {self.region_key!r}")
        self.free_servers += entry.servers
        self.busy_server_seconds += entry.servers * (entry.finish_time - entry.start_time)
        self.completed_jobs += 1

        started: list[RunningJob] = []
        while self._queue and self.free_servers >= self._queue[0].servers_required:
            next_job = self._queue.popleft()
            started.append(self.start(next_job, now))
        return started

    def utilization(self, makespan_s: float) -> float:
        """Average server utilization over ``makespan_s`` seconds."""
        if makespan_s <= 0.0:
            return 0.0
        return self.busy_server_seconds / (self.servers * makespan_s)

    def __repr__(self) -> str:
        return (
            f"Datacenter({self.region_key!r}, servers={self.servers}, "
            f"running={self.running_count}, queued={self.queued_count})"
        )
