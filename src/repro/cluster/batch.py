"""Columnar (structure-of-arrays) containers for the batch simulation engine.

The scalar :class:`~repro.cluster.simulator.Simulator` walks one
:class:`~repro.traces.job.Job` object at a time, which is convenient but slow:
at 10k+ jobs the Python attribute access, per-job dataclass construction and
per-job footprint integration dominate the runtime.  The batch engine instead
keeps one NumPy array per job attribute and operates on whole scheduling
batches at once:

* :class:`JobArrays` — a read-only columnar view of a trace, with home
  regions resolved to integer codes against the simulated region order;
* :class:`BatchSchedulingContext` — the array-world counterpart of
  :class:`~repro.cluster.interface.SchedulingContext`, handed to vectorized
  scheduler fast paths (see :mod:`repro.schedulers.vectorized`);
* :class:`BatchResult` — per-job outcome arrays plus the same aggregate
  figures of merit as :class:`~repro.cluster.metrics.SimulationResult`,
  computed in single NumPy passes.

:class:`BatchResult` can be converted back into the object world
(:meth:`BatchResult.to_outcomes` / :meth:`BatchResult.to_simulation_result`)
when report code wants :class:`~repro.cluster.metrics.JobOutcome` objects;
the conversion is the only O(n) Python loop in the batch path and is entirely
optional.
"""

from __future__ import annotations

import dataclasses
import zlib
from collections.abc import Mapping, Sequence

import numpy as np

from repro.cluster.metrics import JobOutcome, SimulationResult
from repro.cluster.footprint import FootprintCalculator
from repro.regions.latency import TransferLatencyModel
from repro.regions.region import Region
from repro.sustainability.datasets import SustainabilityDataset
from repro.traces.trace import Trace

__all__ = [
    "DEFER",
    "JobArrays",
    "BatchSchedulingContext",
    "BatchResult",
    "resolve_fast_decision",
]

#: Region code a vectorized fast path returns to postpone a job to the next
#: round (the array-world equivalent of ``SchedulerDecision.deferred``).
DEFER = -1


def resolve_fast_decision(
    result, batch: np.ndarray, n_regions: int
) -> tuple[np.ndarray, np.ndarray]:
    """Validate a fast path's round result; returns ``(choice, commit_positions)``.

    Shared by the one-shot :class:`~repro.cluster.simulator.BatchSimulator`
    and the :class:`~repro.cluster.streaming.StreamingSimulator`, whose
    decision paths must stay operation-for-operation identical (the
    differential harness enforces digest equality between them).  ``choice``
    holds one region code per batch position (:data:`DEFER` postpones);
    ``commit_positions`` lists the assigned positions in commit order — a
    custom commit order must cover exactly the assigned positions, because
    commit order decides FIFO tie-breaking and a silently dropped or
    duplicated position would corrupt the equivalence guarantee.
    """
    if isinstance(result, tuple):
        choice, commit_order = result
    else:
        choice, commit_order = result, None
    choice = np.asarray(choice, dtype=np.int64)
    if choice.shape != batch.shape:
        raise ValueError(
            f"fast path returned {choice.shape} region codes for a batch of "
            f"{batch.shape}"
        )
    if np.any(choice < -1) or np.any(choice >= n_regions):
        raise ValueError("fast path returned region codes outside the cluster")
    assigned = np.flatnonzero(choice >= 0)
    if commit_order is None:
        commit_positions = assigned
    else:
        commit_positions = np.asarray(commit_order, dtype=np.int64)
        if not np.array_equal(np.sort(commit_positions), assigned):
            raise ValueError(
                "fast path commit order must be a permutation of the "
                "assigned batch positions"
            )
    return choice, commit_positions


@dataclasses.dataclass(frozen=True)
class JobArrays:
    """Read-only columnar view of a trace, aligned with the trace's job order.

    All arrays share the same length and position ``i`` describes
    ``trace[i]``.  Estimated values (``exec_est`` / ``energy_est``) are what
    schedulers may see; realized values (``exec_real`` / ``energy_real``) are
    what the simulator charges, exactly mirroring
    :attr:`~repro.traces.job.Job.realized_execution_time` and
    :attr:`~repro.traces.job.Job.realized_energy_kwh`.
    """

    region_keys: tuple[str, ...]
    job_id: np.ndarray
    arrival: np.ndarray
    exec_est: np.ndarray
    exec_real: np.ndarray
    energy_est: np.ndarray
    energy_real: np.ndarray
    home_idx: np.ndarray
    package_gb: np.ndarray
    servers: np.ndarray
    workloads: tuple[str, ...]

    @property
    def n(self) -> int:
        return len(self.job_id)

    @classmethod
    def from_trace(cls, trace: Trace, region_keys: Sequence[str]) -> "JobArrays":
        """Build the columnar view of ``trace`` over the simulated regions.

        Raises ``ValueError`` when a job's home region is not part of
        ``region_keys``.  The scalar engine usually fails the same way, just
        later — at the first transfer-latency or baseline lookup referencing
        the unknown region — but a cluster restricted to a subset of a
        trace's home regions (with a latency model covering the superset) is
        only supported by the scalar :class:`~repro.cluster.simulator.Simulator`;
        use :meth:`Trace.restricted_to_regions` to remap such traces for the
        batch engine.
        """
        keys = tuple(region_keys)
        columns = trace.to_columns()
        homes = np.asarray(columns["home_region"], dtype=object)
        home_idx = np.full(len(homes), -1, dtype=np.int64)
        for code, key in enumerate(keys):
            home_idx[homes == key] = code
        unknown = np.flatnonzero(home_idx < 0)
        if len(unknown):
            i = int(unknown[0])
            raise ValueError(
                f"job {columns['job_id'][i]} has home region {homes[i]!r} which is not "
                f"part of the simulated cluster ({sorted(keys)})"
            )
        return cls(
            region_keys=keys,
            job_id=columns["job_id"],
            arrival=columns["arrival_time"],
            exec_est=columns["execution_time"],
            exec_real=columns["realized_execution_time"],
            energy_est=columns["energy_kwh"],
            energy_real=columns["realized_energy_kwh"],
            home_idx=home_idx,
            package_gb=columns["package_gb"],
            servers=columns["servers_required"],
            workloads=columns["workload"],
        )


@dataclasses.dataclass(frozen=True)
class BatchSchedulingContext:
    """Array-world snapshot handed to a vectorized scheduler fast path.

    Attributes
    ----------
    now:
        Current simulation time (seconds since trace start).
    region_keys:
        Candidate regions in the simulator's stable order; region codes in
        every array index into this tuple.
    capacity:
        Remaining capacity per region (``(R,)`` int array) — free slots not
        already promised to queued jobs.
    jobs:
        Columnar view of the *whole* trace.
    batch:
        Indices (into ``jobs``) of the jobs awaiting placement this round, in
        the same order the scalar engine would present them.
    wait_times:
        Seconds each batch job has been waiting since first consideration
        (aligned with ``batch``).
    delay_tolerance / scheduling_interval_s:
        As in :class:`~repro.cluster.interface.SchedulingContext`.
    dataset / latency / footprints:
        The same model objects the scalar context carries, for fast paths
        that need intensities or transfer times.
    """

    now: float
    region_keys: tuple[str, ...]
    capacity: np.ndarray
    jobs: JobArrays
    batch: np.ndarray
    wait_times: np.ndarray
    delay_tolerance: float
    scheduling_interval_s: float
    dataset: SustainabilityDataset
    latency: TransferLatencyModel
    footprints: FootprintCalculator
    regions: tuple[Region, ...] = ()

    @property
    def batch_size(self) -> int:
        return len(self.batch)


class BatchResult:
    """Columnar result of one batch simulation.

    Per-job arrays are sorted by job id (like
    :attr:`SimulationResult.outcomes`) and aggregate properties mirror
    :class:`~repro.cluster.metrics.SimulationResult` exactly, so reports and
    savings computations accept either result type interchangeably.
    """

    #: See :attr:`repro.cluster.metrics.SimulationResult.solver_stats`.
    solver_stats: dict | None = None
    #: Chaos-timeline summary (scenario, capacity events, per-region degraded
    #: seconds, evicted-job totals); ``None`` for static-capacity runs.  See
    #: :mod:`repro.cluster.timeline`.
    chaos_stats: dict | None = None
    #: Event-kernel telemetry (resolved kernel name, per-path event counters,
    #: binding-point splits, jit compile time); ``None`` for the object-world
    #: engine.  See :class:`repro.cluster.events.KernelStats`.
    kernel_stats: dict | None = None

    def __init__(
        self,
        scheduler_name: str,
        trace_name: str,
        region_keys: Sequence[str],
        job_id: np.ndarray,
        workloads: Sequence[str],
        home_idx: np.ndarray,
        region_idx: np.ndarray,
        arrival: np.ndarray,
        considered: np.ndarray,
        assigned: np.ndarray,
        ready: np.ndarray,
        start: np.ndarray,
        finish: np.ndarray,
        execution_time: np.ndarray,
        transfer_latency: np.ndarray,
        carbon_g: np.ndarray,
        water_l: np.ndarray,
        deferrals: np.ndarray,
        region_servers: Mapping[str, int],
        region_utilization: Mapping[str, float],
        makespan_s: float,
        decision_times_s: Sequence[float],
        round_times_s: Sequence[float],
        delay_tolerance: float,
        evictions: np.ndarray | None = None,
    ) -> None:
        self.scheduler_name = scheduler_name
        self.trace_name = trace_name
        self.region_keys = tuple(region_keys)
        self.job_id = job_id
        self.workloads = tuple(workloads)
        self.home_idx = home_idx
        self.region_idx = region_idx
        self.arrival = arrival
        self.considered = considered
        self.assigned = assigned
        self.ready = ready
        self.start = start
        self.finish = finish
        self.execution_time = execution_time
        self.transfer_latency = transfer_latency
        self.carbon_g = carbon_g
        self.water_l = water_l
        self.deferrals = deferrals
        self.evictions = (
            evictions
            if evictions is not None
            else np.zeros(len(job_id), dtype=np.int64)
        )
        self.region_servers = dict(region_servers)
        self.region_utilization = dict(region_utilization)
        self.makespan_s = float(makespan_s)
        self.decision_times_s = tuple(decision_times_s)
        self.round_times_s = tuple(round_times_s)
        self.delay_tolerance = float(delay_tolerance)

    # -- derived per-job arrays ---------------------------------------------------------
    @property
    def num_jobs(self) -> int:
        return len(self.job_id)

    @property
    def executed_regions(self) -> list[str]:
        """Executed region key per job (job-id order)."""
        return [self.region_keys[idx] for idx in self.region_idx]

    @property
    def queue_delays(self) -> np.ndarray:
        return np.maximum(0.0, self.start - self.ready)

    @property
    def service_times(self) -> np.ndarray:
        """Delay-tolerance-relevant service time (from first consideration)."""
        return self.finish - self.considered

    @property
    def service_ratios(self) -> np.ndarray:
        return self.service_times / self.execution_time

    @property
    def migrated(self) -> np.ndarray:
        return self.region_idx != self.home_idx

    @property
    def violations(self) -> np.ndarray:
        limit = (1.0 + self.delay_tolerance) * self.execution_time + 1e-9
        return self.service_times > limit

    # -- totals ------------------------------------------------------------------------
    @property
    def total_evictions(self) -> int:
        """Total chaos evictions/requeues across jobs (0 without a timeline)."""
        return int(np.sum(self.evictions))

    @property
    def total_carbon_g(self) -> float:
        return float(np.sum(self.carbon_g))

    @property
    def total_carbon_kg(self) -> float:
        return self.total_carbon_g / 1000.0

    @property
    def total_water_l(self) -> float:
        return float(np.sum(self.water_l))

    @property
    def total_water_m3(self) -> float:
        return self.total_water_l / 1000.0

    # -- service time / violations -----------------------------------------------------
    @property
    def mean_service_ratio(self) -> float:
        if not self.num_jobs:
            return float("nan")
        return float(np.mean(self.service_ratios))

    @property
    def violation_fraction(self) -> float:
        if not self.num_jobs:
            return 0.0
        return float(np.mean(self.violations))

    @property
    def mean_queue_delay_s(self) -> float:
        if not self.num_jobs:
            return 0.0
        return float(np.mean(self.queue_delays))

    @property
    def mean_transfer_latency_s(self) -> float:
        if not self.num_jobs:
            return 0.0
        return float(np.mean(self.transfer_latency))

    @property
    def migration_fraction(self) -> float:
        if not self.num_jobs:
            return 0.0
        return float(np.mean(self.migrated))

    # -- distribution / utilization ----------------------------------------------------
    def jobs_per_region(self) -> dict[str, int]:
        counts = np.bincount(self.region_idx, minlength=len(self.region_keys))
        return {key: int(counts[i]) for i, key in enumerate(self.region_keys)}

    def region_distribution(self) -> dict[str, float]:
        counts = self.jobs_per_region()
        total = sum(counts.values())
        if total == 0:
            return {key: 0.0 for key in counts}
        return {key: value / total for key, value in counts.items()}

    @property
    def overall_utilization(self) -> float:
        total_servers = sum(self.region_servers.values())
        if total_servers == 0:
            return 0.0
        return (
            sum(
                self.region_utilization.get(key, 0.0) * servers
                for key, servers in self.region_servers.items()
            )
            / total_servers
        )

    # -- overhead ----------------------------------------------------------------------
    @property
    def total_decision_time_s(self) -> float:
        return float(sum(self.decision_times_s))

    @property
    def mean_decision_time_s(self) -> float:
        if not self.decision_times_s:
            return 0.0
        return self.total_decision_time_s / len(self.decision_times_s)

    def decision_overhead_fraction(self) -> float:
        if not self.num_jobs:
            return 0.0
        mean_exec = float(np.mean(self.execution_time))
        if mean_exec == 0.0:
            return 0.0
        return self.mean_decision_time_s / mean_exec

    # -- identity ----------------------------------------------------------------------
    def digest(self) -> int:
        """CRC32 over every per-job decision column (job-id order).

        Two runs that made the same scheduling decisions — same executed
        regions, start/finish/ready times, transfer latencies, deferral
        counts and footprints for every job — have equal digests.  The
        streaming engine's checkpoint/resume determinism tests compare this
        digest against the one-shot batch engine's.
        """
        crc = zlib.crc32(repr(self.region_keys).encode("utf-8"))
        for column in (
            self.job_id,
            self.home_idx,
            self.region_idx,
            self.arrival,
            self.considered,
            self.assigned,
            self.ready,
            self.start,
            self.finish,
            self.execution_time,
            self.transfer_latency,
            self.carbon_g,
            self.water_l,
            self.deferrals,
            self.evictions,
        ):
            crc = zlib.crc32(np.ascontiguousarray(column).tobytes(), crc)
        return crc

    # -- comparisons -------------------------------------------------------------------
    def carbon_savings_vs(self, baseline) -> float:
        """Percent carbon saving vs. another batch or scalar result."""
        if baseline.total_carbon_g == 0.0:
            return 0.0
        return 100.0 * (1.0 - self.total_carbon_g / baseline.total_carbon_g)

    def water_savings_vs(self, baseline) -> float:
        """Percent water saving vs. another batch or scalar result."""
        if baseline.total_water_l == 0.0:
            return 0.0
        return 100.0 * (1.0 - self.total_water_l / baseline.total_water_l)

    # -- object-world interop ----------------------------------------------------------
    def to_outcomes(self) -> list[JobOutcome]:
        """Materialize :class:`JobOutcome` objects (job-id order)."""
        outcomes = []
        for i in range(self.num_jobs):
            outcomes.append(
                JobOutcome(
                    job_id=int(self.job_id[i]),
                    workload=self.workloads[i],
                    home_region=self.region_keys[self.home_idx[i]],
                    executed_region=self.region_keys[self.region_idx[i]],
                    arrival_time=float(self.arrival[i]),
                    considered_time=float(self.considered[i]),
                    assigned_time=float(self.assigned[i]),
                    ready_time=float(self.ready[i]),
                    start_time=float(self.start[i]),
                    finish_time=float(self.finish[i]),
                    execution_time=float(self.execution_time[i]),
                    transfer_latency=float(self.transfer_latency[i]),
                    carbon_g=float(self.carbon_g[i]),
                    water_l=float(self.water_l[i]),
                    deferrals=int(self.deferrals[i]),
                    delay_tolerance=self.delay_tolerance,
                )
            )
        return outcomes

    def to_simulation_result(self) -> SimulationResult:
        """Full object-world :class:`SimulationResult` view of this result."""
        return SimulationResult(
            scheduler_name=self.scheduler_name,
            outcomes=self.to_outcomes(),
            region_servers=self.region_servers,
            region_utilization=self.region_utilization,
            makespan_s=self.makespan_s,
            decision_times_s=self.decision_times_s,
            round_times_s=self.round_times_s,
            delay_tolerance=self.delay_tolerance,
            trace_name=self.trace_name,
        )

    # -- reporting ---------------------------------------------------------------------
    def summary(self) -> dict[str, float | str | int]:
        """Flat summary dictionary, same keys as ``SimulationResult.summary``."""
        return {
            "scheduler": self.scheduler_name,
            "trace": self.trace_name,
            "jobs": self.num_jobs,
            "carbon_kg": round(self.total_carbon_kg, 3),
            "water_m3": round(self.total_water_m3, 3),
            "mean_service_ratio": round(self.mean_service_ratio, 4),
            "violation_pct": round(100.0 * self.violation_fraction, 3),
            "migration_pct": round(100.0 * self.migration_fraction, 2),
            "utilization_pct": round(100.0 * self.overall_utilization, 2),
            "mean_decision_time_s": round(self.mean_decision_time_s, 5),
            "delay_tolerance_pct": round(100.0 * self.delay_tolerance, 1),
        }

    def __repr__(self) -> str:
        return (
            f"BatchResult({self.scheduler_name!r}, jobs={self.num_jobs}, "
            f"carbon={self.total_carbon_kg:.2f} kg, water={self.total_water_m3:.2f} m3)"
        )
