"""Flat-array replay kernel, numba-compiled when numba is installed.

The reference replay in :mod:`repro.cluster.events` walks a Python heap of
tuples — correct and fast enough for occasional contention bursts, but
still ~1µs/event of interpreter overhead.  This module re-expresses the
*identical* algorithm over flat NumPy arrays: an index heap ordered by
``(when, kind, seq)``, linked-list FIFO queues (head/tail/next arrays) and
preallocated output buffers, so the whole loop compiles under numba
``@njit`` into branchy scalar machine code with no allocation.

numba is strictly optional (``extras_require["compiled"]`` in ``setup.py``)
and is **not** imported at module import time — :func:`available` probes
``importlib.util.find_spec`` so a vector-kernel run never pays the numba
import.  When numba is missing the same function body runs as plain
Python: byte-identical results (the differential harness runs the
three-way scalar/vector/compiled matrix with and without numba), just not
fast — ``kernel="auto"`` therefore resolves to ``"vector"`` unless numba
is importable, while an explicit ``kernel="compiled"`` always routes the
residue through this module so the flat kernel is exercised everywhere.

Compilation is lazy: the first window that reaches the kernel triggers the
jit (a few seconds, once per process — ``cache=True`` persists it across
processes) and the wall time spent is surfaced as
``KernelStats.compile_time_s``.
"""

from __future__ import annotations

import importlib.util
import time

import numpy as np

__all__ = ["available", "replay_window"]

_KIND_FINISH = 0
_KIND_READY = 1


def available() -> bool:
    """True when numba is importable (without importing it)."""
    return importlib.util.find_spec("numba") is not None


def _replay_flat(
    limit, sequence,
    r_when, r_seq, r_slot, r_reg, r_srv,
    f_when, f_seq, f_slot, f_reg, f_srv, f_began,
    q_count, q_slot, q_srv,
    exec_real, start, finish,
    free, committed, busy_seconds,
    fin_when, fin_seq, fin_reg, fin_slot,
    over_when, over_seq, over_slot,
    out_q_slot, out_q_srv, out_q_count,
):
    """The replay loop over preallocated flat arrays (nopython-compatible).

    Semantics are operation-for-operation the reference ``_replay``:
    events pop in ``(when, finishes-first, seq)`` order, a READY starts
    immediately when capacity allows and the FIFO queue is empty (else it
    queues), a FINISH frees capacity and admits queued jobs FIFO, starts
    assign sequence numbers from the shared counter, finishes past
    ``limit`` land in the overflow buffers.  Returns
    ``(n_fin, n_over, sequence, makespan)``.
    """
    n_regions = q_count.shape[0]
    nr = r_when.shape[0]
    nf = f_when.shape[0]
    nq = q_slot.shape[0]
    cap = nf + 2 * nr + nq

    e_when = np.empty(cap, dtype=np.float64)
    e_kind = np.empty(cap, dtype=np.int64)
    e_seq = np.empty(cap, dtype=np.int64)
    e_slot = np.empty(cap, dtype=np.int64)
    e_reg = np.empty(cap, dtype=np.int64)
    e_srv = np.empty(cap, dtype=np.int64)
    e_began = np.empty(cap, dtype=np.float64)
    for i in range(nf):
        e_when[i] = f_when[i]
        e_kind[i] = _KIND_FINISH
        e_seq[i] = f_seq[i]
        e_slot[i] = f_slot[i]
        e_reg[i] = f_reg[i]
        e_srv[i] = f_srv[i]
        e_began[i] = f_began[i]
    for i in range(nr):
        j = nf + i
        e_when[j] = r_when[i]
        e_kind[j] = _KIND_READY
        e_seq[j] = r_seq[i]
        e_slot[j] = r_slot[i]
        e_reg[j] = r_reg[i]
        e_srv[j] = r_srv[i]
        e_began[j] = 0.0
    n_entries = nf + nr

    # Index heap ordered by (when, kind, seq).
    heap = np.empty(cap, dtype=np.int64)
    heap_n = 0
    for i in range(n_entries):
        # sift up
        pos = heap_n
        heap_n += 1
        heap[pos] = i
        while pos > 0:
            parent = (pos - 1) >> 1
            a = heap[pos]
            b = heap[parent]
            if (
                e_when[a] < e_when[b]
                or (
                    e_when[a] == e_when[b]
                    and (
                        e_kind[a] < e_kind[b]
                        or (e_kind[a] == e_kind[b] and e_seq[a] < e_seq[b])
                    )
                )
            ):
                heap[pos] = b
                heap[parent] = a
                pos = parent
            else:
                break

    # Linked-list FIFO queues: node pool, per-region head/tail.
    node_cap = nq + nr + 1
    node_slot = np.empty(node_cap, dtype=np.int64)
    node_srv = np.empty(node_cap, dtype=np.int64)
    node_next = np.full(node_cap, -1, dtype=np.int64)
    q_head = np.full(n_regions, -1, dtype=np.int64)
    q_tail = np.full(n_regions, -1, dtype=np.int64)
    n_nodes = 0
    pos0 = 0
    for region in range(n_regions):
        for k in range(q_count[region]):
            node_slot[n_nodes] = q_slot[pos0 + k]
            node_srv[n_nodes] = q_srv[pos0 + k]
            if q_head[region] == -1:
                q_head[region] = n_nodes
            else:
                node_next[q_tail[region]] = n_nodes
            q_tail[region] = n_nodes
            n_nodes += 1
        pos0 += q_count[region]

    n_fin = 0
    n_over = 0
    makespan = -np.inf

    while heap_n > 0:
        top = heap[0]
        heap_n -= 1
        if heap_n > 0:
            # sift down the former last element
            moved = heap[heap_n]
            pos = 0
            while True:
                child = 2 * pos + 1
                if child >= heap_n:
                    break
                right = child + 1
                if right < heap_n:
                    a = heap[right]
                    b = heap[child]
                    if (
                        e_when[a] < e_when[b]
                        or (
                            e_when[a] == e_when[b]
                            and (
                                e_kind[a] < e_kind[b]
                                or (
                                    e_kind[a] == e_kind[b]
                                    and e_seq[a] < e_seq[b]
                                )
                            )
                        )
                    ):
                        child = right
                a = heap[child]
                if (
                    e_when[a] < e_when[moved]
                    or (
                        e_when[a] == e_when[moved]
                        and (
                            e_kind[a] < e_kind[moved]
                            or (
                                e_kind[a] == e_kind[moved]
                                and e_seq[a] < e_seq[moved]
                            )
                        )
                    )
                ):
                    heap[pos] = a
                    pos = child
                else:
                    break
            heap[pos] = moved

        when = e_when[top]
        kind = e_kind[top]
        seq = e_seq[top]
        slot = e_slot[top]
        region = e_reg[top]
        srv = e_srv[top]

        if kind == _KIND_READY:
            committed[region] += srv
            if free[region] >= srv and q_head[region] == -1:
                # start immediately
                free[region] -= srv
                start[slot] = when
                finish_at = when + exec_real[slot]
                new_seq = sequence
                sequence += 1
                if finish_at <= limit:
                    j = n_entries
                    n_entries += 1
                    e_when[j] = finish_at
                    e_kind[j] = _KIND_FINISH
                    e_seq[j] = new_seq
                    e_slot[j] = slot
                    e_reg[j] = region
                    e_srv[j] = srv
                    e_began[j] = when
                    pos = heap_n
                    heap_n += 1
                    heap[pos] = j
                    while pos > 0:
                        parent = (pos - 1) >> 1
                        a = heap[pos]
                        b = heap[parent]
                        if (
                            e_when[a] < e_when[b]
                            or (
                                e_when[a] == e_when[b]
                                and (
                                    e_kind[a] < e_kind[b]
                                    or (
                                        e_kind[a] == e_kind[b]
                                        and e_seq[a] < e_seq[b]
                                    )
                                )
                            )
                        ):
                            heap[pos] = b
                            heap[parent] = a
                            pos = parent
                        else:
                            break
                else:
                    over_when[n_over] = finish_at
                    over_seq[n_over] = new_seq
                    over_slot[n_over] = slot
                    n_over += 1
            else:
                node_slot[n_nodes] = slot
                node_srv[n_nodes] = srv
                node_next[n_nodes] = -1
                if q_head[region] == -1:
                    q_head[region] = n_nodes
                else:
                    node_next[q_tail[region]] = n_nodes
                q_tail[region] = n_nodes
                n_nodes += 1
        else:  # FINISH
            free[region] += srv
            committed[region] -= srv
            busy_seconds[region] += srv * (when - e_began[top])
            finish[slot] = when
            if when > makespan:
                makespan = when
            fin_when[n_fin] = when
            fin_seq[n_fin] = seq
            fin_reg[n_fin] = region
            fin_slot[n_fin] = slot
            n_fin += 1
            # FIFO admission
            while q_head[region] != -1 and free[region] >= node_srv[q_head[region]]:
                node = q_head[region]
                q_head[region] = node_next[node]
                if q_head[region] == -1:
                    q_tail[region] = -1
                q_slot_admit = node_slot[node]
                q_srv_admit = node_srv[node]
                free[region] -= q_srv_admit
                start[q_slot_admit] = when
                finish_at = when + exec_real[q_slot_admit]
                new_seq = sequence
                sequence += 1
                if finish_at <= limit:
                    j = n_entries
                    n_entries += 1
                    e_when[j] = finish_at
                    e_kind[j] = _KIND_FINISH
                    e_seq[j] = new_seq
                    e_slot[j] = q_slot_admit
                    e_reg[j] = region
                    e_srv[j] = q_srv_admit
                    e_began[j] = when
                    pos = heap_n
                    heap_n += 1
                    heap[pos] = j
                    while pos > 0:
                        parent = (pos - 1) >> 1
                        a = heap[pos]
                        b = heap[parent]
                        if (
                            e_when[a] < e_when[b]
                            or (
                                e_when[a] == e_when[b]
                                and (
                                    e_kind[a] < e_kind[b]
                                    or (
                                        e_kind[a] == e_kind[b]
                                        and e_seq[a] < e_seq[b]
                                    )
                                )
                            )
                        ):
                            heap[pos] = b
                            heap[parent] = a
                            pos = parent
                        else:
                            break
                else:
                    over_when[n_over] = finish_at
                    over_seq[n_over] = new_seq
                    over_slot[n_over] = q_slot_admit
                    n_over += 1

    # Flush surviving FIFO queues back out, region-major in FIFO order.
    out_n = 0
    for region in range(n_regions):
        cnt = 0
        node = q_head[region]
        while node != -1:
            out_q_slot[out_n] = node_slot[node]
            out_q_srv[out_n] = node_srv[node]
            out_n += 1
            cnt += 1
            node = node_next[node]
        out_q_count[region] = cnt

    return n_fin, n_over, sequence, makespan


_jit_fn = None
_compile_time = 0.0
_warm = False


def _get_kernel():
    """Resolve the kernel callable: jitted when numba imports, plain else."""
    global _jit_fn
    if _jit_fn is None:
        if available():
            import numba

            _jit_fn = numba.njit(cache=True)(_replay_flat)
        else:
            _jit_fn = _replay_flat
    return _jit_fn


def compile_seconds() -> float:
    """Wall seconds the lazy jit compile took in this process (0.0 if none)."""
    return _compile_time


def _col(a: np.ndarray, dtype) -> np.ndarray:
    return a if a.dtype == dtype else a.astype(dtype)


def replay_window(
    queue,
    limit: float,
    r_when: np.ndarray,
    r_seq: np.ndarray,
    r_slot: np.ndarray,
    r_reg: np.ndarray,
    f_when: np.ndarray,
    f_seq: np.ndarray,
    f_slot: np.ndarray,
    f_reg: np.ndarray,
    *,
    servers: np.ndarray,
    exec_real: np.ndarray,
    start: np.ndarray,
    finish: np.ndarray,
    free: np.ndarray,
    committed: np.ndarray,
    busy_seconds: np.ndarray,
    queues: list,
    rec: list | None,
    stats=None,
) -> float:
    """Replay a window residue through the flat kernel; returns the makespan.

    Mirrors the reference ``_replay`` contract: mutates the job columns and
    per-region counters in place, rebuilds the deque FIFO queues, pushes
    overflow finishes back onto ``queue`` and appends the finish records
    (``when, region, seq, slot`` arrays) to ``rec``.
    """
    global _compile_time, _warm
    n_regions = len(free)
    q_count = np.array([len(q) for q in queues], dtype=np.int64)
    nq = int(q_count.sum())
    if nq:
        q_slot_in = np.fromiter(
            (slot for q in queues for slot, _srv in q), dtype=np.int64, count=nq
        )
        q_srv_in = np.fromiter(
            (srv for q in queues for _slot, srv in q), dtype=np.int64, count=nq
        )
    else:
        q_slot_in = np.zeros(0, dtype=np.int64)
        q_srv_in = np.zeros(0, dtype=np.int64)

    nr = len(r_when)
    nf = len(f_when)
    fin_cap = nf + nr + nq
    over_cap = nr + nq + 1
    fin_when = np.empty(fin_cap, dtype=np.float64)
    fin_seq = np.empty(fin_cap, dtype=np.int64)
    fin_reg = np.empty(fin_cap, dtype=np.int64)
    fin_slot = np.empty(fin_cap, dtype=np.int64)
    over_when = np.empty(over_cap, dtype=np.float64)
    over_seq = np.empty(over_cap, dtype=np.int64)
    over_slot = np.empty(over_cap, dtype=np.int64)
    out_q_slot = np.empty(nq + nr + 1, dtype=np.int64)
    out_q_srv = np.empty(nq + nr + 1, dtype=np.int64)
    out_q_count = np.zeros(n_regions, dtype=np.int64)

    exec64 = _col(exec_real, np.float64)
    start64 = _col(start, np.float64)
    finish64 = _col(finish, np.float64)
    free64 = _col(free, np.int64)
    committed64 = _col(committed, np.int64)
    busy64 = _col(busy_seconds, np.float64)

    fn = _get_kernel()
    t0 = time.perf_counter() if not _warm else 0.0
    n_fin, n_over, new_sequence, makespan = fn(
        float(limit), int(queue.sequence),
        _col(r_when, np.float64), _col(r_seq, np.int64),
        _col(r_slot, np.int64), _col(r_reg, np.int64),
        _col(servers[r_slot], np.int64),
        _col(f_when, np.float64), _col(f_seq, np.int64),
        _col(f_slot, np.int64), _col(f_reg, np.int64),
        _col(servers[f_slot], np.int64), _col(start64[f_slot], np.float64),
        q_count, q_slot_in, q_srv_in,
        exec64, start64, finish64,
        free64, committed64, busy64,
        fin_when, fin_seq, fin_reg, fin_slot,
        over_when, over_seq, over_slot,
        out_q_slot, out_q_srv, out_q_count,
    )
    if not _warm:
        _warm = True
        if available():
            _compile_time = time.perf_counter() - t0
            if stats is not None:
                stats.compile_time_s += _compile_time
    if stats is not None:
        stats.compiled_active = available()

    # Write back any dtype-coerced copies (engines allocate the canonical
    # dtypes, so these are no-ops in practice).
    if start64 is not start:
        start[:] = start64
    if finish64 is not finish:
        finish[:] = finish64
    if free64 is not free:
        free[:] = free64
    if committed64 is not committed:
        committed[:] = committed64
    if busy64 is not busy_seconds:
        busy_seconds[:] = busy64

    queue.sequence = int(new_sequence)
    if n_over:
        queue._push_finish_arrays(
            over_when[:n_over].copy(), over_seq[:n_over].copy(),
            over_slot[:n_over].copy(),
        )
    if rec is not None and n_fin:
        rec.append((
            fin_when[:n_fin].copy(), fin_reg[:n_fin].copy(),
            fin_seq[:n_fin].copy(), fin_slot[:n_fin].copy(),
        ))

    pos = 0
    for region in range(n_regions):
        q = queues[region]
        q.clear()
        cnt = int(out_q_count[region])
        for k in range(pos, pos + cnt):
            q.append((int(out_q_slot[k]), int(out_q_srv[k])))
        pos += cnt
    return float(makespan)
