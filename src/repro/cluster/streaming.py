"""Streaming horizon engine: bounded-memory, checkpointable batch simulation.

:class:`~repro.cluster.simulator.BatchSimulator` materializes the whole trace
up front — ``JobArrays`` and ``BatchResult`` both allocate O(n_jobs) columns —
so one-shot runs are memory-bound near tens of thousands of jobs.
:class:`StreamingSimulator` runs the *same* discrete-event simulation against
a chunked :class:`~repro.traces.stream.TraceSource`, holding only

* the current chunk of not-yet-arrived jobs,
* the in-flight jobs (pending, queued or executing), and
* O(1) carry-over accumulators for metrics and footprints,

in a slot-recycling job pool: memory is O(chunk + active jobs) instead of
O(trace).  The engine is split into the resumable triple
:meth:`~StreamingSimulator.init_state` / :meth:`~StreamingSimulator.advance`
/ :meth:`~StreamingSimulator.finalize` around an explicit, picklable
:class:`EngineState` (event heap, queues, free/committed servers, in-flight
executions, accumulators), so a run can be checkpointed to disk at any chunk
boundary and resumed later — bit-identically, which the differential harness
enforces for every registered scheduler.

Decision equivalence with the one-shot engine rests on one safety rule: a
scheduling round at time *T* only runs once every arrival ≤ *T* has been
ingested.  Chunks are time-ordered, so after ingesting a chunk whose last
arrival is the *watermark* ``A``, every round with ``T < A`` is safe; rounds
at or beyond the watermark wait for the next chunk (or :meth:`finalize`).
Everything else — round cadence, batch order, commit order, event
tie-breaking — replicates :class:`BatchSimulator` operation for operation,
and the scheduler object itself (decision-controller history, slack manager,
solver-session warm bases) simply persists across chunk boundaries.

Results come in two shapes, chosen with ``collect``:

* ``"full"`` (default) — per-job columns are retained and :meth:`finalize`
  returns a regular :class:`~repro.cluster.batch.BatchResult`, byte-identical
  (``BatchResult.digest``) to the one-shot engine's.  Memory is O(trace) for
  the *result* only; the simulation state stays bounded.
* ``"aggregate"`` — finished jobs fold into
  :class:`~repro.cluster.metrics.RunningJobStats` (totals, means, streaming
  histogram quantiles, seeded reservoir sample) and
  :class:`~repro.cluster.footprint.RunningFootprintTotals`; :meth:`finalize`
  returns a :class:`StreamResult` and memory stays bounded end to end.
"""

from __future__ import annotations

import contextlib
import dataclasses
import math
import os
import pickle
import time as _time
import zlib
from collections import deque
from pathlib import Path

import numpy as np

from repro.cluster.batch import (
    BatchResult,
    BatchSchedulingContext,
    JobArrays,
    resolve_fast_decision,
)
from repro.cluster.events import EventQueue, KernelStats, process_until
from repro.cluster.footprint import RunningFootprintTotals
from repro.cluster.interface import SchedulingContext
from repro.cluster.metrics import RunningJobStats
from repro.cluster.simulator import _SimulatorBase
from repro.cluster.timeline import apply_capacity_step
from repro.regions.latency import TransferLatencyModel
from repro.traces.job import Job
from repro.traces.stream import JobChunk

__all__ = [
    "AdmissionDecisions",
    "EngineState",
    "StreamResult",
    "StreamingSimulator",
    "CHECKPOINT_FORMAT",
    "atomic_pickle_dump",
]


def atomic_pickle_dump(path, payload) -> None:
    """Pickle ``payload`` to ``path`` atomically (tmp + fsync + rename).

    Serialize first, write to a sibling temp file, then ``os.replace()`` over
    the target.  A crash mid-write (or a full disk) leaves the previous file
    intact instead of a truncated, unloadable pickle — the whole point of
    checkpointing long runs.  Shared by engine checkpoints and the shard
    fabric's spill files.
    """
    target = Path(path)
    blob = pickle.dumps(payload)
    tmp = target.with_name(f".{target.name}.tmp-{os.getpid()}")
    try:
        with open(tmp, "wb") as sink:
            sink.write(blob)
            sink.flush()
            os.fsync(sink.fileno())
        os.replace(tmp, target)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise

#: Version tag of the checkpoint payload; bumped on incompatible layout
#: changes so stale checkpoints fail loudly instead of resuming garbage.
#: Format 2: the event heap became the sorted-array
#: :class:`~repro.cluster.events.EventQueue`, the waiting queue became
#: slot/arrival arrays, and FIFO queue entries became
#: ``(slot, servers_required)`` pairs.
#: Format 3 (chaos & elasticity): :class:`EngineState` carries the mutable
#: per-region ``capacity`` array and the chaos-timeline cursor
#: ``timeline_pos``, the job pool grew an ``evictions`` state column, and
#: the checkpoint config records ``chaos``/``chaos_seed`` so a resume
#: rebuilds the identical :class:`~repro.cluster.timeline.ClusterTimeline`.
#: Format 4 (kernel tiers): :class:`EngineState` carries the cumulative
#: :class:`~repro.cluster.events.KernelStats` telemetry so a resumed run
#: keeps counting, and the ``kernel`` config value may name any of the four
#: tiers (``auto``/``vector``/``scalar``/``compiled``) — resume may switch
#: kernels freely, digests are tier-invariant.
CHECKPOINT_FORMAT = 4

#: Per-job *data* columns of the slot pool (written once at ingest).
_DATA_COLUMNS = (
    ("job_id", np.int64),
    ("arrival", float),
    ("exec_est", float),
    ("exec_real", float),
    ("energy_est", float),
    ("energy_real", float),
    ("home", np.int64),
    ("package", float),
    ("servers", np.int64),
    ("workload", np.int64),
)

#: Per-job *state* columns (mutated as the job progresses).
_STATE_COLUMNS = (
    ("considered", float),
    ("assigned", float),
    ("ready", float),
    ("start", float),
    ("finish", float),
    ("transfer", float),
    ("region", np.int64),
    ("deferrals", np.int64),
    ("evictions", np.int64),
)


@dataclasses.dataclass
class EngineState:
    """Everything the simulation carries across chunk boundaries.

    The job pool is a set of slot-indexed columns; a slot is occupied from
    ingest until the job finishes *and* its outcome has been flushed into the
    result collector, then recycled.  All contents are plain
    dicts/lists/deques/NumPy arrays, so the state pickles — that is the
    checkpoint format.
    """

    region_keys: tuple[str, ...]
    pool: dict[str, np.ndarray]
    free_slots: list[int]
    #: Ingested-but-not-yet-considered slots, arrival-sorted; ``waiting_head``
    #: is the first live index (the prefix is already consumed).
    waiting_slots: np.ndarray
    waiting_arrival: np.ndarray
    waiting_head: int
    pending: dict[int, None]
    events: EventQueue
    #: Per-region FIFO queues of ``(slot, servers_required)`` pairs — the
    #: server demand rides along so the event kernel's admission checks stay
    #: on plain Python ints (see ``events._replay``).
    queues: list[deque[tuple[int, int]]]
    free: np.ndarray
    committed: np.ndarray
    busy_server_seconds: np.ndarray
    finished: list[int]
    workload_names: list[str]
    collector: object
    makespan: float = 0.0
    round_time: float = 0.0
    rounds: int = 0
    watermark: float = 0.0
    jobs_seen: int = 0
    chunks_seen: int = 0
    decision_times: list[float] = dataclasses.field(default_factory=list)
    round_times: list[float] = dataclasses.field(default_factory=list)
    #: Current per-region capacity (baseline until a chaos timeline mutates
    #: it) and the timeline cursor — both part of the checkpoint (format 3).
    capacity: np.ndarray | None = None
    timeline_pos: int = 0
    #: Cumulative event-kernel telemetry (format 4): plain dataclass of
    #: counters, pickled with the state so a resumed run keeps counting.
    kernel_stats: KernelStats = dataclasses.field(default_factory=KernelStats)

    @property
    def pool_capacity(self) -> int:
        return len(self.pool["job_id"])

    @property
    def waiting_count(self) -> int:
        return len(self.waiting_slots) - self.waiting_head

    @property
    def active_jobs(self) -> int:
        """Occupied pool slots (waiting + pending + in flight + unflushed)."""
        return self.pool_capacity - len(self.free_slots)

    def allocate(self, count: int) -> np.ndarray:
        """Claim ``count`` slots, growing the pool geometrically if needed."""
        shortfall = count - len(self.free_slots)
        if shortfall > 0:
            capacity = self.pool_capacity
            grow = max(shortfall, capacity, 64)
            for (name, dtype) in (*_DATA_COLUMNS, *_STATE_COLUMNS):
                column = self.pool[name]
                extension = np.zeros(grow, dtype=column.dtype)
                self.pool[name] = np.concatenate([column, extension])
            self.free_slots.extend(range(capacity + grow - 1, capacity - 1, -1))
        return np.array([self.free_slots.pop() for _ in range(count)], dtype=np.int64)


@dataclasses.dataclass(frozen=True)
class AdmissionDecisions:
    """Placement decisions drained from one :meth:`StreamingSimulator.admit` call.

    Columns are parallel arrays: job ``job_id[i]`` was placed on region
    ``region_keys[region_idx[i]]`` by the scheduling round at simulation time
    ``decided_at[i]``.  Jobs admitted but not yet decided (deferred, or
    waiting for the watermark to pass their round) simply appear in a later
    drain — the admission API never drops a decision.
    """

    region_keys: tuple[str, ...]
    job_id: np.ndarray
    region_idx: np.ndarray
    decided_at: np.ndarray

    def __len__(self) -> int:
        return len(self.job_id)

    def items(self):
        """Iterate ``(job_id, region_key, decided_at)`` triples."""
        keys = self.region_keys
        for i in range(len(self.job_id)):
            yield int(self.job_id[i]), keys[self.region_idx[i]], float(self.decided_at[i])


class _WorkloadView:
    """Lazy slot → workload-name sequence for :class:`JobArrays`.

    Fast paths never read ``JobArrays.workloads``; materializing a pool-sized
    tuple of strings every round would be pure overhead, so the view resolves
    codes on demand.
    """

    def __init__(self, codes: np.ndarray, names: list[str]) -> None:
        self._codes = codes
        self._names = names

    def __len__(self) -> int:
        return len(self._codes)

    def __getitem__(self, index):
        return self._names[self._codes[index]]


class _FullCollector:
    """Retain finished-job columns and finalize into a :class:`BatchResult`."""

    kind = "full"

    def __init__(self) -> None:
        self._parts: list[dict[str, np.ndarray]] = []

    def add(self, rows: dict[str, np.ndarray]) -> None:
        self._parts.append(rows)

    def finalize(self, engine: "StreamingSimulator", state: EngineState) -> BatchResult:
        if self._parts:
            merged = {
                key: np.concatenate([part[key] for part in self._parts])
                for key in self._parts[0]
            }
        else:
            int_keys = ("job_id", "home", "region", "workload", "deferrals", "evictions")
            merged = {
                key: np.zeros(0, dtype=np.int64 if key in int_keys else float)
                for key in ("job_id", "arrival", "considered", "assigned", "ready",
                            "start", "finish", "exec_real", "transfer", "carbon",
                            "water", "deferrals", "evictions", "home", "region",
                            "workload")
            }
        order = np.argsort(merged["job_id"], kind="stable")
        names = state.workload_names
        result = BatchResult(
            scheduler_name=engine.scheduler.name,
            trace_name=engine.trace_name,
            region_keys=state.region_keys,
            job_id=merged["job_id"][order],
            workloads=[names[code] for code in merged["workload"][order]],
            home_idx=merged["home"][order],
            region_idx=merged["region"][order],
            arrival=merged["arrival"][order],
            considered=merged["considered"][order],
            assigned=merged["assigned"][order],
            ready=merged["ready"][order],
            start=merged["start"][order],
            finish=merged["finish"][order],
            execution_time=merged["exec_real"][order],
            transfer_latency=merged["transfer"][order],
            carbon_g=merged["carbon"][order],
            water_l=merged["water"][order],
            deferrals=merged["deferrals"][order],
            evictions=merged["evictions"][order],
            region_servers=engine.servers_by_region(),
            region_utilization=engine.region_utilization(state),
            makespan_s=state.makespan,
            decision_times_s=state.decision_times,
            round_times_s=state.round_times,
            delay_tolerance=engine.delay_tolerance,
        )
        return result


class _AggregateCollector:
    """Fold finished jobs into O(1) carry-over accumulators."""

    kind = "aggregate"

    def __init__(
        self,
        n_regions: int,
        delay_tolerance: float,
        reservoir_size: int,
        seed: int,
    ) -> None:
        self.stats = RunningJobStats(
            n_regions,
            delay_tolerance,
            reservoir_size=reservoir_size,
            seed=seed,
        )
        self.footprints = RunningFootprintTotals(n_regions)

    def add(self, rows: dict[str, np.ndarray]) -> None:
        self.stats.add(
            region_idx=rows["region"],
            home_idx=rows["home"],
            considered=rows["considered"],
            ready=rows["ready"],
            start=rows["start"],
            finish=rows["finish"],
            execution_time=rows["exec_real"],
            transfer_latency=rows["transfer"],
            carbon_g=rows["carbon"],
            water_l=rows["water"],
            job_id=rows["job_id"],
            evictions=rows["evictions"],
        )
        self.footprints.add(rows["region"], rows["carbon"], rows["water"])

    def finalize(self, engine: "StreamingSimulator", state: EngineState) -> "StreamResult":
        return StreamResult(
            scheduler_name=engine.scheduler.name,
            trace_name=engine.trace_name,
            region_keys=state.region_keys,
            stats=self.stats,
            footprint_totals=self.footprints,
            region_servers=engine.servers_by_region(),
            region_utilization=engine.region_utilization(state),
            makespan_s=state.makespan,
            decision_times_s=state.decision_times,
            round_times_s=state.round_times,
            delay_tolerance=engine.delay_tolerance,
        )


class StreamResult:
    """Aggregate-only result of a streaming run (no per-job columns).

    Exposes the same figures of merit — and the same :meth:`summary` keys —
    as :class:`~repro.cluster.batch.BatchResult`, so reports and savings
    tables accept either result type, plus the streaming extras: streaming service
    -ratio quantiles and the seeded reservoir sample of per-job rows.
    """

    #: See :attr:`repro.cluster.metrics.SimulationResult.solver_stats`.
    solver_stats: dict | None = None
    #: See :attr:`repro.cluster.batch.BatchResult.chaos_stats`.
    chaos_stats: dict | None = None

    def __init__(
        self,
        scheduler_name: str,
        trace_name: str,
        region_keys: tuple[str, ...],
        stats: RunningJobStats,
        footprint_totals: RunningFootprintTotals,
        region_servers: dict[str, int],
        region_utilization: dict[str, float],
        makespan_s: float,
        decision_times_s: list[float],
        round_times_s: list[float],
        delay_tolerance: float,
    ) -> None:
        self.scheduler_name = scheduler_name
        self.trace_name = trace_name
        self.region_keys = tuple(region_keys)
        self.stats = stats
        self.footprint_totals = footprint_totals
        self.region_servers = dict(region_servers)
        self.region_utilization = dict(region_utilization)
        self.makespan_s = float(makespan_s)
        self.decision_times_s = tuple(decision_times_s)
        self.round_times_s = tuple(round_times_s)
        self.delay_tolerance = float(delay_tolerance)

    # -- totals ------------------------------------------------------------------------
    @property
    def num_jobs(self) -> int:
        return self.stats.num_jobs

    @property
    def total_evictions(self) -> int:
        """Total chaos evictions/requeues across jobs (0 without a timeline)."""
        return int(self.stats.evictions)

    @property
    def total_carbon_g(self) -> float:
        return self.footprint_totals.total_carbon_g

    @property
    def total_carbon_kg(self) -> float:
        return self.total_carbon_g / 1000.0

    @property
    def total_water_l(self) -> float:
        return self.footprint_totals.total_water_l

    @property
    def total_water_m3(self) -> float:
        return self.total_water_l / 1000.0

    # -- service time / distribution -----------------------------------------------------
    @property
    def mean_service_ratio(self) -> float:
        return self.stats.mean_service_ratio

    @property
    def violation_fraction(self) -> float:
        return self.stats.violation_fraction

    @property
    def migration_fraction(self) -> float:
        return self.stats.migration_fraction

    @property
    def mean_queue_delay_s(self) -> float:
        return self.stats.mean_queue_delay_s

    @property
    def mean_transfer_latency_s(self) -> float:
        return self.stats.mean_transfer_latency_s

    def service_ratio_quantiles(self) -> dict[float, float]:
        """Streaming histogram estimates, keyed by quantile (0.5/0.95/0.99)."""
        return self.stats.service_ratio_quantiles()

    def reservoir_rows(self) -> dict[str, np.ndarray]:
        """The seeded uniform per-job sample (empty dict when disabled)."""
        if self.stats.reservoir is None:
            return {}
        return self.stats.reservoir.rows()

    def jobs_per_region(self) -> dict[str, int]:
        counts = self.stats.jobs_per_region
        return {key: int(counts[i]) for i, key in enumerate(self.region_keys)}

    def region_distribution(self) -> dict[str, float]:
        counts = self.jobs_per_region()
        total = sum(counts.values())
        if total == 0:
            return {key: 0.0 for key in counts}
        return {key: value / total for key, value in counts.items()}

    @property
    def overall_utilization(self) -> float:
        total_servers = sum(self.region_servers.values())
        if total_servers == 0:
            return 0.0
        return (
            sum(
                self.region_utilization.get(key, 0.0) * servers
                for key, servers in self.region_servers.items()
            )
            / total_servers
        )

    # -- overhead ----------------------------------------------------------------------
    @property
    def total_decision_time_s(self) -> float:
        return float(sum(self.decision_times_s))

    @property
    def mean_decision_time_s(self) -> float:
        if not self.decision_times_s:
            return 0.0
        return self.total_decision_time_s / len(self.decision_times_s)

    def decision_overhead_fraction(self) -> float:
        mean_exec = self.stats.mean_execution_time_s
        if mean_exec == 0.0:
            return 0.0
        return self.mean_decision_time_s / mean_exec

    # -- comparisons -------------------------------------------------------------------
    def carbon_savings_vs(self, baseline) -> float:
        if baseline.total_carbon_g == 0.0:
            return 0.0
        return 100.0 * (1.0 - self.total_carbon_g / baseline.total_carbon_g)

    def water_savings_vs(self, baseline) -> float:
        if baseline.total_water_l == 0.0:
            return 0.0
        return 100.0 * (1.0 - self.total_water_l / baseline.total_water_l)

    # -- verification ------------------------------------------------------------------
    def digest(self) -> int:
        """CRC32 over the decision-relevant aggregates.

        The aggregate-mode counterpart of ``BatchResult.digest``: covers the
        exact totals, counters, per-region distributions, utilization,
        makespan and quantile estimates, and excludes wall-clock measurements
        (decision/round times) and the reservoir sample.  Because the
        accumulators are exact and order-independent, the digest is invariant
        to chunk size, kernel tier, *and any sharded partition of the job
        stream* merged through the fabric — the distributed differential gate
        asserts equality against the single-box fused run.
        """
        stats = self.stats
        quantiles = stats.quantiles
        crc = zlib.crc32(repr(self.region_keys).encode())
        crc = zlib.crc32(repr(sorted(self.region_servers.items())).encode(), crc)
        counters = np.array(
            [
                stats.num_jobs,
                stats.violations,
                stats.migrated,
                stats.evictions,
                quantiles.count,
            ],
            dtype=np.int64,
        )
        crc = zlib.crc32(counters.tobytes(), crc)
        crc = zlib.crc32(
            np.ascontiguousarray(stats.jobs_per_region, dtype=np.int64).tobytes(), crc
        )
        totals = np.array(
            [
                stats.carbon_g,
                stats.water_l,
                stats.service_ratio_sum,
                stats.queue_delay_sum,
                stats.transfer_sum,
                stats.execution_sum,
                self.makespan_s,
            ]
        )
        crc = zlib.crc32(totals.tobytes(), crc)
        crc = zlib.crc32(self.footprint_totals.carbon_g_per_region.tobytes(), crc)
        crc = zlib.crc32(self.footprint_totals.water_l_per_region.tobytes(), crc)
        utilization = np.array(
            [self.region_utilization.get(key, 0.0) for key in self.region_keys]
        )
        crc = zlib.crc32(utilization.tobytes(), crc)
        estimates = np.array(
            [quantiles.min, quantiles.max, *(quantiles.value(q) for q in quantiles.qs)]
        )
        crc = zlib.crc32(estimates.tobytes(), crc)
        return crc

    # -- reporting ---------------------------------------------------------------------
    def summary(self) -> dict[str, float | str | int]:
        """Flat summary dictionary, same keys as ``BatchResult.summary``."""
        return {
            "scheduler": self.scheduler_name,
            "trace": self.trace_name,
            "jobs": self.num_jobs,
            "carbon_kg": round(self.total_carbon_kg, 3),
            "water_m3": round(self.total_water_m3, 3),
            "mean_service_ratio": round(self.mean_service_ratio, 4),
            "violation_pct": round(100.0 * self.violation_fraction, 3),
            "migration_pct": round(100.0 * self.migration_fraction, 2),
            "utilization_pct": round(100.0 * self.overall_utilization, 2),
            "mean_decision_time_s": round(self.mean_decision_time_s, 5),
            "delay_tolerance_pct": round(100.0 * self.delay_tolerance, 1),
        }

    def __repr__(self) -> str:
        return (
            f"StreamResult({self.scheduler_name!r}, jobs={self.num_jobs}, "
            f"carbon={self.total_carbon_kg:.2f} kg, water={self.total_water_m3:.2f} m3)"
        )


class StreamingSimulator(_SimulatorBase):
    """Chunk-at-a-time batch engine over a :class:`TraceSource`.

    Construction parameters extend :class:`_SimulatorBase` (the first
    positional argument is a *source*, not a trace — any object with
    ``iter_chunks`` / ``horizon_s``):

    chunk_size:
        Jobs per chunk pulled from the source in :meth:`run` (callers driving
        :meth:`advance` themselves may use any chunking — results are
        chunk-size-invariant).
    collect:
        ``"full"`` retains per-job columns and finalizes into a
        :class:`BatchResult`; ``"aggregate"`` keeps O(1) accumulators and
        finalizes into a :class:`StreamResult`.
    reservoir_size / reservoir_seed:
        Size and seed of the aggregate mode's uniform per-job sample
        (0 disables it).
    """

    def __init__(
        self,
        source,
        scheduler,
        dataset=None,
        regions=None,
        servers_per_region=20,
        scheduling_interval_s: float = 300.0,
        delay_tolerance: float = 0.25,
        latency=None,
        server=None,
        include_embodied: bool = True,
        seed_dataset_horizon_slack_h: int = 24,
        max_rounds: int = 1_000_000,
        chunk_size: int = 4096,
        collect: str = "full",
        reservoir_size: int = 256,
        reservoir_seed: int = 0,
        kernel: str = "vector",
        chaos=None,
        chaos_seed: int = 0,
    ) -> None:
        base_kwargs = dict(
            dataset=dataset,
            regions=regions,
            servers_per_region=servers_per_region,
            scheduling_interval_s=scheduling_interval_s,
            delay_tolerance=delay_tolerance,
            latency=latency,
            include_embodied=include_embodied,
            seed_dataset_horizon_slack_h=seed_dataset_horizon_slack_h,
            max_rounds=max_rounds,
            kernel=kernel,
            chaos=chaos,
            chaos_seed=chaos_seed,
        )
        if server is not None:
            base_kwargs["server"] = server
        super().__init__(source, scheduler, **base_kwargs)
        if int(chunk_size) < 1:
            raise ValueError("chunk_size must be >= 1")
        if collect not in ("full", "aggregate"):
            raise ValueError(f"collect must be 'full' or 'aggregate', got {collect!r}")
        self.source = source
        self.chunk_size = int(chunk_size)
        self.collect = collect
        self.reservoir_size = int(reservoir_size)
        self.reservoir_seed = int(reservoir_seed)
        self.state: EngineState | None = None
        self._region_index = {key: i for i, key in enumerate(self.region_keys)}
        self._keys_tuple = tuple(self.region_keys)
        # Hoisted out of the drain loop: the per-region server-count array and
        # the fast-path resolution used to be rebuilt on every `_drain` call
        # (measurable at small chunk sizes).  Both are fixed at construction —
        # the scheduler object and region set never change mid-run.
        from repro.schedulers.vectorized import fast_path_for  # lazy: import cycle

        self._servers_array = np.array(
            [self._servers[key] for key in self.region_keys], dtype=np.int64
        )
        self._fast_path = fast_path_for(scheduler)
        # Slot → materialized Job for the scalar-policy fallback rounds: a
        # deferred job used to be rebuilt as a fresh ``Job`` every round it
        # stayed pending.  Entries are dropped when the slot is flushed and
        # recycled; the cache is derived state (a pure function of the pool
        # columns), so it is deliberately not part of checkpoints.
        self._job_cache: dict[int, Job] = {}
        # Transfer latency decomposition, as in BatchSimulator.
        self._transfer_decomposes = type(self.latency) is TransferLatencyModel
        if self._transfer_decomposes:
            self._propagation = self.latency.propagation_seconds(self.region_keys)
        else:
            self._propagation = None
        self._region_vocab_maps: dict[tuple[str, ...], np.ndarray] = {}
        self._workload_vocab_maps: dict[tuple[str, ...], np.ndarray] = {}
        # Online-admission decision log: armed by admit()/drain_decisions()
        # so batch-style runs never pay for the recording.  Entries are
        # ``(job_id array, region array, round time)`` per commit; the log is
        # ephemeral (delivered decisions are not part of checkpoints — a
        # resumed session re-emits only the still-pending jobs' decisions).
        self._record_decisions = False
        self._decision_log: list[tuple[np.ndarray, np.ndarray, float]] = []

    # -- small helpers -----------------------------------------------------------------
    @property
    def trace_name(self) -> str:
        return getattr(self.source, "trace_name", getattr(self.source, "name", "stream"))

    def servers_by_region(self) -> dict[str, int]:
        return dict(self._servers)

    def region_utilization(self, state: EngineState) -> dict[str, float]:
        servers = np.array([self._servers[key] for key in self.region_keys])
        return {
            key: (
                float(state.busy_server_seconds[idx] / (servers[idx] * state.makespan))
                if state.makespan > 0.0
                else 0.0
            )
            for idx, key in enumerate(self.region_keys)
        }

    # -- lifecycle ---------------------------------------------------------------------
    def init_state(self) -> EngineState:
        """Fresh engine state; resets the scheduler (once per run, not per chunk)."""
        self.scheduler.reset()
        n_regions = len(self.region_keys)
        servers = np.array(
            [self._servers[key] for key in self.region_keys], dtype=np.int64
        )
        if self.collect == "full":
            collector: object = _FullCollector()
        else:
            collector = _AggregateCollector(
                n_regions,
                self.delay_tolerance,
                reservoir_size=self.reservoir_size,
                seed=self.reservoir_seed,
            )
        self.state = EngineState(
            region_keys=self._keys_tuple,
            pool={
                name: np.zeros(0, dtype=dtype)
                for name, dtype in (*_DATA_COLUMNS, *_STATE_COLUMNS)
            },
            free_slots=[],
            waiting_slots=np.zeros(0, dtype=np.int64),
            waiting_arrival=np.zeros(0),
            waiting_head=0,
            pending={},
            events=EventQueue(),
            queues=[deque() for _ in range(n_regions)],
            free=servers.copy(),
            committed=np.zeros(n_regions, dtype=np.int64),
            busy_server_seconds=np.zeros(n_regions),
            finished=[],
            workload_names=[],
            collector=collector,
            capacity=servers.copy(),
            timeline_pos=0,
        )
        return self.state

    def _region_remap(self, chunk: JobChunk) -> np.ndarray:
        remap = self._region_vocab_maps.get(chunk.region_keys)
        if remap is None:
            remap = np.array(
                [self._region_index.get(key, -1) for key in chunk.region_keys],
                dtype=np.int64,
            )
            self._region_vocab_maps[chunk.region_keys] = remap
        return remap

    def _workload_remap(self, chunk: JobChunk, state: EngineState) -> np.ndarray:
        remap = self._workload_vocab_maps.get(chunk.workload_names)
        if remap is None:
            codes = []
            for name in chunk.workload_names:
                try:
                    codes.append(state.workload_names.index(name))
                except ValueError:
                    state.workload_names.append(name)
                    codes.append(len(state.workload_names) - 1)
            remap = np.array(codes, dtype=np.int64)
            self._workload_vocab_maps[chunk.workload_names] = remap
        return remap

    def advance(self, chunk: JobChunk) -> None:
        """Ingest one time-ordered chunk and run every round it makes safe."""
        state = self.state
        if state is None:
            state = self.init_state()
        if chunk.n:
            self._ingest(chunk)
        state.chunks_seen += 1
        self._drain(final=False)
        self._flush_finished()

    def admit(
        self, chunk: JobChunk | None = None, now: float | None = None
    ) -> AdmissionDecisions:
        """Online admission: ingest ``chunk``, advance to ``now``, return decisions.

        This is the live-service counterpart of :meth:`advance`.  The call

        1. ingests the (optional, possibly empty) time-ordered chunk of newly
           submitted jobs,
        2. raises the safety watermark to ``now`` — the *clock* watermark: in
           a live session no future submission can arrive before the present,
           so every scheduling round up to ``now`` is safe even without new
           arrivals (this is what lets deferred jobs make progress between
           requests; chaos-timeline events below the watermark fire exactly
           as they do in a batch run),
        3. runs every round the watermark makes safe, and
        4. drains and returns the placement decisions committed since the
           previous drain (which may include jobs from earlier ``admit``
           calls, and may exclude just-admitted jobs that were deferred).

        Passing ``now=None`` leaves the watermark driven purely by arrivals —
        the replay gateway uses that mode, which makes a paced replay
        decision-identical to :meth:`run` by construction.  Decisions are
        recorded only once this method (or :meth:`drain_decisions`) has been
        called, so batch-style runs pay nothing for the facility.
        """
        state = self.state
        if state is None:
            state = self.init_state()
        self._record_decisions = True
        if chunk is not None:
            if chunk.n:
                self._ingest(chunk)
            state.chunks_seen += 1
        if now is not None and float(now) > state.watermark:
            state.watermark = float(now)
        self._drain(final=False)
        self._flush_finished()
        return self.drain_decisions()

    def drain_decisions(self) -> AdmissionDecisions:
        """Return (and clear) the decisions committed since the last drain.

        Arms decision recording as a side effect; a gateway that finalizes
        the engine calls this once more after :meth:`finalize` to collect the
        decisions of the closing rounds.
        """
        self._record_decisions = True
        log = self._decision_log
        if not log:
            empty = np.zeros(0, dtype=np.int64)
            return AdmissionDecisions(
                region_keys=self._keys_tuple,
                job_id=empty,
                region_idx=empty,
                decided_at=np.zeros(0),
            )
        self._decision_log = []
        return AdmissionDecisions(
            region_keys=self._keys_tuple,
            job_id=np.concatenate([job_id for job_id, _, _ in log]),
            region_idx=np.concatenate([region for _, region, _ in log]),
            decided_at=np.concatenate(
                [np.full(len(job_id), when) for job_id, _, when in log]
            ),
        )

    def _ingest(self, chunk: JobChunk) -> None:
        """Validate + copy one non-empty chunk into the slot pool."""
        state = self.state
        n = chunk.n
        arrivals = np.asarray(chunk.arrival, dtype=float)
        if float(arrivals[0]) < state.watermark - 1e-12:
            raise ValueError(
                "chunk arrives out of order: first arrival "
                f"{float(arrivals[0]):.3f}s is before the watermark "
                f"{state.watermark:.3f}s"
            )
        remap = self._region_remap(chunk)
        home = remap[chunk.home_idx]
        if np.any(home < 0):
            i = int(np.flatnonzero(home < 0)[0])
            raise ValueError(
                f"job {int(chunk.job_id[i])} has home region "
                f"{chunk.region_keys[chunk.home_idx[i]]!r} which is not part "
                f"of the simulated cluster ({sorted(self.region_keys)})"
            )
        workload = self._workload_remap(chunk, state)[chunk.workload_idx]
        slots = state.allocate(n)
        pool = state.pool
        pool["job_id"][slots] = chunk.job_id
        pool["arrival"][slots] = arrivals
        pool["exec_est"][slots] = chunk.exec_est
        pool["exec_real"][slots] = chunk.exec_real
        pool["energy_est"][slots] = chunk.energy_est
        pool["energy_real"][slots] = chunk.energy_real
        pool["home"][slots] = home
        pool["package"][slots] = chunk.package_gb
        pool["servers"][slots] = chunk.servers
        pool["workload"][slots] = workload
        for name, _ in _STATE_COLUMNS:
            pool[name][slots] = -1 if name in ("region",) else 0
        pool["start"][slots] = -1.0
        pool["finish"][slots] = -1.0
        state.waiting_slots = np.concatenate(
            [state.waiting_slots[state.waiting_head:], slots]
        )
        state.waiting_arrival = np.concatenate(
            [state.waiting_arrival[state.waiting_head:], arrivals]
        )
        state.waiting_head = 0
        state.jobs_seen += n
        # max(): a live session may already have raised the clock watermark
        # past these arrivals (admit(now=...)); it must never move backwards.
        state.watermark = max(state.watermark, float(arrivals[-1]))

    def finalize(self):
        """Run the remaining rounds, drain every event, return the result."""
        state = self.state
        if state is None:
            state = self.init_state()
        self._drain(final=True)
        self._process_events_until(math.inf)
        self._flush_finished()
        result = state.collector.finalize(self, state)
        self._attach_solver_stats(result)
        if self._timeline is not None:
            if isinstance(result, BatchResult):
                total_evictions = result.total_evictions
            else:
                total_evictions = state.collector.stats.evictions
            self._attach_chaos_stats(result, total_evictions)
        self._attach_kernel_stats(result, state.kernel_stats)
        return result

    def run(self):
        """Stream the whole source (resuming if state was loaded) and finalize."""
        self.run_chunks()
        return self.finalize()

    def reset_collector(self) -> None:
        """Swap in a fresh aggregate collector (the shard fabric's slab seam).

        The fabric runs one (workload × policy) lineage as a chain of time
        slabs: each slab resets the collector on entry so its finalized
        aggregates cover only the jobs retired *during* the slab, and the
        coordinator merges the per-slab partials exactly
        (:meth:`RunningJobStats.merge`).  The replacement collector carries
        no reservoir — a uniform sample cannot be merged, so sharded runs
        disable it throughout.  Only ``collect="aggregate"`` has mergeable
        partials.
        """
        if self.collect != "aggregate":
            raise RuntimeError("reset_collector requires collect='aggregate'")
        if self.state is None:
            raise RuntimeError("no state to reset: run init_state()/advance() first")
        self.state.collector = _AggregateCollector(
            len(self.region_keys),
            self.delay_tolerance,
            reservoir_size=0,
            seed=self.reservoir_seed,
        )

    def run_chunks(self, max_chunks: int | None = None) -> int:
        """Advance up to ``max_chunks`` chunks (all remaining when ``None``).

        Returns the number of chunks consumed.  Chunks are pulled from the
        source starting after the jobs the state has already seen, so the
        same call pattern works for fresh runs and resumed checkpoints.
        """
        if self.state is None:
            self.init_state()
        consumed = 0
        if max_chunks is not None and max_chunks <= 0:
            return consumed
        for chunk in self.source.iter_chunks(
            self.chunk_size, skip_jobs=self.state.jobs_seen
        ):
            self.advance(chunk)
            consumed += 1
            if max_chunks is not None and consumed >= max_chunks:
                break
        return consumed

    # -- checkpointing -----------------------------------------------------------------
    def save_checkpoint(self, path, extra: dict | None = None) -> None:
        """Pickle the engine state + scheduler (+ caller metadata) to ``path``.

        The dataset, latency model and source are *not* serialized — they are
        reconstruction parameters the resuming caller must supply (the CLI
        stores its own arguments in ``extra`` for that purpose).  Checkpoints
        are only portable across identical code versions; see README
        "Streaming engine" for the compatibility caveats.
        """
        if self.state is None:
            raise RuntimeError("nothing to checkpoint: run init_state()/advance() first")
        payload = {
            "format": CHECKPOINT_FORMAT,
            "state": self.state,
            "scheduler": self.scheduler,
            "config": {
                "servers_per_region": dict(self._servers),
                "scheduling_interval_s": self.scheduling_interval_s,
                "delay_tolerance": self.delay_tolerance,
                "include_embodied": self.footprints.include_embodied,
                "max_rounds": self.max_rounds,
                "chunk_size": self.chunk_size,
                "collect": self.collect,
                "reservoir_size": self.reservoir_size,
                "reservoir_seed": self.reservoir_seed,
                "kernel": self.kernel,
                "chaos": self.chaos,
                "chaos_seed": self.chaos_seed,
            },
            "extra": dict(extra or {}),
        }
        atomic_pickle_dump(path, payload)

    @staticmethod
    def load_checkpoint(path) -> dict:
        """Read and validate a checkpoint payload (see :meth:`save_checkpoint`)."""
        payload = pickle.loads(Path(path).read_bytes())
        if not isinstance(payload, dict) or "format" not in payload:
            raise ValueError(f"{path} is not a streaming checkpoint")
        found = payload.get("format")
        if found != CHECKPOINT_FORMAT:
            raise ValueError(
                f"{path} is a format-{found} streaming checkpoint; this version "
                f"reads format {CHECKPOINT_FORMAT} only.  Checkpoint layouts "
                "changed incompatibly (format 2: array event queue, format 3: "
                "chaos & elasticity state, format 4: kernel-tier telemetry), "
                "so older files cannot be resumed here — re-run the "
                "simulation, or resume the checkpoint with the code version "
                "that wrote it (see README 'Streaming engine' for the "
                "migration notes)."
            )
        return payload

    @classmethod
    def from_checkpoint(
        cls,
        path,
        source,
        dataset=None,
        regions=None,
        latency=None,
        server=None,
        **overrides,
    ) -> "StreamingSimulator":
        """Rebuild an engine mid-run from a checkpoint file.

        ``source`` and ``dataset`` must reproduce the original run's workload
        and intensities (checkpoints store neither); ``overrides`` may adjust
        non-semantic knobs only — ``chunk_size`` (results are chunk-size-
        invariant, so resuming with a different chunking is legal),
        ``max_rounds`` and ``kernel`` (all kernel tiers —
        ``auto``/``vector``/``scalar``/``compiled`` — are digest-identical
        and emit the canonical ``(when, region, seq)`` finished order, so a
        resume may switch tiers freely; the differential harness pins
        cross-kernel resume equality).  Semantic configuration (servers,
        tolerance, interval, …) is pinned by the restored state: the pickled
        free/committed server counts and round clock reflect the original
        settings, so changing them mid-run would silently corrupt the
        simulation.
        """
        allowed = {"chunk_size", "max_rounds", "kernel"}
        refused = set(overrides) - allowed
        if refused:
            raise ValueError(
                f"cannot override {sorted(refused)} on resume: the checkpointed "
                f"engine state depends on them (overridable: {sorted(allowed)})"
            )
        payload = cls.load_checkpoint(path)
        if payload.get("multi"):
            raise ValueError(
                f"{path} is a fused multi-policy checkpoint; resume it with "
                "MultiPolicyRunner.from_checkpoint"
            )
        config = dict(payload["config"])
        config.update(overrides)
        engine = cls(
            source,
            payload["scheduler"],
            dataset=dataset,
            regions=regions,
            latency=latency,
            server=server,
            **config,
        )
        state: EngineState = payload["state"]
        if state.region_keys != engine._keys_tuple:
            raise ValueError(
                "checkpoint was taken over regions "
                f"{state.region_keys} but the engine simulates {engine._keys_tuple}"
            )
        engine.state = state
        return engine

    # -- the event loop ----------------------------------------------------------------
    def _run_kernel(self, limit: float) -> None:
        state = self.state
        pool = state.pool
        makespan = process_until(
            state.events,
            limit,
            servers=pool["servers"],
            exec_real=pool["exec_real"],
            region_of=pool["region"],
            start=pool["start"],
            finish=pool["finish"],
            free=state.free,
            committed=state.committed,
            busy_seconds=state.busy_server_seconds,
            queues=state.queues,
            finished=state.finished,
            use_fast=self.kernel != "scalar",
            compiled=self.kernel == "compiled",
            stats=state.kernel_stats,
        )
        if makespan > state.makespan:
            state.makespan = makespan

    def _process_events_until(self, limit: float) -> None:
        # Mirrors BatchSimulator.run's segmentation exactly: cut the window
        # at each capacity breakpoint (capacity stays constant inside every
        # kernel window, which keeps the clean-prefix proof valid under
        # chaos), apply the capacity events, requeue any evicted slots.
        state = self.state
        tl = self._timeline
        if tl is not None:
            pool = state.pool
            while state.timeline_pos < tl.n_events and tl.event_when[state.timeline_pos] <= limit:
                pos = state.timeline_pos
                t = float(tl.event_when[pos])
                group_end = pos + 1
                while group_end < tl.n_events and tl.event_when[group_end] == t:
                    group_end += 1
                self._run_kernel(t)
                requeued = apply_capacity_step(
                    state.events,
                    t,
                    tl.event_region[pos:group_end],
                    tl.event_capacity[pos:group_end],
                    evict=tl.spec.eviction == "evict",
                    capacity=state.capacity,
                    free=state.free,
                    committed=state.committed,
                    busy_seconds=state.busy_server_seconds,
                    queues=state.queues,
                    job_servers=pool["servers"],
                    exec_real=pool["exec_real"],
                    region_idx=pool["region"],
                    start=pool["start"],
                    finish=pool["finish"],
                    assigned=pool["assigned"],
                    ready=pool["ready"],
                    transfer=pool["transfer"],
                    evictions=pool["evictions"],
                )
                state.timeline_pos = group_end
                for slot in requeued:
                    state.pending[slot] = None
        self._run_kernel(limit)

    def _next_timeline_event(self) -> float | None:
        """Next capacity breakpoint, or ``None`` when it cannot affect a job.

        Mirrors the batch engine's wake rule: a capacity change only matters
        while jobs are in flight (queued or executing), so trailing events on
        an idle cluster never keep the drain loop alive.
        """
        tl = self._timeline
        state = self.state
        if tl is None or state.timeline_pos >= tl.n_events:
            return None
        if not (len(state.events) or any(state.queues)):
            return None
        return float(tl.event_when[state.timeline_pos])

    def _commit_batch(self, slots: np.ndarray, regions: np.ndarray, now: float) -> None:
        """Commit assignments (in the given order, which fixes FIFO ties)."""
        if len(slots) == 0:
            return
        state = self.state
        pool = state.pool
        home = pool["home"][slots]
        if self._transfer_decomposes:
            transfer = np.where(
                regions == home,
                0.0,
                self._propagation[home, regions]
                + pool["package"][slots] * 8.0 / self.latency.bandwidth_gbps,
            )
        else:
            keys = self.region_keys
            package = pool["package"][slots]
            transfer = np.array(
                [
                    0.0
                    if regions[i] == home[i]
                    else self.latency.transfer_time(
                        keys[home[i]], keys[regions[i]], package[i]
                    )
                    for i in range(len(slots))
                ]
            )
        pool["region"][slots] = regions
        pool["assigned"][slots] = now
        pool["transfer"][slots] = transfer
        pool["ready"][slots] = now + transfer
        state.events.push_ready_batch(now + transfer, slots)
        if self._record_decisions:
            self._decision_log.append(
                (
                    pool["job_id"][slots].copy(),
                    np.asarray(regions, dtype=np.int64).copy(),
                    float(now),
                )
            )

    def _drain(self, final: bool) -> None:
        state = self.state
        pool = state.pool
        fast_path = self._fast_path
        waiting_arrival = state.waiting_arrival
        waiting_slots = state.waiting_slots
        while True:
            if not final and not (state.round_time < state.watermark):
                break
            if (
                final
                and not state.waiting_count
                and not state.pending
                and self._next_timeline_event() is None
            ):
                break
            if state.rounds > self.max_rounds:
                raise RuntimeError(
                    f"scheduling did not converge after {self.max_rounds} rounds "
                    f"({len(state.pending)} jobs still pending)"
                )
            self._process_events_until(state.round_time)

            stop = int(
                np.searchsorted(waiting_arrival, state.round_time, side="right")
            )
            if stop > state.waiting_head:
                newly = waiting_slots[state.waiting_head:stop]
                pool["considered"][newly] = state.round_time
                for slot in newly.tolist():
                    state.pending[slot] = None
                state.waiting_head = stop

            if state.pending:
                state.rounds += 1
                state.round_times.append(state.round_time)
                batch = np.fromiter(
                    state.pending.keys(), dtype=np.int64, count=len(state.pending)
                )
                capacity = np.maximum(0, state.capacity - state.committed)
                if fast_path is not None:
                    decision_seconds = self._run_fast_round(
                        fast_path, state.round_time, batch, capacity
                    )
                else:
                    decision_seconds = self._run_fallback_round(
                        state.round_time, batch, capacity
                    )
                state.decision_times.append(decision_seconds)

            if not state.pending and not state.waiting_count:
                # Only reachable when finalizing: in a non-final drain the
                # watermark job itself (arrival == watermark) can never leave
                # the waiting queue, because rounds are gated on
                # ``round_time < watermark``.  A pending capacity breakpoint
                # keeps the loop alive: an outage may evict-and-requeue
                # in-flight jobs, which then need further scheduling rounds.
                if self._next_timeline_event() is None:
                    break
            next_wake = (
                float(waiting_arrival[state.waiting_head])
                if not state.pending and state.waiting_count
                else None
            )
            if not state.pending:
                # Jumping to the next capacity event is decision-equivalent:
                # in a non-final drain every queued arrival satisfies
                # ``A <= watermark``, so an earlier event (E < A) is also
                # below the watermark and the round it wakes remains safe.
                next_event = self._next_timeline_event()
                if next_event is not None and (
                    next_wake is None or next_event < next_wake
                ):
                    next_wake = next_event
            state.round_time = self._next_round_time(state.round_time, next_wake)

    def _flush_finished(self) -> None:
        """Integrate + hand finished jobs to the collector, recycle their slots."""
        state = self.state
        if not state.finished:
            return
        pool = state.pool
        idx = np.array(state.finished, dtype=np.int64)
        region = pool["region"][idx].copy()
        start = pool["start"][idx].copy()
        exec_real = pool["exec_real"][idx].copy()
        carbon, water = self.footprints.integrate_batch(
            self.region_keys, region, start, exec_real, pool["energy_real"][idx]
        )
        state.collector.add(
            {
                "job_id": pool["job_id"][idx].copy(),
                "arrival": pool["arrival"][idx].copy(),
                "considered": pool["considered"][idx].copy(),
                "assigned": pool["assigned"][idx].copy(),
                "ready": pool["ready"][idx].copy(),
                "start": start,
                "finish": pool["finish"][idx].copy(),
                "exec_real": exec_real,
                "transfer": pool["transfer"][idx].copy(),
                "deferrals": pool["deferrals"][idx].copy(),
                "evictions": pool["evictions"][idx].copy(),
                "home": pool["home"][idx].copy(),
                "region": region,
                "workload": pool["workload"][idx].copy(),
                "carbon": carbon,
                "water": water,
            }
        )
        if self._job_cache:
            for slot in state.finished:
                self._job_cache.pop(slot, None)
        state.free_slots.extend(state.finished)
        state.finished = []

    # -- scheduling rounds ---------------------------------------------------------------
    def _pool_arrays(self) -> JobArrays:
        pool = self.state.pool
        return JobArrays(
            region_keys=self._keys_tuple,
            job_id=pool["job_id"],
            arrival=pool["arrival"],
            exec_est=pool["exec_est"],
            exec_real=pool["exec_real"],
            energy_est=pool["energy_est"],
            energy_real=pool["energy_real"],
            home_idx=pool["home"],
            package_gb=pool["package"],
            servers=pool["servers"],
            workloads=_WorkloadView(pool["workload"], self.state.workload_names),
        )

    def _run_fast_round(
        self, fast_path, now: float, batch: np.ndarray, capacity: np.ndarray
    ) -> float:
        state = self.state
        pool = state.pool
        arrays = self._pool_arrays()
        context = BatchSchedulingContext(
            now=now,
            region_keys=self._keys_tuple,
            capacity=capacity,
            jobs=arrays,
            batch=batch,
            wait_times=now - pool["considered"][batch],
            delay_tolerance=self.delay_tolerance,
            scheduling_interval_s=self.scheduling_interval_s,
            dataset=self.dataset,
            latency=self.latency,
            footprints=self.footprints,
            regions=self.regions,
        )
        started = _time.perf_counter()
        result = fast_path(self.scheduler, context)
        decision_seconds = _time.perf_counter() - started

        choice, commit_positions = resolve_fast_decision(
            result, batch, len(self._keys_tuple)
        )
        deferred = batch[choice < 0]
        pool["deferrals"][deferred] += 1
        slots = batch[commit_positions]
        for slot in slots.tolist():
            del state.pending[slot]
        self._commit_batch(slots, choice[commit_positions], now)
        return decision_seconds

    def _run_fallback_round(
        self, now: float, batch: np.ndarray, capacity: np.ndarray
    ) -> float:
        """Scalar-policy fallback: materialize the round's Jobs from the pool."""
        state = self.state
        pool = state.pool
        cache = self._job_cache
        jobs = []
        for slot in batch.tolist():
            job = cache.get(slot)
            if job is None:
                job = Job(
                    job_id=int(pool["job_id"][slot]),
                    workload=state.workload_names[pool["workload"][slot]],
                    arrival_time=float(pool["arrival"][slot]),
                    execution_time=float(pool["exec_est"][slot]),
                    energy_kwh=float(pool["energy_est"][slot]),
                    home_region=self.region_keys[pool["home"][slot]],
                    package_gb=float(pool["package"][slot]),
                    servers_required=int(pool["servers"][slot]),
                    true_execution_time=float(pool["exec_real"][slot]),
                    true_energy_kwh=float(pool["energy_real"][slot]),
                )
                cache[slot] = job
            jobs.append(job)
        wait_times = {
            job.job_id: now - pool["considered"][slot]
            for slot, job in zip(batch.tolist(), jobs)
        }
        context = SchedulingContext(
            now=now,
            regions=self.regions,
            capacity={
                key: int(capacity[idx]) for idx, key in enumerate(self.region_keys)
            },
            dataset=self.dataset,
            latency=self.latency,
            footprints=self.footprints,
            delay_tolerance=self.delay_tolerance,
            scheduling_interval_s=self.scheduling_interval_s,
            job_wait_times=wait_times,
        )
        started = _time.perf_counter()
        decision = self.scheduler.schedule(jobs, context)
        decision_seconds = _time.perf_counter() - started
        decision.validate_for(jobs, self.region_keys)

        slot_of = {job.job_id: slot for slot, job in zip(batch.tolist(), jobs)}
        slots: list[int] = []
        regions: list[int] = []
        for job_id, region_key in decision.assignments.items():
            slot = slot_of[job_id]
            del state.pending[slot]
            slots.append(slot)
            regions.append(self._region_index[region_key])
        self._commit_batch(
            np.array(slots, dtype=np.int64), np.array(regions, dtype=np.int64), now
        )
        for job_id in decision.deferred:
            pool["deferrals"][slot_of[job_id]] += 1
        return decision_seconds
