"""Command-line interface for running WaterWise simulations.

Provides a small, scriptable front end over the library so that a downstream
user can compare scheduling policies without writing Python::

    python -m repro simulate --policies baseline waterwise --tolerance 0.5
    python -m repro regions
    python -m repro workloads

Sub-commands
------------
``simulate``
    Generate a Borg-like (or Alibaba-like) trace — or a named scenario from
    the workload library via ``--scenario`` — run the requested policies
    under identical conditions and print totals and savings versus the
    baseline.
``regions``
    Print the region catalog with each region's average carbon intensity,
    EWIF, WUE, water-scarcity factor and water intensity.
``workloads``
    Print the PARSEC/CloudSuite workload profiles (paper Table 1).
``scenarios``
    Print the workload-scenario library (name, description, default scale).
"""

from __future__ import annotations

import argparse
from collections.abc import Sequence

from repro._version import __version__
from repro.analysis.report import format_table
from repro.analysis.savings import savings_table
from repro.analysis.sweep import run_policies
from repro.cluster import servers_for_target_utilization
from repro.schedulers import available_schedulers, make_scheduler
from repro.sustainability import ElectricityMapsLikeProvider, WRILikeProvider
from repro.traces import AlibabaTraceGenerator, BorgTraceGenerator, WORKLOAD_PROFILES
from repro.traces.scenarios import SCENARIOS, available_scenarios, get_scenario

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="WaterWise reproduction: carbon- and water-aware geo-distributed scheduling",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate", help="run one or more policies over a synthetic trace")
    simulate.add_argument(
        "--policies", nargs="+", default=["baseline", "waterwise"],
        help=f"policies to compare (available: {', '.join(available_schedulers())})",
    )
    simulate.add_argument("--trace", choices=["borg", "alibaba"], default="borg")
    simulate.add_argument(
        "--scenario", choices=available_scenarios(), default=None,
        help="use a named workload scenario instead of --trace (see `repro scenarios`)",
    )
    simulate.add_argument(
        "--jobs-per-hour", type=float, default=None,
        help="submission rate (default: 60 for --trace, the family's own "
             "default for --scenario)",
    )
    simulate.add_argument("--hours", type=float, default=12.0)
    simulate.add_argument("--tolerance", type=float, default=0.5, help="delay tolerance (0.5 = 50%%)")
    simulate.add_argument("--utilization", type=float, default=0.15, help="target average utilization")
    simulate.add_argument("--interval", type=float, default=300.0, help="scheduling interval (s)")
    simulate.add_argument("--data-source", choices=["electricity-maps", "wri"], default="electricity-maps")
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument(
        "--engine", choices=["scalar", "batch"], default="scalar",
        help="simulation engine (batch = vectorized, ~13-16x faster, identical results)",
    )
    simulate.add_argument(
        "--solver", choices=["auto", "scipy", "native", "structured"], default="auto",
        help="MILP backend for the WaterWise-family policies (all are exact; "
             "auto prefers the structured placement path, see README "
             "'Solver architecture')",
    )

    sub.add_parser("regions", help="print the region catalog and its sustainability factors")
    sub.add_parser("workloads", help="print the PARSEC/CloudSuite workload profiles")
    sub.add_parser("scenarios", help="print the workload-scenario library")
    return parser


def _cmd_simulate(args: argparse.Namespace) -> int:
    if args.scenario is not None:
        # None lets the scenario family's natural rate apply.
        trace = get_scenario(args.scenario).trace(
            seed=args.seed,
            rate_per_hour=args.jobs_per_hour,
            duration_days=args.hours / 24.0,
        )
    else:
        generator_cls = BorgTraceGenerator if args.trace == "borg" else AlibabaTraceGenerator
        trace = generator_cls(
            rate_per_hour=60.0 if args.jobs_per_hour is None else args.jobs_per_hour,
            duration_days=args.hours / 24.0,
            seed=args.seed,
        ).generate()
    provider = ElectricityMapsLikeProvider if args.data_source == "electricity-maps" else WRILikeProvider
    dataset = provider(horizon_hours=int(args.hours) + 48, seed=args.seed)
    servers = servers_for_target_utilization(
        trace, dataset.region_keys, target_utilization=args.utilization
    )

    if "baseline" not in args.policies:
        # Savings are always reported against the baseline, so run it regardless.
        policy_names = ["baseline", *args.policies]
    else:
        policy_names = list(args.policies)
    def _factory(name: str):
        if name.startswith("waterwise"):
            # The WaterWise family routes every round through the MILP layer;
            # --solver picks its backend (other policies never solve MILPs).
            from repro.core.config import WaterWiseConfig

            return lambda: make_scheduler(name, config=WaterWiseConfig(solver=args.solver))
        return lambda: make_scheduler(name)

    policies = {name: _factory(name) for name in policy_names}

    print(f"trace     : {trace}")
    print(f"servers   : {servers} per region ({args.utilization:.0%} target utilization)")
    print(f"tolerance : {args.tolerance:.0%}\n")

    results = run_policies(
        trace,
        dataset,
        policies,
        servers_per_region=servers,
        delay_tolerance=args.tolerance,
        scheduling_interval_s=args.interval,
        engine=args.engine,
    )
    totals = [
        [
            name,
            result.total_carbon_kg,
            result.total_water_m3,
            result.mean_service_ratio,
            100.0 * result.violation_fraction,
        ]
        for name, result in results.items()
    ]
    print(format_table(
        ["policy", "carbon_kg", "water_m3", "service_ratio", "violations_%"], totals, title="Totals"
    ))
    print()
    savings_rows = [
        [entry.policy, entry.carbon_savings_pct, entry.water_savings_pct]
        for entry in savings_table(results)
        if entry.policy != "baseline"
    ]
    if savings_rows:
        print(format_table(
            ["policy", "carbon_savings_%", "water_savings_%"], savings_rows,
            title="Savings vs. baseline",
        ))
    return 0


def _cmd_regions() -> int:
    dataset = ElectricityMapsLikeProvider(horizon_hours=24 * 30, seed=0)
    rows = []
    for key in dataset.region_keys:
        series = dataset.series_for(key)
        region = series.region
        rows.append(
            [
                region.name,
                region.aws_code,
                series.mean_carbon_intensity(),
                series.mean_ewif(),
                series.mean_wue(),
                series.wsf,
                series.mean_water_intensity(),
            ]
        )
    print(format_table(
        ["region", "aws_code", "carbon_gCO2_kwh", "ewif_L_kwh", "wue_L_kwh", "wsf", "water_intensity"],
        rows,
        title="Region catalog (30-day synthetic averages)",
    ))
    return 0


def _cmd_workloads() -> int:
    rows = [
        [w.name, w.suite, w.domain, w.mean_execution_time_s, w.mean_utilization, w.package_gb]
        for w in WORKLOAD_PROFILES.values()
    ]
    print(format_table(
        ["workload", "suite", "domain", "mean_exec_s", "utilization", "package_gb"],
        rows,
        title="Workload profiles (paper Table 1)",
    ))
    return 0


def _cmd_scenarios() -> int:
    rows = [
        [s.name, s.description, s.default_rate_per_hour, s.default_duration_days]
        for s in SCENARIOS.values()
    ]
    print(format_table(
        ["scenario", "description", "default_rate_per_h", "default_days"],
        rows,
        title="Workload scenario library",
    ))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "regions":
        return _cmd_regions()
    if args.command == "workloads":
        return _cmd_workloads()
    if args.command == "scenarios":
        return _cmd_scenarios()
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover
