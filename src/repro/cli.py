"""Command-line interface for running WaterWise simulations.

Provides a small, scriptable front end over the library so that a downstream
user can compare scheduling policies without writing Python::

    python -m repro simulate --policies baseline waterwise --tolerance 0.5
    python -m repro regions
    python -m repro workloads

Sub-commands
------------
``simulate``
    Generate a Borg-like (or Alibaba-like) trace — or a named scenario from
    the workload library via ``--scenario`` — run the requested policies
    under identical conditions and print totals and savings versus the
    baseline.  ``--stream`` runs the bounded-memory streaming engine
    (``--chunk-size`` jobs at a time) instead of materializing the trace.
    ``--chaos`` injects a deterministic fault timeline (region outages,
    autoscaling, capacity flaps, carbon/water spikes, forecast error) — a
    named family or a ``key=value,...`` spec; chaos scenarios carry their
    own spec.
``checkpoint``
    Run the first ``--chunks`` chunks of a streaming simulation and save the
    engine state (plus everything needed to rebuild the run) to a file.
``resume``
    Continue a checkpointed streaming simulation — to completion (printing
    the summary) or for another ``--chunks`` chunks (saving a new
    checkpoint).
``replay``
    Pace a recorded trace through the live admission gateway — the identical
    decision path a live service uses — and print the result plus service
    counters (sustained jobs/sec, p50/p95/p99 decision latency).  ``--pace 0``
    fast-forwards; ``--pace N`` plays N trace seconds per wall second.
    ``--report FILE`` writes the counters (and the result digest) as JSON.
``serve``
    Run the live admission service: a JSON-lines TCP server placing job
    batches online with a wall clock (``--rate`` trace seconds per wall
    second).  ``--selftest`` spins an in-process client instead, submits a
    few synthetic batches and exits — the CI smoke path.
``regions``
    Print the region catalog with each region's average carbon intensity,
    EWIF, WUE, water-scarcity factor and water intensity.
``workloads``
    Print the PARSEC/CloudSuite workload profiles (paper Table 1).
``scenarios``
    Print the workload-scenario library (name, description, default scale).
"""

from __future__ import annotations

import argparse
from collections.abc import Sequence

from repro._version import __version__
from repro.analysis.report import format_table
from repro.analysis.savings import savings_table
from repro.analysis.sweep import run_policies
from repro.cluster import StreamingSimulator, servers_for_target_utilization
from repro.schedulers import available_schedulers, make_scheduler
from repro.sustainability import ElectricityMapsLikeProvider, WRILikeProvider
from repro.traces import AlibabaTraceGenerator, BorgTraceGenerator, WORKLOAD_PROFILES
from repro.traces.scenarios import SCENARIOS, available_scenarios, get_scenario

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="WaterWise reproduction: carbon- and water-aware geo-distributed scheduling",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_workload_arguments(command):
        """Workload/cluster options shared by ``simulate`` and ``checkpoint``.

        One definition keeps the two commands' defaults in lockstep — a
        drifted default would make ``repro checkpoint``/``resume`` rebuild a
        different workload than ``repro simulate`` for identical flags.
        """
        command.add_argument("--trace", choices=["borg", "alibaba"], default="borg")
        command.add_argument(
            "--scenario", choices=available_scenarios(), default=None,
            help="use a named workload scenario instead of --trace (see `repro scenarios`)",
        )
        command.add_argument(
            "--jobs-per-hour", type=float, default=None,
            help="submission rate (default: 60 for --trace, the family's own "
                 "default for --scenario)",
        )
        command.add_argument("--hours", type=float, default=12.0)
        command.add_argument("--tolerance", type=float, default=0.5, help="delay tolerance (0.5 = 50%%)")
        command.add_argument("--utilization", type=float, default=0.15, help="target average utilization")
        command.add_argument("--interval", type=float, default=300.0, help="scheduling interval (s)")
        command.add_argument("--data-source", choices=["electricity-maps", "wri"], default="electricity-maps")
        command.add_argument("--seed", type=int, default=0)
        command.add_argument(
            "--chaos", default=None,
            help="fault-injection timeline: a named chaos family (see `repro "
                 "scenarios`) or a 'key=value,...' spec, e.g. "
                 "'outage_rate_per_day=4,outage_duration_s=1800,eviction=drain'; "
                 "chaos scenarios apply their own spec automatically",
        )
        command.add_argument(
            "--chaos-seed", type=int, default=None,
            help="seed of the chaos timeline (default: --seed)",
        )

    simulate = sub.add_parser("simulate", help="run one or more policies over a synthetic trace")
    simulate.add_argument(
        "--policies", nargs="+", default=["baseline", "waterwise"],
        help=f"policies to compare (available: {', '.join(available_schedulers())})",
    )
    add_workload_arguments(simulate)
    simulate.add_argument(
        "--engine", choices=["scalar", "batch", "stream", "fused"], default=None,
        help="simulation engine: batch = vectorized (identical results), "
             "stream = bounded-memory streaming (identical decisions, memory "
             "stays O(chunk + active jobs)), fused = one-pass multi-policy "
             "streaming (the workload is generated and columnized once for "
             "ALL policies; identical decisions); default: scalar",
    )
    simulate.add_argument(
        "--stream", action="store_true",
        help="shorthand for --engine stream",
    )
    simulate.add_argument(
        "--chunk-size", type=int, default=None,
        help="jobs per streaming chunk (stream/fused engines only; results "
             "are chunk-size-invariant; default 4096)",
    )
    simulate.add_argument(
        "--profile", metavar="FILE", default=None,
        help="profile the simulation with cProfile and write the top entries "
             "(by cumulative time) to FILE",
    )
    simulate.add_argument(
        "--kernel", choices=["auto", "scalar", "vector", "compiled"], default=None,
        help="event-kernel tier for the array engines (results are "
             "tier-invariant; 'auto' picks the numba-compiled kernel when "
             "numba is installed; default: vector)",
    )
    simulate.add_argument(
        "--solver", choices=["auto", "scipy", "native", "structured"], default="auto",
        help="MILP backend for the WaterWise-family policies (all are exact; "
             "auto prefers the structured placement path, see README "
             "'Solver architecture')",
    )

    checkpoint = sub.add_parser(
        "checkpoint",
        help="run the first chunks of a streaming simulation and save its state",
    )
    add_workload_arguments(checkpoint)
    checkpoint.add_argument("--policy", default="waterwise",
                            help=f"policy to run (available: {', '.join(available_schedulers())})")
    checkpoint.add_argument("--chunk-size", type=int, default=4096)
    checkpoint.add_argument("--chunks", type=int, required=True,
                            help="number of chunks to simulate before saving")
    checkpoint.add_argument("--out", required=True, help="checkpoint file to write")

    resume = sub.add_parser(
        "resume", help="continue a checkpointed streaming simulation"
    )
    resume.add_argument("checkpoint_file", help="file written by `repro checkpoint`")
    resume.add_argument(
        "--chunks", type=int, default=None,
        help="advance this many chunks and save again (default: run to completion)",
    )
    resume.add_argument(
        "--out", default=None,
        help="where to save the new checkpoint with --chunks "
             "(default: overwrite the input file)",
    )

    replay = sub.add_parser(
        "replay",
        help="pace a recorded trace through the live admission gateway",
    )
    add_workload_arguments(replay)
    replay.add_argument("--policy", default="waterwise",
                        help=f"policy to run (available: {', '.join(available_schedulers())})")
    replay.add_argument(
        "--pace", type=float, default=0.0,
        help="trace seconds per wall second (0 = fast-forward; 1 = real time)",
    )
    replay.add_argument("--chunk-size", type=int, default=2048,
                        help="jobs per admission batch")
    replay.add_argument(
        "--report", metavar="FILE", default=None,
        help="write the service counters and result digest to FILE as JSON",
    )

    serve = sub.add_parser(
        "serve", help="run the live admission service (JSON-lines over TCP)"
    )
    add_workload_arguments(serve)
    serve.add_argument("--policy", default="waterwise",
                       help=f"policy to run (available: {', '.join(available_schedulers())})")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (0 = pick an ephemeral port)")
    serve.add_argument(
        "--rate", type=float, default=1.0,
        help="trace seconds per wall second on the service clock",
    )
    serve.add_argument(
        "--tick-interval", type=float, default=0.05,
        help="idle self-tick cadence of the gateway (wall seconds)",
    )
    serve.add_argument(
        "--selftest", action="store_true",
        help="serve an in-process client with synthetic batches, then exit",
    )

    sweep = sub.add_parser(
        "sweep",
        help="run a policy sweep locally or through the distributed shard fabric",
    )
    sweep.add_argument(
        "--policies", nargs="+", default=None,
        help="policies to sweep (default: the whole registry: "
             f"{', '.join(available_schedulers())})",
    )
    sweep.add_argument(
        "--trace", default="borg",
        help="trace kind: borg, alibaba, or a scenario name (see `repro scenarios`)",
    )
    sweep.add_argument("--jobs-per-hour", type=float, default=60.0)
    sweep.add_argument("--hours", type=float, default=12.0)
    sweep.add_argument("--tolerance", type=float, default=0.5,
                       help="delay tolerance (0.5 = 50%%)")
    sweep.add_argument("--interval", type=float, default=300.0,
                       help="scheduling interval (s)")
    sweep.add_argument("--servers", type=int, default=20,
                       help="servers per region")
    sweep.add_argument(
        "--seeds", type=int, nargs="+", default=[0],
        help="workload seeds: one sweep point per (policy × seed)",
    )
    sweep.add_argument(
        "--transport", choices=["inprocess", "process", "tcp"], default=None,
        help="run through the shard fabric on this transport (default: the "
             "local executor pool; merged fabric results are digest-identical "
             "to --fused on one box)",
    )
    sweep.add_argument("--workers", type=int, default=None,
                       help="worker count (pool or fabric)")
    sweep.add_argument(
        "--fused", action="store_true",
        help="fuse same-workload cells into one-pass multi-policy tasks "
             "(local executor only; fabric shards are always fused)",
    )
    sweep.add_argument(
        "--chunks-per-slab", type=int, default=None,
        help="fabric: split each shard into time slabs of this many chunks "
             "(fault/straggler granularity; default: one slab per shard)",
    )
    sweep.add_argument("--chunk-size", type=int, default=4096,
                       help="jobs per streaming chunk")
    sweep.add_argument(
        "--checkpoint-dir", default=None,
        help="fabric: shard checkpoint directory shared by all workers "
             "(default: a sweep-lifetime temp dir)",
    )
    sweep.add_argument(
        "--report", metavar="FILE", default=None,
        help="write the outcome table (and per-cell digests) to FILE as JSON",
    )

    shard_worker = sub.add_parser(
        "shard-worker",
        help="join a distributed sweep: lease shards from a fabric coordinator over TCP",
    )
    shard_worker.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="fabric coordinator address (printed by the tcp-transport sweep)",
    )
    shard_worker.add_argument(
        "--checkpoint-dir", required=True,
        help="shard checkpoint directory (must be the coordinator's; shared "
             "filesystem for real multi-node runs)",
    )
    shard_worker.add_argument("--worker", default="",
                              help="worker name for the coordinator's lease log")
    shard_worker.add_argument("--heartbeat-interval", type=float, default=5.0,
                              help="lease heartbeat cadence (s)")
    shard_worker.add_argument("--timeout", type=float, default=60.0,
                              help="per-RPC socket timeout (s)")
    shard_worker.add_argument("--retries", type=int, default=5,
                              help="RPC retry attempts (exponential backoff with jitter)")

    sub.add_parser("regions", help="print the region catalog and its sustainability factors")
    sub.add_parser("workloads", help="print the PARSEC/CloudSuite workload profiles")
    sub.add_parser("scenarios", help="print the workload-scenario library")
    return parser


def _build_source(args: argparse.Namespace):
    """The chunked trace source an argparse namespace describes."""
    if args.scenario is not None:
        # None lets the scenario family's natural rate apply.
        return get_scenario(args.scenario).source(
            seed=args.seed,
            rate_per_hour=args.jobs_per_hour,
            duration_days=args.hours / 24.0,
        )
    generator_cls = BorgTraceGenerator if args.trace == "borg" else AlibabaTraceGenerator
    return generator_cls(
        rate_per_hour=60.0 if args.jobs_per_hour is None else args.jobs_per_hour,
        duration_days=args.hours / 24.0,
        seed=args.seed,
    )


def _build_dataset(args: argparse.Namespace):
    provider = (
        ElectricityMapsLikeProvider
        if args.data_source == "electricity-maps"
        else WRILikeProvider
    )
    return provider(horizon_hours=int(args.hours) + 48, seed=args.seed)


#: Argparse fields `repro checkpoint` stores so `repro resume` can rebuild
#: the identical source and dataset.
_WORKLOAD_ARGS = (
    "trace", "scenario", "jobs_per_hour", "hours", "tolerance",
    "utilization", "interval", "data_source", "seed", "chaos", "chaos_seed",
)


def _resolve_chaos(args: argparse.Namespace) -> tuple[str | None, int]:
    """(chaos spec, chaos seed): --chaos wins, else the scenario's own."""
    chaos = args.chaos
    if chaos is None and args.scenario is not None:
        chaos = get_scenario(args.scenario).chaos
    seed = args.seed if args.chaos_seed is None else args.chaos_seed
    return chaos, seed


def _resolve_engine(args: argparse.Namespace, chaos: str | None = None) -> tuple[str, int]:
    """(engine, chunk_size) for ``simulate``, rejecting conflicting flags."""
    if args.stream and args.engine not in (None, "stream"):
        raise SystemExit(
            f"--stream conflicts with --engine {args.engine}; pick one"
        )
    default = "scalar"
    if chaos is not None:
        # Chaos timelines run on the array engines only (the batch engine's
        # scalar *kernel* remains the chaos reference path).
        if args.engine == "scalar":
            raise SystemExit(
                "--engine scalar cannot run a chaos timeline; use "
                "--engine batch/stream/fused"
            )
        default = "batch"
    engine = "stream" if args.stream else (args.engine or default)
    if args.chunk_size is not None and engine not in ("stream", "fused"):
        raise SystemExit(
            "--chunk-size requires a chunked engine (--engine stream/fused)"
        )
    return engine, 4096 if args.chunk_size is None else args.chunk_size


def _cmd_simulate(args: argparse.Namespace) -> int:
    chaos, chaos_seed = _resolve_chaos(args)
    engine, chunk_size = _resolve_engine(args, chaos)
    if args.kernel is not None and engine == "scalar":
        raise SystemExit(
            "--kernel selects the array engines' event-kernel tier; the "
            "scalar engine has none (use --engine batch/stream/fused)"
        )
    kernel = args.kernel or "vector"
    source = _build_source(args)
    dataset = _build_dataset(args)
    if engine in ("stream", "fused"):
        trace = source  # run_policies streams the source directly
    else:
        trace = source.materialize()
    servers = servers_for_target_utilization(
        trace, dataset.region_keys, target_utilization=args.utilization
    )

    if "baseline" not in args.policies:
        # Savings are always reported against the baseline, so run it regardless.
        policy_names = ["baseline", *args.policies]
    else:
        policy_names = list(args.policies)
    def _factory(name: str):
        if name.startswith("waterwise"):
            # The WaterWise family routes every round through the MILP layer;
            # --solver picks its backend (other policies never solve MILPs).
            from repro.core.config import WaterWiseConfig

            return lambda: make_scheduler(name, config=WaterWiseConfig(solver=args.solver))
        return lambda: make_scheduler(name)

    policies = {name: _factory(name) for name in policy_names}

    if engine == "fused":
        print(
            f"trace     : {source.trace_name} "
            f"(fused multi-policy streaming, {chunk_size} jobs/chunk)"
        )
    elif engine == "stream":
        print(f"trace     : {source.trace_name} (streaming, {chunk_size} jobs/chunk)")
    else:
        print(f"trace     : {trace}")
    print(f"servers   : {servers} per region ({args.utilization:.0%} target utilization)")
    if chaos is not None:
        print(f"chaos     : {chaos} (seed {chaos_seed})")
    print(f"tolerance : {args.tolerance:.0%}\n")

    profiler = None
    if args.profile is not None:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    results = run_policies(
        trace,
        dataset,
        policies,
        servers_per_region=servers,
        delay_tolerance=args.tolerance,
        scheduling_interval_s=args.interval,
        engine=engine,
        chunk_size=chunk_size,
        chaos=chaos,
        chaos_seed=chaos_seed,
        kernel=kernel,
    )
    if profiler is not None:
        profiler.disable()
    totals = [
        [
            name,
            result.total_carbon_kg,
            result.total_water_m3,
            result.mean_service_ratio,
            100.0 * result.violation_fraction,
        ]
        for name, result in results.items()
    ]
    print(format_table(
        ["policy", "carbon_kg", "water_m3", "service_ratio", "violations_%"], totals, title="Totals"
    ))
    print()
    savings_rows = [
        [entry.policy, entry.carbon_savings_pct, entry.water_savings_pct]
        for entry in savings_table(results)
        if entry.policy != "baseline"
    ]
    if savings_rows:
        print(format_table(
            ["policy", "carbon_savings_%", "water_savings_%"], savings_rows,
            title="Savings vs. baseline",
        ))
    if profiler is not None:
        _write_profile(profiler, args.profile)
    return 0


def _write_profile(profiler, path: str, top: int = 40) -> None:
    """Dump the profile's top functions (by cumulative time) to ``path``."""
    import io
    import pstats

    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(top)
    stats.sort_stats("tottime").print_stats(top)
    with open(path, "w", encoding="utf-8") as sink:
        sink.write(buffer.getvalue())
    print(f"\nprofile   : wrote top-{top} functions to {path}")


def _print_stream_summary(result) -> None:
    rows = [[
        result.scheduler_name,
        result.total_carbon_kg,
        result.total_water_m3,
        result.mean_service_ratio,
        100.0 * result.violation_fraction,
    ]]
    print(format_table(
        ["policy", "carbon_kg", "water_m3", "service_ratio", "violations_%"],
        rows, title="Totals",
    ))
    quantiles = result.service_ratio_quantiles()
    print()
    print(format_table(
        ["p50", "p95", "p99"],
        [[quantiles[0.5], quantiles[0.95], quantiles[0.99]]],
        title="Service-ratio quantiles (streaming estimates)",
    ))


def _cmd_checkpoint(args: argparse.Namespace) -> int:
    chaos, chaos_seed = _resolve_chaos(args)
    source = _build_source(args)
    dataset = _build_dataset(args)
    servers = servers_for_target_utilization(
        source, dataset.region_keys, target_utilization=args.utilization
    )
    engine = StreamingSimulator(
        source,
        make_scheduler(args.policy),
        dataset=dataset,
        servers_per_region=servers,
        scheduling_interval_s=args.interval,
        delay_tolerance=args.tolerance,
        chunk_size=args.chunk_size,
        collect="aggregate",
        chaos=chaos,
        chaos_seed=chaos_seed,
    )
    consumed = engine.run_chunks(max_chunks=args.chunks)
    extra = {"cli": {name: getattr(args, name) for name in _WORKLOAD_ARGS}}
    extra["cli"]["policy"] = args.policy
    engine.save_checkpoint(args.out, extra=extra)
    state = engine.state
    print(
        f"checkpoint: {args.out} after {consumed} chunks "
        f"({state.jobs_seen} jobs seen, {state.rounds} rounds, "
        f"{state.active_jobs} in flight)"
    )
    print(f"resume with: repro resume {args.out}")
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    payload = StreamingSimulator.load_checkpoint(args.checkpoint_file)
    spec = payload["extra"].get("cli")
    if spec is None:
        raise SystemExit(
            f"{args.checkpoint_file} carries no CLI workload spec; resume it "
            "programmatically via StreamingSimulator.from_checkpoint"
        )
    if args.out is not None and args.chunks is None:
        raise SystemExit(
            "--out requires --chunks (a run to completion produces a result, "
            "not a new checkpoint)"
        )
    workload = argparse.Namespace(**{name: spec[name] for name in _WORKLOAD_ARGS})
    source = _build_source(workload)
    dataset = _build_dataset(workload)
    engine = StreamingSimulator.from_checkpoint(
        args.checkpoint_file, source, dataset=dataset
    )
    if args.chunks is not None:
        consumed = engine.run_chunks(max_chunks=args.chunks)
        out = args.out or args.checkpoint_file
        engine.save_checkpoint(out, extra=payload["extra"])
        state = engine.state
        print(
            f"checkpoint: {out} after {consumed} more chunks "
            f"({state.jobs_seen} jobs seen, {state.rounds} rounds, "
            f"{state.active_jobs} in flight)"
        )
        return 0
    result = engine.run()
    print(f"trace     : {result.trace_name} (resumed streaming run, policy {spec['policy']})")
    print(f"jobs      : {result.num_jobs}\n")
    _print_stream_summary(result)
    return 0


def _build_live_engine(args: argparse.Namespace, collect: str = "aggregate"):
    """(engine, servers) for the service commands — shared recipe."""
    chaos, chaos_seed = _resolve_chaos(args)
    source = _build_source(args)
    dataset = _build_dataset(args)
    servers = servers_for_target_utilization(
        source, dataset.region_keys, target_utilization=args.utilization
    )
    engine = StreamingSimulator(
        source,
        make_scheduler(args.policy),
        dataset=dataset,
        servers_per_region=servers,
        scheduling_interval_s=args.interval,
        delay_tolerance=args.tolerance,
        collect=collect,
        chaos=chaos,
        chaos_seed=chaos_seed,
    )
    return engine, source, servers


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.service import run_replay

    engine, source, servers = _build_live_engine(args)
    pace = "fast-forward" if args.pace == 0 else f"{args.pace:g}x real time"
    print(f"trace     : {source.trace_name} (replayed live, {pace})")
    print(f"servers   : {servers} per region ({args.utilization:.0%} target utilization)")
    print(f"policy    : {args.policy}\n")
    report = run_replay(source, engine, pace=args.pace, chunk_size=args.chunk_size)
    stats = report.stats
    _print_stream_summary(report.result)
    print()
    print(format_table(
        ["jobs", "batches", "jobs_per_s", "p50_ms", "p95_ms", "p99_ms", "max_ms"],
        [[
            stats.decided,
            stats.batches,
            stats.throughput_jobs_per_s,
            1e3 * stats.latency_p50_s,
            1e3 * stats.latency_p95_s,
            1e3 * stats.latency_p99_s,
            1e3 * stats.latency_max_s,
        ]],
        title="Admission service counters (decision latency is wall time)",
    ))
    if args.report is not None:
        import json

        with open(args.report, "w", encoding="utf-8") as sink:
            json.dump(report.as_dict(), sink, indent=2)
            sink.write("\n")
        print(f"\nreport    : wrote service counters to {args.report}")
    return 0


async def _selftest_client(port: int, regions, batches: int = 3, jobs_per_batch: int = 4):
    """Exercise a running server over real TCP: submit, stats, shutdown."""
    import asyncio
    import json

    reader, writer = await asyncio.open_connection("127.0.0.1", port)

    async def rpc(request: dict) -> dict:
        writer.write(json.dumps(request).encode() + b"\n")
        await writer.drain()
        response = json.loads(await reader.readline())
        if not response.get("ok"):
            raise SystemExit(f"selftest request failed: {response.get('error')}")
        return response

    decided = 0
    for batch in range(batches):
        jobs = [
            {
                "job_id": batch * jobs_per_batch + i,
                "workload": "web-search",
                "home_region": regions[i % len(regions)],
                "execution_time": 600.0,
                "energy_kwh": 0.4,
            }
            for i in range(jobs_per_batch)
        ]
        response = await rpc({"op": "submit", "jobs": jobs})
        decided += len(response["decisions"])
    stats = (await rpc({"op": "stats"}))["stats"]
    await rpc({"op": "shutdown"})
    writer.close()
    return decided, stats


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import AdmissionGateway, AdmissionServer, WallClock

    engine, _source, servers = _build_live_engine(args)

    async def _serve() -> int:
        gateway = AdmissionGateway(
            engine,
            clock=WallClock(rate=args.rate),
            arrival_mode="clock",
            tick_interval_s=args.tick_interval,
        )
        server = await AdmissionServer(gateway, host=args.host, port=args.port).start()
        print(
            f"serving   : {args.host}:{server.port} "
            f"(policy {args.policy}, {servers} servers/region, "
            f"clock rate {args.rate:g}x)"
        )
        if args.selftest:
            serve_task = asyncio.ensure_future(server.serve_until_shutdown())
            decided, stats = await _selftest_client(server.port, engine._keys_tuple)
            await serve_task
            await server.stop()
            print(
                f"selftest  : {decided} jobs placed over TCP "
                f"(p99 decision latency {1e3 * stats['latency_p99_s']:.1f} ms)"
            )
            return 0
        result = await server.serve_until_shutdown()
        await server.stop()
        print(f"\nshutdown  : session finalized after {result.num_jobs} jobs\n")
        _print_stream_summary(result)
        return 0

    return asyncio.run(_serve())


def _cmd_regions() -> int:
    dataset = ElectricityMapsLikeProvider(horizon_hours=24 * 30, seed=0)
    rows = []
    for key in dataset.region_keys:
        series = dataset.series_for(key)
        region = series.region
        rows.append(
            [
                region.name,
                region.aws_code,
                series.mean_carbon_intensity(),
                series.mean_ewif(),
                series.mean_wue(),
                series.wsf,
                series.mean_water_intensity(),
            ]
        )
    print(format_table(
        ["region", "aws_code", "carbon_gCO2_kwh", "ewif_L_kwh", "wue_L_kwh", "wsf", "water_intensity"],
        rows,
        title="Region catalog (30-day synthetic averages)",
    ))
    return 0


def _cmd_workloads() -> int:
    rows = [
        [w.name, w.suite, w.domain, w.mean_execution_time_s, w.mean_utilization, w.package_gb]
        for w in WORKLOAD_PROFILES.values()
    ]
    print(format_table(
        ["workload", "suite", "domain", "mean_exec_s", "utilization", "package_gb"],
        rows,
        title="Workload profiles (paper Table 1)",
    ))
    return 0


def _cmd_scenarios() -> int:
    rows = [
        [s.name, s.description, s.default_rate_per_hour, s.default_duration_days,
         s.chaos or "-"]
        for s in SCENARIOS.values()
    ]
    print(format_table(
        ["scenario", "description", "default_rate_per_h", "default_days", "chaos"],
        rows,
        title="Workload scenario library",
    ))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis.parallel import SweepPoint, run_sweep

    policies = args.policies or list(available_schedulers())
    points = [
        SweepPoint(
            scheduler=policy,
            trace_kind=args.trace,
            rate_per_hour=args.jobs_per_hour,
            duration_days=args.hours / 24.0,
            delay_tolerance=args.tolerance,
            servers_per_region=args.servers,
            scheduling_interval_s=args.interval,
            engine="stream",
            seed=seed,
        )
        for seed in args.seeds
        for policy in policies
    ]
    if args.transport is not None:
        outcomes = run_sweep(
            points,
            workers=args.workers,
            transport=args.transport,
            chunks_per_slab=args.chunks_per_slab,
            chunk_size=args.chunk_size,
            checkpoint_dir=args.checkpoint_dir,
        )
    else:
        outcomes = run_sweep(points, workers=args.workers, fused=args.fused)
    rows = [
        [
            outcome.point.scheduler,
            outcome.point.seed,
            outcome.num_jobs,
            f"{outcome.total_carbon_g / 1000.0:.2f}",
            f"{outcome.total_water_l:.2f}",
            f"{outcome.mean_service_ratio:.4f}",
            f"{outcome.violation_fraction:.4f}",
            "-" if outcome.digest is None else f"{outcome.digest:08x}",
        ]
        for outcome in outcomes
    ]
    mode = f"fabric/{args.transport}" if args.transport else (
        "fused pool" if args.fused else "pool"
    )
    print(format_table(
        ["policy", "seed", "jobs", "carbon_kg", "water_l",
         "service_ratio", "violations", "digest"],
        rows,
        title=f"Sweep: {args.trace} × {len(points)} cells ({mode})",
    ))
    if args.report:
        import json

        payload = [
            {
                "scheduler": outcome.point.scheduler,
                "seed": outcome.point.seed,
                "num_jobs": outcome.num_jobs,
                "total_carbon_g": outcome.total_carbon_g,
                "total_water_l": outcome.total_water_l,
                "mean_service_ratio": outcome.mean_service_ratio,
                "violation_fraction": outcome.violation_fraction,
                "digest": outcome.digest,
            }
            for outcome in outcomes
        ]
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump({"trace": args.trace, "outcomes": payload}, handle, indent=2)
        print(f"report written to {args.report}")
    return 0


def _cmd_shard_worker(args: argparse.Namespace) -> int:
    from repro.analysis.fabric import run_shard_worker

    host, _, port = args.connect.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(f"--connect wants HOST:PORT, got {args.connect!r}")
    completed = run_shard_worker(
        host,
        int(port),
        args.checkpoint_dir,
        worker=args.worker,
        heartbeat_interval=args.heartbeat_interval,
        timeout=args.timeout,
        retries=args.retries,
    )
    print(f"shard worker done: {completed} shard(s) completed")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "checkpoint":
        return _cmd_checkpoint(args)
    if args.command == "resume":
        return _cmd_resume(args)
    if args.command == "replay":
        return _cmd_replay(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "shard-worker":
        return _cmd_shard_worker(args)
    if args.command == "regions":
        return _cmd_regions()
    if args.command == "workloads":
        return _cmd_workloads()
    if args.command == "scenarios":
        return _cmd_scenarios()
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover
