"""Job description consumed by the simulator and every scheduler."""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping

from repro._validation import ensure_non_negative, ensure_positive

__all__ = ["Job"]


@dataclasses.dataclass(frozen=True)
class Job:
    """A batch job submitted to the geo-distributed cluster.

    The fields mirror what WaterWise's Optimization Decision Controller holds
    for each incoming job (paper Sec. 4): metadata, the home region where the
    user submitted it, and the *current mean estimates* of execution time and
    energy collected from previous executions of the same workload.  Those
    estimates can differ from the realized values; the simulator keeps the
    realized values in :attr:`true_execution_time` / :attr:`true_energy_kwh`
    and uses them for footprint accounting, while schedulers only ever see the
    estimates.

    Attributes
    ----------
    job_id:
        Unique, monotonically increasing identifier within a trace.
    workload:
        Benchmark name (one of the paper's Table 1 workloads).
    arrival_time:
        Submission time in seconds from the start of the trace.
    execution_time:
        Estimated execution time in seconds (what the scheduler sees).
    energy_kwh:
        Estimated IT energy of the job in kWh (what the scheduler sees).
    home_region:
        Region key where the job was submitted.
    package_gb:
        Size of the execution files/dependencies that must be shipped if the
        job runs away from home.
    servers_required:
        Number of servers the job occupies while running (capacity units).
    true_execution_time / true_energy_kwh:
        Realized values used by the simulator; default to the estimates.
    metadata:
        Free-form extra information (kept out of equality/hashing decisions).
    """

    job_id: int
    workload: str
    arrival_time: float
    execution_time: float
    energy_kwh: float
    home_region: str
    package_gb: float = 1.0
    servers_required: int = 1
    true_execution_time: float | None = None
    true_energy_kwh: float | None = None
    metadata: Mapping[str, Any] = dataclasses.field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.job_id < 0:
            raise ValueError("job_id must be non-negative")
        if not self.workload:
            raise ValueError("workload name must be non-empty")
        if not self.home_region:
            raise ValueError("home_region must be non-empty")
        ensure_non_negative(self.arrival_time, "arrival_time")
        ensure_positive(self.execution_time, "execution_time")
        ensure_positive(self.energy_kwh, "energy_kwh")
        ensure_non_negative(self.package_gb, "package_gb")
        if self.servers_required < 1:
            raise ValueError("servers_required must be >= 1")
        if self.true_execution_time is not None:
            ensure_positive(self.true_execution_time, "true_execution_time")
        if self.true_energy_kwh is not None:
            ensure_positive(self.true_energy_kwh, "true_energy_kwh")

    # -- realized values ----------------------------------------------------------
    @property
    def realized_execution_time(self) -> float:
        """Execution time the simulator charges (falls back to the estimate)."""
        return self.execution_time if self.true_execution_time is None else self.true_execution_time

    @property
    def realized_energy_kwh(self) -> float:
        """Energy the simulator charges (falls back to the estimate)."""
        return self.energy_kwh if self.true_energy_kwh is None else self.true_energy_kwh

    def with_arrival_time(self, arrival_time: float) -> "Job":
        """Copy of the job with a different arrival time (trace rescaling)."""
        return dataclasses.replace(self, arrival_time=float(arrival_time))

    def max_service_time(self, delay_tolerance: float) -> float:
        """Maximum allowed service time under a delay tolerance (paper Sec. 3).

        A delay tolerance of 0.25 (25%) allows the service time — queueing,
        transfer and execution — to reach ``1.25 ×`` the job's execution time.
        """
        if delay_tolerance < 0:
            raise ValueError("delay_tolerance must be >= 0")
        return (1.0 + delay_tolerance) * self.execution_time
