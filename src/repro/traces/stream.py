"""Chunked trace sources: bounded-memory, chunk-size-invariant job streams.

The one-shot pipeline materializes a whole workload before simulating it —
``Trace`` holds every :class:`~repro.traces.job.Job`, ``JobArrays`` copies it
into columns — which caps runs at the trace that fits in memory.  This module
is the streaming counterpart: a :class:`TraceSource` yields the same workload
as a sequence of fixed-size, time-ordered :class:`JobChunk` columnar blocks,
so the engine only ever holds one chunk (plus the in-flight jobs) at a time.

Two invariants make streams interchangeable with materialized traces:

* **Chunk-size invariance** — a source yields *byte-identical* jobs at any
  chunk size (including "one chunk of everything").  Generators achieve this
  by deriving every random draw from absolute coordinates instead of call
  order: arrival times come from fixed one-hour *time slabs* (slab ``k`` is a
  pure function of ``(seed, k)``) and per-job attributes from fixed
  :data:`ATTR_BLOCK`-sized *job-index blocks* (block ``b`` covering absolute
  job indices ``[b·B, (b+1)·B)`` is a pure function of ``(seed, b)``).
  Chunking is mere re-batching of that deterministic stream.
* **Time order** — arrivals are globally sorted across chunks, so a consumer
  that has seen a chunk ending at arrival ``A`` knows every unseen job
  arrives at or after ``A`` (the streaming engine's safety watermark).

``skip_jobs`` supports resume-from-checkpoint: a source restarted with
``skip_jobs=n`` replays the identical stream minus its first ``n`` jobs, and
generators skip the attribute blocks that fall entirely inside the skipped
prefix instead of regenerating them.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Iterator

import numpy as np

from repro.traces.job import Job
from repro.traces.trace import Trace

__all__ = [
    "ATTR_BLOCK",
    "SLAB_S",
    "JobChunk",
    "TraceSource",
    "StreamingTraceGenerator",
    "TraceView",
    "ColumnSource",
    "BlockGather",
]

#: Chunk-format column names a :class:`ColumnSource` carries (the
#: :class:`JobChunk` array fields, in field order).
CHUNK_COLUMNS = (
    "job_id",
    "arrival",
    "exec_est",
    "exec_real",
    "energy_est",
    "energy_real",
    "home_idx",
    "workload_idx",
    "package_gb",
    "servers",
)

#: Size of the job-index blocks attribute generation is keyed on.  Part of a
#: generator's deterministic output contract: changing it changes every
#: generated trace.
ATTR_BLOCK = 4096

#: Length of the arrival-time slabs (seconds).  Same contract as
#: :data:`ATTR_BLOCK`.
SLAB_S = 3600.0

#: Column names of the per-job attribute arrays a generator block produces.
ATTR_COLUMNS = (
    "exec_est",
    "exec_real",
    "energy_est",
    "energy_real",
    "home_idx",
    "workload_idx",
    "package_gb",
    "servers",
)


@dataclasses.dataclass(frozen=True)
class JobChunk:
    """A columnar block of consecutive jobs from a :class:`TraceSource`.

    All arrays share the same length; ``home_idx`` / ``workload_idx`` are
    integer codes into the chunk's ``region_keys`` / ``workload_names``
    vocabularies (every chunk of one source uses the same vocabularies).
    ``job_id`` equals the job's absolute index in the stream and ``arrival``
    is sorted within the chunk and across consecutive chunks.
    """

    region_keys: tuple[str, ...]
    workload_names: tuple[str, ...]
    job_id: np.ndarray
    arrival: np.ndarray
    exec_est: np.ndarray
    exec_real: np.ndarray
    energy_est: np.ndarray
    energy_real: np.ndarray
    home_idx: np.ndarray
    workload_idx: np.ndarray
    package_gb: np.ndarray
    servers: np.ndarray

    @property
    def n(self) -> int:
        return len(self.job_id)

    def legacy_columns(self) -> dict[str, np.ndarray | tuple]:
        """This chunk in :meth:`Trace.to_columns` format (string fields as tuples)."""
        return {
            "job_id": self.job_id,
            "arrival_time": self.arrival,
            "execution_time": self.exec_est,
            "realized_execution_time": self.exec_real,
            "energy_kwh": self.energy_est,
            "realized_energy_kwh": self.energy_real,
            "package_gb": self.package_gb,
            "servers_required": self.servers,
            "home_region": tuple(self.region_keys[i] for i in self.home_idx),
            "workload": tuple(self.workload_names[i] for i in self.workload_idx),
        }

    def jobs(self) -> list[Job]:
        """Materialize :class:`Job` objects (for the scalar world and tests)."""
        return [
            Job(
                job_id=int(self.job_id[i]),
                workload=self.workload_names[self.workload_idx[i]],
                arrival_time=float(self.arrival[i]),
                execution_time=float(self.exec_est[i]),
                energy_kwh=float(self.energy_est[i]),
                home_region=self.region_keys[self.home_idx[i]],
                package_gb=float(self.package_gb[i]),
                servers_required=int(self.servers[i]),
                true_execution_time=float(self.exec_real[i]),
                true_energy_kwh=float(self.energy_real[i]),
            )
            for i in range(self.n)
        ]


def _concat_columns(chunks: list[JobChunk]) -> dict[str, np.ndarray | tuple]:
    """Concatenate chunks of one source into one legacy column dictionary."""
    if not chunks:
        return {
            "job_id": np.zeros(0, dtype=np.int64),
            "arrival_time": np.zeros(0),
            "execution_time": np.zeros(0),
            "realized_execution_time": np.zeros(0),
            "energy_kwh": np.zeros(0),
            "realized_energy_kwh": np.zeros(0),
            "package_gb": np.zeros(0),
            "servers_required": np.zeros(0, dtype=np.int64),
            "home_region": (),
            "workload": (),
        }
    vocab = (chunks[0].region_keys, chunks[0].workload_names)
    for chunk in chunks:
        if (chunk.region_keys, chunk.workload_names) != vocab:
            raise ValueError("chunks of one source must share their vocabularies")
    columns: dict[str, np.ndarray | tuple] = {}
    first = chunks[0].legacy_columns()
    rest = [chunk.legacy_columns() for chunk in chunks[1:]]
    for name, column in first.items():
        if isinstance(column, tuple):
            merged: tuple = column
            for other in rest:
                merged = merged + other[name]
            columns[name] = merged
        else:
            columns[name] = np.concatenate([column, *(other[name] for other in rest)])
    return columns


class TraceSource:
    """Base class of chunked job streams.

    Subclasses provide ``name`` (family label), ``seed``, ``horizon_s`` (an
    upper bound on arrival times, used for dataset sizing) and
    :meth:`iter_chunks`.  Iterating is restartable: every
    :meth:`iter_chunks` call replays the identical stream from the
    beginning (minus ``skip_jobs``).
    """

    name: str = "stream"
    seed: int = 0
    horizon_s: float = 0.0
    #: Display relabel (e.g. the scenario family).  ``name`` stays the
    #: *provenance* label generators stamp into :meth:`job_metadata`, so a
    #: relabel is purely cosmetic.
    label: str | None = None

    @property
    def trace_name(self) -> str:
        """Name materialized traces (and results) carry."""
        return f"{self.label or self.name}-{int(self.seed)}"

    def iter_chunks(
        self, chunk_size: int | None = None, skip_jobs: int = 0
    ) -> Iterator[JobChunk]:
        """Yield the stream in blocks of ``chunk_size`` jobs (``None`` = all).

        ``skip_jobs`` drops the first jobs of the stream without changing the
        remainder (checkpoint resume).
        """
        raise NotImplementedError

    def job_metadata(self, workload: str) -> dict:
        """:attr:`Job.metadata` entries for a job of ``workload`` (provenance tags)."""
        return {}

    def materialize(self, name: str | None = None) -> Trace:
        """The whole stream as a :class:`Trace` (columns only, no ``Job`` list).

        The trace carries the source's declared horizon and metadata hook, so
        object-world consumers and resource sizing behave identically whether
        they hold the stream or the materialized trace.
        """
        columns = _concat_columns(list(self.iter_chunks()))
        return Trace.from_columns(
            columns,
            name=name or self.trace_name,
            horizon_hint_s=self.horizon_s,
            job_metadata=self.job_metadata,
        )

    def count_jobs(self) -> int:
        """Number of jobs in the stream (consumes one full, bounded-memory pass)."""
        return sum(chunk.n for chunk in self.iter_chunks(chunk_size=ATTR_BLOCK))


class TraceView(TraceSource):
    """A :class:`TraceSource` over an already-materialized :class:`Trace`."""

    def __init__(self, trace: Trace) -> None:
        self.trace = trace
        self.name = trace.name
        self.seed = 0
        self.horizon_s = trace.declared_horizon_s

    @property
    def trace_name(self) -> str:
        return self.trace.name

    def materialize(self, name: str | None = None) -> Trace:
        return self.trace

    def _codes(self) -> tuple[tuple[str, ...], tuple[str, ...], np.ndarray, np.ndarray]:
        """Vocabularies + per-job code arrays, computed once (the trace is immutable)."""
        cached = getattr(self, "_codes_cache", None)
        if cached is None:
            columns = self.trace.to_columns()
            n = len(columns["job_id"])
            homes = columns["home_region"]
            workloads = columns["workload"]
            region_keys = tuple(dict.fromkeys(homes))
            workload_names = tuple(dict.fromkeys(workloads))
            region_code = {key: i for i, key in enumerate(region_keys)}
            workload_code = {name: i for i, name in enumerate(workload_names)}
            home_idx = np.fromiter(
                (region_code[h] for h in homes), dtype=np.int64, count=n
            )
            workload_idx = np.fromiter(
                (workload_code[w] for w in workloads), dtype=np.int64, count=n
            )
            cached = (region_keys, workload_names, home_idx, workload_idx)
            self._codes_cache = cached
        return cached

    def iter_chunks(
        self, chunk_size: int | None = None, skip_jobs: int = 0
    ) -> Iterator[JobChunk]:
        columns = self.trace.to_columns()
        n = len(columns["job_id"])
        region_keys, workload_names, home_idx, workload_idx = self._codes()
        start = int(skip_jobs)
        if start < 0:
            raise ValueError("skip_jobs must be >= 0")
        size = n - start if chunk_size is None else int(chunk_size)
        if chunk_size is not None and size < 1:
            raise ValueError("chunk_size must be >= 1")
        while start < n:
            stop = n if chunk_size is None else min(start + size, n)
            yield JobChunk(
                region_keys=region_keys,
                workload_names=workload_names,
                job_id=np.asarray(columns["job_id"][start:stop], dtype=np.int64),
                arrival=columns["arrival_time"][start:stop],
                exec_est=columns["execution_time"][start:stop],
                exec_real=columns["realized_execution_time"][start:stop],
                energy_est=columns["energy_kwh"][start:stop],
                energy_real=columns["realized_energy_kwh"][start:stop],
                home_idx=home_idx[start:stop],
                workload_idx=workload_idx[start:stop],
                package_gb=columns["package_gb"][start:stop],
                servers=np.asarray(columns["servers_required"][start:stop], dtype=np.int64),
            )
            start = stop


class ColumnSource(TraceSource):
    """A :class:`TraceSource` over pre-assembled chunk-format column arrays.

    The arrays are used as-is — no copies — so the columns may be views into
    a ``multiprocessing.shared_memory`` segment: the parallel sweep fabric
    packs a workload's columns once and every worker process streams
    zero-copy slices of the shared buffer instead of regenerating the trace.
    ``trace_name`` metadata is carried explicitly so results are labelled
    exactly like the originating generator's.

    The caller must keep the backing buffer alive (and, for shared memory,
    attached) for as long as chunks from this source are in use.
    """

    def __init__(
        self,
        columns: dict[str, np.ndarray],
        region_keys: tuple[str, ...],
        workload_names: tuple[str, ...],
        name: str = "columns",
        seed: int = 0,
        horizon_s: float = 0.0,
        label: str | None = None,
    ) -> None:
        missing = set(CHUNK_COLUMNS) - set(columns)
        if missing:
            raise ValueError(f"columns missing chunk fields: {sorted(missing)}")
        n = len(columns["job_id"])
        for field in CHUNK_COLUMNS:
            if len(columns[field]) != n:
                raise ValueError(f"column {field!r} length differs from job_id's")
        self._columns = columns
        self._n = n
        self.region_keys = tuple(region_keys)
        self.workload_names = tuple(workload_names)
        self.name = name
        self.seed = int(seed)
        self.horizon_s = float(horizon_s)
        self.label = label

    def count_jobs(self) -> int:
        return self._n

    def iter_chunks(
        self, chunk_size: int | None = None, skip_jobs: int = 0
    ) -> Iterator[JobChunk]:
        start = int(skip_jobs)
        if start < 0:
            raise ValueError("skip_jobs must be >= 0")
        if chunk_size is not None and int(chunk_size) < 1:
            raise ValueError("chunk_size must be >= 1")
        n = self._n
        size = n - start if chunk_size is None else int(chunk_size)
        columns = self._columns
        while start < n:
            stop = n if chunk_size is None else min(start + size, n)
            yield JobChunk(
                region_keys=self.region_keys,
                workload_names=self.workload_names,
                **{field: columns[field][start:stop] for field in CHUNK_COLUMNS},
            )
            start = stop


class BlockGather:
    """Sequential gather over :data:`ATTR_BLOCK`-keyed attribute blocks.

    ``block_fn(b)`` must return a dict of equal-length (:data:`ATTR_BLOCK`)
    arrays for job-index block ``b`` as a pure function of ``b``.  The gather
    caches the most recent block, which is all a sorted stream ever needs.
    """

    def __init__(self, block_fn: Callable[[int], dict[str, np.ndarray]]) -> None:
        self._block_fn = block_fn
        self._index: int | None = None
        self._block: dict[str, np.ndarray] | None = None

    def rows(self, start: int, stop: int) -> dict[str, np.ndarray]:
        """Attribute rows for absolute job indices ``[start, stop)``."""
        parts: dict[str, list[np.ndarray]] = {}
        i = int(start)
        stop = int(stop)
        while i < stop:
            b = i // ATTR_BLOCK
            if self._index != b:
                self._block = self._block_fn(b)
                self._index = b
            lo = i - b * ATTR_BLOCK
            hi = min(stop - b * ATTR_BLOCK, ATTR_BLOCK)
            for key, column in self._block.items():
                parts.setdefault(key, []).append(column[lo:hi])
            i = b * ATTR_BLOCK + hi
        return {
            key: (blocks[0] if len(blocks) == 1 else np.concatenate(blocks))
            for key, blocks in parts.items()
        }


class StreamingTraceGenerator(TraceSource):
    """Generator base: slab-wise arrivals + block-wise attributes → chunks.

    Subclass contract (beyond :class:`TraceSource`):

    * :meth:`_arrival_slabs` — iterator of sorted per-slab arrival arrays
      whose concatenation is globally sorted; slab ``k`` must be a pure
      function of the generator's parameters and ``k``;
    * :meth:`_attribute_block` — per-job attribute arrays
      (:data:`ATTR_COLUMNS`, length :data:`ATTR_BLOCK`) for job-index block
      ``b``, a pure function of the generator's parameters and ``b``;
    * ``chunk_region_keys`` / ``chunk_workload_names`` — the code
      vocabularies the attribute blocks index into.
    """

    chunk_region_keys: tuple[str, ...] = ()
    chunk_workload_names: tuple[str, ...] = ()

    def _arrival_slabs(self) -> Iterator[np.ndarray]:
        raise NotImplementedError

    def _attribute_block(self, block_index: int) -> dict[str, np.ndarray]:
        raise NotImplementedError

    # -- streaming --------------------------------------------------------------------
    def iter_chunks(
        self, chunk_size: int | None = None, skip_jobs: int = 0
    ) -> Iterator[JobChunk]:
        if chunk_size is not None and int(chunk_size) < 1:
            raise ValueError("chunk_size must be >= 1")
        skip = int(skip_jobs)
        if skip < 0:
            raise ValueError("skip_jobs must be >= 0")
        size = None if chunk_size is None else int(chunk_size)
        gather = BlockGather(self._attribute_block)
        region_keys = tuple(self.chunk_region_keys)
        workload_names = tuple(self.chunk_workload_names)

        buffered: list[dict[str, np.ndarray]] = []
        count = 0

        def build(rows: dict[str, np.ndarray]) -> JobChunk:
            return JobChunk(
                region_keys=region_keys,
                workload_names=workload_names,
                job_id=rows["job_id"],
                arrival=rows["arrival"],
                exec_est=rows["exec_est"],
                exec_real=rows["exec_real"],
                energy_est=rows["energy_est"],
                energy_real=rows["energy_real"],
                home_idx=rows["home_idx"].astype(np.int64, copy=False),
                workload_idx=rows["workload_idx"].astype(np.int64, copy=False),
                package_gb=rows["package_gb"],
                servers=rows["servers"].astype(np.int64, copy=False),
            )

        def merge() -> dict[str, np.ndarray]:
            if len(buffered) == 1:
                return buffered[0]
            return {
                key: np.concatenate([part[key] for part in buffered])
                for key in buffered[0]
            }

        next_id = 0
        for slab in self._arrival_slabs():
            n = len(slab)
            if n == 0:
                continue
            first_id = next_id
            next_id += n
            if next_id <= skip:
                continue  # fully inside the skipped prefix: no attribute work
            if first_id < skip:
                cut = skip - first_id
                slab = slab[cut:]
                first_id += cut
            rows = gather.rows(first_id, first_id + len(slab))
            rows["job_id"] = np.arange(first_id, first_id + len(slab), dtype=np.int64)
            rows["arrival"] = np.asarray(slab, dtype=float)
            buffered.append(rows)
            count += len(slab)
            while size is not None and count >= size:
                merged = merge()
                head = {key: column[:size] for key, column in merged.items()}
                tail = {key: column[size:] for key, column in merged.items()}
                yield build(head)
                count -= size
                buffered = [tail] if count else []
        if count:
            yield build(merge())
