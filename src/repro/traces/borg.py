"""Google-Borg-like synthetic trace generator.

The paper replays a ten-day slice of the Google Borg cluster trace
(≈ 230,000 jobs, i.e. roughly 960 jobs/hour) to drive job submissions.  The
trace itself is only used for *when* jobs arrive and *where from*; what runs
is one of the Table 1 benchmarks.  This generator reproduces those marginal
statistics:

* a diurnal non-homogeneous Poisson arrival process,
* benchmark selection with a configurable (default mildly skewed) mix,
* execution times sampled from each benchmark's log-normal profile and
  energies from the server power model,
* home regions drawn from a configurable distribution over the evaluation
  regions,
* optional estimation error: the scheduler-visible execution time / energy
  estimates deviate from the realized values by a configurable relative
  error, mirroring the paper's "estimates can be inaccurate" remark.

The default scale is much smaller than ten days × 230k jobs so that the test
suite and benchmarks run in seconds; the full paper scale is a parameter
change (``duration_days=10, rate_per_hour=960``).

The generator is a chunked :class:`~repro.traces.stream.TraceSource`:
arrivals are drawn per fixed one-hour time slab and job attributes per fixed
4096-job index block — each a pure function of the seed and the slab/block
index — so the stream is *chunk-size-invariant* (byte-identical jobs at any
chunk size) and :meth:`~BorgTraceGenerator.generate` builds its
:class:`~repro.traces.trace.Trace` directly from columns, with no
intermediate per-job object list.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence

import numpy as np

from repro._validation import ensure_non_negative, ensure_positive
from repro.regions.catalog import DEFAULT_REGION_KEYS
from repro.sustainability.embodied import DEFAULT_SERVER, ServerSpec
from repro.traces.arrival import DiurnalPoissonProcess
from repro.traces.stream import ATTR_BLOCK, StreamingTraceGenerator
from repro.traces.trace import Trace
from repro.traces.workloads import WORKLOAD_PROFILES

__all__ = ["BorgTraceGenerator"]

#: Entropy tags separating the generator's independent random streams.
_ARRIVAL_STREAM = 0xA121
_ATTR_STREAM = 0xA7712


class BorgTraceGenerator(StreamingTraceGenerator):
    """Generate Borg-like traces of batch jobs.

    Parameters
    ----------
    rate_per_hour:
        Average submission rate.  The paper's Borg slice is ≈ 960 jobs/hour;
        the default is scaled down for fast simulation.
    duration_days:
        Trace length in days.
    seed:
        RNG seed; a given (seed, parameters) pair is fully reproducible.
    region_keys / region_weights:
        Home-region distribution of submitted jobs.  Defaults to the five
        evaluation regions with uniform weights.
    workload_weights:
        Relative weight of each Table 1 benchmark in the mix (uniform by
        default).
    estimate_error:
        Relative error of the scheduler-visible estimates: the realized
        execution time / energy are drawn within ``±estimate_error`` of the
        estimates (0 disables the mismatch).
    diurnal_amplitude:
        Day/night swing of the arrival rate (0 = flat).
    server:
        Server model used to convert utilization × time into energy.
    """

    def __init__(
        self,
        rate_per_hour: float = 120.0,
        duration_days: float = 1.0,
        seed: int = 0,
        region_keys: Sequence[str] | None = None,
        region_weights: Sequence[float] | None = None,
        workload_weights: Mapping[str, float] | None = None,
        estimate_error: float = 0.10,
        diurnal_amplitude: float = 0.5,
        server: ServerSpec = DEFAULT_SERVER,
    ) -> None:
        self.rate_per_hour = ensure_positive(rate_per_hour, "rate_per_hour")
        self.duration_days = ensure_positive(duration_days, "duration_days")
        self.seed = int(seed)
        self.region_keys = list(region_keys) if region_keys is not None else list(DEFAULT_REGION_KEYS)
        if not self.region_keys:
            raise ValueError("region_keys must not be empty")
        if region_weights is None:
            self.region_weights = np.full(len(self.region_keys), 1.0 / len(self.region_keys))
        else:
            weights = np.asarray(region_weights, dtype=float)
            if len(weights) != len(self.region_keys):
                raise ValueError("region_weights must match region_keys in length")
            if np.any(weights < 0) or weights.sum() <= 0:
                raise ValueError("region_weights must be non-negative and sum to a positive value")
            self.region_weights = weights / weights.sum()
        self.workload_names = sorted(WORKLOAD_PROFILES)
        if workload_weights is None:
            self.workload_weights = np.full(len(self.workload_names), 1.0 / len(self.workload_names))
        else:
            weights = np.array([float(workload_weights.get(name, 0.0)) for name in self.workload_names])
            if np.any(weights < 0) or weights.sum() <= 0:
                raise ValueError("workload_weights must be non-negative with a positive sum")
            self.workload_weights = weights / weights.sum()
        self.estimate_error = ensure_non_negative(estimate_error, "estimate_error")
        if self.estimate_error >= 1.0:
            raise ValueError("estimate_error must be < 1.0")
        self.diurnal_amplitude = float(diurnal_amplitude)
        self.server = server
        self.name = "borg-like"

    # -- generation ------------------------------------------------------------------
    @property
    def horizon_s(self) -> float:
        return self.duration_days * 86_400.0

    @property
    def chunk_region_keys(self) -> tuple[str, ...]:
        return tuple(self.region_keys)

    @property
    def chunk_workload_names(self) -> tuple[str, ...]:
        return tuple(self.workload_names)

    def _arrival_process(self) -> DiurnalPoissonProcess:
        return DiurnalPoissonProcess(self.rate_per_hour, amplitude=self.diurnal_amplitude)

    def _arrival_slabs(self) -> Iterator[np.ndarray]:
        return self._arrival_process().iter_slab_arrivals(
            self.horizon_s, (self.seed, _ARRIVAL_STREAM)
        )

    def _workload_tables(self) -> dict[str, np.ndarray]:
        """Per-workload sampling constants, aligned with ``workload_names``."""
        tables = getattr(self, "_workload_tables_cache", None)
        if tables is None:
            profiles = [WORKLOAD_PROFILES[name] for name in self.workload_names]
            sigma2 = np.array(
                [np.log(1.0 + p.cv_execution_time**2) for p in profiles]
            )
            mu = np.array(
                [np.log(p.mean_execution_time_s) for p in profiles]
            ) - sigma2 / 2.0
            tables = {
                "mu": mu,
                "sigma": np.sqrt(sigma2),
                "power_w": np.array(
                    [self.server.power_at_utilization(p.mean_utilization) for p in profiles]
                ),
                "package_gb": np.array([p.package_gb for p in profiles]),
            }
            self._workload_tables_cache = tables
        return tables

    def _attribute_block(self, block_index: int) -> dict[str, np.ndarray]:
        """Attributes of job-index block ``b`` (pure function of seed + ``b``).

        The draw order within a block is fixed — workload, execution-time
        normals, estimate-error factors, home region — so the block's content
        is independent of how many of its rows any chunking actually uses.
        """
        rng = np.random.default_rng(
            np.random.SeedSequence([self.seed, _ATTR_STREAM, block_index])
        )
        tables = self._workload_tables()
        workload_idx = rng.choice(
            len(self.workload_names), size=ATTR_BLOCK, p=self.workload_weights
        ).astype(np.int64)
        normals = rng.standard_normal(ATTR_BLOCK)
        if self.estimate_error > 0.0:
            time_factor = 1.0 + rng.uniform(
                -self.estimate_error, self.estimate_error, size=ATTR_BLOCK
            )
            energy_factor = 1.0 + rng.uniform(
                -self.estimate_error, self.estimate_error, size=ATTR_BLOCK
            )
        else:
            time_factor = energy_factor = np.ones(ATTR_BLOCK)
        home_idx = rng.choice(
            len(self.region_keys), size=ATTR_BLOCK, p=self.region_weights
        ).astype(np.int64)
        exec_est = np.exp(
            tables["mu"][workload_idx] + tables["sigma"][workload_idx] * normals
        )
        energy_est = tables["power_w"][workload_idx] * exec_est / 3600.0 / 1000.0
        return {
            "workload_idx": workload_idx,
            "home_idx": home_idx,
            "exec_est": exec_est,
            "exec_real": exec_est * time_factor,
            "energy_est": energy_est,
            "energy_real": energy_est * energy_factor,
            "package_gb": tables["package_gb"][workload_idx],
            "servers": np.ones(ATTR_BLOCK, dtype=np.int64),
        }

    def job_metadata(self, workload: str) -> dict:
        return {"suite": WORKLOAD_PROFILES[workload].suite, "generator": self.name}

    def generate(self) -> Trace:
        """Generate the whole trace (columns only; ``Job`` objects stay lazy)."""
        return self.materialize()
