"""Google-Borg-like synthetic trace generator.

The paper replays a ten-day slice of the Google Borg cluster trace
(≈ 230,000 jobs, i.e. roughly 960 jobs/hour) to drive job submissions.  The
trace itself is only used for *when* jobs arrive and *where from*; what runs
is one of the Table 1 benchmarks.  This generator reproduces those marginal
statistics:

* a diurnal non-homogeneous Poisson arrival process,
* benchmark selection with a configurable (default mildly skewed) mix,
* execution times sampled from each benchmark's log-normal profile and
  energies from the server power model,
* home regions drawn from a configurable distribution over the evaluation
  regions,
* optional estimation error: the scheduler-visible execution time / energy
  estimates deviate from the realized values by a configurable relative
  error, mirroring the paper's "estimates can be inaccurate" remark.

The default scale is much smaller than ten days × 230k jobs so that the test
suite and benchmarks run in seconds; the full paper scale is a parameter
change (``duration_days=10, rate_per_hour=960``).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro._validation import ensure_non_negative, ensure_positive
from repro.regions.catalog import DEFAULT_REGION_KEYS
from repro.sustainability.embodied import DEFAULT_SERVER, ServerSpec
from repro.traces.arrival import DiurnalPoissonProcess
from repro.traces.job import Job
from repro.traces.trace import Trace
from repro.traces.workloads import WORKLOAD_PROFILES

__all__ = ["BorgTraceGenerator"]


class BorgTraceGenerator:
    """Generate Borg-like traces of batch jobs.

    Parameters
    ----------
    rate_per_hour:
        Average submission rate.  The paper's Borg slice is ≈ 960 jobs/hour;
        the default is scaled down for fast simulation.
    duration_days:
        Trace length in days.
    seed:
        RNG seed; a given (seed, parameters) pair is fully reproducible.
    region_keys / region_weights:
        Home-region distribution of submitted jobs.  Defaults to the five
        evaluation regions with uniform weights.
    workload_weights:
        Relative weight of each Table 1 benchmark in the mix (uniform by
        default).
    estimate_error:
        Relative error of the scheduler-visible estimates: the realized
        execution time / energy are drawn within ``±estimate_error`` of the
        estimates (0 disables the mismatch).
    diurnal_amplitude:
        Day/night swing of the arrival rate (0 = flat).
    server:
        Server model used to convert utilization × time into energy.
    """

    def __init__(
        self,
        rate_per_hour: float = 120.0,
        duration_days: float = 1.0,
        seed: int = 0,
        region_keys: Sequence[str] | None = None,
        region_weights: Sequence[float] | None = None,
        workload_weights: Mapping[str, float] | None = None,
        estimate_error: float = 0.10,
        diurnal_amplitude: float = 0.5,
        server: ServerSpec = DEFAULT_SERVER,
    ) -> None:
        self.rate_per_hour = ensure_positive(rate_per_hour, "rate_per_hour")
        self.duration_days = ensure_positive(duration_days, "duration_days")
        self.seed = int(seed)
        self.region_keys = list(region_keys) if region_keys is not None else list(DEFAULT_REGION_KEYS)
        if not self.region_keys:
            raise ValueError("region_keys must not be empty")
        if region_weights is None:
            self.region_weights = np.full(len(self.region_keys), 1.0 / len(self.region_keys))
        else:
            weights = np.asarray(region_weights, dtype=float)
            if len(weights) != len(self.region_keys):
                raise ValueError("region_weights must match region_keys in length")
            if np.any(weights < 0) or weights.sum() <= 0:
                raise ValueError("region_weights must be non-negative and sum to a positive value")
            self.region_weights = weights / weights.sum()
        self.workload_names = sorted(WORKLOAD_PROFILES)
        if workload_weights is None:
            self.workload_weights = np.full(len(self.workload_names), 1.0 / len(self.workload_names))
        else:
            weights = np.array([float(workload_weights.get(name, 0.0)) for name in self.workload_names])
            if np.any(weights < 0) or weights.sum() <= 0:
                raise ValueError("workload_weights must be non-negative with a positive sum")
            self.workload_weights = weights / weights.sum()
        self.estimate_error = ensure_non_negative(estimate_error, "estimate_error")
        if self.estimate_error >= 1.0:
            raise ValueError("estimate_error must be < 1.0")
        self.diurnal_amplitude = float(diurnal_amplitude)
        self.server = server
        self.name = "borg-like"

    # -- generation ------------------------------------------------------------------
    @property
    def horizon_s(self) -> float:
        return self.duration_days * 86_400.0

    def _arrival_process(self) -> DiurnalPoissonProcess:
        return DiurnalPoissonProcess(self.rate_per_hour, amplitude=self.diurnal_amplitude)

    def generate(self) -> Trace:
        """Generate the trace."""
        rng = np.random.default_rng(self.seed)
        arrivals = self._arrival_process().generate(self.horizon_s, rng)
        jobs = []
        for job_id, arrival in enumerate(arrivals):
            workload_name = self.workload_names[
                int(rng.choice(len(self.workload_names), p=self.workload_weights))
            ]
            profile = WORKLOAD_PROFILES[workload_name]
            estimate_time = profile.sample_execution_time(rng)
            estimate_energy = profile.energy_kwh(estimate_time, self.server)
            if self.estimate_error > 0.0:
                time_factor = 1.0 + rng.uniform(-self.estimate_error, self.estimate_error)
                energy_factor = 1.0 + rng.uniform(-self.estimate_error, self.estimate_error)
            else:
                time_factor = energy_factor = 1.0
            home = self.region_keys[int(rng.choice(len(self.region_keys), p=self.region_weights))]
            jobs.append(
                Job(
                    job_id=job_id,
                    workload=workload_name,
                    arrival_time=float(arrival),
                    execution_time=estimate_time,
                    energy_kwh=estimate_energy,
                    home_region=home,
                    package_gb=profile.package_gb,
                    true_execution_time=estimate_time * time_factor,
                    true_energy_kwh=estimate_energy * energy_factor,
                    metadata={"suite": profile.suite, "generator": self.name},
                )
            )
        return Trace(jobs, name=f"{self.name}-{self.seed}")
