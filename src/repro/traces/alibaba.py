"""Alibaba-like synthetic trace generator.

The paper's robustness study replays the Alibaba VM cloud trace, which has an
≈ 8.5× higher job-invocation rate than the Borg slice and a burstier
submission pattern.  :class:`AlibabaTraceGenerator` reuses the Borg generator
machinery with a bursty arrival process and that rate ratio by default, so the
two synthetic traces keep the same relative relationship as the originals.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro._validation import ensure_positive
from repro.sustainability.embodied import DEFAULT_SERVER, ServerSpec
from repro.traces.arrival import BurstyArrivalProcess
from repro.traces.borg import BorgTraceGenerator

__all__ = ["AlibabaTraceGenerator"]

#: Ratio of the Alibaba trace's invocation rate to the Borg trace's (paper Sec. 6).
ALIBABA_TO_BORG_RATE_RATIO = 8.5


class AlibabaTraceGenerator(BorgTraceGenerator):
    """Generate Alibaba-like traces: faster and burstier than Borg-like ones.

    Parameters mirror :class:`~repro.traces.borg.BorgTraceGenerator`; the
    default rate is ``8.5 ×`` the Borg default and arrivals come from a
    bursty process instead of a smooth diurnal one.
    """

    def __init__(
        self,
        rate_per_hour: float | None = None,
        duration_days: float = 1.0,
        seed: int = 0,
        region_keys: Sequence[str] | None = None,
        region_weights: Sequence[float] | None = None,
        workload_weights: Mapping[str, float] | None = None,
        estimate_error: float = 0.10,
        diurnal_amplitude: float = 0.3,
        bursts_per_day: float = 8.0,
        burst_duration_s: float = 1200.0,
        burst_multiplier: float = 4.0,
        server: ServerSpec = DEFAULT_SERVER,
    ) -> None:
        if rate_per_hour is None:
            rate_per_hour = 120.0 * ALIBABA_TO_BORG_RATE_RATIO
        super().__init__(
            rate_per_hour=rate_per_hour,
            duration_days=duration_days,
            seed=seed,
            region_keys=region_keys,
            region_weights=region_weights,
            workload_weights=workload_weights,
            estimate_error=estimate_error,
            diurnal_amplitude=diurnal_amplitude,
            server=server,
        )
        self.bursts_per_day = ensure_positive(bursts_per_day, "bursts_per_day")
        self.burst_duration_s = ensure_positive(burst_duration_s, "burst_duration_s")
        self.burst_multiplier = ensure_positive(burst_multiplier, "burst_multiplier")
        self.name = "alibaba-like"

    def _arrival_process(self) -> BurstyArrivalProcess:
        return BurstyArrivalProcess(
            self.rate_per_hour,
            amplitude=self.diurnal_amplitude,
            bursts_per_day=self.bursts_per_day,
            burst_duration_s=self.burst_duration_s,
            burst_multiplier=self.burst_multiplier,
        )
