"""Trace container: an immutable, time-ordered collection of jobs."""

from __future__ import annotations

import dataclasses
import json
from collections.abc import Callable, Iterable, Iterator, Sequence
from pathlib import Path

import numpy as np

from repro._validation import ensure_positive
from repro.traces.job import Job

__all__ = ["Trace"]


class Trace:
    """A time-ordered collection of :class:`~repro.traces.job.Job` objects.

    Jobs are sorted by arrival time at construction; the container is
    read-only afterwards.  Provides the filtering, windowing and rescaling
    operations the simulator and the benchmark harness need, plus JSON-lines
    (de)serialization so generated traces can be persisted and shared.
    """

    def __init__(self, jobs: Iterable[Job], name: str = "trace") -> None:
        self._jobs: tuple[Job, ...] = tuple(sorted(jobs, key=lambda j: (j.arrival_time, j.job_id)))
        self.name = str(name)
        ids = [job.job_id for job in self._jobs]
        if len(set(ids)) != len(ids):
            raise ValueError(f"trace {name!r} contains duplicate job ids")

    # -- basic container protocol ---------------------------------------------------
    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self._jobs)

    def __getitem__(self, index: int) -> Job:
        return self._jobs[index]

    def __repr__(self) -> str:
        horizon = self.horizon_s
        return f"Trace({self.name!r}, {len(self)} jobs, horizon {horizon / 3600.0:.1f} h)"

    @property
    def jobs(self) -> tuple[Job, ...]:
        return self._jobs

    @property
    def horizon_s(self) -> float:
        """Time of the last arrival (0 for an empty trace)."""
        return self._jobs[-1].arrival_time if self._jobs else 0.0

    # -- columnar view -----------------------------------------------------------------
    def to_columns(self) -> dict[str, np.ndarray | tuple]:
        """Columnar (structure-of-arrays) view of the trace, cached.

        One NumPy array (or tuple, for string fields) per job attribute,
        aligned with the trace's sorted job order.  The batch simulation
        engine builds its :class:`~repro.cluster.batch.JobArrays` from this,
        and the cache means sweeping many policies over one trace extracts
        the columns only once.  Callers must treat the arrays as read-only
        (the trace itself is immutable).
        """
        columns = getattr(self, "_columns", None)
        if columns is None:
            jobs = self._jobs
            n = len(jobs)
            columns = {
                "job_id": np.fromiter((j.job_id for j in jobs), dtype=np.int64, count=n),
                "arrival_time": np.fromiter(
                    (j.arrival_time for j in jobs), dtype=float, count=n
                ),
                "execution_time": np.fromiter(
                    (j.execution_time for j in jobs), dtype=float, count=n
                ),
                "realized_execution_time": np.fromiter(
                    (j.realized_execution_time for j in jobs), dtype=float, count=n
                ),
                "energy_kwh": np.fromiter(
                    (j.energy_kwh for j in jobs), dtype=float, count=n
                ),
                "realized_energy_kwh": np.fromiter(
                    (j.realized_energy_kwh for j in jobs), dtype=float, count=n
                ),
                "package_gb": np.fromiter(
                    (j.package_gb for j in jobs), dtype=float, count=n
                ),
                "servers_required": np.fromiter(
                    (j.servers_required for j in jobs), dtype=np.int64, count=n
                ),
                "home_region": tuple(j.home_region for j in jobs),
                "workload": tuple(j.workload for j in jobs),
            }
            self._columns = columns
        return columns

    # -- statistics --------------------------------------------------------------------
    def arrival_times(self) -> np.ndarray:
        return np.array([job.arrival_time for job in self._jobs])

    def execution_times(self) -> np.ndarray:
        return np.array([job.execution_time for job in self._jobs])

    def total_energy_kwh(self) -> float:
        return float(sum(job.energy_kwh for job in self._jobs))

    def mean_interarrival_s(self) -> float:
        """Mean inter-arrival time in seconds (NaN for traces with < 2 jobs)."""
        if len(self._jobs) < 2:
            return float("nan")
        return float(np.mean(np.diff(self.arrival_times())))

    def arrival_rate_per_hour(self) -> float:
        """Average arrival rate over the trace horizon."""
        if len(self._jobs) < 2 or self.horizon_s == 0.0:
            return float("nan")
        return len(self._jobs) / (self.horizon_s / 3600.0)

    def jobs_per_region(self) -> dict[str, int]:
        """Number of jobs submitted from each home region."""
        counts: dict[str, int] = {}
        for job in self._jobs:
            counts[job.home_region] = counts.get(job.home_region, 0) + 1
        return counts

    def jobs_per_workload(self) -> dict[str, int]:
        """Number of jobs per benchmark workload."""
        counts: dict[str, int] = {}
        for job in self._jobs:
            counts[job.workload] = counts.get(job.workload, 0) + 1
        return counts

    # -- slicing / transformation ----------------------------------------------------------
    def window(self, start_s: float, end_s: float) -> "Trace":
        """Jobs arriving in ``[start_s, end_s)``."""
        if end_s < start_s:
            raise ValueError("window end must be >= start")
        selected = [job for job in self._jobs if start_s <= job.arrival_time < end_s]
        return Trace(selected, name=f"{self.name}[{start_s:.0f}:{end_s:.0f}]")

    def filter(self, predicate: Callable[[Job], bool]) -> "Trace":
        """Jobs satisfying ``predicate``."""
        return Trace([job for job in self._jobs if predicate(job)], name=self.name)

    def head(self, count: int) -> "Trace":
        """The first ``count`` jobs by arrival time."""
        if count < 0:
            raise ValueError("count must be >= 0")
        return Trace(self._jobs[:count], name=f"{self.name}[:{count}]")

    def scale_rate(self, factor: float) -> "Trace":
        """Divide inter-arrival times by ``factor`` (``2.0`` doubles the request rate).

        Used by the request-rate sensitivity study (the paper doubles the
        Borg trace's rate); job contents are unchanged.
        """
        factor = ensure_positive(factor, "factor")
        return Trace(
            [job.with_arrival_time(job.arrival_time / factor) for job in self._jobs],
            name=f"{self.name}@{factor:g}x",
        )

    def restricted_to_regions(self, region_keys: Sequence[str], reassign: bool = True) -> "Trace":
        """Remap jobs whose home region is unavailable onto the allowed regions.

        With ``reassign=False`` the jobs from unavailable regions are dropped
        instead.  Used by the region-availability sensitivity study (Fig. 12).
        """
        allowed = [key.strip().lower() for key in region_keys]
        if not allowed:
            raise ValueError("region_keys must not be empty")
        jobs: list[Job] = []
        for job in self._jobs:
            if job.home_region in allowed:
                jobs.append(job)
            elif reassign:
                target = allowed[job.job_id % len(allowed)]
                jobs.append(dataclasses.replace(job, home_region=target))
        return Trace(jobs, name=f"{self.name}|{'+'.join(allowed)}")

    # -- serialization ---------------------------------------------------------------------
    def to_jsonl(self, path: str | Path) -> None:
        """Write the trace as JSON-lines (one job per line)."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            for job in self._jobs:
                record = dataclasses.asdict(job)
                record["metadata"] = dict(job.metadata)
                handle.write(json.dumps(record) + "\n")

    @classmethod
    def from_jsonl(cls, path: str | Path, name: str | None = None) -> "Trace":
        """Read a trace previously written with :meth:`to_jsonl`."""
        path = Path(path)
        jobs = []
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                jobs.append(Job(**record))
        return cls(jobs, name=name or path.stem)
