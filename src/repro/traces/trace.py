"""Trace container: an immutable, time-ordered collection of jobs."""

from __future__ import annotations

import dataclasses
import json
from collections.abc import Callable, Iterable, Iterator, Sequence
from pathlib import Path

import numpy as np

from repro._validation import ensure_positive
from repro.traces.job import Job

__all__ = ["Trace"]


class Trace:
    """A time-ordered collection of :class:`~repro.traces.job.Job` objects.

    Jobs are sorted by arrival time at construction; the container is
    read-only afterwards.  Provides the filtering, windowing and rescaling
    operations the simulator and the benchmark harness need, plus JSON-lines
    (de)serialization so generated traces can be persisted and shared.
    """

    def __init__(self, jobs: Iterable[Job], name: str = "trace") -> None:
        self._jobs: tuple[Job, ...] | None = tuple(
            sorted(jobs, key=lambda j: (j.arrival_time, j.job_id))
        )
        self._columns: dict | None = None
        self._horizon_hint: float | None = None
        self._job_metadata: Callable | None = None
        self.name = str(name)
        ids = [job.job_id for job in self._jobs]
        if len(set(ids)) != len(ids):
            raise ValueError(f"trace {name!r} contains duplicate job ids")

    @classmethod
    def from_columns(
        cls,
        columns: dict,
        name: str = "trace",
        horizon_hint_s: float | None = None,
        job_metadata: Callable[[str], dict] | None = None,
    ) -> "Trace":
        """Build a trace directly from :meth:`to_columns`-shaped columns.

        The column dictionary becomes the trace's primary representation:
        the batch engine and the streaming sources consume it as-is, and the
        per-job :class:`Job` objects are only materialized lazily when an
        object-world consumer (the scalar simulator, ``filter``, JSON
        serialization) first touches them.  Columns must be sorted by
        ``(arrival_time, job_id)`` — generators emit them that way — and the
        constructor re-sorts them if they are not.

        ``horizon_hint_s`` records the workload's *declared* horizon (the
        generator's configured duration) so consumers sizing resources — the
        simulators' auto-built sustainability datasets — see the same value
        whether they work from this trace or from the stream it came from.
        ``job_metadata`` maps a workload name to the :attr:`Job.metadata`
        entries materialized jobs carry (generators tag suite/provenance).
        """
        job_ids = np.asarray(columns["job_id"], dtype=np.int64)
        arrivals = np.asarray(columns["arrival_time"], dtype=float)
        if len(np.unique(job_ids)) != len(job_ids):
            raise ValueError(f"trace {name!r} contains duplicate job ids")
        order = np.lexsort((job_ids, arrivals))
        if len(arrivals) and np.any(order != np.arange(len(order))):
            columns = {
                key: (
                    tuple(column[i] for i in order)
                    if isinstance(column, tuple)
                    else np.asarray(column)[order]
                )
                for key, column in columns.items()
            }
        trace = object.__new__(cls)
        trace._jobs = None
        trace._columns = dict(columns)
        trace._horizon_hint = None if horizon_hint_s is None else float(horizon_hint_s)
        trace._job_metadata = job_metadata
        trace.name = str(name)
        return trace

    def _sliced(self, rows, name: str) -> "Trace":
        """Column-world sub-trace (``rows`` = slice or index array)."""
        columns = self.to_columns()
        sliced = {
            key: (
                tuple(column[i] for i in rows)
                if isinstance(column, tuple) and not isinstance(rows, slice)
                else column[rows]
            )
            for key, column in columns.items()
        }
        return Trace.from_columns(sliced, name=name, job_metadata=self._job_metadata)

    # -- basic container protocol ---------------------------------------------------
    def _materialized(self) -> tuple[Job, ...]:
        """The ``Job`` tuple, built on first object-world access."""
        if self._jobs is None:
            columns = self._columns
            metadata_for = self._job_metadata
            self._jobs = tuple(
                Job(
                    job_id=int(columns["job_id"][i]),
                    workload=columns["workload"][i],
                    arrival_time=float(columns["arrival_time"][i]),
                    execution_time=float(columns["execution_time"][i]),
                    energy_kwh=float(columns["energy_kwh"][i]),
                    home_region=columns["home_region"][i],
                    package_gb=float(columns["package_gb"][i]),
                    servers_required=int(columns["servers_required"][i]),
                    true_execution_time=float(columns["realized_execution_time"][i]),
                    true_energy_kwh=float(columns["realized_energy_kwh"][i]),
                    metadata=(
                        dict(metadata_for(columns["workload"][i]))
                        if metadata_for is not None
                        else {}
                    ),
                )
                for i in range(len(columns["job_id"]))
            )
        return self._jobs

    def __len__(self) -> int:
        if self._jobs is None:
            return len(self._columns["job_id"])
        return len(self._jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self._materialized())

    def __getitem__(self, index: int) -> Job:
        return self._materialized()[index]

    def __repr__(self) -> str:
        horizon = self.horizon_s
        return f"Trace({self.name!r}, {len(self)} jobs, horizon {horizon / 3600.0:.1f} h)"

    @property
    def jobs(self) -> tuple[Job, ...]:
        return self._materialized()

    @property
    def horizon_s(self) -> float:
        """Time of the last arrival (0 for an empty trace)."""
        if self._jobs is None:
            arrivals = self._columns["arrival_time"]
            return float(arrivals[-1]) if len(arrivals) else 0.0
        return self._jobs[-1].arrival_time if self._jobs else 0.0

    @property
    def declared_horizon_s(self) -> float:
        """The workload's declared horizon (falls back to the last arrival).

        Traces materialized from a :class:`~repro.traces.stream.TraceSource`
        carry the generator's configured duration here, so resource sizing —
        in particular the simulators' auto-built sustainability datasets —
        is identical whether a consumer holds the stream or this trace.
        """
        if self._horizon_hint is not None:
            return self._horizon_hint
        return self.horizon_s

    # -- columnar view -----------------------------------------------------------------
    def to_columns(self) -> dict[str, np.ndarray | tuple]:
        """Columnar (structure-of-arrays) view of the trace, cached.

        One NumPy array (or tuple, for string fields) per job attribute,
        aligned with the trace's sorted job order.  The batch simulation
        engine builds its :class:`~repro.cluster.batch.JobArrays` from this,
        and the cache means sweeping many policies over one trace extracts
        the columns only once.  Callers must treat the arrays as read-only
        (the trace itself is immutable).
        """
        columns = self._columns
        if columns is None:
            jobs = self._materialized()
            n = len(jobs)
            columns = {
                "job_id": np.fromiter((j.job_id for j in jobs), dtype=np.int64, count=n),
                "arrival_time": np.fromiter(
                    (j.arrival_time for j in jobs), dtype=float, count=n
                ),
                "execution_time": np.fromiter(
                    (j.execution_time for j in jobs), dtype=float, count=n
                ),
                "realized_execution_time": np.fromiter(
                    (j.realized_execution_time for j in jobs), dtype=float, count=n
                ),
                "energy_kwh": np.fromiter(
                    (j.energy_kwh for j in jobs), dtype=float, count=n
                ),
                "realized_energy_kwh": np.fromiter(
                    (j.realized_energy_kwh for j in jobs), dtype=float, count=n
                ),
                "package_gb": np.fromiter(
                    (j.package_gb for j in jobs), dtype=float, count=n
                ),
                "servers_required": np.fromiter(
                    (j.servers_required for j in jobs), dtype=np.int64, count=n
                ),
                "home_region": tuple(j.home_region for j in jobs),
                "workload": tuple(j.workload for j in jobs),
            }
            self._columns = columns
        return columns

    # -- statistics --------------------------------------------------------------------
    def arrival_times(self) -> np.ndarray:
        return np.array(self.to_columns()["arrival_time"], dtype=float)

    def execution_times(self) -> np.ndarray:
        return np.array(self.to_columns()["execution_time"], dtype=float)

    def total_energy_kwh(self) -> float:
        return float(np.sum(self.to_columns()["energy_kwh"]))

    def mean_interarrival_s(self) -> float:
        """Mean inter-arrival time in seconds (NaN for traces with < 2 jobs)."""
        if len(self) < 2:
            return float("nan")
        return float(np.mean(np.diff(self.arrival_times())))

    def arrival_rate_per_hour(self) -> float:
        """Average arrival rate over the trace horizon."""
        if len(self) < 2 or self.horizon_s == 0.0:
            return float("nan")
        return len(self) / (self.horizon_s / 3600.0)

    def jobs_per_region(self) -> dict[str, int]:
        """Number of jobs submitted from each home region."""
        counts: dict[str, int] = {}
        for home in self.to_columns()["home_region"]:
            counts[home] = counts.get(home, 0) + 1
        return counts

    def jobs_per_workload(self) -> dict[str, int]:
        """Number of jobs per benchmark workload."""
        counts: dict[str, int] = {}
        for workload in self.to_columns()["workload"]:
            counts[workload] = counts.get(workload, 0) + 1
        return counts

    # -- slicing / transformation ----------------------------------------------------------
    def window(self, start_s: float, end_s: float) -> "Trace":
        """Jobs arriving in ``[start_s, end_s)`` (a column slice; no Job objects)."""
        if end_s < start_s:
            raise ValueError("window end must be >= start")
        arrivals = np.asarray(self.to_columns()["arrival_time"])
        lo = int(np.searchsorted(arrivals, start_s, side="left"))
        hi = int(np.searchsorted(arrivals, end_s, side="left"))
        return self._sliced(slice(lo, hi), name=f"{self.name}[{start_s:.0f}:{end_s:.0f}]")

    def filter(self, predicate: Callable[[Job], bool]) -> "Trace":
        """Jobs satisfying ``predicate``."""
        return Trace([job for job in self.jobs if predicate(job)], name=self.name)

    def head(self, count: int) -> "Trace":
        """The first ``count`` jobs by arrival time (a column slice; no Job objects)."""
        if count < 0:
            raise ValueError("count must be >= 0")
        return self._sliced(slice(0, count), name=f"{self.name}[:{count}]")

    def scale_rate(self, factor: float) -> "Trace":
        """Divide inter-arrival times by ``factor`` (``2.0`` doubles the request rate).

        Used by the request-rate sensitivity study (the paper doubles the
        Borg trace's rate); job contents are unchanged.
        """
        factor = ensure_positive(factor, "factor")
        return Trace(
            [job.with_arrival_time(job.arrival_time / factor) for job in self.jobs],
            name=f"{self.name}@{factor:g}x",
        )

    def restricted_to_regions(self, region_keys: Sequence[str], reassign: bool = True) -> "Trace":
        """Remap jobs whose home region is unavailable onto the allowed regions.

        With ``reassign=False`` the jobs from unavailable regions are dropped
        instead.  Used by the region-availability sensitivity study (Fig. 12).
        """
        allowed = [key.strip().lower() for key in region_keys]
        if not allowed:
            raise ValueError("region_keys must not be empty")
        jobs: list[Job] = []
        for job in self.jobs:
            if job.home_region in allowed:
                jobs.append(job)
            elif reassign:
                target = allowed[job.job_id % len(allowed)]
                jobs.append(dataclasses.replace(job, home_region=target))
        return Trace(jobs, name=f"{self.name}|{'+'.join(allowed)}")

    # -- serialization ---------------------------------------------------------------------
    def to_jsonl(self, path: str | Path) -> None:
        """Write the trace as JSON-lines (one job per line)."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            for job in self.jobs:
                record = dataclasses.asdict(job)
                record["metadata"] = dict(job.metadata)
                handle.write(json.dumps(record) + "\n")

    @classmethod
    def from_jsonl(cls, path: str | Path, name: str | None = None) -> "Trace":
        """Read a trace previously written with :meth:`to_jsonl`."""
        path = Path(path)
        jobs = []
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                jobs.append(Job(**record))
        return cls(jobs, name=name or path.stem)
