"""Named workload-scenario library for sweeps, benchmarks and the CLI.

PR 1's batch engine made single-trace sweeps fast; this library makes them
*diverse*.  Each scenario is a named, seeded recipe producing a workload with
a distinct shape, so experiments can exercise the schedulers well beyond the
default Borg/Alibaba pair:

``diurnal``
    Borg-like arrivals with a pronounced day/night cycle (0.9 amplitude) —
    the canonical "follow the sun" workload.
``bursty``
    Alibaba-like arrivals with frequent, strong bursts on a flat-ish base —
    stresses scheduling rounds with large batches.
``heavy-tail``
    Borg-like arrivals whose execution times carry a Pareto-distributed
    elephant tail: a few percent of jobs run one to two orders of magnitude
    longer than the median, as in production Borg traces.  Stresses capacity
    accounting and queueing.
``ml-training``
    Sparse arrivals of long (multi-hour) multi-server training jobs with
    large package sizes — migration is expensive in transfer time but very
    profitable per job.
``region-skew``
    Diurnal arrivals submitted overwhelmingly from two of the five regions —
    stresses migration policies, since the home regions saturate first.
``region-outage`` / ``autoscale-diurnal`` / ``capacity-flap`` /
``carbon-spike`` / ``forecast-shock``
    Chaos & elasticity experiments: the workload families above paired with a
    seeded fault-injection timeline from
    :data:`repro.cluster.timeline.CHAOS_SPECS` (whole-region outages with
    evict-and-requeue, stepped autoscaling, partial capacity flaps in drain
    mode, carbon/water intensity spikes, forecast-error injection).  The
    trace itself is unchanged; sweep fabric and the CLI thread the scenario's
    ``chaos`` spec into the engines they build.

Every scenario is a :class:`~repro.traces.stream.TraceSource`:
:func:`scenario_source` streams fixed-size, time-ordered chunks with
*chunk-size-invariant* seeding (every random draw is keyed on absolute time
slabs and job-index blocks, never on generator call order — the same
``(seed, rate, duration)`` yields byte-identical jobs whether consumed one
job, 512 jobs, or the whole trace at a time), and :func:`scenario_trace`
materializes the same stream as a :class:`~repro.traces.trace.Trace` built
directly from columns, with no intermediate ``Job`` list.

Determinism is also cross-process and cross-platform (NumPy ``SeedSequence``
streams only — no ``hash()``; see the PR 1 crc32 lesson), which the
Hypothesis suites in ``tests/traces/test_scenarios.py`` and
``tests/traces/test_stream.py`` enforce.

Scenarios plug in everywhere traces do: :func:`scenario_trace` feeds the
one-shot simulators, :func:`scenario_source` the streaming engine,
``SweepPoint(trace_kind=<scenario>)`` runs them through
:mod:`repro.analysis.parallel`, and ``python -m repro simulate --scenario
<name>`` drives them from the command line.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Iterator

import numpy as np

from repro._validation import ensure_positive
from repro.regions.catalog import DEFAULT_REGION_KEYS
from repro.sustainability.embodied import DEFAULT_SERVER
from repro.traces.alibaba import AlibabaTraceGenerator
from repro.traces.arrival import PoissonArrivalProcess
from repro.traces.borg import BorgTraceGenerator
from repro.traces.stream import (
    ATTR_BLOCK,
    BlockGather,
    JobChunk,
    StreamingTraceGenerator,
    TraceSource,
)
from repro.traces.trace import Trace

__all__ = [
    "Scenario",
    "SCENARIOS",
    "available_scenarios",
    "get_scenario",
    "scenario_source",
    "scenario_trace",
]

#: Fraction of heavy-tail jobs promoted to elephants, and the Pareto shape of
#: their duration multiplier (shape 1.6 → infinite variance, finite mean).
_ELEPHANT_FRACTION = 0.05
_ELEPHANT_PARETO_SHAPE = 1.6
_ELEPHANT_MAX_FACTOR = 200.0

#: Entropy tags of the scenario-specific random streams.
_ELEPHANT_STREAM = 0x7E47A11
_ML_ARRIVAL_STREAM = 0x317A1
_ML_ATTR_STREAM = 0x317A2


class _HeavyTailSource(TraceSource):
    """Promote a block-keyed fraction of an inner stream's jobs to elephants.

    The promotion draw for job ``i`` lives in job-index block ``i // B`` of a
    dedicated stream, so it is independent of chunking; estimates and
    realized values are stretched by the same factor, preserving the
    estimate-error model.
    """

    def __init__(self, inner: BorgTraceGenerator) -> None:
        self.inner = inner
        self.name = inner.name
        self.seed = inner.seed
        self.horizon_s = inner.horizon_s

    def job_metadata(self, workload: str) -> dict:
        return self.inner.job_metadata(workload)

    def _factor_block(self, block_index: int) -> dict[str, np.ndarray]:
        rng = np.random.default_rng(
            np.random.SeedSequence([self.seed, _ELEPHANT_STREAM, block_index])
        )
        promote = rng.random(ATTR_BLOCK) < _ELEPHANT_FRACTION
        factor = np.minimum(
            1.0 + rng.pareto(_ELEPHANT_PARETO_SHAPE, size=ATTR_BLOCK),
            _ELEPHANT_MAX_FACTOR,
        )
        return {"factor": np.where(promote, factor, 1.0)}

    def iter_chunks(
        self, chunk_size: int | None = None, skip_jobs: int = 0
    ) -> Iterator[JobChunk]:
        gather = BlockGather(self._factor_block)
        for chunk in self.inner.iter_chunks(chunk_size, skip_jobs=skip_jobs):
            if chunk.n == 0:
                yield chunk
                continue
            first = int(chunk.job_id[0])
            factor = gather.rows(first, first + chunk.n)["factor"]
            yield dataclasses.replace(
                chunk,
                exec_est=chunk.exec_est * factor,
                exec_real=chunk.exec_real * factor,
                energy_est=chunk.energy_est * factor,
                energy_real=chunk.energy_real * factor,
            )


class MLTrainingTraceGenerator(StreamingTraceGenerator):
    """Sparse multi-hour, multi-server training jobs with heavyweight packages."""

    def __init__(self, seed: int, rate_per_hour: float, duration_days: float) -> None:
        self.seed = int(seed)
        self.rate_per_hour = ensure_positive(rate_per_hour, "rate_per_hour")
        self.duration_days = ensure_positive(duration_days, "duration_days")
        self.name = "ml-training"
        self.region_keys = list(DEFAULT_REGION_KEYS)

    @property
    def horizon_s(self) -> float:
        return self.duration_days * 86_400.0

    @property
    def chunk_region_keys(self) -> tuple[str, ...]:
        return tuple(self.region_keys)

    @property
    def chunk_workload_names(self) -> tuple[str, ...]:
        return ("ml-training",)

    def job_metadata(self, workload: str) -> dict:
        return {"generator": self.name}

    def _arrival_slabs(self) -> Iterator[np.ndarray]:
        process = PoissonArrivalProcess(self.rate_per_hour)
        return process.iter_slab_arrivals(self.horizon_s, (self.seed, _ML_ARRIVAL_STREAM))

    def _attribute_block(self, block_index: int) -> dict[str, np.ndarray]:
        rng = np.random.default_rng(
            np.random.SeedSequence([self.seed, _ML_ATTR_STREAM, block_index])
        )
        execution = np.exp(
            np.log(3.0 * 3600.0) + 0.6 * rng.standard_normal(ATTR_BLOCK)
        )
        servers = rng.integers(2, 9, size=ATTR_BLOCK).astype(np.int64)
        utilization = rng.uniform(0.75, 0.95, size=ATTR_BLOCK)
        home_idx = rng.integers(0, len(self.region_keys), size=ATTR_BLOCK).astype(np.int64)
        package_gb = rng.uniform(8.0, 24.0, size=ATTR_BLOCK)
        error = 1.0 + rng.uniform(-0.15, 0.15, size=ATTR_BLOCK)
        power_w = (
            DEFAULT_SERVER.idle_power_w
            + (DEFAULT_SERVER.peak_power_w - DEFAULT_SERVER.idle_power_w) * utilization
        ) * servers
        energy = power_w * execution / 3600.0 / 1000.0
        return {
            "workload_idx": np.zeros(ATTR_BLOCK, dtype=np.int64),
            "home_idx": home_idx,
            "exec_est": execution,
            "exec_real": execution * error,
            "energy_est": energy,
            "energy_real": energy * error,
            "package_gb": package_gb,
            "servers": servers,
        }


@dataclasses.dataclass(frozen=True)
class Scenario:
    """A named, seeded workload family.

    ``builder`` maps ``(seed, rate_per_hour, duration_days)`` to a
    :class:`~repro.traces.stream.TraceSource`; ``default_rate_per_hour`` /
    ``default_duration_days`` are the family's natural scale (used when the
    caller passes ``None``).  ``chaos`` optionally names a
    :data:`repro.cluster.timeline.CHAOS_SPECS` entry: the workload itself is
    unaffected (``trace()``/``source()`` stay chaos-free), but sweep fabric
    and CLI runs construct their engines with that chaos spec, making the
    scenario a reproducible fault-injection experiment.
    """

    name: str
    description: str
    builder: Callable[[int, float, float], TraceSource]
    default_rate_per_hour: float = 60.0
    default_duration_days: float = 0.5
    chaos: str | None = None

    def source(
        self,
        seed: int = 0,
        rate_per_hour: float | None = None,
        duration_days: float | None = None,
    ) -> TraceSource:
        """Build this scenario's chunked stream (family defaults where unspecified)."""
        rate = self.default_rate_per_hour if rate_per_hour is None else rate_per_hour
        days = self.default_duration_days if duration_days is None else duration_days
        ensure_positive(rate, "rate_per_hour")
        ensure_positive(days, "duration_days")
        source = self.builder(int(seed), float(rate), float(days))
        # Re-label the family so results read "<scenario>-<seed>"; the
        # generator's own name stays untouched as the provenance tag in
        # job metadata.
        source.label = self.name
        return source

    def trace(
        self,
        seed: int = 0,
        rate_per_hour: float | None = None,
        duration_days: float | None = None,
    ) -> Trace:
        """Materialize this scenario's trace (identical jobs to the stream)."""
        return self.source(
            seed=seed, rate_per_hour=rate_per_hour, duration_days=duration_days
        ).materialize()


def _diurnal(seed: int, rate: float, days: float) -> TraceSource:
    return BorgTraceGenerator(
        rate_per_hour=rate, duration_days=days, seed=seed, diurnal_amplitude=0.9
    )


def _bursty(seed: int, rate: float, days: float) -> TraceSource:
    return AlibabaTraceGenerator(
        rate_per_hour=rate,
        duration_days=days,
        seed=seed,
        diurnal_amplitude=0.2,
        bursts_per_day=16.0,
        burst_duration_s=900.0,
        burst_multiplier=6.0,
    )


def _heavy_tail(seed: int, rate: float, days: float) -> TraceSource:
    return _HeavyTailSource(
        BorgTraceGenerator(
            rate_per_hour=rate, duration_days=days, seed=seed, diurnal_amplitude=0.5
        )
    )


def _ml_training(seed: int, rate: float, days: float) -> TraceSource:
    return MLTrainingTraceGenerator(seed, rate, days)


def _region_skew(seed: int, rate: float, days: float) -> TraceSource:
    keys = list(DEFAULT_REGION_KEYS)
    # Two dominant submission regions, a long tail over the rest.
    weights = np.full(len(keys), 0.05)
    weights[0] = 0.55
    weights[1] = 0.25
    weights = weights / weights.sum()
    return BorgTraceGenerator(
        rate_per_hour=rate,
        duration_days=days,
        seed=seed,
        diurnal_amplitude=0.5,
        region_weights=weights,
    )


SCENARIOS: dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            "diurnal",
            "Borg-like arrivals with a strong day/night cycle",
            _diurnal,
        ),
        Scenario(
            "bursty",
            "Alibaba-like arrivals with frequent high-rate bursts",
            _bursty,
            default_rate_per_hour=120.0,
        ),
        Scenario(
            "heavy-tail",
            "Borg-like arrivals with a Pareto elephant tail of long jobs",
            _heavy_tail,
        ),
        Scenario(
            "ml-training",
            "Sparse multi-hour multi-server training jobs with large packages",
            _ml_training,
            default_rate_per_hour=8.0,
        ),
        Scenario(
            "region-skew",
            "Diurnal arrivals submitted mostly from two dominant regions",
            _region_skew,
        ),
        # -- chaos & elasticity experiments: same workload families, but the
        # engines run them under a seeded fault-injection timeline.
        Scenario(
            "region-outage",
            "Diurnal workload under random whole-region outages (evict + requeue)",
            _diurnal,
            chaos="region-outage",
        ),
        Scenario(
            "autoscale-diurnal",
            "Diurnal workload on a cluster whose capacity breathes with the day",
            _diurnal,
            chaos="autoscale-diurnal",
        ),
        Scenario(
            "capacity-flap",
            "Bursty workload under rapid partial capacity flaps (drain mode)",
            _bursty,
            default_rate_per_hour=120.0,
            chaos="capacity-flap",
        ),
        Scenario(
            "carbon-spike",
            "Diurnal workload with transient carbon/water intensity spikes",
            _diurnal,
            chaos="carbon-spike",
        ),
        Scenario(
            "forecast-shock",
            "Heavy-tail workload where schedulers see error-injected intensities",
            _heavy_tail,
            chaos="forecast-shock",
        ),
    )
}


def available_scenarios() -> tuple[str, ...]:
    """Scenario names accepted by :func:`get_scenario` / :func:`scenario_trace`."""
    return tuple(sorted(SCENARIOS))


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by name (case-insensitive)."""
    key = name.strip().lower()
    try:
        return SCENARIOS[key]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {list(available_scenarios())}"
        ) from None


def scenario_source(
    name: str,
    seed: int = 0,
    rate_per_hour: float | None = None,
    duration_days: float | None = None,
) -> TraceSource:
    """Build the named scenario's chunked stream (family defaults where unspecified)."""
    return get_scenario(name).source(
        seed=seed, rate_per_hour=rate_per_hour, duration_days=duration_days
    )


def scenario_trace(
    name: str,
    seed: int = 0,
    rate_per_hour: float | None = None,
    duration_days: float | None = None,
) -> Trace:
    """Build the named scenario's trace (family defaults where unspecified)."""
    return get_scenario(name).trace(
        seed=seed, rate_per_hour=rate_per_hour, duration_days=duration_days
    )
