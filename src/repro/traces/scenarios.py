"""Named workload-scenario library for sweeps, benchmarks and the CLI.

PR 1's batch engine made single-trace sweeps fast; this library makes them
*diverse*.  Each scenario is a named, seeded recipe producing a
:class:`~repro.traces.trace.Trace` with a distinct shape, so experiments can
exercise the schedulers well beyond the default Borg/Alibaba pair:

``diurnal``
    Borg-like arrivals with a pronounced day/night cycle (0.9 amplitude) —
    the canonical "follow the sun" workload.
``bursty``
    Alibaba-like arrivals with frequent, strong bursts on a flat-ish base —
    stresses scheduling rounds with large batches.
``heavy-tail``
    Borg-like arrivals whose execution times carry a Pareto-distributed
    elephant tail: a few percent of jobs run one to two orders of magnitude
    longer than the median, as in production Borg traces.  Stresses capacity
    accounting and queueing.
``ml-training``
    Sparse arrivals of long (multi-hour) multi-server training jobs with
    large package sizes — migration is expensive in transfer time but very
    profitable per job.
``region-skew``
    Diurnal arrivals submitted overwhelmingly from two of the five regions —
    stresses migration policies, since the home regions saturate first.

Every scenario is deterministic in ``(seed, rate_per_hour, duration_days)``
across processes and platforms (NumPy ``default_rng`` only — no ``hash()``;
see the PR 1 crc32 lesson), which the Hypothesis suite in
``tests/traces/test_scenarios.py`` enforces.

Scenarios plug in everywhere traces do: :func:`scenario_trace` feeds the
simulators directly, ``SweepPoint(trace_kind=<scenario>)`` runs them through
:mod:`repro.analysis.parallel`, and ``python -m repro simulate --scenario
<name>`` drives them from the command line.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

import numpy as np

from repro._validation import ensure_positive
from repro.regions.catalog import DEFAULT_REGION_KEYS
from repro.sustainability.embodied import DEFAULT_SERVER
from repro.traces.alibaba import AlibabaTraceGenerator
from repro.traces.borg import BorgTraceGenerator
from repro.traces.job import Job
from repro.traces.trace import Trace

__all__ = [
    "Scenario",
    "SCENARIOS",
    "available_scenarios",
    "get_scenario",
    "scenario_trace",
]

#: Fraction of heavy-tail jobs promoted to elephants, and the Pareto shape of
#: their duration multiplier (shape 1.6 → infinite variance, finite mean).
_ELEPHANT_FRACTION = 0.05
_ELEPHANT_PARETO_SHAPE = 1.6
_ELEPHANT_MAX_FACTOR = 200.0


@dataclasses.dataclass(frozen=True)
class Scenario:
    """A named, seeded workload family.

    ``builder`` maps ``(seed, rate_per_hour, duration_days)`` to a
    :class:`Trace`; ``default_rate_per_hour`` / ``default_duration_days``
    are the family's natural scale (used when the caller passes ``None``).
    """

    name: str
    description: str
    builder: Callable[[int, float, float], Trace]
    default_rate_per_hour: float = 60.0
    default_duration_days: float = 0.5

    def trace(
        self,
        seed: int = 0,
        rate_per_hour: float | None = None,
        duration_days: float | None = None,
    ) -> Trace:
        """Build this scenario's trace (family defaults where unspecified)."""
        rate = self.default_rate_per_hour if rate_per_hour is None else rate_per_hour
        days = self.default_duration_days if duration_days is None else duration_days
        ensure_positive(rate, "rate_per_hour")
        ensure_positive(days, "duration_days")
        trace = self.builder(int(seed), float(rate), float(days))
        return Trace(trace.jobs, name=f"{self.name}-{int(seed)}")


def _diurnal(seed: int, rate: float, days: float) -> Trace:
    return BorgTraceGenerator(
        rate_per_hour=rate, duration_days=days, seed=seed, diurnal_amplitude=0.9
    ).generate()


def _bursty(seed: int, rate: float, days: float) -> Trace:
    return AlibabaTraceGenerator(
        rate_per_hour=rate,
        duration_days=days,
        seed=seed,
        diurnal_amplitude=0.2,
        bursts_per_day=16.0,
        burst_duration_s=900.0,
        burst_multiplier=6.0,
    ).generate()


def _heavy_tail(seed: int, rate: float, days: float) -> Trace:
    base = BorgTraceGenerator(
        rate_per_hour=rate, duration_days=days, seed=seed, diurnal_amplitude=0.5
    ).generate()
    # A dedicated stream (offset from the generator's) promotes a small
    # fraction of jobs to Pareto-tailed elephants; estimates and realized
    # values are stretched by the same factor so the estimate error model is
    # preserved.
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0x7E47A11]))
    jobs = []
    for job in base:
        if rng.random() < _ELEPHANT_FRACTION:
            factor = min(1.0 + rng.pareto(_ELEPHANT_PARETO_SHAPE), _ELEPHANT_MAX_FACTOR)
            job = dataclasses.replace(
                job,
                execution_time=job.execution_time * factor,
                energy_kwh=job.energy_kwh * factor,
                true_execution_time=job.realized_execution_time * factor,
                true_energy_kwh=job.realized_energy_kwh * factor,
            )
        jobs.append(job)
    return Trace(jobs, name=base.name)


def _ml_training(seed: int, rate: float, days: float) -> Trace:
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0x317A1]))
    horizon_s = days * 86_400.0
    count = rng.poisson(rate / 3600.0 * horizon_s)
    arrivals = np.sort(rng.uniform(0.0, horizon_s, size=count))
    regions = list(DEFAULT_REGION_KEYS)
    jobs = []
    for job_id, arrival in enumerate(arrivals):
        # Multi-hour, multi-server training runs with heavyweight packages.
        execution = float(rng.lognormal(mean=np.log(3.0 * 3600.0), sigma=0.6))
        servers = int(rng.integers(2, 9))
        utilization = float(rng.uniform(0.75, 0.95))
        power_w = DEFAULT_SERVER.power_at_utilization(utilization) * servers
        energy = power_w * execution / 3600.0 / 1000.0
        error = 1.0 + rng.uniform(-0.15, 0.15)
        jobs.append(
            Job(
                job_id=job_id,
                workload="ml-training",
                arrival_time=float(arrival),
                execution_time=execution,
                energy_kwh=energy,
                home_region=regions[int(rng.integers(len(regions)))],
                package_gb=float(rng.uniform(8.0, 24.0)),
                servers_required=servers,
                true_execution_time=execution * error,
                true_energy_kwh=energy * error,
                metadata={"generator": "ml-training"},
            )
        )
    return Trace(jobs, name="ml-training")


def _region_skew(seed: int, rate: float, days: float) -> Trace:
    keys = list(DEFAULT_REGION_KEYS)
    # Two dominant submission regions, a long tail over the rest.
    weights = np.full(len(keys), 0.05)
    weights[0] = 0.55
    weights[1] = 0.25
    weights = weights / weights.sum()
    return BorgTraceGenerator(
        rate_per_hour=rate,
        duration_days=days,
        seed=seed,
        diurnal_amplitude=0.5,
        region_weights=weights,
    ).generate()


SCENARIOS: dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            "diurnal",
            "Borg-like arrivals with a strong day/night cycle",
            _diurnal,
        ),
        Scenario(
            "bursty",
            "Alibaba-like arrivals with frequent high-rate bursts",
            _bursty,
            default_rate_per_hour=120.0,
        ),
        Scenario(
            "heavy-tail",
            "Borg-like arrivals with a Pareto elephant tail of long jobs",
            _heavy_tail,
        ),
        Scenario(
            "ml-training",
            "Sparse multi-hour multi-server training jobs with large packages",
            _ml_training,
            default_rate_per_hour=8.0,
        ),
        Scenario(
            "region-skew",
            "Diurnal arrivals submitted mostly from two dominant regions",
            _region_skew,
        ),
    )
}


def available_scenarios() -> tuple[str, ...]:
    """Scenario names accepted by :func:`get_scenario` / :func:`scenario_trace`."""
    return tuple(sorted(SCENARIOS))


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by name (case-insensitive)."""
    key = name.strip().lower()
    try:
        return SCENARIOS[key]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {list(available_scenarios())}"
        ) from None


def scenario_trace(
    name: str,
    seed: int = 0,
    rate_per_hour: float | None = None,
    duration_days: float | None = None,
) -> Trace:
    """Build the named scenario's trace (family defaults where unspecified)."""
    return get_scenario(name).trace(
        seed=seed, rate_per_hour=rate_per_hour, duration_days=duration_days
    )
