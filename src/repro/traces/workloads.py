"""Benchmark workload profiles (the paper's Table 1).

WaterWise is evaluated with ten benchmarks drawn from PARSEC-3.0 and
CloudSuite.  The paper profiles each benchmark's execution time and energy on
AWS ``m5.metal`` machines with Likwid/RAPL; here each benchmark gets a
synthetic profile with a mean execution time, variability, average CPU
utilization (which maps to power through the server's linear power model) and
a package size for cross-region transfers.

The absolute numbers are representative rather than measured; what matters
for the scheduler evaluation is that jobs span a realistic range of durations
(minutes to a few hours) and energies, and that different benchmarks differ.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro._validation import ensure_in_unit_interval, ensure_non_negative, ensure_positive
from repro.sustainability.embodied import DEFAULT_SERVER, ServerSpec

__all__ = ["WorkloadProfile", "WORKLOAD_PROFILES", "get_workload", "sample_workload"]


@dataclasses.dataclass(frozen=True)
class WorkloadProfile:
    """Static profile of one benchmark workload.

    Attributes
    ----------
    name:
        Benchmark name (Table 1 label).
    suite:
        ``"parsec"`` or ``"cloudsuite"``.
    domain:
        Application domain shown in Table 1 (informational).
    mean_execution_time_s:
        Mean execution time of one job of this benchmark.
    cv_execution_time:
        Coefficient of variation of the execution time (log-normal sampling).
    mean_utilization:
        Average CPU utilization while running, in [0, 1]; converted to power
        through the server's linear power model.
    package_gb:
        Size of the execution files + dependencies to transfer.
    """

    name: str
    suite: str
    domain: str
    mean_execution_time_s: float
    cv_execution_time: float
    mean_utilization: float
    package_gb: float

    def __post_init__(self) -> None:
        if self.suite not in ("parsec", "cloudsuite"):
            raise ValueError(f"unknown suite {self.suite!r} for workload {self.name!r}")
        ensure_positive(self.mean_execution_time_s, "mean_execution_time_s")
        ensure_non_negative(self.cv_execution_time, "cv_execution_time")
        ensure_in_unit_interval(self.mean_utilization, "mean_utilization")
        ensure_non_negative(self.package_gb, "package_gb")

    # -- sampling -----------------------------------------------------------------
    def sample_execution_time(self, rng: np.random.Generator) -> float:
        """Draw one execution time (s) from a log-normal with this profile's CV."""
        if self.cv_execution_time == 0.0:
            return self.mean_execution_time_s
        sigma2 = np.log(1.0 + self.cv_execution_time**2)
        mu = np.log(self.mean_execution_time_s) - sigma2 / 2.0
        return float(rng.lognormal(mean=mu, sigma=np.sqrt(sigma2)))

    def energy_kwh(self, execution_time_s: float, server: ServerSpec = DEFAULT_SERVER) -> float:
        """IT energy (kWh) of a run of the given duration on ``server``."""
        execution_time_s = ensure_positive(execution_time_s, "execution_time_s")
        power_w = server.power_at_utilization(self.mean_utilization)
        return power_w * execution_time_s / 3600.0 / 1000.0


#: The ten benchmarks of the paper's Table 1.
#:
#: Execution times reflect native-input runs on a large bare-metal server:
#: the PARSEC kernels finish in a few minutes while the CloudSuite services
#: run for ten minutes and more.  Short jobs are the reason the delay
#: tolerance matters — a 20–40 s cross-region transfer is a substantial
#: fraction of a 2–5 minute job, so low tolerances restrict migration and
#: higher tolerances unlock additional savings (paper Fig. 3/5).
WORKLOAD_PROFILES: dict[str, WorkloadProfile] = {
    profile.name: profile
    for profile in (
        # PARSEC-3.0
        WorkloadProfile("dedup", "parsec", "data compression", 180.0, 0.35, 0.70, 0.8),
        WorkloadProfile("netdedup", "parsec", "data compression", 240.0, 0.35, 0.65, 0.8),
        WorkloadProfile("canneal", "parsec", "engineering", 360.0, 0.40, 0.80, 1.2),
        WorkloadProfile("blackscholes", "parsec", "financial analysis", 120.0, 0.30, 0.85, 0.5),
        WorkloadProfile("swaptions", "parsec", "financial analysis", 150.0, 0.30, 0.90, 0.5),
        # CloudSuite
        WorkloadProfile("data_caching", "cloudsuite", "data caching", 700.0, 0.50, 0.45, 2.0),
        WorkloadProfile("graph_analytics", "cloudsuite", "graph analytics", 1100.0, 0.55, 0.75, 2.5),
        WorkloadProfile("web_serving", "cloudsuite", "web serving", 500.0, 0.45, 0.40, 1.5),
        WorkloadProfile("memory_analytics", "cloudsuite", "memory analytics", 900.0, 0.50, 0.65, 2.2),
        WorkloadProfile("media_streaming", "cloudsuite", "media streaming", 650.0, 0.45, 0.55, 3.0),
    )
}


def get_workload(name: str) -> WorkloadProfile:
    """Look up a workload profile by name (case-insensitive)."""
    key = name.strip().lower()
    try:
        return WORKLOAD_PROFILES[key]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known workloads: {sorted(WORKLOAD_PROFILES)}"
        ) from None


def sample_workload(rng: np.random.Generator) -> WorkloadProfile:
    """Draw one workload uniformly at random from the catalog."""
    names = sorted(WORKLOAD_PROFILES)
    return WORKLOAD_PROFILES[names[int(rng.integers(len(names)))]]
