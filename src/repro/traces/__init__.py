"""Trace substrate: jobs, workload profiles and synthetic production traces.

The paper drives its evaluation with job inter-arrivals from the Google Borg
cluster trace (and, for robustness, the Alibaba VM trace), executing PARSEC
and CloudSuite benchmarks whose execution time and energy were profiled on
AWS ``m5.metal`` machines.  Offline, this subpackage provides the equivalent
pieces:

* :mod:`repro.traces.job` — the :class:`Job` description consumed by the
  simulator and the schedulers,
* :mod:`repro.traces.workloads` — the ten benchmark profiles of the paper's
  Table 1 (execution-time and power characteristics),
* :mod:`repro.traces.arrival` — arrival processes (diurnal Poisson for
  Borg-like traces, bursty for Alibaba-like traces),
* :mod:`repro.traces.borg` / :mod:`repro.traces.alibaba` — trace generators
  reproducing the two production traces' marginal statistics at a
  configurable scale,
* :mod:`repro.traces.trace` — the :class:`Trace` container with filtering,
  scaling and (de)serialization helpers,
* :mod:`repro.traces.scenarios` — the named workload-scenario library
  (diurnal, bursty, heavy-tail, ml-training, region-skew) plugged into the
  sweep runner and the CLI.
"""

from repro.traces.alibaba import AlibabaTraceGenerator
from repro.traces.arrival import (
    BurstyArrivalProcess,
    DiurnalPoissonProcess,
    PoissonArrivalProcess,
)
from repro.traces.borg import BorgTraceGenerator
from repro.traces.job import Job
from repro.traces.scenarios import (
    SCENARIOS,
    Scenario,
    available_scenarios,
    get_scenario,
    scenario_source,
    scenario_trace,
)
from repro.traces.stream import JobChunk, TraceSource, TraceView
from repro.traces.trace import Trace
from repro.traces.workloads import (
    WORKLOAD_PROFILES,
    WorkloadProfile,
    get_workload,
)

__all__ = [
    "AlibabaTraceGenerator",
    "BorgTraceGenerator",
    "BurstyArrivalProcess",
    "DiurnalPoissonProcess",
    "Job",
    "JobChunk",
    "PoissonArrivalProcess",
    "SCENARIOS",
    "Scenario",
    "Trace",
    "TraceSource",
    "TraceView",
    "WORKLOAD_PROFILES",
    "WorkloadProfile",
    "available_scenarios",
    "get_scenario",
    "get_workload",
    "scenario_source",
    "scenario_trace",
]
