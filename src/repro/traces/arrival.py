"""Job arrival processes.

Production cluster traces are far from homogeneous Poisson: the Google Borg
trace shows a clear diurnal cycle (daytime peaks, night-time troughs), and the
Alibaba trace the paper uses for robustness is both faster (≈ 8.5× the Borg
invocation rate) and burstier.  Three arrival processes cover those shapes:

* :class:`PoissonArrivalProcess` — homogeneous Poisson (useful for tests and
  micro-benchmarks),
* :class:`DiurnalPoissonProcess` — non-homogeneous Poisson whose rate follows
  a day/night curve (Borg-like),
* :class:`BurstyArrivalProcess` — a diurnal base rate overlaid with short
  high-rate bursts (Alibaba-like).

All processes generate arrival times in seconds over a horizon, using the
thinning method for the non-homogeneous cases, and are deterministic given a
NumPy ``Generator``.

For the streaming trace sources each process additionally generates its
arrivals *slab-wise* (:meth:`iter_slab_arrivals`): the horizon is cut into
fixed :data:`SLAB_S`-second slabs and slab ``k`` is a pure function of the
caller's seed entropy and ``k``.  Poisson processes have independent
increments, so restricting the draw to a slab is distributionally identical
to slicing a whole-horizon draw — but it makes the output independent of how
the consumer chunks the stream, which is the property the streaming engine's
determinism rests on.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from repro._validation import ensure_non_negative, ensure_positive

__all__ = [
    "SLAB_S",
    "PoissonArrivalProcess",
    "DiurnalPoissonProcess",
    "BurstyArrivalProcess",
]

_SECONDS_PER_DAY = 86_400.0

#: Slab length (seconds) of the chunk-invariant slab-wise generation.  Part
#: of every generator's deterministic output contract — changing it changes
#: every generated trace.
SLAB_S = 3600.0


def _slab_rng(entropy: Sequence[int], slab_index: int) -> np.random.Generator:
    """The dedicated RNG of one slab (pure function of entropy + index)."""
    return np.random.default_rng(np.random.SeedSequence([*entropy, slab_index]))


def _slab_bounds(horizon_s: float) -> Iterator[tuple[int, float, float]]:
    """(index, start, end) of every slab covering ``[0, horizon_s)``."""
    n_slabs = int(np.ceil(horizon_s / SLAB_S))
    for k in range(n_slabs):
        yield k, k * SLAB_S, min((k + 1) * SLAB_S, horizon_s)


class PoissonArrivalProcess:
    """Homogeneous Poisson arrivals at ``rate_per_hour``."""

    def __init__(self, rate_per_hour: float) -> None:
        self.rate_per_hour = ensure_positive(rate_per_hour, "rate_per_hour")

    @property
    def rate_per_second(self) -> float:
        return self.rate_per_hour / 3600.0

    def expected_count(self, horizon_s: float) -> float:
        """Expected number of arrivals over the horizon."""
        return self.rate_per_second * ensure_non_negative(horizon_s, "horizon_s")

    def generate(self, horizon_s: float, rng: np.random.Generator) -> np.ndarray:
        """Sorted arrival times (s) over ``[0, horizon_s)``."""
        horizon_s = ensure_non_negative(horizon_s, "horizon_s")
        if horizon_s == 0.0:
            return np.zeros(0)
        count = rng.poisson(self.rate_per_second * horizon_s)
        return np.sort(rng.uniform(0.0, horizon_s, size=count))

    def iter_slab_arrivals(
        self, horizon_s: float, entropy: Sequence[int]
    ) -> Iterator[np.ndarray]:
        """Chunk-invariant arrivals, one sorted array per :data:`SLAB_S` slab."""
        horizon_s = ensure_non_negative(horizon_s, "horizon_s")
        for k, start, end in _slab_bounds(horizon_s):
            rng = _slab_rng(entropy, k)
            count = rng.poisson(self.rate_per_second * (end - start))
            yield np.sort(rng.uniform(start, end, size=count))


class DiurnalPoissonProcess:
    """Non-homogeneous Poisson arrivals with a day/night rate cycle.

    The instantaneous rate is
    ``rate(t) = base_rate × (1 + amplitude · sin(2π (t/day − phase)))``,
    clipped at zero.  ``amplitude`` of 0.5 means the daily peak rate is 1.5×
    and the trough 0.5× the base rate, matching the rough shape of the Borg
    trace's submission pattern.
    """

    def __init__(
        self,
        base_rate_per_hour: float,
        amplitude: float = 0.5,
        peak_hour: float = 15.0,
    ) -> None:
        self.base_rate_per_hour = ensure_positive(base_rate_per_hour, "base_rate_per_hour")
        if not 0.0 <= amplitude <= 1.0:
            raise ValueError(f"amplitude must be within [0, 1], got {amplitude}")
        self.amplitude = float(amplitude)
        self.peak_hour = float(peak_hour) % 24.0

    def rate_at(self, time_s: float | np.ndarray) -> float | np.ndarray:
        """Instantaneous arrival rate (per hour) at simulation time ``time_s``."""
        t = np.asarray(time_s, dtype=float)
        hour_of_day = (t / 3600.0) % 24.0
        modulation = 1.0 + self.amplitude * np.cos(
            2.0 * np.pi * (hour_of_day - self.peak_hour) / 24.0
        )
        rate = self.base_rate_per_hour * np.clip(modulation, 0.0, None)
        return float(rate) if rate.ndim == 0 else rate

    def expected_count(self, horizon_s: float) -> float:
        """Expected number of arrivals over the horizon (numerical integral)."""
        horizon_s = ensure_non_negative(horizon_s, "horizon_s")
        if horizon_s == 0.0:
            return 0.0
        grid = np.linspace(0.0, horizon_s, max(int(horizon_s // 600), 2))
        rates = np.asarray(self.rate_at(grid)) / 3600.0
        return float(np.trapezoid(rates, grid))

    def generate(self, horizon_s: float, rng: np.random.Generator) -> np.ndarray:
        """Sorted arrival times (s) via thinning of a dominating Poisson process."""
        horizon_s = ensure_non_negative(horizon_s, "horizon_s")
        if horizon_s == 0.0:
            return np.zeros(0)
        max_rate_per_s = self.base_rate_per_hour * (1.0 + self.amplitude) / 3600.0
        count = rng.poisson(max_rate_per_s * horizon_s)
        candidates = np.sort(rng.uniform(0.0, horizon_s, size=count))
        keep = rng.uniform(0.0, 1.0, size=count) * max_rate_per_s <= (
            np.asarray(self.rate_at(candidates)) / 3600.0
        )
        return candidates[keep]

    def iter_slab_arrivals(
        self, horizon_s: float, entropy: Sequence[int]
    ) -> Iterator[np.ndarray]:
        """Chunk-invariant thinned arrivals, one sorted array per slab.

        The dominating rate is the *global* peak, not the slab's, so the
        thinning acceptance probability — and therefore the output — matches
        a whole-horizon draw sliced at slab boundaries in distribution.
        """
        horizon_s = ensure_non_negative(horizon_s, "horizon_s")
        max_rate_per_s = self.base_rate_per_hour * (1.0 + self.amplitude) / 3600.0
        for k, start, end in _slab_bounds(horizon_s):
            rng = _slab_rng(entropy, k)
            count = rng.poisson(max_rate_per_s * (end - start))
            candidates = np.sort(rng.uniform(start, end, size=count))
            keep = rng.uniform(0.0, 1.0, size=count) * max_rate_per_s <= (
                np.asarray(self.rate_at(candidates)) / 3600.0
            )
            yield candidates[keep]


class BurstyArrivalProcess:
    """Diurnal arrivals overlaid with short high-rate bursts (Alibaba-like).

    Bursts start as a Poisson process with ``bursts_per_day`` and last
    ``burst_duration_s`` each; during a burst the instantaneous rate is
    multiplied by ``burst_multiplier``.
    """

    def __init__(
        self,
        base_rate_per_hour: float,
        amplitude: float = 0.3,
        bursts_per_day: float = 6.0,
        burst_duration_s: float = 1800.0,
        burst_multiplier: float = 4.0,
    ) -> None:
        self.diurnal = DiurnalPoissonProcess(base_rate_per_hour, amplitude=amplitude)
        self.bursts_per_day = ensure_positive(bursts_per_day, "bursts_per_day")
        self.burst_duration_s = ensure_positive(burst_duration_s, "burst_duration_s")
        self.burst_multiplier = ensure_positive(burst_multiplier, "burst_multiplier")
        if self.burst_multiplier < 1.0:
            raise ValueError("burst_multiplier must be >= 1.0")

    @property
    def base_rate_per_hour(self) -> float:
        return self.diurnal.base_rate_per_hour

    def generate(self, horizon_s: float, rng: np.random.Generator) -> np.ndarray:
        """Sorted arrival times (s) over ``[0, horizon_s)``."""
        horizon_s = ensure_non_negative(horizon_s, "horizon_s")
        if horizon_s == 0.0:
            return np.zeros(0)
        base = self.diurnal.generate(horizon_s, rng)

        n_bursts = rng.poisson(self.bursts_per_day * horizon_s / _SECONDS_PER_DAY)
        if n_bursts == 0:
            return base
        burst_starts = rng.uniform(0.0, horizon_s, size=n_bursts)
        extra_rate_per_s = (
            self.diurnal.base_rate_per_hour * (self.burst_multiplier - 1.0) / 3600.0
        )
        extras = []
        for start in burst_starts:
            duration = min(self.burst_duration_s, horizon_s - start)
            count = rng.poisson(extra_rate_per_s * duration)
            if count:
                extras.append(start + rng.uniform(0.0, duration, size=count))
        if not extras:
            return base
        return np.sort(np.concatenate([base, *extras]))

    def iter_slab_arrivals(
        self, horizon_s: float, entropy: Sequence[int]
    ) -> Iterator[np.ndarray]:
        """Chunk-invariant bursty arrivals, one sorted array per slab.

        The diurnal base uses its own slab streams (entropy + ``0``); burst
        *starts* and their extra arrivals are drawn in the slab the burst
        starts in (entropy + ``1``), and the extras that spill past the slab
        boundary are carried forward to the slab they belong to — so every
        yielded array stays globally sorted while each draw remains a pure
        function of a slab index.
        """
        horizon_s = ensure_non_negative(horizon_s, "horizon_s")
        base_slabs = self.diurnal.iter_slab_arrivals(horizon_s, (*entropy, 0))
        extra_rate_per_s = (
            self.diurnal.base_rate_per_hour * (self.burst_multiplier - 1.0) / 3600.0
        )
        carry: list[np.ndarray] = []
        for (k, start, end), base in zip(_slab_bounds(horizon_s), base_slabs):
            rng = _slab_rng((*entropy, 1), k)
            n_bursts = rng.poisson(self.bursts_per_day * (end - start) / _SECONDS_PER_DAY)
            parts = [base]
            future: list[np.ndarray] = []
            if n_bursts:
                burst_starts = rng.uniform(start, end, size=n_bursts)
                for burst_start in burst_starts:
                    duration = min(self.burst_duration_s, horizon_s - burst_start)
                    count = rng.poisson(extra_rate_per_s * duration)
                    if count:
                        times = burst_start + rng.uniform(0.0, duration, size=count)
                        parts.append(times[times < end])
                        spill = times[times >= end]
                        if len(spill):
                            future.append(spill)
            for carried in carry:
                parts.append(carried[carried < end])
                spill = carried[carried >= end]
                if len(spill):
                    future.append(spill)
            carry = future
            yield np.sort(np.concatenate(parts)) if len(parts) > 1 else np.sort(parts[0])
