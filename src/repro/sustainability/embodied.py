"""Server embodied carbon / water footprints and their amortization.

Embodied footprints are one-time costs from manufacturing the server,
amortized over the hardware lifetime and attributed to a job in proportion to
its execution time (paper Eq. 1 for carbon and Eq. 4/5 for water).

The paper takes the total embodied carbon of an AWS ``m5.metal`` server from
the Teads EC2 dataset and, lacking public embodied-*water* data, estimates it
by converting the embodied carbon back into manufacturing energy (via the
carbon intensity of the manufacturing region's grid) and multiplying by the
manufacturing region's EWIF and ``(1 + WSF)``.  :class:`ServerSpec` carries
all of those parameters so the derivation is explicit and overridable.
"""

from __future__ import annotations

import dataclasses

from repro._validation import ensure_non_negative, ensure_positive

__all__ = ["ServerSpec", "DEFAULT_SERVER"]

_SECONDS_PER_YEAR = 365.0 * 24.0 * 3600.0


@dataclasses.dataclass(frozen=True)
class ServerSpec:
    """Hardware description used for energy and embodied-footprint accounting.

    Attributes
    ----------
    name:
        Label of the server model (default mirrors the paper's m5.metal).
    embodied_carbon_kg:
        Total cradle-to-gate embodied carbon of one server, kgCO₂e.
    lifetime_years:
        Amortization period of the hardware.
    manufacturing_carbon_intensity:
        Carbon intensity (gCO₂/kWh) of the grid where the server was
        manufactured; used to back out manufacturing energy from embodied
        carbon (Eq. 4).
    manufacturing_ewif:
        EWIF (L/kWh) of the manufacturing region's grid.
    manufacturing_wsf:
        Water Scarcity Factor of the manufacturing region.
    idle_power_w / peak_power_w:
        Power envelope of the server, used by the workload profiles to turn
        utilization and duration into energy.
    cores:
        Number of physical cores (capacity accounting in the simulator is
        per-server, but the core count is kept for workload scaling).
    """

    name: str = "m5.metal"
    embodied_carbon_kg: float = 4500.0
    lifetime_years: float = 4.0
    manufacturing_carbon_intensity: float = 550.0
    manufacturing_ewif: float = 1.8
    manufacturing_wsf: float = 0.4
    idle_power_w: float = 150.0
    peak_power_w: float = 750.0
    cores: int = 96

    def __post_init__(self) -> None:
        ensure_non_negative(self.embodied_carbon_kg, "embodied_carbon_kg")
        ensure_positive(self.lifetime_years, "lifetime_years")
        ensure_positive(self.manufacturing_carbon_intensity, "manufacturing_carbon_intensity")
        ensure_non_negative(self.manufacturing_ewif, "manufacturing_ewif")
        ensure_non_negative(self.manufacturing_wsf, "manufacturing_wsf")
        ensure_non_negative(self.idle_power_w, "idle_power_w")
        ensure_positive(self.peak_power_w, "peak_power_w")
        if self.peak_power_w < self.idle_power_w:
            raise ValueError("peak_power_w must be >= idle_power_w")
        if self.cores <= 0:
            raise ValueError("cores must be positive")

    # -- derived quantities ----------------------------------------------------
    @property
    def lifetime_seconds(self) -> float:
        """Hardware lifetime in seconds (the denominator of the amortization)."""
        return self.lifetime_years * _SECONDS_PER_YEAR

    @property
    def embodied_carbon_g(self) -> float:
        """Total embodied carbon in grams CO₂e."""
        return self.embodied_carbon_kg * 1000.0

    @property
    def manufacturing_energy_kwh(self) -> float:
        """Manufacturing energy (kWh) backed out of the embodied carbon (Eq. 4)."""
        return self.embodied_carbon_g / self.manufacturing_carbon_intensity

    @property
    def embodied_water_l(self) -> float:
        """Total embodied water (liters), Eq. 4:
        ``E_manufacturing × EWIF × (1 + WSF_server_region)``."""
        return (
            self.manufacturing_energy_kwh
            * self.manufacturing_ewif
            * (1.0 + self.manufacturing_wsf)
        )

    # -- amortization ------------------------------------------------------------
    def amortized_embodied_carbon(self, execution_time_s: float) -> float:
        """Embodied carbon (g) attributed to a job running ``execution_time_s``."""
        execution_time_s = ensure_non_negative(execution_time_s, "execution_time_s")
        return (execution_time_s / self.lifetime_seconds) * self.embodied_carbon_g

    def amortized_embodied_water(self, execution_time_s: float) -> float:
        """Embodied water (L) attributed to a job running ``execution_time_s``."""
        execution_time_s = ensure_non_negative(execution_time_s, "execution_time_s")
        return (execution_time_s / self.lifetime_seconds) * self.embodied_water_l

    def power_at_utilization(self, utilization: float) -> float:
        """Server power draw (W) at a given utilization in [0, 1] (linear model)."""
        if not 0.0 <= utilization <= 1.0:
            raise ValueError(f"utilization must be within [0, 1], got {utilization}")
        return self.idle_power_w + (self.peak_power_w - self.idle_power_w) * utilization


#: Default server model used throughout the evaluation (paper's m5.metal).
DEFAULT_SERVER = ServerSpec()
