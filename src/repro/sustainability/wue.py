"""Water Usage Effectiveness (WUE) from wet-bulb temperature.

The onsite water footprint of a data center is driven by evaporative cooling:
the warmer (and more humid) the outside air, the more water the cooling
towers evaporate per unit of IT energy.  The paper derives WUE from each
region's wet-bulb temperature (following "Making AI Less Thirsty", its
reference [32]).  We use the same empirical cooling-tower relationship:
WUE grows roughly quadratically with wet-bulb temperature and is clamped to a
small positive floor (even in cold weather some make-up water is consumed).

The resulting regional averages land in the 1–8 L/kWh range of the paper's
Fig. 2(c), with tropical Mumbai near the top and alpine Zurich near the
bottom.
"""

from __future__ import annotations

import numpy as np

__all__ = ["wue_from_wet_bulb", "WUE_FLOOR_L_PER_KWH", "WUE_CEILING_L_PER_KWH"]

#: Minimum WUE: residual water use (blowdown, humidification) even in cold weather.
WUE_FLOOR_L_PER_KWH = 0.3
#: Maximum WUE the cooling model saturates at (extremely hot, humid conditions).
WUE_CEILING_L_PER_KWH = 9.0

# Empirical cooling-tower curve coefficients (quadratic in wet-bulb °C).
_A = 0.0082
_B = 0.0349
_C = 0.5


def wue_from_wet_bulb(wet_bulb_c: float | np.ndarray) -> float | np.ndarray:
    """Water Usage Effectiveness (L/kWh) for a wet-bulb temperature in °C.

    Accepts scalars or NumPy arrays (the conversion is vectorized).  Below
    0 °C evaporative cooling demand bottoms out, so the input temperature is
    clamped at 0 °C before applying the quadratic curve; the result is clamped
    to ``[WUE_FLOOR_L_PER_KWH, WUE_CEILING_L_PER_KWH]``.  The mapping is
    therefore monotonically non-decreasing in wet-bulb temperature.
    """
    wet_bulb = np.clip(np.asarray(wet_bulb_c, dtype=float), 0.0, None)
    wue = _A * wet_bulb**2 + _B * wet_bulb + _C
    wue = np.clip(wue, WUE_FLOOR_L_PER_KWH, WUE_CEILING_L_PER_KWH)
    if np.isscalar(wet_bulb_c) or np.ndim(wet_bulb_c) == 0:
        return float(wue)
    return wue
