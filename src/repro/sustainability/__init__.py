"""Sustainability substrate: carbon- and water-footprint models and data.

This subpackage implements every sustainability quantity the WaterWise
scheduler consumes (paper Sec. 2):

* :mod:`repro.sustainability.energy_sources` — per-energy-source carbon
  intensity and Energy Water Intensity Factor (EWIF), Fig. 1.
* :mod:`repro.sustainability.grid` — time-varying grid energy mix per region
  and the resulting regional carbon-intensity / EWIF series, Fig. 2(a, b, e).
* :mod:`repro.sustainability.wue` — Water Usage Effectiveness from wet-bulb
  temperature, Fig. 2(c).
* :mod:`repro.sustainability.wsf` — Water Scarcity Factors, Fig. 2(d).
* :mod:`repro.sustainability.embodied` — server embodied carbon/water and
  amortization (Eq. 1 and Eq. 4).
* :mod:`repro.sustainability.carbon` / :mod:`repro.sustainability.water` —
  the operational + embodied footprint models (Eq. 1–5).
* :mod:`repro.sustainability.intensity` — the carbon/water intensity metrics
  (Eq. 6) used for scheduling decisions.
* :mod:`repro.sustainability.datasets` — synthetic stand-ins for the
  Electricity Maps and World Resources Institute data feeds.
"""

from repro.sustainability.carbon import CarbonModel
from repro.sustainability.datasets import (
    ElectricityMapsLikeProvider,
    RegionSustainabilitySeries,
    SustainabilityDataset,
    WRILikeProvider,
)
from repro.sustainability.embodied import ServerSpec
from repro.sustainability.energy_sources import (
    ENERGY_SOURCES,
    EnergySource,
    get_energy_source,
)
from repro.sustainability.grid import GridMix, GridMixModel, REGION_GRID_MIXES
from repro.sustainability.intensity import carbon_intensity_metric, water_intensity
from repro.sustainability.water import WaterModel
from repro.sustainability.wsf import water_scarcity_factor
from repro.sustainability.wue import wue_from_wet_bulb

__all__ = [
    "ENERGY_SOURCES",
    "CarbonModel",
    "ElectricityMapsLikeProvider",
    "EnergySource",
    "GridMix",
    "GridMixModel",
    "REGION_GRID_MIXES",
    "RegionSustainabilitySeries",
    "ServerSpec",
    "SustainabilityDataset",
    "WaterModel",
    "WRILikeProvider",
    "carbon_intensity_metric",
    "get_energy_source",
    "water_intensity",
    "water_scarcity_factor",
    "wue_from_wet_bulb",
]
