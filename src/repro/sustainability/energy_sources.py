"""Per-energy-source carbon intensity and water intensity (EWIF).

This is the synthetic re-encoding of the paper's Fig. 1: carbon intensity
per generation technology (IPCC AR5 Annex III life-cycle values, the paper's
reference [9]) and operational water-consumption factors (Macknick et al.,
references [35, 36]).  The two anchor points the paper calls out explicitly
are preserved exactly:

* coal ≈ 1050 gCO₂/kWh, roughly 62× hydro's ≈ 17 gCO₂/kWh;
* hydro's EWIF ≈ 17 L/kWh, roughly 11× coal's ≈ 1.5 L/kWh.

The broader pattern — carbon-friendly sources tending to need *more* water
per kWh — is what creates the carbon/water tension WaterWise navigates.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping

__all__ = ["EnergySource", "ENERGY_SOURCES", "get_energy_source", "mix_carbon_intensity", "mix_ewif"]


@dataclasses.dataclass(frozen=True)
class EnergySource:
    """A single electricity-generation technology.

    Attributes
    ----------
    key:
        Stable identifier, e.g. ``"hydro"``.
    name:
        Display name used in reports (matches the paper's Fig. 1 labels).
    carbon_intensity:
        Life-cycle carbon intensity in gCO₂/kWh.
    ewif:
        Energy Water Intensity Factor in L/kWh (operational water consumed
        per unit of electricity generated).
    renewable:
        Whether the source counts as renewable / carbon-friendly.
    """

    key: str
    name: str
    carbon_intensity: float
    ewif: float
    renewable: bool

    def __post_init__(self) -> None:
        if self.carbon_intensity < 0 or self.ewif < 0:
            raise ValueError(f"energy source {self.key!r} has negative intensity values")


#: The nine generation technologies of the paper's Fig. 1.
ENERGY_SOURCES: dict[str, EnergySource] = {
    source.key: source
    for source in (
        EnergySource("nuclear", "Nuclear", carbon_intensity=12.0, ewif=2.5, renewable=True),
        EnergySource("wind", "Wind", carbon_intensity=11.0, ewif=0.01, renewable=True),
        EnergySource("hydro", "Hydro", carbon_intensity=17.0, ewif=17.0, renewable=True),
        EnergySource("geothermal", "Geothermal", carbon_intensity=38.0, ewif=1.4, renewable=True),
        EnergySource("solar", "Solar", carbon_intensity=45.0, ewif=0.12, renewable=True),
        EnergySource("biomass", "Biomass", carbon_intensity=230.0, ewif=2.2, renewable=True),
        EnergySource("gas", "Gas", carbon_intensity=490.0, ewif=1.0, renewable=False),
        EnergySource("oil", "Oil", carbon_intensity=740.0, ewif=1.6, renewable=False),
        EnergySource("coal", "Coal", carbon_intensity=1050.0, ewif=1.55, renewable=False),
    )
}


def get_energy_source(key: str) -> EnergySource:
    """Look up an energy source by key (case-insensitive)."""
    normalized = key.strip().lower()
    try:
        return ENERGY_SOURCES[normalized]
    except KeyError:
        raise KeyError(
            f"unknown energy source {key!r}; known sources: {sorted(ENERGY_SOURCES)}"
        ) from None


def _validate_mix(mix: Mapping[str, float]) -> dict[str, float]:
    if not mix:
        raise ValueError("energy mix must not be empty")
    shares = {}
    for key, share in mix.items():
        source_key = key.strip().lower()
        if source_key not in ENERGY_SOURCES:
            raise KeyError(f"unknown energy source {key!r} in mix")
        if share < 0:
            raise ValueError(f"energy mix share for {key!r} must be >= 0, got {share}")
        shares[source_key] = float(share)
    total = sum(shares.values())
    if total <= 0:
        raise ValueError("energy mix shares must sum to a positive value")
    return {key: share / total for key, share in shares.items()}


def mix_carbon_intensity(mix: Mapping[str, float]) -> float:
    """Carbon intensity (gCO₂/kWh) of an energy mix (shares are normalized)."""
    shares = _validate_mix(mix)
    return sum(share * ENERGY_SOURCES[key].carbon_intensity for key, share in shares.items())


def mix_ewif(mix: Mapping[str, float], ewif_table: Mapping[str, float] | None = None) -> float:
    """EWIF (L/kWh) of an energy mix.

    ``ewif_table`` optionally overrides the per-source EWIF values — the
    World Resources Institute robustness study (paper Fig. 6) swaps in a
    different table through this hook.
    """
    shares = _validate_mix(mix)
    if ewif_table is None:
        return sum(share * ENERGY_SOURCES[key].ewif for key, share in shares.items())
    return sum(share * float(ewif_table.get(key, ENERGY_SOURCES[key].ewif)) for key, share in shares.items())
