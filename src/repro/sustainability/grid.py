"""Grid energy-mix model: per-region, time-varying generation mix.

The regional carbon intensity and EWIF the scheduler sees are properties of
the electricity grid's generation mix, which changes hour by hour (solar only
produces during the day, wind fluctuates, dispatchable fossil generation fills
the gap).  The paper feeds live Electricity Maps data; offline, this module
generates the mix:

* each region has a **base mix** (:data:`REGION_GRID_MIXES`) tuned so the
  *average* regional carbon intensity and EWIF reproduce the ordering of the
  paper's Fig. 2(a–b) — Zurich lowest carbon / highest EWIF through Mumbai
  highest carbon / low EWIF;
* solar follows a diurnal availability curve, wind follows correlated noise,
  hydro has a mild seasonal cycle;
* whatever renewable generation is unavailable at a given hour is backfilled
  by the region's dispatchable (fossil) sources, preserving a total of 1.

The output is an hourly share matrix from which carbon-intensity and EWIF
series are computed as share-weighted sums over the energy-source catalog.
"""

from __future__ import annotations

import dataclasses
import zlib
from collections.abc import Mapping

import numpy as np

from repro._validation import ensure_positive
from repro.sustainability.energy_sources import ENERGY_SOURCES

__all__ = ["GridMix", "GridMixModel", "REGION_GRID_MIXES"]

_HOURS_PER_DAY = 24
_HOURS_PER_YEAR = 8760


@dataclasses.dataclass(frozen=True)
class GridMix:
    """Base generation mix of a region's grid (shares sum to 1)."""

    shares: Mapping[str, float]

    def __post_init__(self) -> None:
        if not self.shares:
            raise ValueError("grid mix must not be empty")
        for key, share in self.shares.items():
            if key not in ENERGY_SOURCES:
                raise KeyError(f"unknown energy source {key!r} in grid mix")
            if share < 0:
                raise ValueError(f"share for {key!r} must be >= 0")
        total = sum(self.shares.values())
        if not np.isclose(total, 1.0, atol=1e-6):
            raise ValueError(f"grid mix shares must sum to 1.0, got {total}")

    def share(self, source: str) -> float:
        return float(self.shares.get(source, 0.0))


#: Base grid mixes per region, tuned to reproduce the paper's Fig. 2(a-b)
#: regional ordering of carbon intensity and EWIF.
REGION_GRID_MIXES: dict[str, GridMix] = {
    # Zurich: hydro/nuclear heavy -> lowest carbon intensity, highest EWIF.
    "zurich": GridMix(
        {
            "hydro": 0.30,
            "nuclear": 0.25,
            "geothermal": 0.01,
            "biomass": 0.07,
            "wind": 0.12,
            "solar": 0.09,
            "gas": 0.16,
        }
    ),
    # Madrid: wind/solar/nuclear with gas backup -> low carbon, moderate EWIF.
    "madrid": GridMix(
        {
            "wind": 0.24,
            "solar": 0.20,
            "nuclear": 0.20,
            "hydro": 0.07,
            "biomass": 0.03,
            "gas": 0.22,
            "coal": 0.04,
        }
    ),
    # Oregon: gas-heavy with hydro/wind -> mid carbon, low-to-mid EWIF.
    "oregon": GridMix(
        {
            "gas": 0.42,
            "hydro": 0.10,
            "wind": 0.14,
            "solar": 0.12,
            "nuclear": 0.04,
            "coal": 0.12,
            "geothermal": 0.06,
        }
    ),
    # Milan: gas-dominated with some hydro/solar -> higher carbon, mid EWIF.
    "milan": GridMix(
        {
            "gas": 0.52,
            "hydro": 0.15,
            "solar": 0.11,
            "wind": 0.05,
            "biomass": 0.05,
            "coal": 0.08,
            "oil": 0.04,
        }
    ),
    # Mumbai: coal-dominated -> highest carbon intensity, comparatively low EWIF.
    "mumbai": GridMix(
        {
            "coal": 0.44,
            "gas": 0.16,
            "hydro": 0.04,
            "solar": 0.19,
            "wind": 0.14,
            "oil": 0.03,
        }
    ),
}

#: Sources that can be dispatched up/down to backfill variable renewables.
_DISPATCHABLE = ("gas", "coal", "oil", "biomass", "nuclear", "geothermal")
#: Sources with weather-driven availability.
_VARIABLE = ("solar", "wind", "hydro")


class GridMixModel:
    """Hourly generation-share series for one region's grid.

    Parameters
    ----------
    region_key:
        Region whose base mix to use (must exist in ``mixes``).
    seed:
        Seed for the stochastic wind/hydro availability.
    mixes:
        Base mixes; defaults to :data:`REGION_GRID_MIXES`.
    variability:
        Overall scaling of the temporal variability (0 = static mix).  The
        Fig. 2(e)-style temporal swings of carbon/water intensity come from
        this term.
    """

    def __init__(
        self,
        region_key: str,
        seed: int = 0,
        mixes: Mapping[str, GridMix] | None = None,
        variability: float = 1.0,
    ) -> None:
        mixes = REGION_GRID_MIXES if mixes is None else mixes
        key = region_key.strip().lower()
        if key not in mixes:
            raise KeyError(f"no grid mix defined for region {region_key!r}")
        if variability < 0:
            raise ValueError("variability must be >= 0")
        self.region_key = key
        self.base_mix = mixes[key]
        self.seed = int(seed)
        self.variability = float(variability)
        self.source_keys = tuple(sorted(ENERGY_SOURCES))
        self._source_index = {s: i for i, s in enumerate(self.source_keys)}

    # -- share series -----------------------------------------------------------
    def share_series(self, horizon_hours: int) -> np.ndarray:
        """(horizon_hours × n_sources) generation-share matrix (rows sum to 1)."""
        horizon_hours = int(ensure_positive(horizon_hours, "horizon_hours"))
        n_sources = len(self.source_keys)
        hours = np.arange(horizon_hours, dtype=float)
        hour_of_day = hours % _HOURS_PER_DAY

        base = np.zeros(n_sources)
        for source, share in self.base_mix.shares.items():
            base[self._source_index[source]] = share
        shares = np.tile(base, (horizon_hours, 1))

        rng = np.random.default_rng(
            (zlib.crc32(self.region_key.encode("utf-8")) & 0xFFFF) + self.seed
        )

        # Solar availability: zero at night, bell-shaped during the day.  The
        # base share represents the *daily mean*, so the daytime peak is scaled
        # up to conserve the average.
        solar_idx = self._source_index["solar"]
        solar_shape = np.clip(np.sin(np.pi * (hour_of_day - 6.0) / 12.0), 0.0, None)
        mean_shape = np.mean(solar_shape) if np.mean(solar_shape) > 0 else 1.0
        solar_factor = 1.0 + self.variability * (solar_shape / mean_shape - 1.0)
        shares[:, solar_idx] = base[solar_idx] * solar_factor

        # Wind availability: slowly varying correlated noise around 1.
        wind_idx = self._source_index["wind"]
        daily_wind = rng.normal(0.0, 0.35, size=horizon_hours // _HOURS_PER_DAY + 2)
        kernel = np.ones(3) / 3.0
        daily_wind = np.convolve(daily_wind, kernel, mode="same")
        wind_factor = 1.0 + self.variability * daily_wind[(hours // _HOURS_PER_DAY).astype(int)]
        shares[:, wind_idx] = base[wind_idx] * np.clip(wind_factor, 0.1, 2.0)

        # Hydro availability: mild seasonal cycle (spring melt peak).
        hydro_idx = self._source_index["hydro"]
        hydro_factor = 1.0 + self.variability * 0.25 * np.cos(
            2.0 * np.pi * (hours / _HOURS_PER_YEAR) - 2.0 * np.pi * (120.0 / 365.0)
        )
        shares[:, hydro_idx] = base[hydro_idx] * np.clip(hydro_factor, 0.0, None)

        # Backfill: scale the dispatchable sources so each row sums to 1.
        dispatch_idx = [self._source_index[s] for s in _DISPATCHABLE if base[self._source_index[s]] > 0]
        variable_total = shares[:, [solar_idx, wind_idx, hydro_idx]].sum(axis=1)
        other_idx = [
            i
            for i in range(n_sources)
            if i not in (solar_idx, wind_idx, hydro_idx) and i not in dispatch_idx
        ]
        fixed_total = shares[:, other_idx].sum(axis=1) if other_idx else np.zeros(horizon_hours)
        dispatch_base = sum(base[i] for i in dispatch_idx)
        required = np.clip(1.0 - variable_total - fixed_total, 0.0, None)
        if dispatch_idx and dispatch_base > 0:
            scale = required / dispatch_base
            for i in dispatch_idx:
                shares[:, i] = base[i] * scale
        # Renormalize exactly (guards against renewables exceeding 1 in extreme hours).
        totals = shares.sum(axis=1, keepdims=True)
        totals[totals == 0.0] = 1.0
        return shares / totals

    # -- derived series -----------------------------------------------------------
    def carbon_intensity_series(self, horizon_hours: int) -> np.ndarray:
        """Hourly grid carbon intensity (gCO₂/kWh)."""
        shares = self.share_series(horizon_hours)
        ci = np.array([ENERGY_SOURCES[s].carbon_intensity for s in self.source_keys])
        return shares @ ci

    def ewif_series(
        self, horizon_hours: int, ewif_table: Mapping[str, float] | None = None
    ) -> np.ndarray:
        """Hourly grid EWIF (L/kWh), optionally with an alternative EWIF table."""
        shares = self.share_series(horizon_hours)
        if ewif_table is None:
            ewif = np.array([ENERGY_SOURCES[s].ewif for s in self.source_keys])
        else:
            ewif = np.array(
                [float(ewif_table.get(s, ENERGY_SOURCES[s].ewif)) for s in self.source_keys]
            )
        return shares @ ewif
