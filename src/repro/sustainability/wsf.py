"""Water Scarcity Factors (WSF) per region.

The WSF gauges how precious a liter of water is in a given region (paper
Sec. 2.2, data from Our World in Data's water-stress indicators).  It is a
static per-region scalar in the paper's model; both the offsite and onsite
water footprints are scaled by ``(1 + WSF)`` and the effective water metric
used in scheduling inherits that scaling.

The default values re-encode the paper's Fig. 2(d): Madrid is the most
water-stressed of the five evaluation regions, Mumbai and Oregon are also
stressed, Milan is moderate and Zurich is water-abundant.
"""

from __future__ import annotations

from repro._validation import ensure_non_negative

__all__ = ["DEFAULT_WSF", "water_scarcity_factor"]

#: Default WSF per region key (dimensionless, higher = more water stressed).
DEFAULT_WSF: dict[str, float] = {
    "zurich": 0.12,
    "madrid": 0.80,
    "oregon": 0.60,
    "milan": 0.45,
    "mumbai": 0.65,
}


def water_scarcity_factor(region_key: str, overrides: dict[str, float] | None = None) -> float:
    """WSF for ``region_key``.

    ``overrides`` takes precedence over the built-in table; unknown regions
    without an override raise ``KeyError`` (a silent default would let an
    experiment quietly ignore water stress).
    """
    key = region_key.strip().lower()
    if overrides and key in overrides:
        return ensure_non_negative(overrides[key], f"WSF override for {region_key!r}")
    try:
        return DEFAULT_WSF[key]
    except KeyError:
        raise KeyError(
            f"no water scarcity factor known for region {region_key!r}; "
            f"known regions: {sorted(DEFAULT_WSF)}"
        ) from None
