"""Carbon-footprint model (paper Eq. 1).

The carbon footprint of a job is the sum of

* **operational carbon** — the job's energy multiplied by the real-time
  carbon intensity of the grid powering the data center, and
* **embodied carbon** — the server's manufacturing carbon amortized over the
  hardware lifetime and scaled by the job's execution time.

Functions accept scalars or NumPy arrays so that a whole batch of jobs ×
regions can be evaluated in one vectorized call (that is what the WaterWise
decision controller does every scheduling round).
"""

from __future__ import annotations

import numpy as np

from repro.sustainability.embodied import DEFAULT_SERVER, ServerSpec

__all__ = ["CarbonModel"]


class CarbonModel:
    """Computes operational, embodied and total carbon footprints.

    Parameters
    ----------
    server:
        Hardware description used for embodied-carbon amortization.
    include_embodied:
        When False, only operational carbon is reported (used by the
        Ecovisor-like baseline, which ignores embodied carbon, and by
        ablation studies).
    """

    def __init__(self, server: ServerSpec = DEFAULT_SERVER, include_embodied: bool = True) -> None:
        self.server = server
        self.include_embodied = bool(include_embodied)

    def operational(self, energy_kwh, carbon_intensity):
        """Operational carbon (g) = energy (kWh) × carbon intensity (gCO₂/kWh)."""
        energy = np.asarray(energy_kwh, dtype=float)
        intensity = np.asarray(carbon_intensity, dtype=float)
        if np.any(energy < 0):
            raise ValueError("energy_kwh must be non-negative")
        if np.any(intensity < 0):
            raise ValueError("carbon_intensity must be non-negative")
        result = energy * intensity
        return float(result) if result.ndim == 0 else result

    def embodied(self, execution_time_s):
        """Embodied carbon (g) attributed to a job of the given duration."""
        exec_time = np.asarray(execution_time_s, dtype=float)
        if np.any(exec_time < 0):
            raise ValueError("execution_time_s must be non-negative")
        result = (exec_time / self.server.lifetime_seconds) * self.server.embodied_carbon_g
        return float(result) if result.ndim == 0 else result

    def total(self, energy_kwh, carbon_intensity, execution_time_s):
        """Total job carbon footprint in grams CO₂e (Eq. 1)."""
        operational = self.operational(energy_kwh, carbon_intensity)
        if not self.include_embodied:
            return operational
        embodied = self.embodied(execution_time_s)
        result = np.asarray(operational) + np.asarray(embodied)
        return float(result) if result.ndim == 0 else result
