"""Water-footprint model (paper Eq. 2–5).

The water footprint of a job has three components:

* **offsite** (Eq. 2) — water consumed generating the electricity the data
  center draws from the grid: ``PUE × E × EWIF × (1 + WSF_dc)``;
* **onsite** (Eq. 3) — water evaporated cooling the data center:
  ``E × WUE × (1 + WSF_dc)``;
* **embodied** (Eq. 4/5) — manufacturing water amortized over the server
  lifetime, scaled by execution time.

All entry points are vectorized over NumPy arrays so a scheduling round can
evaluate a full jobs × regions matrix at once.
"""

from __future__ import annotations

import numpy as np

from repro.sustainability.embodied import DEFAULT_SERVER, ServerSpec

__all__ = ["WaterModel"]


def _non_negative(name: str, value) -> np.ndarray:
    arr = np.asarray(value, dtype=float)
    if np.any(arr < 0):
        raise ValueError(f"{name} must be non-negative")
    return arr


class WaterModel:
    """Computes offsite, onsite, embodied and total water footprints.

    Parameters
    ----------
    server:
        Hardware description used for embodied-water amortization.
    include_embodied:
        When False, only operational water is reported.
    """

    def __init__(self, server: ServerSpec = DEFAULT_SERVER, include_embodied: bool = True) -> None:
        self.server = server
        self.include_embodied = bool(include_embodied)

    def offsite(self, energy_kwh, ewif, wsf, pue):
        """Offsite water (L), Eq. 2: ``PUE × E × EWIF × (1 + WSF)``."""
        energy = _non_negative("energy_kwh", energy_kwh)
        ewif_arr = _non_negative("ewif", ewif)
        wsf_arr = _non_negative("wsf", wsf)
        pue_arr = np.asarray(pue, dtype=float)
        if np.any(pue_arr < 1.0):
            raise ValueError("pue must be >= 1.0")
        result = pue_arr * energy * ewif_arr * (1.0 + wsf_arr)
        return float(result) if result.ndim == 0 else result

    def onsite(self, energy_kwh, wue, wsf):
        """Onsite (cooling) water (L), Eq. 3: ``E × WUE × (1 + WSF)``."""
        energy = _non_negative("energy_kwh", energy_kwh)
        wue_arr = _non_negative("wue", wue)
        wsf_arr = _non_negative("wsf", wsf)
        result = energy * wue_arr * (1.0 + wsf_arr)
        return float(result) if result.ndim == 0 else result

    def embodied(self, execution_time_s):
        """Embodied water (L) attributed to a job of the given duration (Eq. 4)."""
        exec_time = _non_negative("execution_time_s", execution_time_s)
        result = (exec_time / self.server.lifetime_seconds) * self.server.embodied_water_l
        return float(result) if result.ndim == 0 else result

    def operational(self, energy_kwh, ewif, wue, wsf, pue):
        """Operational water (L): offsite + onsite."""
        offsite = np.asarray(self.offsite(energy_kwh, ewif, wsf, pue))
        onsite = np.asarray(self.onsite(energy_kwh, wue, wsf))
        result = offsite + onsite
        return float(result) if result.ndim == 0 else result

    def total(self, energy_kwh, ewif, wue, wsf, pue, execution_time_s):
        """Total job water footprint in liters (Eq. 5)."""
        operational = np.asarray(self.operational(energy_kwh, ewif, wue, wsf, pue))
        if not self.include_embodied:
            return float(operational) if operational.ndim == 0 else operational
        embodied = np.asarray(self.embodied(execution_time_s))
        result = operational + embodied
        return float(result) if result.ndim == 0 else result
