"""Carbon- and water-intensity metrics (paper Eq. 6).

The scheduler reasons about regions through two per-region, per-time-step
scalars:

* **carbon intensity** (gCO₂/kWh) — taken directly from the grid mix, and
* **water intensity** (L/kWh) — defined by the paper as
  ``(WUE + PUE × EWIF) × (1 + WSF_dc)``, combining the onsite and offsite
  water requirements per unit of IT energy and the regional water scarcity.

Embodied footprints are deliberately excluded from the intensity metrics (they
depend on where the server was manufactured, not where it runs).
"""

from __future__ import annotations

import numpy as np

__all__ = ["water_intensity", "carbon_intensity_metric"]


def water_intensity(wue, ewif, wsf, pue):
    """Water intensity (L/kWh), Eq. 6: ``(WUE + PUE · EWIF) · (1 + WSF)``.

    Accepts scalars or arrays (broadcast together); lower is better.
    """
    wue_arr = np.asarray(wue, dtype=float)
    ewif_arr = np.asarray(ewif, dtype=float)
    wsf_arr = np.asarray(wsf, dtype=float)
    pue_arr = np.asarray(pue, dtype=float)
    if np.any(wue_arr < 0) or np.any(ewif_arr < 0) or np.any(wsf_arr < 0):
        raise ValueError("WUE, EWIF and WSF must be non-negative")
    if np.any(pue_arr < 1.0):
        raise ValueError("PUE must be >= 1.0")
    result = (wue_arr + pue_arr * ewif_arr) * (1.0 + wsf_arr)
    return float(result) if result.ndim == 0 else result


def carbon_intensity_metric(carbon_intensity):
    """Carbon intensity passthrough with validation (gCO₂/kWh; lower is better).

    Exists so scheduling code treats both intensity metrics symmetrically.
    """
    arr = np.asarray(carbon_intensity, dtype=float)
    if np.any(arr < 0):
        raise ValueError("carbon intensity must be non-negative")
    return float(arr) if arr.ndim == 0 else arr
