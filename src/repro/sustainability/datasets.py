"""Synthetic sustainability dataset providers.

The paper's evaluation consumes several external data feeds: Electricity Maps
(hourly carbon intensity and grid mix), Macknick/WRI tables (per-source EWIF),
Meteologix (wet-bulb temperatures) and Our World in Data (water stress).  This
module packages the synthetic equivalents built from the other
``repro.sustainability`` modules into per-region hourly series with a small,
uniform API the scheduler and the simulator consume:

``provider.series_for(region)`` → :class:`RegionSustainabilitySeries` with

* ``carbon_intensity[h]`` (gCO₂/kWh),
* ``ewif[h]`` (L/kWh),
* ``wue[h]`` (L/kWh),
* static ``wsf`` and ``pue``,
* helpers indexed by simulation time in seconds.

Two providers are available, mirroring the paper's two data sources:
:class:`ElectricityMapsLikeProvider` (default EWIF table) and
:class:`WRILikeProvider` (World Resources Institute style table, used by the
robustness study of Fig. 6/7).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping, Sequence

import numpy as np

from repro._validation import ensure_positive
from repro.regions.catalog import default_regions
from repro.regions.region import Region
from repro.regions.weather import WetBulbModel
from repro.sustainability.grid import GridMixModel
from repro.sustainability.intensity import water_intensity
from repro.sustainability.wsf import water_scarcity_factor
from repro.sustainability.wue import wue_from_wet_bulb

__all__ = [
    "RegionSustainabilitySeries",
    "SustainabilityDataset",
    "ElectricityMapsLikeProvider",
    "WRILikeProvider",
    "WRI_EWIF_TABLE",
]

_SECONDS_PER_HOUR = 3600.0

#: Alternative per-source EWIF table in the style of the World Resources
#: Institute guidance (paper reference [45]).  Values differ from the default
#: Macknick-style table by 15–40%, which is exactly the kind of disagreement
#: the paper's robustness study exercises.
WRI_EWIF_TABLE: dict[str, float] = {
    "nuclear": 2.0,
    "wind": 0.02,
    "hydro": 13.5,
    "geothermal": 1.1,
    "solar": 0.3,
    "biomass": 1.7,
    "gas": 1.25,
    "oil": 1.9,
    "coal": 2.0,
}


@dataclasses.dataclass(frozen=True)
class RegionSustainabilitySeries:
    """Hourly sustainability series for one region.

    All arrays share the same length (the dataset horizon in hours).  Time
    lookups take simulation time in *seconds* from the start of the horizon
    and clamp to the final hour, so a job that finishes slightly after the
    horizon still gets accounted.
    """

    region: Region
    carbon_intensity: np.ndarray
    ewif: np.ndarray
    wue: np.ndarray
    wsf: float
    pue: float

    def __post_init__(self) -> None:
        n = len(self.carbon_intensity)
        if n == 0:
            raise ValueError("series must contain at least one hour")
        if len(self.ewif) != n or len(self.wue) != n:
            raise ValueError("carbon_intensity, ewif and wue series must have equal length")
        if self.wsf < 0:
            raise ValueError("wsf must be >= 0")
        if self.pue < 1.0:
            raise ValueError("pue must be >= 1.0")

    # -- indexing ----------------------------------------------------------------
    @property
    def horizon_hours(self) -> int:
        return len(self.carbon_intensity)

    def _hour_index(self, time_s: float) -> int:
        if time_s < 0:
            raise ValueError(f"time_s must be >= 0, got {time_s}")
        return min(int(time_s // _SECONDS_PER_HOUR), self.horizon_hours - 1)

    def carbon_intensity_at(self, time_s: float) -> float:
        """Grid carbon intensity (gCO₂/kWh) at simulation time ``time_s``."""
        return float(self.carbon_intensity[self._hour_index(time_s)])

    def ewif_at(self, time_s: float) -> float:
        """Grid EWIF (L/kWh) at simulation time ``time_s``."""
        return float(self.ewif[self._hour_index(time_s)])

    def wue_at(self, time_s: float) -> float:
        """Data-center WUE (L/kWh) at simulation time ``time_s``."""
        return float(self.wue[self._hour_index(time_s)])

    def water_intensity_at(self, time_s: float) -> float:
        """Water intensity (Eq. 6) at simulation time ``time_s``."""
        idx = self._hour_index(time_s)
        return float(
            water_intensity(self.wue[idx], self.ewif[idx], self.wsf, self.pue)
        )

    # -- whole-series views ---------------------------------------------------------
    def water_intensity_series(self) -> np.ndarray:
        """Hourly water-intensity series (Eq. 6)."""
        return np.asarray(water_intensity(self.wue, self.ewif, self.wsf, self.pue))

    def mean_carbon_intensity(self) -> float:
        return float(np.mean(self.carbon_intensity))

    def mean_ewif(self) -> float:
        return float(np.mean(self.ewif))

    def mean_wue(self) -> float:
        return float(np.mean(self.wue))

    def mean_water_intensity(self) -> float:
        return float(np.mean(self.water_intensity_series()))

    # -- perturbation (sensitivity studies, chaos shocks) ------------------------------
    def scaled(
        self,
        carbon_scale: "float | np.ndarray" = 1.0,
        water_scale: "float | np.ndarray" = 1.0,
    ) -> "RegionSustainabilitySeries":
        """Return a copy with carbon intensity and/or water factors scaled.

        ``water_scale`` multiplies both EWIF and WUE (the two drivers of the
        water intensity); the paper's ±10% water-intensity sensitivity study
        uses this hook.  Either scale may also be an hourly factor *array*
        (same length as the series) — that is how chaos timelines inject
        carbon/water spikes and forecast error
        (:mod:`repro.cluster.timeline`).
        """
        if np.any(np.asarray(carbon_scale) <= 0) or np.any(np.asarray(water_scale) <= 0):
            raise ValueError("scale factors must be positive")
        return dataclasses.replace(
            self,
            carbon_intensity=self.carbon_intensity * carbon_scale,
            ewif=self.ewif * water_scale,
            wue=self.wue * water_scale,
        )


class SustainabilityDataset:
    """Base provider: builds and caches per-region sustainability series.

    Parameters
    ----------
    regions:
        Regions to cover; defaults to the paper's five evaluation regions.
    horizon_hours:
        Length of the series.  The Borg-driven evaluation uses 10 days
        (240 h); the Fig. 2 characterization uses a full year (8760 h).
    seed:
        Seed shared by the grid-mix and weather models.
    pue:
        Power Usage Effectiveness applied to every region (the paper uses a
        single PUE of 1.2).  Pass ``None`` to use each region's own
        :attr:`~repro.regions.region.Region.pue` instead.
    wsf_overrides:
        Optional per-region WSF overrides.
    variability:
        Temporal variability of the grid mix (0 = static).
    ewif_table:
        Optional per-source EWIF override table (the WRI provider sets this).
    """

    name = "synthetic"

    def __init__(
        self,
        regions: Sequence[Region] | None = None,
        horizon_hours: int = 240,
        seed: int = 0,
        pue: float | None = 1.2,
        wsf_overrides: Mapping[str, float] | None = None,
        variability: float = 1.0,
        ewif_table: Mapping[str, float] | None = None,
    ) -> None:
        self.regions = list(regions) if regions is not None else default_regions()
        if not self.regions:
            raise ValueError("dataset needs at least one region")
        self.horizon_hours = int(ensure_positive(horizon_hours, "horizon_hours"))
        self.seed = int(seed)
        self.pue = None if pue is None else float(pue)
        if self.pue is not None and self.pue < 1.0:
            raise ValueError("pue must be >= 1.0")
        self.wsf_overrides = dict(wsf_overrides) if wsf_overrides else {}
        self.variability = float(variability)
        self.ewif_table = dict(ewif_table) if ewif_table else None
        self._cache: dict[str, RegionSustainabilitySeries] = {}

    # -- construction -----------------------------------------------------------------
    def _build_series(self, region: Region) -> RegionSustainabilitySeries:
        grid = GridMixModel(region.key, seed=self.seed, variability=self.variability)
        weather = WetBulbModel(region, seed=self.seed)
        carbon = grid.carbon_intensity_series(self.horizon_hours)
        ewif = grid.ewif_series(self.horizon_hours, ewif_table=self.ewif_table)
        wue = np.asarray(wue_from_wet_bulb(weather.series(self.horizon_hours)))
        try:
            wsf = water_scarcity_factor(region.key, overrides=self.wsf_overrides)
        except KeyError:
            # Regions outside the default catalog fall back to their own value.
            wsf = region.water_scarcity
        return RegionSustainabilitySeries(
            region=region,
            carbon_intensity=carbon,
            ewif=ewif,
            wue=wue,
            wsf=wsf,
            pue=region.pue if self.pue is None else self.pue,
        )

    # -- access ------------------------------------------------------------------------
    @property
    def region_keys(self) -> list[str]:
        return [region.key for region in self.regions]

    def series_for(self, region_key: str) -> RegionSustainabilitySeries:
        """The (cached) series for one region key."""
        key = region_key.strip().lower()
        if key not in self._cache:
            for region in self.regions:
                if region.key == key:
                    self._cache[key] = self._build_series(region)
                    break
            else:
                raise KeyError(f"region {region_key!r} is not part of this dataset")
        return self._cache[key]

    def all_series(self) -> dict[str, RegionSustainabilitySeries]:
        """Series for every region in the dataset."""
        return {region.key: self.series_for(region.key) for region in self.regions}

    # -- convenience lookups --------------------------------------------------------------
    def carbon_intensity(self, region_key: str, time_s: float) -> float:
        return self.series_for(region_key).carbon_intensity_at(time_s)

    def water_intensity(self, region_key: str, time_s: float) -> float:
        return self.series_for(region_key).water_intensity_at(time_s)

    def perturbed(self, carbon_scale: float = 1.0, water_scale: float = 1.0) -> "SustainabilityDataset":
        """A dataset whose series are scaled copies of this one (sensitivity studies)."""
        clone = type(self).__new__(type(self))
        clone.__dict__.update(self.__dict__)
        clone._cache = {
            key: series.scaled(carbon_scale=carbon_scale, water_scale=water_scale)
            for key, series in self.all_series().items()
        }
        return clone

    def with_hourly_factors(
        self,
        carbon_factors: Mapping[str, np.ndarray] | None = None,
        water_factors: Mapping[str, np.ndarray] | None = None,
    ) -> "SustainabilityDataset":
        """A dataset with per-region *hourly* multipliers applied to its series.

        ``carbon_factors``/``water_factors`` map region keys to factor arrays
        of ``horizon_hours`` entries; regions absent from both mappings keep
        their original (identical, not just equal) series.  This is the hook
        chaos timelines use for carbon/water spikes and forecast-error
        injection (:mod:`repro.cluster.timeline`).
        """
        carbon_factors = dict(carbon_factors or {})
        water_factors = dict(water_factors or {})
        for label, factors in (("carbon", carbon_factors), ("water", water_factors)):
            for key, array in factors.items():
                if len(np.asarray(array)) != self.horizon_hours:
                    raise ValueError(
                        f"{label} factor array for region {key!r} has "
                        f"{len(np.asarray(array))} entries; expected "
                        f"horizon_hours={self.horizon_hours}"
                    )
        clone = type(self).__new__(type(self))
        clone.__dict__.update(self.__dict__)
        clone._cache = {
            key: (
                series.scaled(
                    carbon_scale=carbon_factors.get(key, 1.0),
                    water_scale=water_factors.get(key, 1.0),
                )
                if key in carbon_factors or key in water_factors
                else series
            )
            for key, series in self.all_series().items()
        }
        return clone


class ElectricityMapsLikeProvider(SustainabilityDataset):
    """Synthetic stand-in for the Electricity Maps feed (default EWIF table)."""

    name = "electricity-maps-like"


class WRILikeProvider(SustainabilityDataset):
    """Synthetic stand-in for the World Resources Institute water guidance.

    Uses :data:`WRI_EWIF_TABLE` for per-source water intensity; everything
    else matches :class:`ElectricityMapsLikeProvider`.
    """

    name = "wri-like"

    def __init__(self, *args, **kwargs) -> None:
        kwargs.setdefault("ewif_table", WRI_EWIF_TABLE)
        super().__init__(*args, **kwargs)
