"""History learner: per-region reference terms for the MILP objective.

The paper augments the placement objective with "the historical carbon
footprint and water footprint (normalized) of every region in a time window"
(Eq. 8), weighted by λ_ref.  The learner keeps a sliding window of the last
``window`` scheduling rounds; at each round it records every region's carbon
and water intensity normalized by that round's maximum across regions, and
the reference term is the per-region mean over the window.  A region that has
recently been carbon- or water-expensive therefore carries a standing penalty
even at an instant where its current intensity happens to dip — smoothing
decisions against short-lived fluctuations.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence

import numpy as np

__all__ = ["HistoryLearner"]


class HistoryLearner:
    """Sliding-window normalized intensity history per region."""

    def __init__(self, window: int = 10) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = int(window)
        self._carbon: deque[dict[str, float]] = deque(maxlen=self.window)
        self._water: deque[dict[str, float]] = deque(maxlen=self.window)

    def reset(self) -> None:
        """Forget all recorded rounds."""
        self._carbon.clear()
        self._water.clear()

    @property
    def rounds_recorded(self) -> int:
        return len(self._carbon)

    # -- recording -------------------------------------------------------------------
    def observe(
        self,
        region_keys: Sequence[str],
        carbon_intensity: Sequence[float],
        water_intensity: Sequence[float],
    ) -> None:
        """Record one scheduling round's per-region intensities.

        Values are normalized by the round's maximum so the reference terms
        stay in ``[0, 1]`` regardless of units.
        """
        if not (len(region_keys) == len(carbon_intensity) == len(water_intensity)):
            raise ValueError("region_keys, carbon_intensity and water_intensity must align")
        carbon = np.asarray(carbon_intensity, dtype=float)
        water = np.asarray(water_intensity, dtype=float)
        if np.any(carbon < 0) or np.any(water < 0):
            raise ValueError("intensities must be non-negative")
        carbon_max = carbon.max() if carbon.size and carbon.max() > 0 else 1.0
        water_max = water.max() if water.size and water.max() > 0 else 1.0
        self._carbon.append({k: float(c / carbon_max) for k, c in zip(region_keys, carbon)})
        self._water.append({k: float(w / water_max) for k, w in zip(region_keys, water)})

    # -- reference terms ---------------------------------------------------------------
    def reference(self, region_keys: Sequence[str]) -> tuple[np.ndarray, np.ndarray]:
        """Mean normalized (carbon, water) history per region.

        Regions never observed (or before any round was recorded) get 0 —
        i.e. no historical penalty.
        """
        co2_ref = np.zeros(len(region_keys))
        h2o_ref = np.zeros(len(region_keys))
        if not self._carbon:
            return co2_ref, h2o_ref
        for idx, key in enumerate(region_keys):
            carbon_values = [entry[key] for entry in self._carbon if key in entry]
            water_values = [entry[key] for entry in self._water if key in entry]
            if carbon_values:
                co2_ref[idx] = float(np.mean(carbon_values))
            if water_values:
                h2o_ref[idx] = float(np.mean(water_values))
        return co2_ref, h2o_ref
