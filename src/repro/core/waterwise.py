"""The WaterWise scheduling policy (paper Algorithm 1).

Each scheduling round:

1. The batch handed over by the simulator already contains the newly arrived
   jobs plus every job WaterWise previously deferred (``J = J ∪ J_delay``).
2. If the batch needs more server slots than the cluster has remaining, the
   slack manager ranks jobs by their urgency score (Eq. 14), keeps the most
   urgent ones that fit and defers the rest; the kept jobs are placed with
   the *soft-constraint* decision controller (Algorithm 1, lines 5–7).
3. Otherwise the hard-constraint controller runs first and the controller
   automatically retries with softened delay constraints if the MILP is
   infeasible (Algorithm 1, lines 8–11).
4. The history learner records the round's per-region carbon/water
   intensities for the reference term of future rounds.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.cluster.interface import Scheduler, SchedulerDecision, SchedulingContext
from repro.core.config import WaterWiseConfig
from repro.core.decision import DecisionController
from repro.core.history import HistoryLearner
from repro.core.slack import SlackManager
from repro.traces.job import Job

__all__ = ["WaterWiseScheduler", "record_round_intensities"]


def record_round_intensities(history, region_keys, dataset, now_s: float) -> None:
    """Record one round's per-region carbon/water intensities with ``history``.

    Shared by the scalar :meth:`WaterWiseScheduler.schedule` and the
    vectorized fast path (:mod:`repro.core.fastpath`) so both feed the
    history learner identical observations.
    """
    carbon = np.array(
        [dataset.series_for(key).carbon_intensity_at(now_s) for key in region_keys]
    )
    water = np.array(
        [dataset.series_for(key).water_intensity_at(now_s) for key in region_keys]
    )
    history.observe(region_keys, carbon, water)


class WaterWiseScheduler(Scheduler):
    """Carbon- and water-footprint co-optimizing MILP scheduler."""

    name = "waterwise"

    def __init__(self, config: WaterWiseConfig | None = None) -> None:
        self.config = config if config is not None else WaterWiseConfig()
        self.controller = DecisionController(self.config)
        self.history = HistoryLearner(window=self.config.history_window)
        self.slack_manager = SlackManager()
        #: Number of scheduling rounds in which the soft controller was used.
        self.soft_rounds = 0
        #: Number of scheduling rounds in which jobs had to be shed by slack.
        self.overload_rounds = 0

    def reset(self) -> None:
        self.controller.reset()
        self.history.reset()
        self.soft_rounds = 0
        self.overload_rounds = 0

    # -- policy ------------------------------------------------------------------------
    def schedule(self, jobs: Sequence[Job], context: SchedulingContext) -> SchedulerDecision:
        self._record_history(context)
        if not jobs:
            return SchedulerDecision()

        total_capacity = context.total_capacity
        required_slots = sum(job.servers_required for job in jobs)

        deferred: list[int] = []
        batch: Sequence[Job] = jobs
        force_soft = False
        if total_capacity <= 0:
            # Nothing can start this round anywhere; wait for capacity.
            return SchedulerDecision(deferred=[job.job_id for job in jobs])
        if required_slots > total_capacity and self.config.use_slack_manager:
            if self.config.decision_pipeline == "array":
                selection = self.slack_manager.select_arrays(jobs, context, total_capacity)
            else:
                selection = self.slack_manager.select(jobs, context, total_capacity)
            batch = selection.selected
            deferred = [job.job_id for job in selection.deferred]
            force_soft = self.config.use_soft_constraints
            self.overload_rounds += 1
            if not batch:
                return SchedulerDecision(deferred=deferred)

        result = self.controller.decide(
            batch, context, history=self.history if self.config.use_history else None,
            force_soft=force_soft, extra_cost=self._extra_cost(batch, context),
        )
        if result.used_soft_constraints:
            self.soft_rounds += 1
        return SchedulerDecision(assignments=result.assignments, deferred=deferred)

    # -- extension hooks -------------------------------------------------------------------
    def _extra_cost(self, jobs: Sequence[Job], context: SchedulingContext):
        """Optional pre-weighted additive objective term (M × N).

        The base scheduler returns ``None``; extensions such as the
        cost-aware variant (:mod:`repro.core.cost`) override this to add
        further objectives without touching the MILP construction.
        """
        return None

    def _extra_cost_arrays(self, context, batch):
        """Array-world mirror of :meth:`_extra_cost` for the fast path.

        ``context`` is a :class:`~repro.cluster.batch.BatchSchedulingContext`
        and ``batch`` the indices of the round's (slack-selected) jobs.  An
        extension that overrides :meth:`_extra_cost` must either override
        this with a bit-identical array implementation *and* register the
        fast path for its own class, or leave it alone — subclasses without
        their own registration always fall back to the scalar path (the
        registrations are ``exact=True``), so the two hooks can never drift
        apart silently.
        """
        return None

    # -- internals -----------------------------------------------------------------------
    def _record_history(self, context: SchedulingContext) -> None:
        if not self.config.use_history:
            return
        record_round_intensities(
            self.history, context.region_keys, context.dataset, context.now
        )


# Registering the vectorized fast path lives in a separate module so the
# class definition stays import-light; importing it here makes the fast path
# available whenever the scheduler itself is.
import repro.core.fastpath  # noqa: E402,F401  (side-effect import)
