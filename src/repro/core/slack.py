"""Slack manager: job prioritization when demand exceeds capacity (Eq. 14).

The MILP is stateless across rounds: it does not know which jobs have already
been waiting and are close to violating their delay tolerance.  When the
batch is larger than the total remaining capacity, WaterWise ranks jobs by an
urgency (slack) score and only hands the most urgent ones to the decision
controller this round; the rest are deferred to the next round (Algorithm 1).

The paper's Eq. 14 combines three terms: the job's total delay allowance
``TOL% · t_m``, the average transfer latency to the other regions
``L_avg_m`` and the time the job has already been waiting.  A job whose
remaining allowance is small — because its execution time is short, transfers
are expensive or it has waited for a long time — has little slack left and is
scheduled first.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

from repro.cluster.interface import SchedulingContext
from repro.traces.job import Job

__all__ = ["SlackManager", "SlackSelection"]


@dataclasses.dataclass(frozen=True)
class SlackSelection:
    """Result of a slack-manager pass: jobs to schedule now vs. to defer."""

    selected: tuple[Job, ...]
    deferred: tuple[Job, ...]
    scores: dict[int, float]


class SlackManager:
    """Ranks jobs by remaining slack and selects the most urgent ones."""

    def urgency(self, job: Job, context: SchedulingContext) -> float:
        """Slack score of ``job`` (smaller = more urgent), paper Eq. 14.

        ``TOL% · t_m − L_avg_m − waited_m``: the delay allowance minus the
        average cost of moving the job and minus the time it has already
        spent waiting since the controller received it.
        """
        allowance = context.delay_tolerance * job.execution_time
        average_transfer = context.latency.average_from(job.home_region, job.package_gb)
        waited = context.wait_time(job)
        return allowance - average_transfer - waited

    def select(
        self, jobs: Sequence[Job], context: SchedulingContext, capacity_slots: int
    ) -> SlackSelection:
        """Pick the most urgent jobs that fit in ``capacity_slots`` server slots.

        Jobs are sorted by ascending slack; selection stops once the next
        job's server requirement no longer fits.  With zero capacity every
        job is deferred.
        """
        if capacity_slots < 0:
            raise ValueError("capacity_slots must be >= 0")
        scores = {job.job_id: self.urgency(job, context) for job in jobs}
        ranked = sorted(jobs, key=lambda job: (scores[job.job_id], job.job_id))
        selected: list[Job] = []
        deferred: list[Job] = []
        remaining = int(capacity_slots)
        for job in ranked:
            if job.servers_required <= remaining:
                selected.append(job)
                remaining -= job.servers_required
            else:
                deferred.append(job)
        return SlackSelection(selected=tuple(selected), deferred=tuple(deferred), scores=scores)
