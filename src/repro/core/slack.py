"""Slack manager: job prioritization when demand exceeds capacity (Eq. 14).

The MILP is stateless across rounds: it does not know which jobs have already
been waiting and are close to violating their delay tolerance.  When the
batch is larger than the total remaining capacity, WaterWise ranks jobs by an
urgency (slack) score and only hands the most urgent ones to the decision
controller this round; the rest are deferred to the next round (Algorithm 1).

The paper's Eq. 14 combines three terms: the job's total delay allowance
``TOL% · t_m``, the average transfer latency to the other regions
``L_avg_m`` and the time the job has already been waiting.  A job whose
remaining allowance is small — because its execution time is short, transfers
are expensive or it has waited for a long time — has little slack left and is
scheduled first.
"""

from __future__ import annotations

import dataclasses
import weakref
from collections.abc import Sequence

import numpy as np

from repro.cluster.interface import SchedulingContext
from repro.traces.job import Job

__all__ = ["SlackManager", "SlackSelection", "admit_ranked", "cached_average_from"]

#: Per-latency-model memo of ``average_from`` results, keyed by
#: ``(source, package_gb)``.  The model's distances and rates are fixed at
#: construction, and traces draw packages from a handful of workload
#: profiles, so the array pipeline's urgency scoring collapses to dictionary
#: hits.  Bounded per model; the reference pipeline deliberately does not use
#: it (it mirrors the paper's per-job evaluation).
_AVERAGE_CACHE: "weakref.WeakKeyDictionary[object, dict]" = weakref.WeakKeyDictionary()
_AVERAGE_CACHE_LIMIT = 8192


def cached_average_from(latency, source: str, package_gb: float) -> float:
    """Memoized ``latency.average_from(source, package_gb)`` (same floats)."""
    per_model = _AVERAGE_CACHE.get(latency)
    if per_model is None:
        per_model = {}
        _AVERAGE_CACHE[latency] = per_model
    key = (source, package_gb)
    value = per_model.get(key)
    if value is None:
        value = latency.average_from(source, package_gb)
        if len(per_model) < _AVERAGE_CACHE_LIMIT:
            per_model[key] = value
    return value


def admit_ranked(
    ranked: Sequence[int], servers: Sequence[int], capacity_slots: int
) -> tuple[list[int], list[int]]:
    """Greedy admission over urgency-ranked positions (shared Eq. 14 core).

    ``ranked`` lists batch positions most-urgent-first and ``servers`` the
    server demand *aligned with that ranking*.  Walks the ranking admitting
    every position whose demand still fits, exactly like
    :meth:`SlackManager.select`; once remaining capacity reaches zero
    nothing else can fit (jobs require at least one server), so the rest of
    the ranking defers wholesale.  Returns ``(selected, deferred)``, both in
    rank order.  Shared by the object-world :meth:`SlackManager.select_arrays`
    and the batch fast path (:mod:`repro.core.fastpath`), which keeps their
    tie-breaking identical.
    """
    remaining = int(capacity_slots)
    selected: list[int] = []
    deferred: list[int] = []
    for index, (position, srv) in enumerate(zip(ranked, servers)):
        if srv <= remaining:
            selected.append(position)
            remaining -= srv
            if remaining <= 0:
                deferred.extend(ranked[index + 1:])
                break
        else:
            deferred.append(position)
    return selected, deferred


@dataclasses.dataclass(frozen=True)
class SlackSelection:
    """Result of a slack-manager pass: jobs to schedule now vs. to defer."""

    selected: tuple[Job, ...]
    deferred: tuple[Job, ...]
    scores: dict[int, float]


class SlackManager:
    """Ranks jobs by remaining slack and selects the most urgent ones."""

    def urgency(self, job: Job, context: SchedulingContext) -> float:
        """Slack score of ``job`` (smaller = more urgent), paper Eq. 14.

        ``TOL% · t_m − L_avg_m − waited_m``: the delay allowance minus the
        average cost of moving the job and minus the time it has already
        spent waiting since the controller received it.
        """
        allowance = context.delay_tolerance * job.execution_time
        average_transfer = context.latency.average_from(job.home_region, job.package_gb)
        waited = context.wait_time(job)
        return allowance - average_transfer - waited

    def select(
        self, jobs: Sequence[Job], context: SchedulingContext, capacity_slots: int
    ) -> SlackSelection:
        """Pick the most urgent jobs that fit in ``capacity_slots`` server slots.

        Jobs are sorted by ascending slack; selection stops once the next
        job's server requirement no longer fits.  With zero capacity every
        job is deferred.
        """
        if capacity_slots < 0:
            raise ValueError("capacity_slots must be >= 0")
        scores = {job.job_id: self.urgency(job, context) for job in jobs}
        ranked = sorted(jobs, key=lambda job: (scores[job.job_id], job.job_id))
        selected: list[Job] = []
        deferred: list[Job] = []
        remaining = int(capacity_slots)
        for job in ranked:
            if job.servers_required <= remaining:
                selected.append(job)
                remaining -= job.servers_required
            else:
                deferred.append(job)
        return SlackSelection(selected=tuple(selected), deferred=tuple(deferred), scores=scores)

    def select_arrays(
        self, jobs: Sequence[Job], context: SchedulingContext, capacity_slots: int
    ) -> SlackSelection:
        """Vectorized :meth:`select`: same ranking, same floats, same ties.

        Urgency scores are computed with one ``average_from`` call per
        distinct ``(home, package)`` pair instead of one per job (the call
        itself is unchanged, so the scores are bit-identical), the ranking is
        one ``np.lexsort`` over ``(score, job_id)`` — the stable counterpart
        of :meth:`select`'s ``sorted`` key — and admission runs through the
        shared :func:`admit_ranked` core.  The array decision pipeline uses
        this; ``decision_pipeline="object"`` keeps :meth:`select`.
        """
        if capacity_slots < 0:
            raise ValueError("capacity_slots must be >= 0")
        jobs = tuple(jobs)
        n = len(jobs)
        exec_times = np.fromiter((j.execution_time for j in jobs), dtype=float, count=n)
        allowance = context.delay_tolerance * exec_times
        waited = np.fromiter((context.wait_time(j) for j in jobs), dtype=float, count=n)
        latency = context.latency
        average = np.fromiter(
            (cached_average_from(latency, j.home_region, j.package_gb) for j in jobs),
            dtype=float,
            count=n,
        )
        scores = allowance - average - waited
        job_ids = np.fromiter((j.job_id for j in jobs), dtype=np.int64, count=n)
        ranked = np.lexsort((job_ids, scores)).tolist()
        servers_ranked = [jobs[i].servers_required for i in ranked]
        selected, deferred = admit_ranked(ranked, servers_ranked, capacity_slots)
        return SlackSelection(
            selected=tuple(jobs[i] for i in selected),
            deferred=tuple(jobs[i] for i in deferred),
            scores={int(job_ids[i]): float(scores[i]) for i in range(n)},
        )
