"""Vectorized fast path for the WaterWise core policy (paper Algorithm 1).

The scalar :class:`~repro.core.waterwise.WaterWiseScheduler` spends its round
budget in three places: materializing per-job footprint/transfer data,
constructing the placement MILP out of Python ``Variable``/``Constraint``
objects, and solving it.  This fast path keeps the *same* algorithm —
history learner, slack manager, hard → soft → greedy decision ladder — but
computes every matrix with whole-batch NumPy operations and hands the solver
the MILP directly in standard (array) form, skipping the object model
entirely:

* the cost matrix comes from
  :meth:`~repro.cluster.footprint.FootprintCalculator.footprint_matrices_arrays`
  and :func:`~repro.core.objective.placement_cost` — the same formula the
  object path uses, on the same floats;
* transfer latencies come from
  :func:`~repro.schedulers.vectorized.batch_transfer_matrix`, which
  reproduces ``context.transfer_time`` bit-for-bit;
* the MILP is assembled by :func:`~repro.core.objective.build_placement_form`
  (provably the same standard form ``build_placement_problem`` +
  ``to_standard_form`` would emit) and solved through the same
  :func:`~repro.milp.solver.solve_standard_form` dispatch via
  :meth:`~repro.core.decision.DecisionController.decide_arrays`.

Because the slack manager hands jobs to the controller in urgency order, the
fast path returns ``(choice, commit_order)`` so the batch engine commits
placements in exactly the order the scalar engine would — commit order
decides FIFO tie-breaking in saturated data centers.

The registrations are ``exact=True``: WaterWise subclasses customize
decisions through hooks other than ``schedule`` (e.g.
:class:`~repro.core.cost.CostAwareWaterWiseScheduler` overrides
``_extra_cost``), which the registry's overridden-``schedule`` guard cannot
see, so a subclass only rides this fast path when it registers *its own*
exact entry after mirroring its hooks in the array world — the cost-aware
scheduler does exactly that (``_extra_cost_arrays`` + a registration at the
bottom of :mod:`repro.core.cost`); any further subclass falls back to the
scalar path until it does the same.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.batch import DEFER, BatchSchedulingContext
from repro.core.objective import placement_cost
from repro.core.slack import admit_ranked, cached_average_from
from repro.core.waterwise import WaterWiseScheduler, record_round_intensities
from repro.schedulers.vectorized import batch_transfer_matrix, register_fast_path

__all__ = ["waterwise_fast_path"]


def _slack_selection(
    scheduler: WaterWiseScheduler,
    context: BatchSchedulingContext,
    batch: np.ndarray,
    capacity_slots: int,
) -> np.ndarray:
    """Batch positions the slack manager keeps, in urgency (Eq. 14) order.

    Mirrors :meth:`repro.core.slack.SlackManager.select`: jobs ranked by
    ascending ``TOL% · t_m − L_avg_m − waited_m`` (job id breaking ties),
    then greedily admitted through the shared
    :func:`repro.core.slack.admit_ranked` core while their server demand
    fits.  ``average_from`` is evaluated once per distinct
    ``(home, package)`` pair, so the scores are bit-identical to the scalar
    manager's.
    """
    jobs = context.jobs
    keys = context.region_keys
    home = jobs.home_idx[batch].tolist()
    package = jobs.package_gb[batch].tolist()
    job_ids = jobs.job_id[batch]
    allowance = context.delay_tolerance * jobs.exec_est[batch]
    latency = context.latency

    average = np.fromiter(
        (cached_average_from(latency, keys[h], p) for h, p in zip(home, package)),
        dtype=float,
        count=len(batch),
    )
    scores = allowance - average - context.wait_times

    ranked = np.lexsort((job_ids, scores)).tolist()
    servers_ranked = jobs.servers[batch][ranked].tolist()
    selected, _deferred = admit_ranked(ranked, servers_ranked, capacity_slots)
    return np.array(selected, dtype=np.int64)


def waterwise_fast_path(
    scheduler: WaterWiseScheduler, context: BatchSchedulingContext
) -> tuple[np.ndarray, np.ndarray]:
    """One WaterWise scheduling round over arrays; see the module docstring."""
    config = scheduler.config
    keys = context.region_keys
    if config.use_history:
        record_round_intensities(scheduler.history, keys, context.dataset, context.now)

    batch = context.batch
    m = len(batch)
    choice = np.full(m, DEFER, dtype=np.int64)
    no_commits = np.empty(0, dtype=np.int64)
    if m == 0:
        return choice, no_commits

    jobs = context.jobs
    servers_required = jobs.servers[batch]
    total_capacity = int(context.capacity.sum())
    if total_capacity <= 0:
        # Nothing can start this round anywhere; wait for capacity.
        return choice, no_commits

    selected = np.arange(m, dtype=np.int64)
    force_soft = False
    if int(servers_required.sum()) > total_capacity and config.use_slack_manager:
        selected = _slack_selection(scheduler, context, batch, total_capacity)
        force_soft = config.use_soft_constraints
        scheduler.overload_rounds += 1
        if selected.size == 0:
            return choice, no_commits

    selected_jobs = batch[selected]
    energy = jobs.energy_est[selected_jobs]
    exec_est = jobs.exec_est[selected_jobs]
    carbon, water = context.footprints.footprint_matrices_arrays(
        energy, exec_est, keys, context.now
    )
    if config.use_history:
        co2_ref, h2o_ref = scheduler.history.reference(keys)
    else:
        co2_ref = h2o_ref = None
    extra_cost = scheduler._extra_cost_arrays(context, selected_jobs)
    cost = placement_cost(
        carbon, water, config, co2_ref=co2_ref, h2o_ref=h2o_ref, extra_cost=extra_cost
    )

    transfer = batch_transfer_matrix(context, selected_jobs)
    latency_ratio = transfer / exec_est[:, None]
    waited_ratio = context.wait_times[selected] / exec_est
    tolerance = np.maximum(0.0, context.delay_tolerance - waited_ratio)

    regions, used_soft, _used_fallback = scheduler.controller.decide_arrays(
        cost,
        latency_ratio,
        tolerance,
        servers_required[selected],
        context.capacity,
        jobs.home_idx[selected_jobs],
        force_soft=force_soft,
    )
    if used_soft:
        scheduler.soft_rounds += 1
    choice[selected] = regions
    # Commit in controller (urgency-ranked) order, like the scalar engine.
    return choice, selected


register_fast_path(WaterWiseScheduler, waterwise_fast_path, exact=True)
