"""Vectorized fast path for the WaterWise core policy (paper Algorithm 1).

The scalar :class:`~repro.core.waterwise.WaterWiseScheduler` spends its round
budget in three places: materializing per-job footprint/transfer data,
constructing the placement MILP out of Python ``Variable``/``Constraint``
objects, and solving it.  This fast path keeps the *same* algorithm —
history learner, slack manager, hard → soft → greedy decision ladder — but
computes every matrix with whole-batch NumPy operations and hands the solver
the MILP directly in standard (array) form, skipping the object model
entirely:

* the cost matrix comes from
  :meth:`~repro.cluster.footprint.FootprintCalculator.footprint_matrices_arrays`
  and :func:`~repro.core.objective.placement_cost` — the same formula the
  object path uses, on the same floats;
* transfer latencies come from
  :func:`~repro.schedulers.vectorized.batch_transfer_matrix`, which
  reproduces ``context.transfer_time`` bit-for-bit;
* the MILP is assembled by :func:`~repro.core.objective.build_placement_form`
  (provably the same standard form ``build_placement_problem`` +
  ``to_standard_form`` would emit) and solved through the same
  :func:`~repro.milp.solver.solve_standard_form` dispatch via
  :meth:`~repro.core.decision.DecisionController.decide_arrays`.

Because the slack manager hands jobs to the controller in urgency order, the
fast path returns ``(choice, commit_order)`` so the batch engine commits
placements in exactly the order the scalar engine would — commit order
decides FIFO tie-breaking in saturated data centers.

The registration is ``exact=True``: WaterWise subclasses customize decisions
through hooks other than ``schedule`` (e.g.
:class:`~repro.core.cost.CostAwareWaterWiseScheduler` overrides
``_extra_cost``), which the registry's overridden-``schedule`` guard cannot
see, so they must always fall back to the scalar path.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.batch import DEFER, BatchSchedulingContext
from repro.core.objective import placement_cost
from repro.core.waterwise import WaterWiseScheduler, record_round_intensities
from repro.schedulers.vectorized import batch_transfer_matrix, register_fast_path

__all__ = ["waterwise_fast_path"]


def _slack_selection(
    scheduler: WaterWiseScheduler,
    context: BatchSchedulingContext,
    batch: np.ndarray,
    capacity_slots: int,
) -> np.ndarray:
    """Batch positions the slack manager keeps, in urgency (Eq. 14) order.

    Mirrors :meth:`repro.core.slack.SlackManager.select`: jobs ranked by
    ascending ``TOL% · t_m − L_avg_m − waited_m`` (job id breaking ties), then
    greedily admitted while their server demand fits.
    """
    jobs = context.jobs
    keys = context.region_keys
    home = jobs.home_idx[batch]
    package = jobs.package_gb[batch]
    job_ids = jobs.job_id[batch]
    allowance = context.delay_tolerance * jobs.exec_est[batch]
    latency = context.latency

    average_cache: dict[tuple[int, float], float] = {}
    scores = np.empty(len(batch))
    for i in range(len(batch)):
        cache_key = (int(home[i]), float(package[i]))
        average = average_cache.get(cache_key)
        if average is None:
            average = latency.average_from(keys[home[i]], float(package[i]))
            average_cache[cache_key] = average
        scores[i] = allowance[i] - average - context.wait_times[i]

    ranked = sorted(range(len(batch)), key=lambda i: (scores[i], job_ids[i]))
    servers = jobs.servers[batch]
    remaining = int(capacity_slots)
    selected: list[int] = []
    for i in ranked:
        if int(servers[i]) <= remaining:
            selected.append(i)
            remaining -= int(servers[i])
    return np.array(selected, dtype=np.int64)


def waterwise_fast_path(
    scheduler: WaterWiseScheduler, context: BatchSchedulingContext
) -> tuple[np.ndarray, np.ndarray]:
    """One WaterWise scheduling round over arrays; see the module docstring."""
    config = scheduler.config
    keys = context.region_keys
    if config.use_history:
        record_round_intensities(scheduler.history, keys, context.dataset, context.now)

    batch = context.batch
    m = len(batch)
    choice = np.full(m, DEFER, dtype=np.int64)
    no_commits = np.empty(0, dtype=np.int64)
    if m == 0:
        return choice, no_commits

    jobs = context.jobs
    servers_required = jobs.servers[batch]
    total_capacity = int(context.capacity.sum())
    if total_capacity <= 0:
        # Nothing can start this round anywhere; wait for capacity.
        return choice, no_commits

    selected = np.arange(m, dtype=np.int64)
    force_soft = False
    if int(servers_required.sum()) > total_capacity and config.use_slack_manager:
        selected = _slack_selection(scheduler, context, batch, total_capacity)
        force_soft = config.use_soft_constraints
        scheduler.overload_rounds += 1
        if selected.size == 0:
            return choice, no_commits

    selected_jobs = batch[selected]
    energy = jobs.energy_est[selected_jobs]
    exec_est = jobs.exec_est[selected_jobs]
    carbon, water = context.footprints.footprint_matrices_arrays(
        energy, exec_est, keys, context.now
    )
    if config.use_history:
        co2_ref, h2o_ref = scheduler.history.reference(keys)
    else:
        co2_ref = h2o_ref = None
    cost = placement_cost(carbon, water, config, co2_ref=co2_ref, h2o_ref=h2o_ref)

    transfer = batch_transfer_matrix(context, selected_jobs)
    latency_ratio = transfer / exec_est[:, None]
    waited_ratio = context.wait_times[selected] / exec_est
    tolerance = np.maximum(0.0, context.delay_tolerance - waited_ratio)

    regions, used_soft, _used_fallback = scheduler.controller.decide_arrays(
        cost,
        latency_ratio,
        tolerance,
        servers_required[selected],
        context.capacity,
        jobs.home_idx[selected_jobs],
        force_soft=force_soft,
    )
    if used_soft:
        scheduler.soft_rounds += 1
    choice[selected] = regions
    # Commit in controller (urgency-ranked) order, like the scalar engine.
    return choice, selected


register_fast_path(WaterWiseScheduler, waterwise_fast_path, exact=True)
