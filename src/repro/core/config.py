"""Configuration of the WaterWise scheduler.

All the knobs the paper describes as configurable are collected here with the
paper's default values: equal carbon/water weights (0.5 / 0.5), a history
weight of 0.1 with a window of 10 rounds, and a MILP-based decision
controller.  The delay tolerance itself is a property of the *simulation*
(every policy must honour the same tolerance), so it lives in the simulator /
scheduling context rather than in this config.
"""

from __future__ import annotations

import dataclasses

from repro._validation import ensure_fraction_pair, ensure_non_negative, ensure_one_of, ensure_positive

__all__ = ["WaterWiseConfig"]


@dataclasses.dataclass(frozen=True)
class WaterWiseConfig:
    """Parameters of the WaterWise Optimization Decision Controller.

    Attributes
    ----------
    lambda_co2 / lambda_h2o:
        Objective weights for the normalized carbon and water footprints
        (Eq. 7); they must sum to 1.
    lambda_ref:
        Weight of the history-learner reference term (Eq. 8).
    history_window:
        Number of past scheduling rounds the history learner averages over.
    penalty_weight:
        The σ multiplier of the soft-constraint penalty terms (Eq. 12).
    solver:
        MILP backend: ``"auto"``, ``"scipy"``, ``"native"`` or
        ``"structured"`` (see :mod:`repro.milp.solver` for the dispatch
        matrix; ``"auto"`` already prefers the structured placement path).
    solver_time_limit_s:
        Optional per-round wall-clock limit handed to the solver.
    decision_pipeline:
        How the scalar controller assembles and solves the round MILP:
        ``"array"`` (default) computes the cost/latency/tolerance matrices
        vectorized and builds the MILP directly in standard form — the same
        code path the batch engines' fast path uses; ``"object"`` keeps the
        original ``Variable``/``Constraint`` object model and the per-job
        slack loop.  Both are decision-identical (the differential harness
        compares them); the object pipeline is retained as the readable
        reference and the benchmark baseline.
    use_history:
        Disables the history learner when False (ablation hook).
    use_slack_manager:
        Disables the slack manager when False (ablation hook); overload is
        then handled by the soft-constraint controller alone.
    use_soft_constraints:
        Disables the soft-constraint fallback when False (ablation hook);
        infeasible rounds then fall back to a greedy capacity-respecting
        assignment.
    """

    lambda_co2: float = 0.5
    lambda_h2o: float = 0.5
    lambda_ref: float = 0.1
    history_window: int = 10
    penalty_weight: float = 10.0
    solver: str = "auto"
    solver_time_limit_s: float | None = None
    decision_pipeline: str = "array"
    use_history: bool = True
    use_slack_manager: bool = True
    use_soft_constraints: bool = True

    def __post_init__(self) -> None:
        ensure_fraction_pair(self.lambda_co2, self.lambda_h2o, ("lambda_co2", "lambda_h2o"))
        ensure_non_negative(self.lambda_ref, "lambda_ref")
        if self.history_window < 1:
            raise ValueError("history_window must be >= 1")
        ensure_non_negative(self.penalty_weight, "penalty_weight")
        ensure_one_of(self.solver, ("auto", "scipy", "native", "structured"), "solver")
        ensure_one_of(self.decision_pipeline, ("array", "object"), "decision_pipeline")
        if self.solver_time_limit_s is not None:
            ensure_positive(self.solver_time_limit_s, "solver_time_limit_s")

    @classmethod
    def with_weights(cls, lambda_co2: float, **kwargs) -> "WaterWiseConfig":
        """Convenience constructor: set ``lambda_co2`` and derive ``lambda_h2o``.

        Used by the weight-sensitivity study (paper Fig. 8).
        """
        return cls(lambda_co2=lambda_co2, lambda_h2o=1.0 - lambda_co2, **kwargs)
