"""Cost-aware extension of WaterWise (paper Sec. 7, "Cost Considerations").

The paper's discussion section notes that financial cost could be integrated
into the optimization objective as a future extension.  This module provides
that extension without changing the core formulation:

* :class:`ElectricityPriceTable` — regional electricity prices and
  cross-region egress prices (synthetic, representative magnitudes),
* :class:`CostModel` — dollar cost of running a job in a region (energy at
  the destination's price, PUE-inflated, plus egress for the package),
* :class:`CostAwareWaterWiseScheduler` — a :class:`WaterWiseScheduler`
  subclass that adds a normalized, ``lambda_cost``-weighted cost term to the
  placement objective through the scheduler's ``extra_cost`` extension hook.

The carbon/water terms keep their configured weights; ``lambda_cost`` is an
*additional* weight, so setting it to 0 recovers the paper's scheduler
exactly.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro._validation import ensure_non_negative
from repro.cluster.interface import SchedulingContext
from repro.core.config import WaterWiseConfig
from repro.core.waterwise import WaterWiseScheduler
from repro.regions.latency import TransferLatencyModel
from repro.traces.job import Job

__all__ = ["ElectricityPriceTable", "CostModel", "CostAwareWaterWiseScheduler"]

#: Representative industrial electricity prices (USD/kWh) per evaluation region.
DEFAULT_ELECTRICITY_PRICES: dict[str, float] = {
    "zurich": 0.21,
    "madrid": 0.14,
    "oregon": 0.07,
    "milan": 0.19,
    "mumbai": 0.09,
}

#: Representative inter-region egress price (USD/GB).
DEFAULT_EGRESS_PRICE_PER_GB = 0.05


class ElectricityPriceTable:
    """Regional electricity and egress prices."""

    def __init__(
        self,
        prices_usd_per_kwh: Mapping[str, float] | None = None,
        egress_usd_per_gb: float = DEFAULT_EGRESS_PRICE_PER_GB,
        default_price: float = 0.12,
    ) -> None:
        prices = dict(prices_usd_per_kwh) if prices_usd_per_kwh else dict(DEFAULT_ELECTRICITY_PRICES)
        for region, price in prices.items():
            ensure_non_negative(price, f"price for {region!r}")
        self._prices = prices
        self.egress_usd_per_gb = ensure_non_negative(egress_usd_per_gb, "egress_usd_per_gb")
        self.default_price = ensure_non_negative(default_price, "default_price")

    def price(self, region_key: str) -> float:
        """Electricity price (USD/kWh) for a region (falls back to the default)."""
        return float(self._prices.get(region_key.strip().lower(), self.default_price))

    def egress(self, source: str, destination: str, package_gb: float) -> float:
        """Egress cost (USD) of shipping ``package_gb`` between two regions."""
        ensure_non_negative(package_gb, "package_gb")
        if source == destination:
            return 0.0
        return self.egress_usd_per_gb * float(package_gb)


class CostModel:
    """Dollar cost of running jobs in regions."""

    def __init__(self, prices: ElectricityPriceTable | None = None, pue: float = 1.2) -> None:
        self.prices = prices if prices is not None else ElectricityPriceTable()
        if pue < 1.0:
            raise ValueError("pue must be >= 1.0")
        self.pue = float(pue)

    def job_cost(self, job: Job, region_key: str, latency: TransferLatencyModel | None = None) -> float:
        """Cost (USD) of executing ``job`` in ``region_key``."""
        energy_cost = self.pue * job.energy_kwh * self.prices.price(region_key)
        egress_cost = 0.0
        if region_key != job.home_region:
            egress_cost = self.prices.egress(job.home_region, region_key, job.package_gb)
        return energy_cost + egress_cost

    def cost_matrix_arrays(
        self,
        energy_kwh: np.ndarray,
        package_gb: np.ndarray,
        home_idx: np.ndarray,
        region_keys: Sequence[str],
    ) -> np.ndarray:
        """Array-world :meth:`cost_matrix`: per-job columns in, (M × N) out.

        ``home_idx`` codes each job's home into ``region_keys`` (``-1`` for a
        home outside the listed regions — egress then applies everywhere).
        Elementwise-identical to per-pair :meth:`job_cost` calls: the energy
        term is ``(pue · energy) · price`` in the same operation order, and
        the egress term applies wherever the region is not the job's home.
        """
        keys = tuple(region_keys)
        energy = np.asarray(energy_kwh, dtype=float)
        package = np.asarray(package_gb, dtype=float)
        m = len(energy)
        if m == 0 or not keys:
            return np.zeros((m, len(keys)))
        valid = np.isfinite(package) & (package >= 0.0)
        if not valid.all():
            bad = package[~valid][0]
            raise ValueError(f"package_gb must be a non-negative finite number, got {bad}")
        prices = np.array([self.prices.price(key) for key in keys])
        matrix = (self.pue * energy)[:, None] * prices[None, :]
        away = np.asarray(home_idx, dtype=np.int64)[:, None] != np.arange(
            len(keys), dtype=np.int64
        )[None, :]
        egress = self.prices.egress_usd_per_gb * package
        return matrix + np.where(away, egress[:, None], 0.0)

    def cost_matrix(self, jobs: Sequence[Job], region_keys: Sequence[str]) -> np.ndarray:
        """(M × N) cost matrix in USD (columns gathered from the ``Job``\\ s)."""
        keys = tuple(region_keys)
        m = len(jobs)
        code_of = {key: idx for idx, key in enumerate(keys)}
        return self.cost_matrix_arrays(
            np.fromiter((j.energy_kwh for j in jobs), dtype=float, count=m),
            np.fromiter((j.package_gb for j in jobs), dtype=float, count=m),
            np.fromiter(
                (code_of.get(j.home_region, -1) for j in jobs),
                dtype=np.int64,
                count=m,
            ),
            keys,
        )


class CostAwareWaterWiseScheduler(WaterWiseScheduler):
    """WaterWise with financial cost as an additional objective.

    Parameters
    ----------
    config:
        Base WaterWise configuration (carbon/water weights etc.).
    lambda_cost:
        Weight of the normalized cost term added on top of the carbon/water
        objective; 0 recovers plain WaterWise.
    prices:
        Electricity/egress price table.
    """

    name = "waterwise-cost-aware"

    def __init__(
        self,
        config: WaterWiseConfig | None = None,
        lambda_cost: float = 0.3,
        prices: ElectricityPriceTable | None = None,
    ) -> None:
        super().__init__(config)
        self.lambda_cost = ensure_non_negative(lambda_cost, "lambda_cost")
        self.cost_model = CostModel(prices=prices)

    def _weighted(self, matrix: np.ndarray):
        """Per-job max-normalization + ``lambda_cost`` weighting (Eq. 7 style)."""
        maxima = matrix.max(axis=1, keepdims=True)
        maxima[maxima <= 0.0] = 1.0
        return self.lambda_cost * (matrix / maxima)

    def _extra_cost(self, jobs: Sequence[Job], context: SchedulingContext):
        if not jobs or self.lambda_cost == 0.0:
            return None
        return self._weighted(self.cost_model.cost_matrix(jobs, context.region_keys))

    def _extra_cost_arrays(self, context, batch):
        """Array mirror of :meth:`_extra_cost` for the WaterWise fast path.

        Reads the batch columns straight from the
        :class:`~repro.cluster.batch.BatchSchedulingContext` and runs the
        same :meth:`CostModel.cost_matrix_arrays` + normalization the scalar
        hook uses, so both produce bit-identical objective terms — the
        differential harness compares the resulting decisions.
        """
        if len(batch) == 0 or self.lambda_cost == 0.0:
            return None
        jobs = context.jobs
        return self._weighted(
            self.cost_model.cost_matrix_arrays(
                jobs.energy_est[batch],
                jobs.package_gb[batch],
                jobs.home_idx[batch],
                context.region_keys,
            )
        )


# The cost-aware extension mirrors its `_extra_cost` hook with a bit-identical
# `_extra_cost_arrays`, so the shared WaterWise fast path is exact for it too.
# Registered here (not in repro.core.fastpath) to keep the import graph
# acyclic; `exact=True` means a further subclass tweaking `_extra_cost` (or
# any other hook) falls back to the scalar path until it registers its own
# mirrored implementation.
from repro.core.fastpath import waterwise_fast_path  # noqa: E402  (tail import)
from repro.schedulers.vectorized import register_fast_path  # noqa: E402

register_fast_path(CostAwareWaterWiseScheduler, waterwise_fast_path, exact=True)
