"""Optimization Decision Controller: solve the placement MILP for one round.

The controller implements the solve-side of the paper's Algorithm 1:

1. build and solve the hard-constraint MILP (Eq. 8–11);
2. if the solver reports infeasibility (or the caller requested it outright,
   as Algorithm 1 does when the slack manager had to shed load), rebuild with
   soft delay constraints (Eq. 12–13) and solve again;
3. if even the soft problem cannot be solved — which only happens when the
   MILP backend errors out — fall back to a deterministic greedy assignment
   that respects capacity, so a scheduling round never returns nothing.

The controller records which path produced each decision; the evaluation uses
that to report how often constraints had to be softened.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np

from repro.cluster.interface import SchedulingContext
from repro.core.config import WaterWiseConfig
from repro.core.history import HistoryLearner
from repro.core.objective import PlacementModel, build_placement_form, build_placement_problem
from repro.milp import SolveResult, SolverSession, solve
from repro.milp.solver import solve_standard_form
from repro.traces.job import Job

__all__ = ["ControllerResult", "DecisionController"]


def _transfer_matrix(
    jobs: Sequence[Job],
    region_keys: tuple[str, ...],
    context: SchedulingContext,
) -> tuple[np.ndarray, np.ndarray]:
    """(M × N) transfer latencies + home-region codes for the array pipeline.

    For the standard :class:`~repro.regions.latency.TransferLatencyModel`
    (with every home region inside the simulated cluster) the matrix is
    assembled from the cached propagation term plus the per-job serialization
    term — the same decomposition
    :func:`repro.schedulers.vectorized.batch_transfer_matrix` uses, which
    reproduces ``context.transfer_time`` bit for bit.  Latency subclasses,
    duck-typed models and out-of-cluster homes fall back to the per-pair
    calls :func:`build_placement_problem` makes.

    Home codes are resolved against ``region_keys`` with ``0`` for homes
    outside the cluster — the code the greedy fallback's
    "``region_keys[0]`` when the home is unknown" rule expects.
    """
    from repro.regions.latency import TransferLatencyModel

    m = len(jobs)
    code_of = {key: idx for idx, key in enumerate(region_keys)}
    home_idx = np.fromiter(
        (code_of.get(job.home_region, -1) for job in jobs), dtype=np.int64, count=m
    )
    latency = context.latency
    if type(latency) is TransferLatencyModel and not np.any(home_idx < 0):
        from repro.schedulers.vectorized import _propagation_for  # lazy: import cycle

        propagation = _propagation_for(latency, region_keys)
        package = np.fromiter((j.package_gb for j in jobs), dtype=float, count=m)
        serialization = package * 8.0 / latency.bandwidth_gbps
        transfer = serialization[:, None] + propagation[home_idx]
        transfer[np.arange(m), home_idx] = 0.0
        return transfer, home_idx
    transfer = np.array(
        [[context.transfer_time(job, region) for region in region_keys] for job in jobs]
    )
    return transfer, np.maximum(home_idx, 0)


@dataclasses.dataclass(frozen=True)
class ControllerResult:
    """Assignments produced by the decision controller for one round."""

    assignments: dict[int, str]
    used_soft_constraints: bool
    used_fallback: bool
    solve_result: SolveResult | None
    model: PlacementModel | None
    #: MILP objective when the array pipeline solved the round (the object
    #: pipeline carries it inside ``solve_result`` instead).
    objective: float | None = None

    @property
    def objective_value(self) -> float:
        if self.solve_result is not None:
            return float(self.solve_result.objective)
        return float("nan") if self.objective is None else float(self.objective)


class DecisionController:
    """Builds and solves the WaterWise placement MILP."""

    def __init__(self, config: WaterWiseConfig | None = None) -> None:
        self.config = config if config is not None else WaterWiseConfig()
        # Round counters exposed for diagnostics / the evaluation.
        self.rounds_solved = 0
        self.rounds_softened = 0
        self.rounds_fallback = 0
        #: Warm-start bases and solver statistics, threaded through every
        #: solve this controller issues — the scalar (:meth:`decide`) and
        #: batch (:meth:`decide_arrays`) paths share it, so consecutive
        #: scheduling rounds reuse each other's bases regardless of engine.
        self.session = SolverSession()

    def reset(self) -> None:
        self.rounds_solved = 0
        self.rounds_softened = 0
        self.rounds_fallback = 0
        self.session.reset()

    # -- fallback ---------------------------------------------------------------------
    @staticmethod
    def _greedy_assignment(
        jobs: Sequence[Job], context: SchedulingContext, cost: np.ndarray
    ) -> dict[int, str]:
        """Deterministic cost-greedy assignment respecting remaining capacity."""
        region_keys = context.region_keys
        remaining = {key: int(context.capacity.get(key, 0)) for key in region_keys}
        assignments: dict[int, str] = {}
        for m, job in enumerate(jobs):
            order = np.argsort(cost[m])
            chosen = None
            for idx in order:
                key = region_keys[int(idx)]
                if remaining[key] >= job.servers_required:
                    chosen = key
                    break
            if chosen is None:
                chosen = job.home_region if job.home_region in region_keys else region_keys[0]
            assignments[job.job_id] = chosen
            if chosen in remaining:
                remaining[chosen] -= job.servers_required
        return assignments

    # -- main entry point -----------------------------------------------------------------
    def decide(
        self,
        jobs: Sequence[Job],
        context: SchedulingContext,
        history: HistoryLearner | None = None,
        force_soft: bool = False,
        extra_cost=None,
    ) -> ControllerResult:
        """Choose a region for every job in ``jobs``.

        ``force_soft`` skips the hard-constraint attempt (Algorithm 1 uses the
        soft controller directly when the slack manager had to shed load).
        ``extra_cost`` is an optional pre-weighted (M × N) additive objective
        term forwarded to the MILP objective (extension hook).

        With ``config.decision_pipeline == "array"`` (the default) the round
        matrices are computed vectorized and the MILP is built directly in
        standard form through :meth:`decide_arrays` — the exact code path the
        batch engines' WaterWise fast path takes, on the same floats.
        ``"object"`` keeps the original ``Variable``/``Constraint`` model
        (:func:`build_placement_problem`); the differential tests hold the
        two pipelines to identical decisions.
        """
        if not jobs:
            return ControllerResult(
                assignments={}, used_soft_constraints=False, used_fallback=False,
                solve_result=None, model=None,
            )
        region_keys = context.region_keys
        if history is not None and self.config.use_history:
            co2_ref, h2o_ref = history.reference(region_keys)
        else:
            co2_ref = h2o_ref = None

        if self.config.decision_pipeline == "array":
            return self._decide_via_arrays(
                jobs, context, co2_ref, h2o_ref, force_soft, extra_cost
            )

        attempts: list[bool] = []
        if not force_soft:
            attempts.append(False)
        if self.config.use_soft_constraints or not attempts:
            attempts.append(True)

        last_model: PlacementModel | None = None
        for soft in attempts:
            if soft and not self.config.use_soft_constraints and not force_soft:
                continue
            model = build_placement_problem(
                jobs, context, self.config, co2_ref=co2_ref, h2o_ref=h2o_ref, soft=soft,
                extra_cost=extra_cost,
            )
            last_model = model
            result = solve(
                model.problem,
                solver=self.config.solver,
                time_limit=self.config.solver_time_limit_s,
                session=self.session,
            )
            if result.status.is_success:
                assignments = model.assignment_from_values(dict(result.values))
                self.rounds_solved += 1
                if soft:
                    self.rounds_softened += 1
                return ControllerResult(
                    assignments=assignments,
                    used_soft_constraints=soft,
                    used_fallback=False,
                    solve_result=result,
                    model=model,
                )

        # Defensive fallback: the MILP backend failed outright.
        model = last_model
        cost = model.cost if model is not None else np.zeros((len(jobs), len(region_keys)))
        assignments = self._greedy_assignment(jobs, context, cost)
        self.rounds_fallback += 1
        return ControllerResult(
            assignments=assignments,
            used_soft_constraints=True,
            used_fallback=True,
            solve_result=None,
            model=model,
        )

    # -- array pipeline (scalar entry point, vectorized internals) ----------------------
    def _decide_via_arrays(
        self,
        jobs: Sequence[Job],
        context: SchedulingContext,
        co2_ref,
        h2o_ref,
        force_soft: bool,
        extra_cost,
    ) -> ControllerResult:
        """Object-world :meth:`decide` on the vectorized round matrices.

        Gathers the per-job columns once, computes the cost / latency-ratio /
        tolerance matrices with the same whole-batch operations the batch
        fast path uses (:mod:`repro.core.fastpath`), and routes the solve
        through :meth:`decide_arrays`.  Every formula matches
        :func:`build_placement_problem` bit for bit, so the pipelines make
        identical decisions.
        """
        from repro.core.objective import placement_cost

        jobs = tuple(jobs)
        region_keys = tuple(context.region_keys)
        m = len(jobs)
        energy = np.fromiter((j.energy_kwh for j in jobs), dtype=float, count=m)
        exec_times = np.fromiter((j.execution_time for j in jobs), dtype=float, count=m)
        servers = np.fromiter((j.servers_required for j in jobs), dtype=np.int64, count=m)

        carbon, water = context.footprints.footprint_matrices_arrays(
            energy, exec_times, region_keys, context.now
        )
        cost = placement_cost(
            carbon, water, self.config, co2_ref=co2_ref, h2o_ref=h2o_ref,
            extra_cost=extra_cost,
        )

        transfer, home_idx = _transfer_matrix(jobs, region_keys, context)
        latency_ratio = transfer / exec_times[:, None]
        waited = np.fromiter(
            (context.wait_time(j) for j in jobs), dtype=float, count=m
        )
        tolerance = np.maximum(0.0, context.delay_tolerance - waited / exec_times)
        capacity = np.fromiter(
            (int(context.capacity.get(key, 0)) for key in region_keys),
            dtype=np.int64,
            count=len(region_keys),
        )

        codes, used_soft, used_fallback, objective = self._decide_arrays_full(
            cost, latency_ratio, tolerance, servers, capacity, home_idx,
            force_soft=force_soft,
        )
        assignments = {
            job.job_id: region_keys[code]
            for job, code in zip(jobs, codes.tolist())
        }
        return ControllerResult(
            assignments=assignments,
            used_soft_constraints=used_soft,
            used_fallback=used_fallback,
            solve_result=None,
            model=None,
            objective=objective,
        )

    # -- array-world entry point (batch engine fast path) -------------------------------
    def decide_arrays(
        self,
        cost: np.ndarray,
        latency_ratio: np.ndarray,
        tolerance: np.ndarray,
        servers_required: np.ndarray,
        capacity: np.ndarray,
        home_idx: np.ndarray,
        force_soft: bool = False,
    ) -> tuple[np.ndarray, bool, bool]:
        """Array counterpart of :meth:`decide` for the vectorized fast path.

        Takes the already-computed placement matrices (cost, latency ratio,
        remaining tolerance — see :func:`repro.core.objective.placement_cost`)
        instead of ``Job`` objects, builds the identical MILP directly in
        standard form and runs it through the same solver dispatch, so the
        hard → soft → greedy-fallback ladder and the round counters behave
        exactly like the object path.  Returns ``(region codes in job order,
        used_soft_constraints, used_fallback)``.
        """
        codes, used_soft, used_fallback, _objective = self._decide_arrays_full(
            cost, latency_ratio, tolerance, servers_required, capacity, home_idx,
            force_soft=force_soft,
        )
        return codes, used_soft, used_fallback

    def _decide_arrays_full(
        self,
        cost: np.ndarray,
        latency_ratio: np.ndarray,
        tolerance: np.ndarray,
        servers_required: np.ndarray,
        capacity: np.ndarray,
        home_idx: np.ndarray,
        force_soft: bool = False,
    ) -> tuple[np.ndarray, bool, bool, float | None]:
        """:meth:`decide_arrays` plus the solved MILP objective (or ``None``)."""
        m_jobs, n_regions = cost.shape
        attempts: list[bool] = []
        if not force_soft:
            attempts.append(False)
        if self.config.use_soft_constraints or not attempts:
            attempts.append(True)

        for soft in attempts:
            if soft and not self.config.use_soft_constraints and not force_soft:
                continue
            form = build_placement_form(
                cost, latency_ratio, tolerance, servers_required, capacity,
                self.config, soft=soft,
            )
            status, x, objective, _iterations, _nodes, _solver, _seconds = (
                solve_standard_form(
                    form,
                    solver=self.config.solver,
                    time_limit=self.config.solver_time_limit_s,
                    session=self.session,
                )
            )
            if status.is_success:
                self.rounds_solved += 1
                if soft:
                    self.rounds_softened += 1
                return (
                    self._assignments_from_x(x, m_jobs, n_regions),
                    soft,
                    False,
                    float(objective),
                )

        self.rounds_fallback += 1
        return (
            self._greedy_assignment_arrays(cost, servers_required, capacity, home_idx),
            True,
            True,
            None,
        )

    @staticmethod
    def _assignments_from_x(x: np.ndarray, m_jobs: int, n_regions: int) -> np.ndarray:
        """Region code per job from a solved variable vector.

        Mirrors ``PlacementModel.assignment_from_values``: the first region
        whose (snapped) placement binary exceeds 0.5 wins.
        """
        placements = x[: m_jobs * n_regions].reshape(m_jobs, n_regions)
        chosen = np.argmax(placements, axis=1)
        if np.any(placements[np.arange(m_jobs), chosen] <= 0.5):
            raise ValueError("no region selected for a job in the MILP solution")
        return chosen.astype(np.int64)

    @staticmethod
    def _greedy_assignment_arrays(
        cost: np.ndarray,
        servers_required: np.ndarray,
        capacity: np.ndarray,
        home_idx: np.ndarray,
    ) -> np.ndarray:
        """Array counterpart of :meth:`_greedy_assignment` (same tie-breaking)."""
        m_jobs = cost.shape[0]
        remaining = [int(v) for v in capacity]
        assignments = np.empty(m_jobs, dtype=np.int64)
        for m in range(m_jobs):
            servers = int(servers_required[m])
            order = np.argsort(cost[m])
            chosen = -1
            for idx in order:
                idx = int(idx)
                if remaining[idx] >= servers:
                    chosen = idx
                    break
            if chosen < 0:
                chosen = int(home_idx[m])
            assignments[m] = chosen
            remaining[chosen] -= servers
        return assignments
