"""Construction of the WaterWise placement MILP (Eq. 7–13).

Given a batch of M jobs, N candidate regions and the current sustainability
state, :func:`build_placement_problem` produces a
:class:`repro.milp.problem.Problem` with:

* binary placement variables ``x[m, n]``,
* the normalized carbon + water objective with the history-learner reference
  term (Eq. 8) and, in soft mode, the penalty terms (Eq. 12),
* the assignment constraint (Eq. 9), the per-region capacity constraint
  (Eq. 10), and the delay-tolerance constraint — hard (Eq. 11) or softened
  through per-(m, n) penalty variables (Eq. 13).

The per-job delay allowance is reduced by the time the job has already spent
waiting in previous rounds, so a job that was deferred keeps a consistent
end-to-end tolerance.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np

from repro.cluster.interface import SchedulingContext
from repro.core.config import WaterWiseConfig
from repro.milp import Problem, VarType, Variable, lin_sum
from repro.milp.problem import StandardForm
from repro.milp.structure import PlacementStructure, attach_structure
from repro.traces.job import Job

__all__ = [
    "PlacementModel",
    "build_placement_problem",
    "placement_cost",
    "build_placement_form",
]

#: Footprint maxima below this are treated as "no signal" to avoid divide-by-zero.
_EPSILON = 1e-12


@dataclasses.dataclass
class PlacementModel:
    """The built MILP plus the bookkeeping needed to read the solution back."""

    problem: Problem
    jobs: tuple[Job, ...]
    region_keys: tuple[str, ...]
    x_names: np.ndarray  # (M, N) array of variable names
    penalty_names: np.ndarray | None  # (M, N) array or None in hard mode
    cost: np.ndarray  # (M, N) per-placement objective coefficients
    soft: bool

    def assignment_from_values(self, values: dict[str, float]) -> dict[int, str]:
        """Extract job → region assignments from a solved variable dictionary."""
        assignments: dict[int, str] = {}
        for m, job in enumerate(self.jobs):
            chosen = None
            best_value = 0.5  # binary variables: anything above 0.5 counts as selected
            for n, region in enumerate(self.region_keys):
                value = values.get(str(self.x_names[m, n]), 0.0)
                if value > best_value:
                    best_value = value
                    chosen = region
            if chosen is None:
                raise ValueError(f"no region selected for job {job.job_id} in MILP solution")
            assignments[job.job_id] = chosen
        return assignments


def _normalized(matrix: np.ndarray) -> np.ndarray:
    """Normalize each row by its maximum (the paper's per-job normalization)."""
    maxima = matrix.max(axis=1, keepdims=True)
    maxima = np.where(maxima > _EPSILON, maxima, 1.0)
    return matrix / maxima


def placement_cost(
    carbon: np.ndarray,
    water: np.ndarray,
    config: WaterWiseConfig,
    co2_ref: np.ndarray | None = None,
    h2o_ref: np.ndarray | None = None,
    extra_cost: np.ndarray | None = None,
) -> np.ndarray:
    """Per-placement objective coefficients (Eq. 7–8) from the M×N matrices.

    The single implementation of the cost formula, shared by the object-world
    :func:`build_placement_problem` and the batch engine's vectorized
    WaterWise fast path (:mod:`repro.core.fastpath`) so both produce
    bit-identical MILP objectives.
    """
    n_regions = carbon.shape[1]
    carbon_norm = _normalized(carbon)
    water_norm = _normalized(water)

    if co2_ref is None:
        co2_ref = np.zeros(n_regions)
    if h2o_ref is None:
        h2o_ref = np.zeros(n_regions)
    co2_ref = np.asarray(co2_ref, dtype=float)
    h2o_ref = np.asarray(h2o_ref, dtype=float)
    if co2_ref.shape != (n_regions,) or h2o_ref.shape != (n_regions,):
        raise ValueError("reference terms must have one entry per region")

    reference = config.lambda_ref * (
        config.lambda_co2 * co2_ref + config.lambda_h2o * h2o_ref
    )
    cost = (
        config.lambda_co2 * carbon_norm
        + config.lambda_h2o * water_norm
        + reference[None, :]
    )
    if extra_cost is not None:
        extra_cost = np.asarray(extra_cost, dtype=float)
        if extra_cost.shape != cost.shape:
            raise ValueError(
                f"extra_cost must have shape {cost.shape}, got {extra_cost.shape}"
            )
        cost = cost + extra_cost
    return cost


def build_placement_form(
    cost: np.ndarray,
    latency_ratio: np.ndarray,
    tolerance: np.ndarray,
    servers_required: np.ndarray,
    capacity: np.ndarray,
    config: WaterWiseConfig,
    soft: bool = False,
) -> StandardForm:
    """Array-world :func:`build_placement_problem`: the MILP as a ``StandardForm``.

    Produces exactly the arrays ``build_placement_problem(...).problem
    .to_standard_form()`` would — same variable order (``x`` placement
    binaries m-major/n-minor, then the soft penalty variables), same
    constraint order (assignment equalities, then capacity, then delay
    inequalities) and bit-identical coefficients — without constructing any
    ``Variable``/``Constraint`` objects.  Feeding both through
    :func:`repro.milp.solver.solve_standard_form` therefore yields the same
    solver behaviour; the differential harness locks this down.
    """
    m_jobs, n_regions = cost.shape
    n_x = m_jobs * n_regions
    n_vars = 2 * n_x if soft else n_x

    c = np.zeros(n_vars)
    c[:n_x] = cost.ravel()
    if soft:
        c[n_x:] = config.penalty_weight

    # Eq. 9: each job is placed in exactly one region.
    a_eq = np.zeros((m_jobs, n_vars))
    rows = np.repeat(np.arange(m_jobs), n_regions)
    cols = np.arange(n_x)
    a_eq[rows, cols] = 1.0
    b_eq = np.ones(m_jobs)

    # Eq. 10 (capacity) then Eq. 11/13 (delay) rows, matching the object
    # model's constraint insertion order.
    a_ub = np.zeros((n_regions + m_jobs, n_vars))
    servers = np.asarray(servers_required, dtype=float)
    capacity_rows = np.tile(np.arange(n_regions), m_jobs)
    a_ub[capacity_rows, cols] = np.repeat(servers, n_regions)
    delay_rows = n_regions + rows
    a_ub[delay_rows, cols] = latency_ratio.ravel()
    if soft:
        a_ub[delay_rows, n_x + cols] = -1.0
    b_ub = np.concatenate(
        [np.asarray(capacity, dtype=float), np.asarray(tolerance, dtype=float)]
    )

    lower = np.zeros(n_vars)
    upper = np.ones(n_vars)
    integrality = np.zeros(n_vars, dtype=bool)
    integrality[:n_x] = True
    if soft:
        upper[n_x:] = np.inf

    form = StandardForm(
        variables=(),
        c=c,
        c0=0.0,
        a_ub=a_ub,
        b_ub=b_ub,
        a_eq=a_eq,
        b_eq=b_eq,
        lower=lower,
        upper=upper,
        integrality=integrality,
        maximize=False,
    )
    # This function *is* the placement layout the structure-aware solver path
    # recognizes; attaching the matrices directly spares the per-round scan.
    return attach_structure(
        form,
        PlacementStructure(
            m_jobs=m_jobs,
            n_regions=n_regions,
            soft=soft,
            penalty_weight=float(config.penalty_weight) if soft else 0.0,
            cost=np.asarray(cost, dtype=float),
            latency_ratio=np.asarray(latency_ratio, dtype=float),
            tolerance=np.asarray(tolerance, dtype=float),
            servers=servers,
            capacity=np.asarray(capacity, dtype=float),
        ),
    )


def build_placement_problem(
    jobs: Sequence[Job],
    context: SchedulingContext,
    config: WaterWiseConfig,
    co2_ref: np.ndarray | None = None,
    h2o_ref: np.ndarray | None = None,
    soft: bool = False,
    extra_cost: np.ndarray | None = None,
) -> PlacementModel:
    """Build the placement MILP for one scheduling round.

    Parameters
    ----------
    jobs:
        Batch of jobs to place (already filtered by the slack manager when
        demand exceeds capacity).
    context:
        Scheduling context for the round.
    config:
        WaterWise configuration (weights, penalty weight).
    co2_ref / h2o_ref:
        Per-region history-learner reference terms; zeros when omitted.
    soft:
        Whether to build the soft-constraint variant (Eq. 12/13).
    extra_cost:
        Optional pre-weighted (M × N) additive objective term.  This is the
        hook used by extensions such as the cost-aware scheduler the paper's
        discussion section sketches; it must already be normalized/weighted by
        the caller.
    """
    if not jobs:
        raise ValueError("cannot build a placement problem for an empty batch")
    region_keys = tuple(context.region_keys)
    n_regions = len(region_keys)
    if n_regions == 0:
        raise ValueError("cannot build a placement problem without regions")
    jobs = tuple(jobs)
    m_jobs = len(jobs)

    carbon, water = context.footprints.footprint_matrices(jobs, region_keys, context.now)
    cost = placement_cost(
        carbon, water, config, co2_ref=co2_ref, h2o_ref=h2o_ref, extra_cost=extra_cost
    )

    # Transfer-latency ratio L_mn / t_mn and the per-job remaining tolerance.
    transfer = np.array(
        [[context.transfer_time(job, region) for region in region_keys] for job in jobs]
    )
    exec_times = np.array([job.execution_time for job in jobs])
    latency_ratio = transfer / exec_times[:, None]
    waited_ratio = np.array([context.wait_time(job) for job in jobs]) / exec_times
    tolerance = np.maximum(0.0, context.delay_tolerance - waited_ratio)

    problem = Problem(name="waterwise-placement")
    x_names = np.empty((m_jobs, n_regions), dtype=object)
    x_vars: list[list[Variable]] = []
    for m, job in enumerate(jobs):
        row = []
        for n, region in enumerate(region_keys):
            name = f"x_{job.job_id}_{region}"
            var = Variable(name, var_type=VarType.BINARY)
            problem.add_variable(var)
            x_names[m, n] = name
            row.append(var)
        x_vars.append(row)

    penalty_names: np.ndarray | None = None
    penalty_vars: list[list[Variable]] | None = None
    if soft:
        penalty_names = np.empty((m_jobs, n_regions), dtype=object)
        penalty_vars = []
        for m, job in enumerate(jobs):
            row = []
            for n, region in enumerate(region_keys):
                name = f"p_{job.job_id}_{region}"
                var = Variable(name, low=0.0)
                problem.add_variable(var)
                penalty_names[m, n] = name
                row.append(var)
            penalty_vars.append(row)

    # Objective: Eq. 8 (hard) or Eq. 12 (soft).
    objective_terms = [
        float(cost[m, n]) * x_vars[m][n] for m in range(m_jobs) for n in range(n_regions)
    ]
    if soft and penalty_vars is not None:
        objective_terms.extend(
            config.penalty_weight * penalty_vars[m][n]
            for m in range(m_jobs)
            for n in range(n_regions)
        )
    problem.set_objective(lin_sum(objective_terms))

    # Eq. 9: each job is placed in exactly one region.
    for m, job in enumerate(jobs):
        problem.add_constraint(lin_sum(x_vars[m]) == 1, name=f"assign_{job.job_id}")

    # Eq. 10: regional capacity.
    for n, region in enumerate(region_keys):
        capacity = int(context.capacity.get(region, 0))
        problem.add_constraint(
            lin_sum(job.servers_required * x_vars[m][n] for m, job in enumerate(jobs))
            <= capacity,
            name=f"capacity_{region}",
        )

    # Eq. 11 (hard) / Eq. 13 (soft): delay tolerance on the transfer latency.
    for m, job in enumerate(jobs):
        lhs_terms = [float(latency_ratio[m, n]) * x_vars[m][n] for n in range(n_regions)]
        if soft and penalty_vars is not None:
            lhs_terms.extend(-1.0 * penalty_vars[m][n] for n in range(n_regions))
        problem.add_constraint(
            lin_sum(lhs_terms) <= float(tolerance[m]), name=f"delay_{job.job_id}"
        )

    return PlacementModel(
        problem=problem,
        jobs=jobs,
        region_keys=region_keys,
        x_names=x_names,
        penalty_names=penalty_names,
        cost=cost,
        soft=soft,
    )
