"""WaterWise core: the carbon- and water-aware MILP scheduler.

This package implements the paper's primary contribution (Sec. 4):

* :mod:`repro.core.config` — the configurable parameters (objective weights,
  history weight/window, penalty weight, solver choice),
* :mod:`repro.core.history` — the history learner providing the per-region
  reference terms :math:`CO^{ref}_{2,n}` / :math:`H_2O^{ref}_n`,
* :mod:`repro.core.slack` — the slack manager and its urgency score (Eq. 14),
* :mod:`repro.core.objective` — construction of the placement MILP
  (objective Eq. 8/12, constraints Eq. 9–11/13),
* :mod:`repro.core.decision` — the Optimization Decision Controller that
  solves the MILP (hard constraints first, soft-constraint retry on
  infeasibility) and extracts assignments,
* :mod:`repro.core.waterwise` — the :class:`WaterWiseScheduler` policy that
  ties everything together following the paper's Algorithm 1.

Importing this package registers ``"waterwise"`` with
:func:`repro.schedulers.registry.make_scheduler`.
"""

from repro.core.config import WaterWiseConfig
from repro.core.cost import CostAwareWaterWiseScheduler, CostModel, ElectricityPriceTable
from repro.core.decision import ControllerResult, DecisionController
from repro.core.history import HistoryLearner
from repro.core.objective import build_placement_problem
from repro.core.slack import SlackManager
from repro.core.waterwise import WaterWiseScheduler

from repro.schedulers.registry import register_scheduler as _register_scheduler

_register_scheduler("waterwise", WaterWiseScheduler)
_register_scheduler("waterwise-cost-aware", CostAwareWaterWiseScheduler)

__all__ = [
    "ControllerResult",
    "CostAwareWaterWiseScheduler",
    "CostModel",
    "DecisionController",
    "ElectricityPriceTable",
    "HistoryLearner",
    "SlackManager",
    "WaterWiseConfig",
    "WaterWiseScheduler",
    "build_placement_problem",
]
