"""Bounded-variable revised simplex with warm-start bases.

This is the production LP engine of the native solver core.  Unlike the dense
tableau in :mod:`repro.milp.simplex` — kept as the slow reference
implementation — it

* handles variable bounds *natively*: a nonbasic variable simply sits at its
  lower or upper bound (or at zero when free), so finite bounds never become
  extra rows and free variables are never split;
* works on the *revised* form: the constraint matrix is never modified.  The
  basis inverse is maintained explicitly and updated with an O(m²)
  product-form (eta) transformation per pivot, with a full refactorization
  every :data:`_REFACTOR_PERIOD` pivots (or on numerical trouble) to keep
  drift bounded; columns are gathered from raw CSC arrays and pricing is one
  sparse ``A.T @ y`` product per iteration.  The CSC store is a plain trio of
  NumPy arrays, so the whole native core runs without SciPy installed (the
  ``auto`` dispatch falls back here when SciPy is missing — the fallback must
  not itself require SciPy);
* accepts a **warm-start basis**.  Feasibility restoration is uniform: any
  basis (the all-slack cold basis, the previous round's optimal basis, a
  branch & bound parent basis after a bound change) is loaded, basic values
  are computed, and basic variables that violate their bounds are driven back
  inside by a composite phase 1 that minimizes the total violation.  A warm
  basis that is still primal feasible skips phase 1 entirely; after a single
  branching bound change it typically needs one or two restoration pivots.

The constraint system is ``a_ub @ x ≤ b_ub`` / ``a_eq @ x = b_eq`` with box
bounds; one slack column per row turns it into equalities (equality rows get
a slack fixed at ``[0, 0]``).  Pricing is Dantzig's rule with an automatic
switch to Bland's rule after a run of degenerate steps, which guarantees
termination; ratio-test ties prefer the largest pivot magnitude (stability)
and then the smallest variable index (determinism).
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from repro.milp.simplex import LPSolution
from repro.milp.status import SolveStatus

__all__ = ["Basis", "BoundedLP", "solve_lp_revised"]

NB_LOWER = np.int8(0)
NB_UPPER = np.int8(1)
BASIC = np.int8(2)
NB_FREE = np.int8(3)

_FEAS_TOL = 1e-8
_OPT_TOL = 1e-9
_PIVOT_TOL = 1e-10
#: Full basis refactorizations happen every this many pivots; in between the
#: inverse is maintained with O(m²) eta updates.
_REFACTOR_PERIOD = 100


@dataclasses.dataclass(frozen=True)
class Basis:
    """A simplex basis: per-column status plus the basic column order.

    ``status`` covers structural columns first, then one slack per row
    (inequality rows before equality rows).  Stored by the
    :class:`~repro.milp.session.SolverSession` between scheduling rounds and
    by branch & bound nodes for their children.
    """

    status: np.ndarray  # int8 per column
    basic_idx: np.ndarray  # int64, one entry per row

    @property
    def num_rows(self) -> int:
        return len(self.basic_idx)

    @property
    def num_columns(self) -> int:
        return len(self.status)


class BoundedLP:
    """A prepared bounded LP: sparse columns, slack layout, reusable solves.

    Build once per constraint matrix; :meth:`solve` can then be called many
    times with different bounds (branch & bound) and/or warm-start bases
    (solver sessions) without re-assembling anything.
    """

    def __init__(
        self,
        c: np.ndarray,
        a_ub,
        b_ub: np.ndarray,
        a_eq,
        b_eq: np.ndarray,
        lower: np.ndarray,
        upper: np.ndarray,
    ) -> None:
        self.c = np.asarray(c, dtype=float)
        n = len(self.c)
        rows_ub, cols_ub, data_ub, self.m_ub = _coo_rows(a_ub)
        rows_eq, cols_eq, data_eq, self.m_eq = _coo_rows(a_eq)
        self.m = self.m_ub + self.m_eq
        self.n = n
        self.n_total = n + self.m

        # Full system [A | I] as raw CSC arrays (entries sorted by column,
        # then row): structural columns first, then one slack per row.
        rows = np.concatenate([rows_ub, rows_eq + self.m_ub, np.arange(self.m)])
        cols = np.concatenate([cols_ub, cols_eq, n + np.arange(self.m)])
        data = np.concatenate([data_ub, data_eq, np.ones(self.m)])
        order = np.lexsort((rows, cols))
        self._indices = rows[order]
        self._data = data[order]
        self._indptr = np.zeros(self.n_total + 1, dtype=np.int64)
        np.cumsum(np.bincount(cols, minlength=self.n_total), out=self._indptr[1:])
        #: Column id of each stored entry — turns pricing and matvecs into
        #: one multiply plus one bincount, no SciPy needed.
        self._col_of = np.repeat(np.arange(self.n_total), np.diff(self._indptr))
        self.b = np.concatenate([np.asarray(b_ub, dtype=float), np.asarray(b_eq, dtype=float)])

        self.base_lower = np.asarray(lower, dtype=float)
        self.base_upper = np.asarray(upper, dtype=float)
        self.slack_lower = np.zeros(self.m)
        self.slack_upper = np.concatenate([np.full(self.m_ub, np.inf), np.zeros(self.m_eq)])
        self.c_total = np.concatenate([self.c, np.zeros(self.m)])

    def _matvec(self, x: np.ndarray) -> np.ndarray:
        """``[A | I] @ x`` over the raw CSC arrays."""
        if self.m == 0:
            return np.zeros(0)
        return np.bincount(
            self._indices, weights=self._data * x[self._col_of], minlength=self.m
        )

    def _rmatvec(self, y: np.ndarray) -> np.ndarray:
        """``[A | I].T @ y`` over the raw CSC arrays."""
        if len(self._data) == 0:
            return np.zeros(self.n_total)
        return np.bincount(
            self._col_of, weights=self._data * y[self._indices], minlength=self.n_total
        )

    # -- helpers ---------------------------------------------------------------------
    def _column(self, j: int) -> np.ndarray:
        col = np.zeros(self.m)
        s, e = self._indptr[j], self._indptr[j + 1]
        col[self._indices[s:e]] = self._data[s:e]
        return col

    def _invert_basis(self, basic_idx: np.ndarray) -> np.ndarray | None:
        """Dense inverse of the basis matrix gathered from the CSC arrays."""
        m = self.m
        basis_mat = np.zeros((m, m))
        starts = self._indptr[basic_idx]
        lengths = self._indptr[basic_idx + 1] - starts
        total = int(lengths.sum())
        if total:
            # Concatenated [starts[k], starts[k]+lengths[k]) ranges.
            offsets = np.repeat(np.cumsum(lengths) - lengths, lengths)
            flat = np.arange(total) - offsets + np.repeat(starts, lengths)
            col_of = np.repeat(np.arange(m), lengths)
            basis_mat[self._indices[flat], col_of] = self._data[flat]
        try:
            b_inv = np.linalg.inv(basis_mat)
        except np.linalg.LinAlgError:
            return None
        if not np.all(np.isfinite(b_inv)):
            return None
        return b_inv

    def _cold_status(self, lo: np.ndarray, hi: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        status = np.full(self.n_total, NB_FREE, dtype=np.int8)
        finite_lo = np.isfinite(lo)
        finite_hi = np.isfinite(hi)
        status[finite_lo] = NB_LOWER
        status[~finite_lo & finite_hi] = NB_UPPER
        basic_idx = np.arange(self.n, self.n_total, dtype=np.int64)
        status[basic_idx] = BASIC
        return status, basic_idx

    def _adopt_basis(
        self, basis: Basis, lo: np.ndarray, hi: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Validate and adapt a warm basis to the current bounds."""
        if basis.num_columns != self.n_total or basis.num_rows != self.m:
            return None
        status = basis.status.astype(np.int8, copy=True)
        basic_idx = basis.basic_idx.astype(np.int64, copy=True)
        if np.any(basic_idx < 0) or np.any(basic_idx >= self.n_total):
            return None
        if len(np.unique(basic_idx)) != self.m:
            return None
        if not np.all(status[basic_idx] == BASIC) or np.count_nonzero(status == BASIC) != self.m:
            return None
        # Nonbasic columns must rest on a *finite* bound under the new box —
        # and a previously-free column whose bounds became finite may no
        # longer sit at 0 (phase 1 only repairs *basic* violations, so an
        # out-of-box nonbasic would go unnoticed and corrupt the solve).
        nonbasic = status != BASIC
        at_lower = nonbasic & (status == NB_LOWER) & ~np.isfinite(lo)
        status[at_lower & np.isfinite(hi)] = NB_UPPER
        status[at_lower & ~np.isfinite(hi)] = NB_FREE
        at_upper = nonbasic & (status == NB_UPPER) & ~np.isfinite(hi)
        status[at_upper & np.isfinite(lo)] = NB_LOWER
        status[at_upper & ~np.isfinite(lo)] = NB_FREE
        at_free = nonbasic & (status == NB_FREE)
        status[at_free & np.isfinite(lo)] = NB_LOWER
        status[at_free & ~np.isfinite(lo) & np.isfinite(hi)] = NB_UPPER
        return status, basic_idx

    def _nonbasic_values(
        self, status: np.ndarray, lo: np.ndarray, hi: np.ndarray
    ) -> np.ndarray:
        x = np.zeros(self.n_total)
        at_lo = status == NB_LOWER
        at_hi = status == NB_UPPER
        x[at_lo] = lo[at_lo]
        x[at_hi] = hi[at_hi]
        return x

    def _recompute_basics(
        self, x: np.ndarray, basic_idx: np.ndarray, b_inv: np.ndarray
    ) -> None:
        x[basic_idx] = 0.0
        x[basic_idx] = b_inv @ (self.b - self._matvec(x))

    # -- main entry point --------------------------------------------------------------
    def solve(
        self,
        lower: np.ndarray | None = None,
        upper: np.ndarray | None = None,
        basis: Basis | None = None,
        max_iter: int = 20_000,
        time_limit: float | None = None,
    ) -> tuple[LPSolution, Basis | None]:
        """Solve with optional structural-bound overrides and warm basis.

        Returns the solution (``x`` restricted to structural variables) and
        the final basis when the solve reached a conclusive status, so callers
        can thread it into the next, similar solve.
        """
        start = time.perf_counter()
        lo = np.concatenate([
            self.base_lower if lower is None else np.asarray(lower, dtype=float),
            self.slack_lower,
        ])
        hi = np.concatenate([
            self.base_upper if upper is None else np.asarray(upper, dtype=float),
            self.slack_upper,
        ])

        warm = False

        def _fail(status: SolveStatus, iterations: int = 0, objective: float = np.nan):
            return (
                LPSolution(status, np.full(self.n, np.nan), objective, iterations,
                           time.perf_counter() - start, warm_used=warm),
                None,
            )

        if np.any(lo[: self.n] > hi[: self.n] + _FEAS_TOL):
            return _fail(SolveStatus.INFEASIBLE)

        adopted = self._adopt_basis(basis, lo, hi) if basis is not None else None
        warm = adopted is not None
        status, basic_idx = adopted if warm else self._cold_status(lo, hi)
        b_inv = self._invert_basis(basic_idx)
        if b_inv is None and warm:
            status, basic_idx = self._cold_status(lo, hi)
            b_inv = self._invert_basis(basic_idx)
            warm = False
        if b_inv is None:  # all-slack basis is the identity; this cannot happen
            return _fail(SolveStatus.ERROR)

        x = self._nonbasic_values(status, lo, hi)
        self._recompute_basics(x, basic_idx, b_inv)
        if not np.all(np.isfinite(x[basic_idx])):
            if not warm:
                return _fail(SolveStatus.ERROR)
            status, basic_idx = self._cold_status(lo, hi)
            b_inv = self._invert_basis(basic_idx)
            x = self._nonbasic_values(status, lo, hi)
            self._recompute_basics(x, basic_idx, b_inv)

        iterations = 0
        pivots_since_refactor = 0
        degenerate_run = 0
        bland = False
        # Columns fixed to a point (equality slacks, fixed variables) may
        # never enter the basis: a zero-length bound flip would cycle.  The
        # negated comparison keeps free columns (inf - -inf = nan) enterable.
        enterable = ~((hi - lo) <= _FEAS_TOL)

        while iterations < max_iter:
            if time_limit is not None and (time.perf_counter() - start) > time_limit:
                return _fail(SolveStatus.ITERATION_LIMIT, iterations)

            xb = x[basic_idx]
            lob = lo[basic_idx]
            hib = hi[basic_idx]
            viol_low = xb < lob - _FEAS_TOL
            viol_up = xb > hib + _FEAS_TOL
            phase_one = bool(np.any(viol_low) or np.any(viol_up))

            if phase_one:
                cb = np.zeros(self.m)
                cb[viol_low] = -1.0
                cb[viol_up] = 1.0
            else:
                cb = self.c_total[basic_idx]
            y = b_inv.T @ cb
            d = -self._rmatvec(y)
            if not phase_one:
                d += self.c_total
            d[basic_idx] = 0.0

            improving = enterable & (
                ((status == NB_LOWER) & (d < -_OPT_TOL))
                | ((status == NB_UPPER) & (d > _OPT_TOL))
                | ((status == NB_FREE) & (np.abs(d) > _OPT_TOL))
            )
            candidates = np.flatnonzero(improving)
            if candidates.size == 0:
                if phase_one:
                    return (
                        LPSolution(SolveStatus.INFEASIBLE, np.full(self.n, np.nan), np.nan,
                                   iterations, time.perf_counter() - start, warm_used=warm),
                        Basis(status.copy(), basic_idx.copy()),
                    )
                x_struct = x[: self.n].copy()
                objective = float(self.c @ x_struct)
                return (
                    LPSolution(SolveStatus.OPTIMAL, x_struct, objective, iterations,
                               time.perf_counter() - start, warm_used=warm),
                    Basis(status.copy(), basic_idx.copy()),
                )

            if bland:
                q = int(candidates[0])
            else:
                q = int(candidates[np.argmax(np.abs(d[candidates]))])
            direction = 1.0 if (status[q] == NB_LOWER or (status[q] == NB_FREE and d[q] < 0)) else -1.0

            w = b_inv @ self._column(q)
            delta = -direction * w  # x_B moves by t * delta

            # -- ratio test ---------------------------------------------------
            rates = delta
            t_rows = np.full(self.m, np.inf)
            feasible_rows = ~(viol_low | viol_up)

            dec = feasible_rows & (rates < -_PIVOT_TOL) & np.isfinite(lob)
            t_rows[dec] = (lob[dec] - xb[dec]) / rates[dec]
            inc = feasible_rows & (rates > _PIVOT_TOL) & np.isfinite(hib)
            t_rows[inc] = (hib[inc] - xb[inc]) / rates[inc]
            # Violated basics block exactly when they re-enter their box —
            # crossing the violated bound would flip their phase-1 cost.
            low_back = viol_low & (rates > _PIVOT_TOL)
            t_rows[low_back] = (lob[low_back] - xb[low_back]) / rates[low_back]
            up_back = viol_up & (rates < -_PIVOT_TOL)
            t_rows[up_back] = (hib[up_back] - xb[up_back]) / rates[up_back]
            t_rows = np.maximum(t_rows, 0.0)

            t_flip = hi[q] - lo[q] if np.isfinite(hi[q] - lo[q]) else np.inf
            t_block = float(np.min(t_rows)) if self.m else np.inf
            t = min(t_block, t_flip)

            if not np.isfinite(t):
                if phase_one:
                    # Numerically impossible (the phase-1 objective is bounded
                    # below by zero); bail out rather than loop.
                    return _fail(SolveStatus.ERROR, iterations)
                return _fail(SolveStatus.UNBOUNDED, iterations, objective=-np.inf)

            if t < 1e-11:
                degenerate_run += 1
                if degenerate_run > 2 * self.n_total:
                    bland = True
            else:
                degenerate_run = 0
                bland = False

            if t_flip <= t_block:
                # Bound flip: the entering column swaps ends without a pivot.
                status[q] = NB_UPPER if status[q] == NB_LOWER else NB_LOWER
                x[q] = hi[q] if status[q] == NB_UPPER else lo[q]
                x[basic_idx] = xb + t * delta
            else:
                tied = np.flatnonzero(t_rows <= t + 1e-12)
                if bland:
                    r = int(tied[np.argmin(basic_idx[tied])])
                else:
                    magnitudes = np.abs(rates[tied])
                    best = magnitudes >= magnitudes.max() - 1e-12
                    strongest = tied[best]
                    r = int(strongest[np.argmin(basic_idx[strongest])])
                pivot = w[r]
                if abs(pivot) < 1e-9 and pivots_since_refactor > 0:
                    # Numerically degraded inverse: refactorize and retry the
                    # iteration with exact data.
                    b_inv = self._invert_basis(basic_idx)
                    if b_inv is None:
                        return _fail(SolveStatus.ERROR, iterations)
                    self._recompute_basics(x, basic_idx, b_inv)
                    pivots_since_refactor = 0
                    continue
                if abs(pivot) < _PIVOT_TOL:
                    return _fail(SolveStatus.ERROR, iterations)

                leaving = int(basic_idx[r])
                # Move the basics, snap the leaving variable onto the bound it
                # hit, and seat the entering variable at its new value.
                x[basic_idx] = xb + t * delta
                if rates[r] < 0.0:
                    x[leaving] = lob[r] if not viol_up[r] else hib[r]
                    status[leaving] = NB_LOWER if not viol_up[r] else NB_UPPER
                else:
                    x[leaving] = hib[r] if not viol_low[r] else lob[r]
                    status[leaving] = NB_UPPER if not viol_low[r] else NB_LOWER
                base = lo[q] if status[q] == NB_LOWER else (hi[q] if status[q] == NB_UPPER else 0.0)
                status[q] = BASIC
                basic_idx[r] = q
                x[q] = base + direction * t

                pivots_since_refactor += 1
                if pivots_since_refactor >= _REFACTOR_PERIOD:
                    b_inv = self._invert_basis(basic_idx)
                    if b_inv is None:
                        return _fail(SolveStatus.ERROR, iterations)
                    self._recompute_basics(x, basic_idx, b_inv)
                    pivots_since_refactor = 0
                else:
                    # Product-form (eta) update of the inverse: the basis
                    # changed by one column, so B⁻¹ changes by one rank-1
                    # elimination — O(m²) instead of a fresh O(m³) inverse.
                    b_inv[r, :] /= pivot
                    factors = w.copy()
                    factors[r] = 0.0
                    b_inv -= np.outer(factors, b_inv[r, :])

            iterations += 1

        return _fail(SolveStatus.ITERATION_LIMIT, iterations)


def _coo_rows(matrix) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Coordinate triplets (rows, cols, data) plus row count of a block.

    Accepts dense arrays and any CSR-layout object
    (:class:`~repro.milp.sparse.CsrMatrix` or ``scipy.sparse.csr_matrix``);
    empty blocks of any shape collapse to zero rows.
    """
    if hasattr(matrix, "indptr") and hasattr(matrix, "indices") and hasattr(matrix, "data"):
        m = int(matrix.shape[0])
        indptr = np.asarray(matrix.indptr, dtype=np.int64)
        rows = np.repeat(np.arange(m), np.diff(indptr))
        return (
            rows,
            np.asarray(matrix.indices, dtype=np.int64),
            np.asarray(matrix.data, dtype=float),
            m,
        )
    dense = np.asarray(matrix, dtype=float)
    if dense.ndim != 2 or dense.size == 0:
        m = dense.shape[0] if dense.ndim == 2 else 0
        return (
            np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64), np.zeros(0),
            m,
        )
    rows, cols = np.nonzero(dense)
    return rows.astype(np.int64), cols.astype(np.int64), dense[rows, cols], dense.shape[0]


def solve_lp_revised(
    c: np.ndarray,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    a_eq: np.ndarray,
    b_eq: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    max_iter: int = 20_000,
    basis: Basis | None = None,
    time_limit: float | None = None,
) -> tuple[LPSolution, Basis | None]:
    """One-shot wrapper over :class:`BoundedLP` with the classic array signature."""
    c = np.asarray(c, dtype=float)
    n = len(c)
    a_ub = np.asarray(a_ub, dtype=float).reshape(-1, n) if np.size(a_ub) else np.zeros((0, n))
    a_eq = np.asarray(a_eq, dtype=float).reshape(-1, n) if np.size(a_eq) else np.zeros((0, n))
    lp = BoundedLP(c, a_ub, np.asarray(b_ub, dtype=float).ravel(), a_eq,
                   np.asarray(b_eq, dtype=float).ravel(), lower, upper)
    return lp.solve(basis=basis, max_iter=max_iter, time_limit=time_limit)
