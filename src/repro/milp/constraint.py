"""Linear constraints for the MILP modeling layer."""

from __future__ import annotations

import enum
from collections.abc import Mapping

from repro.milp.expression import LinExpr, Variable

__all__ = ["ConstraintSense", "Constraint"]


class ConstraintSense(enum.Enum):
    """Relational sense of a constraint, relative to zero."""

    LE = "<="
    GE = ">="
    EQ = "=="


class Constraint:
    """A linear constraint ``expr (<=|>=|==) 0``.

    The right-hand side is folded into the expression's constant term, so the
    canonical representation is always relative to zero.  :attr:`lhs` exposes
    the variable terms and :attr:`rhs` the (moved) constant right-hand side,
    matching the ``A x (<=,>=,=) b`` form solvers consume.
    """

    __slots__ = ("expr", "sense", "name")

    def __init__(self, expr: LinExpr, sense: ConstraintSense, name: str | None = None) -> None:
        if not isinstance(expr, LinExpr):
            raise TypeError("Constraint expects a LinExpr")
        if not expr.terms:
            raise ValueError("constraint has no variables (it is trivially true or false)")
        self.expr = expr
        self.sense = sense
        self.name = name

    def with_name(self, name: str) -> "Constraint":
        """Return the same constraint with a name attached (used by Problem.add)."""
        return Constraint(self.expr, self.sense, name=name)

    @property
    def lhs(self) -> dict[Variable, float]:
        """Variable coefficients of the constraint's left-hand side."""
        return dict(self.expr.terms)

    @property
    def rhs(self) -> float:
        """Right-hand side after moving the constant to the other side."""
        return -self.expr.constant

    def satisfied(self, assignment: Mapping[Variable, float], tol: float = 1e-7) -> bool:
        """Whether the constraint holds for ``assignment`` within ``tol``."""
        value = self.expr.value(assignment)
        if self.sense is ConstraintSense.LE:
            return value <= tol
        if self.sense is ConstraintSense.GE:
            return value >= -tol
        return abs(value) <= tol

    def violation(self, assignment: Mapping[Variable, float]) -> float:
        """Amount by which ``assignment`` violates the constraint (0 if satisfied)."""
        value = self.expr.value(assignment)
        if self.sense is ConstraintSense.LE:
            return max(0.0, value)
        if self.sense is ConstraintSense.GE:
            return max(0.0, -value)
        return abs(value)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"Constraint{label}({self.expr!r} {self.sense.value} 0)"
