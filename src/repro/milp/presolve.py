"""Presolve for :class:`~repro.milp.problem.StandardForm` problems.

Three classic reductions run to a fixpoint before the native solver sees a
problem:

* **bound tightening** — every row's minimum activity implies a bound on each
  of its variables; integer variables additionally round the implied bound
  inward.  On WaterWise placement forms this is the reduction that matters:
  a delay row ``Σ_n (L_mn / t_m) · x_mn ≤ TOL_m`` with a ratio above the
  tolerance forces that placement binary to zero.
* **fixed-variable elimination** — variables with ``lower == upper`` are
  substituted into the right-hand sides and the objective constant.
* **redundant-row removal** — rows whose maximum activity already satisfies
  the bound are dropped (after the two reductions above, the delay rows of a
  hard placement form all disappear, leaving a pure transportation problem).

The pass also detects trivial infeasibility (crossed bounds, rows whose
minimum activity exceeds the right-hand side).  :meth:`PresolvedForm.postsolve`
maps a solution of the reduced problem back to the original variable space.
All comparisons use a 1e-9 feasibility margin so no point that the unreduced
problem accepts is ever cut off.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.milp.problem import StandardForm

__all__ = ["PresolveStats", "PresolvedForm", "presolve"]

_TOL = 1e-9
_MAX_PASSES = 10


@dataclasses.dataclass
class PresolveStats:
    """What presolve removed (fed into the solver session's counters)."""

    rows_before: int = 0
    rows_after: int = 0
    cols_before: int = 0
    cols_after: int = 0
    bounds_tightened: int = 0
    passes: int = 0

    @property
    def row_ratio(self) -> float:
        """Fraction of rows that survived presolve (1.0 = nothing removed)."""
        return self.rows_after / self.rows_before if self.rows_before else 1.0

    @property
    def col_ratio(self) -> float:
        return self.cols_after / self.cols_before if self.cols_before else 1.0


@dataclasses.dataclass
class PresolvedForm:
    """Reduced problem arrays plus the mapping back to the original space."""

    infeasible: bool
    c: np.ndarray
    c0: float
    a_ub: np.ndarray
    b_ub: np.ndarray
    a_eq: np.ndarray
    b_eq: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    integrality: np.ndarray
    kept_cols: np.ndarray  # indices into the original columns
    fixed_values: np.ndarray  # full-length; meaningful where a column was fixed
    n_original: int
    stats: PresolveStats

    @property
    def num_variables(self) -> int:
        return len(self.c)

    def postsolve(self, x_reduced: np.ndarray) -> np.ndarray:
        """Solution of the reduced problem → original variable space."""
        x = self.fixed_values.copy()
        x[self.kept_cols] = x_reduced
        return x


def _activity_bounds(
    a: np.ndarray, lower: np.ndarray, upper: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-row (min, max) activity of ``a @ x`` over the variable box.

    Every infinite contribution to the minimum activity is ``-inf`` (positive
    coefficient on an unbounded-below variable or negative coefficient on an
    unbounded-above one), and symmetrically ``+inf`` for the maximum, so the
    finite part can be summed separately from an infinity mask.
    """
    pos = np.where(a > 0.0, a, 0.0)
    neg = np.where(a < 0.0, a, 0.0)
    lo_finite = np.where(np.isfinite(lower), lower, 0.0)
    up_finite = np.where(np.isfinite(upper), upper, 0.0)

    min_act = pos @ lo_finite + neg @ up_finite
    max_act = pos @ up_finite + neg @ lo_finite

    lo_inf = ~np.isfinite(lower)
    up_inf = ~np.isfinite(upper)
    min_unbounded = (pos[:, lo_inf] != 0.0).any(axis=1) | (neg[:, up_inf] != 0.0).any(axis=1)
    max_unbounded = (pos[:, up_inf] != 0.0).any(axis=1) | (neg[:, lo_inf] != 0.0).any(axis=1)
    min_act[min_unbounded] = -np.inf
    max_act[max_unbounded] = np.inf
    return min_act, max_act


def _tighten_from_rows(
    a: np.ndarray,
    rhs: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    integrality: np.ndarray,
) -> int:
    """Tighten variable bounds implied by ``a @ x <= rhs`` rows, in place.

    For a row ``i`` with finite minimum activity, variable ``j`` must satisfy
    ``a_ij * x_j <= rhs_i - (min_act_i - a_ij-contribution_j)``.  Implied
    bounds are rounded inward for integer variables and only applied when they
    strictly improve by more than the tolerance (so floating-point noise can
    never oscillate the fixpoint loop).
    """
    tightened = 0
    min_act, _ = _activity_bounds(a, lower, upper)
    for i in range(a.shape[0]):
        row = a[i]
        support = np.flatnonzero(row)
        if support.size == 0:
            continue
        for j in support:
            coeff = row[j]
            # Minimum activity of the row *excluding* variable j.
            own_min = coeff * lower[j] if coeff > 0.0 else coeff * upper[j]
            if np.isfinite(min_act[i]):
                rest = min_act[i] - own_min
            else:
                rest_min, _ = _activity_bounds(
                    np.delete(row, j)[None, :], np.delete(lower, j), np.delete(upper, j)
                )
                rest = rest_min[0]
            if not np.isfinite(rest):
                continue
            headroom = rhs[i] - rest
            if coeff > 0.0:
                implied = headroom / coeff
                if integrality[j]:
                    implied = np.floor(implied + _TOL)
                if implied < upper[j] - _TOL:
                    upper[j] = implied
                    tightened += 1
            else:
                implied = headroom / coeff
                if integrality[j]:
                    implied = np.ceil(implied - _TOL)
                if implied > lower[j] + _TOL:
                    lower[j] = implied
                    tightened += 1
    return tightened


def presolve(form: StandardForm) -> PresolvedForm:
    """Run the reduction fixpoint on ``form`` and return the reduced arrays."""
    c = form.c.astype(float).copy()
    a_ub = np.asarray(form.a_ub, dtype=float).copy()
    b_ub = np.asarray(form.b_ub, dtype=float).copy()
    a_eq = np.asarray(form.a_eq, dtype=float).copy()
    b_eq = np.asarray(form.b_eq, dtype=float).copy()
    lower = form.lower.astype(float).copy()
    upper = form.upper.astype(float).copy()
    integrality = form.integrality.copy()
    n = len(c)

    stats = PresolveStats(
        rows_before=a_ub.shape[0] + a_eq.shape[0],
        rows_after=a_ub.shape[0] + a_eq.shape[0],
        cols_before=n,
        cols_after=n,
    )
    kept_cols = np.arange(n)
    fixed_values = np.zeros(n)
    c0 = float(form.c0)

    def _infeasible() -> PresolvedForm:
        return PresolvedForm(
            infeasible=True,
            c=c, c0=c0, a_ub=a_ub, b_ub=b_ub, a_eq=a_eq, b_eq=b_eq,
            lower=lower, upper=upper, integrality=integrality,
            kept_cols=kept_cols, fixed_values=fixed_values, n_original=n,
            stats=stats,
        )

    for _ in range(_MAX_PASSES):
        stats.passes += 1
        changed = False

        # Integer bounds snap to integers before anything else.
        lower[integrality] = np.ceil(lower[integrality] - _TOL)
        upper[integrality] = np.floor(upper[integrality] + _TOL)
        if np.any(lower > upper + _TOL):
            return _infeasible()

        # -- bound tightening (ub rows, and both directions of eq rows) ------
        tightened = _tighten_from_rows(a_ub, b_ub, lower, upper, integrality)
        tightened += _tighten_from_rows(a_eq, b_eq, lower, upper, integrality)
        tightened += _tighten_from_rows(-a_eq, -b_eq, lower, upper, integrality)
        if tightened:
            stats.bounds_tightened += tightened
            changed = True
        if np.any(lower > upper + _TOL):
            return _infeasible()

        # -- fixed-variable elimination --------------------------------------
        fixed = (upper - lower) <= _TOL
        if np.any(fixed):
            values = lower.copy()
            values[integrality & fixed] = np.round(values[integrality & fixed])
            fixed_values[kept_cols[fixed]] = values[fixed]
            c0 += float(c[fixed] @ values[fixed])
            if a_ub.shape[0]:
                b_ub = b_ub - a_ub[:, fixed] @ values[fixed]
            if a_eq.shape[0]:
                b_eq = b_eq - a_eq[:, fixed] @ values[fixed]
            keep = ~fixed
            c = c[keep]
            a_ub = a_ub[:, keep]
            a_eq = a_eq[:, keep]
            lower = lower[keep]
            upper = upper[keep]
            integrality = integrality[keep]
            kept_cols = kept_cols[keep]
            changed = True

        # -- redundant-row removal / row infeasibility -----------------------
        if a_ub.shape[0]:
            min_act, max_act = _activity_bounds(a_ub, lower, upper)
            if np.any(min_act > b_ub + _TOL):
                return _infeasible()
            redundant = max_act <= b_ub + _TOL
            if np.any(redundant):
                a_ub = a_ub[~redundant]
                b_ub = b_ub[~redundant]
                changed = True
        if a_eq.shape[0]:
            min_act, max_act = _activity_bounds(a_eq, lower, upper)
            if np.any(min_act > b_eq + _TOL) or np.any(max_act < b_eq - _TOL):
                return _infeasible()
            redundant = (np.abs(min_act - b_eq) <= _TOL) & (np.abs(max_act - b_eq) <= _TOL)
            if np.any(redundant):
                a_eq = a_eq[~redundant]
                b_eq = b_eq[~redundant]
                changed = True

        if not changed:
            break

    stats.rows_after = a_ub.shape[0] + a_eq.shape[0]
    stats.cols_after = len(c)
    return PresolvedForm(
        infeasible=False,
        c=c, c0=c0, a_ub=a_ub, b_ub=b_ub, a_eq=a_eq, b_eq=b_eq,
        lower=lower, upper=upper, integrality=integrality,
        kept_cols=kept_cols, fixed_values=fixed_values, n_original=n,
        stats=stats,
    )
